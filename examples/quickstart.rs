//! Quickstart: the whole pipeline in one file — generate a simulated
//! UCDAVIS19 dataset, look at a flow and its flowpic at several
//! resolutions (the paper's Fig. 1), train the LeNet-5 supervised
//! classifier on one 100-per-class split, and evaluate it on the three
//! test sides.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flowpic::render::ascii_heatmap;
use flowpic::{Flowpic, FlowpicConfig, Normalization};
use tcbench::arch::supervised_net;
use tcbench::data::FlowpicDataset;
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use trafficgen::splits::per_class_folds;
use trafficgen::types::Partition;
use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim, CLASSES};

fn main() {
    // 1. Simulate the dataset (see DESIGN.md for why it is simulated and
    //    how the paper's `human` data shift is injected).
    let dataset = UcDavisSim::new(UcDavisConfig::quick()).generate(42);
    println!(
        "dataset: {} flows, {} classes, partitions pretraining/script/human",
        dataset.flows.len(),
        dataset.num_classes()
    );

    // 2. Fig. 1 — one YouTube flow as packet series and flowpics.
    let youtube = dataset
        .partition(Partition::Pretraining)
        .find(|f| f.class == 4)
        .expect("a youtube flow");
    println!(
        "\nyoutube flow: {} packets over {:.1}s; first five:",
        youtube.len(),
        youtube.duration()
    );
    for p in youtube.pkts.iter().take(5) {
        println!("  t={:.4}s size={:4}B {:?}", p.ts, p.size, p.dir);
    }
    for res in [16usize, 32] {
        let pic = Flowpic::build(&youtube.pkts, &FlowpicConfig::with_resolution(res));
        println!("\nflowpic {res}x{res} (time -> right, packet size -> down):");
        println!("{}", ascii_heatmap(&pic));
    }

    // 3. Train the paper's LeNet-5 on one 100-per-class split.
    let fold = &per_class_folds(&dataset, Partition::Pretraining, 100, 1, 1)[0];
    let fpcfg = FlowpicConfig::mini();
    let norm = Normalization::LogMax;
    let train_full = FlowpicDataset::from_flows(&dataset, &fold.train, &fpcfg, norm);
    let (train, val) = train_full.split_validation(0.2, 1);
    let trainer = SupervisedTrainer::new(TrainConfig {
        max_epochs: 10,
        ..TrainConfig::supervised(1)
    });
    let mut net = supervised_net(32, dataset.num_classes(), true, 1);
    println!("network:\n{}", net.summary(&[1, 1, 32, 32]));
    println!(
        "training on {} flowpics ({} validation)...",
        train.len(),
        val.len()
    );
    let summary = trainer.train(&mut net, &train, Some(&val));
    println!(
        "trained for {} epochs (early stopping on validation loss)",
        summary.epochs
    );

    // 4. Evaluate on script / human / leftover — the paper's three sides.
    for (name, indices) in [
        ("script", dataset.partition_indices(Partition::Script)),
        ("human", dataset.partition_indices(Partition::Human)),
        ("leftover", fold.test.clone()),
    ] {
        let data = FlowpicDataset::from_flows(&dataset, &indices, &fpcfg, norm);
        let eval = trainer.evaluate(&net, &data);
        println!("accuracy on {name:<8}: {:.2}%", 100.0 * eval.accuracy);
    }
    println!("\nexpected: script and leftover high, human ~20 points lower — the");
    println!("data shift the replication uncovered (its Sec. 4.2.3).");

    // 5. Where the confusion concentrates (paper Fig. 3).
    let human = FlowpicDataset::from_flows(
        &dataset,
        &dataset.partition_indices(Partition::Human),
        &fpcfg,
        norm,
    );
    let eval = trainer.evaluate(&net, &human);
    println!(
        "\nhuman confusion matrix:\n{}",
        eval.confusion.ascii(&CLASSES)
    );
}
