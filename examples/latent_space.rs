//! Latent-space analysis: what does contrastive pre-training do to the
//! representation?
//!
//! The Ref-Paper's public repository visualizes the SimCLR latent space
//! with a 2-D t-SNE; this example does the deterministic version — PCA to
//! 2-D plus silhouette scores — comparing three spaces:
//!
//! 1. the raw flattened flowpic (no learning at all);
//! 2. the latent `h = f(x)` of an untrained (random) extractor;
//! 3. the latent of a SimCLR-pre-trained extractor.
//!
//! Expected: silhouette(random) ≈ silhouette(raw) or worse, and SimCLR
//! pre-training visibly tightens class clusters *without ever seeing a
//! label* — the geometric property the paper's Sec. 2.4 describes.
//!
//! Run with:
//! ```sh
//! cargo run --release --example latent_space
//! ```

use augment::ViewPair;
use flowpic::{FlowpicConfig, Normalization};
use mlstats::pca::{silhouette_score, Pca};
use tcbench::arch::{simclr_net, EXTRACTOR_DEPTH};
use tcbench::data::FlowpicDataset;
use tcbench::simclr::{pretrain, SimClrConfig};
use trafficgen::types::Partition;
use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim, CLASSES};

fn latents(net: &nettensor::Sequential, data: &FlowpicDataset) -> Vec<Vec<f64>> {
    let mut out = Vec::with_capacity(data.len());
    for chunk in data.index_chunks(64) {
        let x = data.batch_tensor(&chunk);
        let h = net.forward_prefix(&x, EXTRACTOR_DEPTH);
        let d = h.shape[1];
        for i in 0..chunk.len() {
            out.push(
                h.data[i * d..(i + 1) * d]
                    .iter()
                    .map(|&v| v as f64)
                    .collect(),
            );
        }
    }
    out
}

fn scatter_2d(points: &[Vec<f64>], labels: &[usize], width: usize, height: usize) -> String {
    // Map each point into a character grid; cells show the class digit,
    // collisions show '*'.
    let (min_x, max_x) = points
        .iter()
        .map(|p| p[0])
        .fold((f64::MAX, f64::MIN), |(lo, hi), v| (lo.min(v), hi.max(v)));
    let (min_y, max_y) = points
        .iter()
        .map(|p| p[1])
        .fold((f64::MAX, f64::MIN), |(lo, hi), v| (lo.min(v), hi.max(v)));
    let mut grid = vec![vec![' '; width]; height];
    for (p, &label) in points.iter().zip(labels) {
        let cx = ((p[0] - min_x) / (max_x - min_x).max(1e-12) * (width - 1) as f64) as usize;
        let cy = ((p[1] - min_y) / (max_y - min_y).max(1e-12) * (height - 1) as f64) as usize;
        let ch = char::from_digit(label as u32, 10).unwrap_or('?');
        grid[cy][cx] = if grid[cy][cx] == ' ' || grid[cy][cx] == ch {
            ch
        } else {
            '*'
        };
    }
    grid.into_iter()
        .map(|row| row.into_iter().collect::<String>() + "\n")
        .collect()
}

fn main() {
    let mut cfg = UcDavisConfig::tiny();
    cfg.pretraining_per_class = [40; 5];
    let ds = UcDavisSim::new(cfg).generate(17);
    let fpcfg = FlowpicConfig::mini();
    let norm = Normalization::LogMax;
    let idx = ds.partition_indices(Partition::Pretraining);
    let data = FlowpicDataset::from_flows(&ds, &idx, &fpcfg, norm);
    let labels = data.labels.clone();

    // 1. Raw flowpic space.
    let raw: Vec<Vec<f64>> = data
        .inputs
        .iter()
        .map(|v| v.iter().map(|&x| x as f64).collect())
        .collect();
    println!(
        "silhouette, raw 1024-d flowpic space:   {:+.3}",
        silhouette_score(&raw, &labels)
    );

    // 2. Random extractor latent.
    let random_net = simclr_net(32, 30, false, 777);
    let h_random = latents(&random_net, &data);
    println!(
        "silhouette, random extractor latent:    {:+.3}",
        silhouette_score(&h_random, &labels)
    );

    // 3. SimCLR-pre-trained latent.
    println!("\npre-training SimCLR (unsupervised) ...");
    let config = SimClrConfig {
        max_epochs: 8,
        batch_size: 16,
        ..SimClrConfig::paper(3)
    };
    let (pre_net, summary) = pretrain(&ds, &idx, ViewPair::paper(), &fpcfg, norm, &config);
    println!(
        "  {} epochs, best contrastive top-5 {:.0}%",
        summary.epochs,
        100.0 * summary.best_top5
    );
    let h_pre = latents(&pre_net, &data);
    let sil = silhouette_score(&h_pre, &labels);
    println!("silhouette, SimCLR-pre-trained latent:  {sil:+.3}");

    // 2-D PCA scatter of the pre-trained latent.
    let pca = Pca::fit(&h_pre, 2);
    let proj = pca.transform_all(&h_pre);
    println!(
        "\nPCA of the pre-trained latent (explained variance {:.1} / {:.1}):",
        pca.explained_variance[0], pca.explained_variance[1]
    );
    for (i, name) in CLASSES.iter().enumerate() {
        println!("  {i} = {name}");
    }
    println!("{}", scatter_2d(&proj, &labels, 72, 24));
    println!("classes should form visible clusters — learned without any labels.");
}
