//! Augmentation gallery: apply each of the paper's 7 augmentation
//! policies to the same flow and show what they do to the flowpic — the
//! time-series family (Change RTT, Time shift, Packet loss) reshapes the
//! picture along the time axis, the image family (Rotate, Flip, Jitter)
//! edits pixels directly.
//!
//! Run with:
//! ```sh
//! cargo run --release --example augmentation_gallery
//! ```

use augment::{Augmentation, ViewPair, ALL_AUGMENTATIONS};
use flowpic::render::{ascii_heatmap, shift_distance};
use flowpic::{Flowpic, FlowpicConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use trafficgen::types::Partition;
use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

fn main() {
    let dataset = UcDavisSim::new(UcDavisConfig::tiny()).generate(7);
    // Google search: the class with the most structured flowpic (two
    // activity groups + the max-size line), so transformations are easy
    // to see.
    let flow = dataset
        .partition(Partition::Pretraining)
        .find(|f| f.class == 3)
        .expect("a google-search flow");
    let cfg = FlowpicConfig::with_resolution(24); // small enough to eyeball
    let mut rng = StdRng::seed_from_u64(3);

    let original = Flowpic::build(&flow.pkts, &cfg);
    println!("original google-search flowpic ({} packets):", flow.len());
    println!("{}", ascii_heatmap(&original));

    for aug in ALL_AUGMENTATIONS {
        if aug == Augmentation::NoAug {
            continue;
        }
        let pic = aug.apply(&flow.pkts, &cfg, &mut rng);
        let family = if aug.is_time_series() {
            "time series"
        } else {
            "image"
        };
        println!(
            "--- {} ({family}; L1 distance to original: {:.1}) ---",
            aug.name(),
            shift_distance(&original, &pic)
        );
        println!("{}", ascii_heatmap(&pic));
    }

    // The SimCLR view pair: two independent draws of Change RTT + Time
    // shift in random order — the "views" contrasted during pre-training.
    let pair = ViewPair::paper();
    let (a, b) = pair.views(&flow.pkts, &cfg, &mut rng);
    println!("--- SimCLR views ({}) ---", pair.label());
    println!("view A:\n{}", ascii_heatmap(&a));
    println!("view B:\n{}", ascii_heatmap(&b));
    println!(
        "view A vs view B L1 distance: {:.1} — different, but both recognizably\n\
         the same flow: exactly what the contrastive loss needs.",
        shift_distance(&a, &b)
    );
}
