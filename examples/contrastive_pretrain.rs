//! Contrastive pre-training walk-through: SimCLR on unlabeled flows, then
//! few-shot fine-tuning — the paper's G2 pipeline end to end, with the
//! supervised ceiling for comparison.
//!
//! Run with:
//! ```sh
//! cargo run --release --example contrastive_pretrain
//! ```

use augment::ViewPair;
use flowpic::{FlowpicConfig, Normalization};
use tcbench::arch::supervised_net;
use tcbench::data::FlowpicDataset;
use tcbench::simclr::{few_shot_subset, fine_tune, pretrain, SimClrConfig};
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use trafficgen::splits::per_class_folds;
use trafficgen::types::Partition;
use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

fn main() {
    let mut cfg = UcDavisConfig::tiny();
    cfg.pretraining_per_class = [60; 5];
    cfg.script_per_class = [15; 5];
    let dataset = UcDavisSim::new(cfg).generate(21);
    let fpcfg = FlowpicConfig::mini();
    let norm = Normalization::LogMax;
    let fold = &per_class_folds(&dataset, Partition::Pretraining, 50, 1, 2)[0];

    // 1. SimCLR pre-training on the UNLABELED pool: labels never touch
    //    this phase — the views' agreement is the only training signal.
    println!(
        "pre-training SimCLR on {} unlabeled flows...",
        fold.train.len()
    );
    let config = SimClrConfig {
        max_epochs: 8,
        ..SimClrConfig::paper(5)
    };
    let (pre_net, summary) = pretrain(
        &dataset,
        &fold.train,
        ViewPair::paper(),
        &fpcfg,
        norm,
        &config,
    );
    println!(
        "  {} epochs, final NT-Xent loss {:.3}, best contrastive top-5 {:.0}%",
        summary.epochs,
        summary.final_loss,
        100.0 * summary.best_top5
    );

    // 2. Fine-tune with a handful of labels per class.
    let trainer = SupervisedTrainer::new(TrainConfig::supervised(0));
    let script_idx = dataset.partition_indices(Partition::Script);
    let script = FlowpicDataset::from_flows(&dataset, &script_idx, &fpcfg, norm);
    println!("\nfew-shot fine-tuning (frozen extractor, fresh classifier):");
    for shots in [1usize, 3, 10] {
        let labeled_idx = few_shot_subset(&dataset, &fold.train, shots, 9);
        let labeled = FlowpicDataset::from_flows(&dataset, &labeled_idx, &fpcfg, norm);
        let tuned = fine_tune(&pre_net, &labeled, 11, 1);
        let eval = trainer.evaluate(&tuned, &script);
        println!(
            "  {shots:>2} labeled samples/class -> script accuracy {:.1}%",
            100.0 * eval.accuracy
        );
    }

    // 3. The supervised ceiling: same split, full labels.
    let train_full = FlowpicDataset::from_flows(&dataset, &fold.train, &fpcfg, norm);
    let (train, val) = train_full.split_validation(0.2, 3);
    let sup_trainer = SupervisedTrainer::new(TrainConfig {
        max_epochs: 10,
        ..TrainConfig::supervised(3)
    });
    let mut sup_net = supervised_net(32, dataset.num_classes(), false, 3);
    sup_trainer.train(&mut sup_net, &train, Some(&val));
    let eval = sup_trainer.evaluate(&sup_net, &script);
    println!(
        "\nfully-supervised reference ({} labels): {:.1}%",
        fold.train.len(),
        100.0 * eval.accuracy
    );
    println!(
        "\nexpected: accuracy grows with shots; at 10 shots the contrastive\n\
         pipeline approaches the supervised ceiling (paper Sec. 4.4: 94.5 vs ~98)."
    );
}
