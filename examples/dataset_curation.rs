//! Dataset curation walk-through: generate the three replication
//! datasets raw, run the paper's curation pipeline on each, and print the
//! Table 2-style summary. Also round-trips one dataset through the
//! `flowrec` binary format.
//!
//! Run with:
//! ```sh
//! cargo run --release --example dataset_curation
//! ```

use trafficgen::curation::CurationPipeline;
use trafficgen::flowrec;
use trafficgen::mirage19::{Mirage19Config, Mirage19Sim};
use trafficgen::mirage22::{Mirage22Config, Mirage22Sim};
use trafficgen::types::Dataset;
use trafficgen::utmobilenet::{UtMobileNetConfig, UtMobileNetSim};

fn summarize(label: &str, ds: &Dataset) {
    println!(
        "  {label:<28} {:>7} flows  {:>3} classes  rho {:>5}  mean pkts {:>8.1}",
        ds.flows.len(),
        ds.num_classes(),
        ds.imbalance_rho()
            .map(|r| format!("{r:.1}"))
            .unwrap_or_else(|| "-".into()),
        ds.mean_pkts()
    );
}

fn curate(raw: &Dataset, pipeline: CurationPipeline, label: &str) -> Dataset {
    let (curated, report) = pipeline.run(raw);
    println!(
        "  curation [{label}]: -{} background, -{} short, -{} small-class",
        report.background_removed, report.short_removed, report.small_class_removed
    );
    summarize(&format!("{} ({label})", curated.name), &curated);
    curated
}

fn main() {
    // Reduced scales so the example runs in seconds; Table 2's full-scale
    // numbers are documented in the simulator configs' `paper()` methods.
    println!("MIRAGE-19 — 20 Android apps, very short flows:");
    let m19 = Mirage19Sim::new(Mirage19Config::quick()).generate(1);
    summarize("mirage19 (raw)", &m19);
    let mut pipe = CurationPipeline::mirage(10);
    pipe.min_class_size = 30; // floor scaled with the reduced dataset
    curate(&m19, pipe, ">10pkts");

    println!("\nMIRAGE-22 — 9 video-meeting apps, long flows:");
    let m22 = Mirage22Sim::new(Mirage22Config::quick()).generate(2);
    summarize("mirage22 (raw)", &m22);
    for min_pkts in [10usize, 1000] {
        let mut pipe = CurationPipeline::mirage(min_pkts);
        pipe.min_class_size = 10;
        curate(&m22, pipe, &format!(">{min_pkts}pkts"));
    }

    println!("\nUTMOBILENET21 — 17 apps over 4 capture campaigns:");
    let ut = UtMobileNetSim::new(UtMobileNetConfig::quick()).generate(3);
    summarize("utmobilenet21 (raw)", &ut);
    let mut pipe = CurationPipeline::utmobilenet();
    pipe.min_class_size = 30;
    let curated = curate(&ut, pipe, "4-into-1, >10pkts");

    // flowrec round-trip: the binary interchange format used between
    // pipeline stages (the paper's parquet counterpart).
    let bytes = flowrec::encode(&curated);
    println!(
        "\nflowrec: encoded {} flows into {:.1} MiB",
        curated.flows.len(),
        bytes.len() as f64 / (1024.0 * 1024.0)
    );
    let back = flowrec::decode(&bytes).expect("decode");
    assert_eq!(back, curated);
    println!("flowrec: decode round-trip verified");
}
