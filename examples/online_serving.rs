//! Online serving: train two models, then replay a simulated UCDAVIS19
//! capture through the streaming classifier — incremental flowpics per
//! live flow, micro-batched forward passes, and a mid-stream hot-swap
//! from the first model to the second without dropping a batch.
//!
//! Run with:
//! ```sh
//! cargo run --release --example online_serving
//! ```

use std::sync::Arc;

use flowpic::{FlowpicConfig, Normalization};
use serve::engine::{CnnClassifier, EngineConfig};
use serve::registry::{ModelRegistry, ServedModel};
use serve::replay::{replay, trace_from_dataset, ScheduledSwap};
use serve::tracker::TrackerConfig;
use tcbench::arch::supervised_net;
use tcbench::data::FlowpicDataset;
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use tcbench::telemetry::{InferEvent, InferRecorder};
use trafficgen::splits::per_class_folds;
use trafficgen::types::Partition;
use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

const RES: usize = 16;

/// One short supervised run, packaged in the on-disk serving format.
fn train_served(dataset: &trafficgen::types::Dataset, seed: u64) -> ServedModel {
    let fold = &per_class_folds(dataset, Partition::Pretraining, 10, 1, seed)[0];
    let fpcfg = FlowpicConfig::with_resolution(RES);
    let full = FlowpicDataset::from_flows(dataset, &fold.train, &fpcfg, Normalization::LogMax);
    let (train, val) = full.split_validation(0.2, seed);
    let trainer = SupervisedTrainer::new(TrainConfig {
        max_epochs: 3,
        ..TrainConfig::supervised(seed)
    });
    let mut net = supervised_net(RES, dataset.num_classes(), true, seed);
    trainer.train(&mut net, &train, Some(&val));
    ServedModel {
        arch: "supervised".into(),
        resolution: RES,
        n_classes: dataset.num_classes(),
        dropout: true,
        class_names: dataset.class_names.clone(),
        weights: net.export_weights(),
    }
}

fn main() {
    // 1. A dataset to replay and two models to serve.
    let dataset = UcDavisSim::new(UcDavisConfig::tiny()).generate(11);
    println!("dataset: {} flows", dataset.flows.len());
    println!("training model A and model B (short runs at {RES}x{RES})...");
    let model_a = train_served(&dataset, 1);
    let model_b = train_served(&dataset, 2);

    // 2. The registry starts on model A; model B is scheduled to swap in
    //    halfway through the trace. In-flight batches finish on whichever
    //    model they started with.
    let workers = 1;
    let cnn_a = CnnClassifier::from_served(&model_a, workers).expect("model A");
    let cnn_b = CnnClassifier::from_served(&model_b, workers).expect("model B");
    let registry = Arc::new(ModelRegistry::new(Arc::new(cnn_a)));

    // 3. Interleave the flows into one packet stream (400 ms stagger
    //    between flow starts) and play it back 10x faster than captured.
    //    The rate multiplier squeezes stream time only — flowpics bin in
    //    flow-relative time, so predictions are unchanged at any rate.
    let trace = trace_from_dataset(&dataset, 0.4, 10.0);
    let swaps = vec![ScheduledSwap {
        at_packet: trace.len() / 2,
        model: Arc::new(cnn_b),
    }];

    let mut rec = InferRecorder::new();
    let report = replay(
        &trace,
        &registry,
        TrackerConfig {
            flowpic: FlowpicConfig::with_resolution(RES),
            norm: Normalization::LogMax,
            idle_timeout_s: 30.0,
            max_flows: 10_000,
            done_horizon_s: 120.0,
        },
        EngineConfig {
            max_batch: 8,
            max_wait_s: 0.5,
            ..EngineConfig::default()
        },
        swaps,
        &mut rec,
    )
    .expect("replay");

    // 4. The latency/throughput report `tcb serve --replay` prints.
    println!("\n{}", report.render(&dataset.class_names));

    // 5. The same facts as typed telemetry events.
    for e in &rec.events {
        if let InferEvent::ModelSwapped {
            old_fingerprint,
            new_fingerprint,
            ..
        } = e
        {
            println!("hot-swap: {old_fingerprint:016x} -> {new_fingerprint:016x}");
        }
    }
    let batches = rec.batch_ends().len();
    println!(
        "telemetry: {} events, {} infer_batch_end (one per forward pass)",
        rec.events.len(),
        batches
    );
}
