//! Open-world serving: confidence-thresholded rejection over the QUIC
//! workload. Pins the two contracts the rejection lane ships with —
//! rejection decisions are bit-identical at any shard × worker count,
//! and `reject_below: 0.0` is byte-identical to a pre-rejection replay
//! — plus the ground-truth scoring wiring at both threshold extremes.

use std::sync::Arc;

use serve::engine::{CnnClassifier, EngineConfig};
use serve::registry::{ModelRegistry, ServedModel};
use serve::replay::{trace_from_dataset, PacketRecord, ReplayReport};
use serve::shard::replay_sharded;
use serve::tracker::TrackerConfig;
use tcbench::arch::supervised_net;
use tcbench::telemetry::Noop;
use trafficgen::quic::{QuicConfig, QuicSim};

const RES: usize = 16;

/// A model over the quic workload's known classes only: truth classes
/// `10..14` are open-world unknowns it has never seen.
fn known_model(seed: u64) -> ServedModel {
    let sim = QuicSim::new(QuicConfig::tiny());
    let known = sim.generate_known(seed);
    let n = known.class_names.len();
    let net = supervised_net(RES, n, true, seed);
    ServedModel {
        arch: "supervised".into(),
        resolution: RES,
        n_classes: n,
        dropout: true,
        class_names: known.class_names,
        weights: net.export_weights(),
    }
}

fn tracker_cfg() -> TrackerConfig {
    TrackerConfig {
        flowpic: flowpic::FlowpicConfig::with_resolution(RES),
        norm: flowpic::Normalization::LogMax,
        idle_timeout_s: 60.0,
        max_flows: 10_000,
        done_horizon_s: 120.0,
    }
}

fn engine_cfg(reject_below: f32) -> EngineConfig {
    EngineConfig {
        max_batch: 8,
        max_wait_s: 0.3,
        reject_below,
        ..EngineConfig::default()
    }
}

fn run_replay(
    model: &ServedModel,
    trace: &[PacketRecord],
    reject_below: f32,
    shards: usize,
    workers: usize,
) -> ReplayReport {
    let cnn = CnnClassifier::from_served(model, workers.max(1)).unwrap();
    let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
    replay_sharded(
        trace,
        &registry,
        tracker_cfg(),
        engine_cfg(reject_below),
        Vec::new(),
        shards,
        workers,
        &mut Noop,
    )
    .unwrap()
}

/// Order-free raw-bit view of a replay's predictions, rejection
/// included: different shard counts interleave lanes differently, but
/// the classified set must be bit-identical.
fn sorted_bits(report: &ReplayReport) -> Vec<(u64, Option<usize>, u32, bool)> {
    let mut v: Vec<_> = report
        .predictions
        .iter()
        .map(|p| {
            (
                p.flow_id,
                p.label(),
                p.confidence.to_bits(),
                p.is_rejected(),
            )
        })
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn rejection_is_bit_identical_across_shards_and_workers() {
    let ds = QuicSim::new(QuicConfig::tiny()).generate(31);
    let trace = trace_from_dataset(&ds, 0.05, 1.0);
    let model = known_model(3);

    // Derive a stream-splitting threshold from an unthresholded pass:
    // the median winning confidence guarantees both outcomes appear.
    let probe = run_replay(&model, &trace, 0.0, 1, 1);
    assert_eq!(probe.predictions.len(), ds.flows.len());
    let mut confs: Vec<f32> = probe.predictions.iter().map(|p| p.confidence).collect();
    confs.sort_by(f32::total_cmp);
    let reject = confs[confs.len() / 2];
    // The comparison is half-open: exactly the strictly-below flows
    // reject, flows at the threshold are accepted.
    let expected_rejected = confs.iter().filter(|&&c| c < reject).count();
    assert!(
        expected_rejected > 0,
        "confidences must not all tie at the median"
    );

    let base = run_replay(&model, &trace, reject, 1, 1);
    assert_eq!(base.predictions.len(), ds.flows.len());
    let rejected = base.rejected();
    assert_eq!(rejected, expected_rejected, "threshold pins half-open");
    assert!(
        rejected < base.predictions.len(),
        "flows at the median must stay accepted"
    );
    let baseline = sorted_bits(&base);
    for (shards, workers) in [(1, 4), (4, 1), (4, 4)] {
        let run = run_replay(&model, &trace, reject, shards, workers);
        assert_eq!(
            sorted_bits(&run),
            baseline,
            "{shards} shard(s) x {workers} worker(s) changed a rejection bit"
        );
        assert_eq!(run.rejected(), rejected);
    }
}

#[test]
fn reject_below_zero_is_byte_identical_to_the_default_path() {
    let ds = QuicSim::new(QuicConfig::tiny()).generate(7);
    let trace = trace_from_dataset(&ds, 0.05, 1.0);
    let model = known_model(5);

    let default_run = run_replay(&model, &trace, EngineConfig::default().reject_below, 2, 1);
    let zero_run = run_replay(&model, &trace, 0.0, 2, 1);
    assert_eq!(sorted_bits(&default_run), sorted_bits(&zero_run));
    assert_eq!(zero_run.rejected(), 0, "0.0 must disable the lane");
    // The wall-clock-free tail of the rendered report — the per-class
    // counts the CLI prints — is byte-identical too, with no
    // `(rejected)` line on either side.
    let tail = |s: String| {
        s.lines()
            .skip_while(|l| !l.starts_with("  "))
            .map(String::from)
            .collect::<Vec<_>>()
    };
    let default_tail = tail(default_run.render(&model.class_names));
    assert_eq!(default_tail, tail(zero_run.render(&model.class_names)));
    assert!(!default_tail.iter().any(|l| l.contains("(rejected)")));
}

#[test]
fn scoring_extremes_pin_the_open_world_rates() {
    let sim = QuicSim::new(QuicConfig::tiny());
    let ds = sim.generate(13);
    let trace = trace_from_dataset(&ds, 0.05, 1.0);
    let model = known_model(11);
    let n_known = model.n_classes;

    // Threshold 1.0: an untrained softmax never answers exactly 1.0, so
    // every flow — known and unknown — is rejected.
    let all_rejected = run_replay(&model, &trace, 1.0, 1, 1);
    let score = all_rejected.score(&ds, n_known);
    assert_eq!(score.unknown_rejection_rate(), Some(1.0));
    assert_eq!(score.false_accept_rate(), Some(0.0));
    assert_eq!(
        score.known_accuracy(),
        0.0,
        "rejected known flows are misses"
    );
    assert_eq!(score.known_rejected, score.known_total);

    // Threshold 0.0: the lane is off, every unknown is falsely accepted.
    let all_accepted = run_replay(&model, &trace, 0.0, 1, 1);
    let score = all_accepted.score(&ds, n_known);
    assert_eq!(score.unknown_rejection_rate(), Some(0.0));
    assert_eq!(score.false_accept_rate(), Some(1.0));
    assert_eq!(score.known_rejected, 0);
    assert!(score.unknown_total > 0, "the quic trace must hold unknowns");
    assert_eq!(
        score.known_total + score.unknown_total,
        ds.flows.len(),
        "every flow joins ground truth"
    );
}
