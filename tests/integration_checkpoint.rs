//! End-to-end checkpoint/resume integration: a training run killed at an
//! epoch boundary and resumed must be **bit-identical** — final weights
//! and summary — to the same run left uninterrupted, and a campaign
//! restarted over a half-full results directory must reuse what it finds.

use tcbench::campaign::run_parallel_resumable;
use tcbench::data::FlowpicDataset;
use tcbench::supervised::{CheckpointSpec, SupervisedTrainer, TrainConfig};
use trafficgen::types::Partition;
use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

fn split() -> (FlowpicDataset, FlowpicDataset) {
    let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(17);
    let fpcfg = flowpic::FlowpicConfig::mini();
    let idx = ds.partition_indices(Partition::Pretraining);
    let data = FlowpicDataset::from_flows(&ds, &idx, &fpcfg, flowpic::Normalization::LogMax);
    data.split_validation(0.25, 8)
}

fn config(max_epochs: usize) -> TrainConfig {
    TrainConfig {
        max_epochs,
        ..TrainConfig::supervised(23)
    }
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tcbench_integration_ckpt_{}_{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The acceptance gate of the checkpoint subsystem: interrupt at epoch 3
/// of 8, resume to completion, and compare against the uninterrupted run
/// byte for byte.
#[test]
fn killed_and_resumed_run_is_bit_identical_to_uninterrupted() {
    let (train, val) = split();
    let dir = tmp_dir("bitident");

    // Leg A: uninterrupted, 8 epochs.
    let mut net_a = tcbench::arch::supervised_net(32, 5, false, 23);
    let summary_a = SupervisedTrainer::new(config(8))
        .train_resumable(
            &mut net_a,
            &train,
            Some(&val),
            &CheckpointSpec::new(dir.join("uninterrupted.ckpt")),
        )
        .unwrap();

    // Leg B: "killed" after epoch 3 (we simulate the kill by capping
    // max_epochs — the checkpoint on disk is exactly what a SIGKILL at
    // the epoch-3 boundary would leave), then resumed to 8.
    let killed_path = dir.join("killed.ckpt");
    let mut net_b = tcbench::arch::supervised_net(32, 5, false, 23);
    SupervisedTrainer::new(config(3))
        .train_resumable(
            &mut net_b,
            &train,
            Some(&val),
            &CheckpointSpec::new(&killed_path),
        )
        .unwrap();

    let mut net_resumed = tcbench::arch::supervised_net(32, 5, false, 23);
    let summary_b = SupervisedTrainer::new(config(8))
        .train_resumable(
            &mut net_resumed,
            &train,
            Some(&val),
            &CheckpointSpec::new(&killed_path).resuming(),
        )
        .unwrap();

    assert_eq!(summary_a, summary_b, "summaries must match exactly");
    let wa = net_a.export_weights();
    let wb = net_resumed.export_weights();
    assert_eq!(
        wa, wb,
        "resumed weights must be byte-identical to the uninterrupted run"
    );

    // And the best-weights guarantee holds on both legs: the model in
    // hand achieves exactly the reported best validation loss.
    if let Some(best) = summary_a.best_val_loss {
        let actual = SupervisedTrainer::new(config(8)).loss(&net_resumed, &val);
        assert_eq!(actual.to_bits(), best.to_bits());
    }
}

/// Resuming a run that already early-stopped (or hit its cap) must not
/// train any further — the checkpoint records terminality.
#[test]
fn resuming_a_finished_run_is_a_no_op() {
    let (train, val) = split();
    let dir = tmp_dir("noop");
    let path = dir.join("finished.ckpt");

    let mut net = tcbench::arch::supervised_net(32, 5, false, 23);
    let first = SupervisedTrainer::new(config(4))
        .train_resumable(&mut net, &train, Some(&val), &CheckpointSpec::new(&path))
        .unwrap();

    let mut net2 = tcbench::arch::supervised_net(32, 5, false, 23);
    let second = SupervisedTrainer::new(config(4))
        .train_resumable(
            &mut net2,
            &train,
            Some(&val),
            &CheckpointSpec::new(&path).resuming(),
        )
        .unwrap();
    assert_eq!(first, second);
    assert_eq!(net.export_weights(), net2.export_weights());
}

/// Campaign-level resume: seed half the results directory, then run the
/// full campaign — only the missing half computes, and the assembled
/// result vector is identical to a from-scratch campaign.
#[test]
fn campaign_resume_reuses_persisted_runs() {
    let dir = tmp_dir("campaign");
    // First pass: only tasks 0..4 of 8 "survive the crash".
    let (partial, _) = run_parallel_resumable(4, 2, &dir, expensive_task).unwrap();
    assert_eq!(partial.len(), 4);

    let (full, report) = run_parallel_resumable(8, 2, &dir, expensive_task).unwrap();
    assert_eq!(report.reused, 4, "the surviving half must be reused");
    assert_eq!(report.computed, 4);
    assert!(report.invalid.is_empty());

    let fresh_dir = tmp_dir("campaign_fresh");
    let (fresh, _) = run_parallel_resumable(8, 2, &fresh_dir, expensive_task).unwrap();
    assert_eq!(full, fresh, "resumed campaign must equal a fresh one");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&fresh_dir);
}

/// A deterministic stand-in for one experiment: returns bit patterns that
/// would expose any float re-encoding sloppiness in the persistence path.
fn expensive_task(i: usize) -> (u64, f64) {
    let x = (i as f64 + 0.1).sin() * 1e3;
    (i as u64 * 7919, x)
}
