//! Integration of the classic-ML baseline (paper G0): GBDT on flowpic and
//! time-series features over the simulated UCDAVIS19, asserting the
//! Table 3 shape at test scale.

use flowpic::features::{early_time_series, flowpic_flat};
use flowpic::{FlowpicConfig, Normalization};
use gbdt::{GbdtClassifier, GbdtConfig};
use trafficgen::splits::per_class_folds;
use trafficgen::types::{Dataset, Partition};
use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

fn dataset() -> Dataset {
    let mut cfg = UcDavisConfig::tiny();
    cfg.pretraining_per_class = [40; 5];
    cfg.script_per_class = [12; 5];
    cfg.human_per_class = [12; 5];
    cfg.max_pkts = 400;
    UcDavisSim::new(cfg).generate(2024)
}

fn flowpic_features(ds: &Dataset, idx: &[usize]) -> (Vec<Vec<f32>>, Vec<usize>) {
    let cfg = FlowpicConfig::mini();
    (
        idx.iter()
            .map(|&i| flowpic_flat(&ds.flows[i], &cfg, Normalization::Raw))
            .collect(),
        idx.iter().map(|&i| ds.flows[i].class as usize).collect(),
    )
}

fn ts_features(ds: &Dataset, idx: &[usize]) -> (Vec<Vec<f32>>, Vec<usize>) {
    (
        idx.iter()
            .map(|&i| early_time_series(&ds.flows[i], 10))
            .collect(),
        idx.iter().map(|&i| ds.flows[i].class as usize).collect(),
    )
}

fn accuracy(model: &GbdtClassifier, x: &[Vec<f32>], y: &[usize]) -> f64 {
    model
        .predict_batch(x)
        .iter()
        .zip(y)
        .filter(|(a, b)| a == b)
        .count() as f64
        / y.len() as f64
}

#[test]
fn gbdt_baseline_reproduces_table3_shape() {
    let ds = dataset();
    let fold = &per_class_folds(&ds, Partition::Pretraining, 30, 1, 5)[0];
    let script = ds.partition_indices(Partition::Script);
    let human = ds.partition_indices(Partition::Human);
    let cfg = GbdtConfig {
        n_rounds: 30,
        ..Default::default()
    };

    // Flowpic input.
    let (train_x, train_y) = flowpic_features(&ds, &fold.train);
    let fp_model = GbdtClassifier::fit(&train_x, &train_y, 5, &cfg);
    let (sx, sy) = flowpic_features(&ds, &script);
    let (hx, hy) = flowpic_features(&ds, &human);
    let fp_script = accuracy(&fp_model, &sx, &sy);
    let fp_human = accuracy(&fp_model, &hx, &hy);

    // Time-series input.
    let (train_x, train_y) = ts_features(&ds, &fold.train);
    let ts_model = GbdtClassifier::fit(&train_x, &train_y, 5, &cfg);
    let (sx, sy) = ts_features(&ds, &script);
    let (hx, hy) = ts_features(&ds, &human);
    let ts_script = accuracy(&ts_model, &sx, &sy);
    let ts_human = accuracy(&ts_model, &hx, &hy);

    // Table 3 shape.
    assert!(fp_script > 0.8, "flowpic script {fp_script}");
    assert!(ts_script > 0.7, "time-series script {ts_script}");
    assert!(
        fp_script - fp_human > 0.08,
        "flowpic human gap: script {fp_script} human {fp_human}"
    );
    assert!(
        ts_script - ts_human > 0.05,
        "time-series human gap: script {ts_script} human {ts_human}"
    );
    // "Very short trees" (paper: 1.3 / 1.7).
    assert!(
        fp_model.average_depth() < 4.0,
        "{}",
        fp_model.average_depth()
    );
    assert!(
        ts_model.average_depth() < 4.0,
        "{}",
        ts_model.average_depth()
    );
}

#[test]
fn gbdt_probabilities_are_calibratedish_on_flowpics() {
    // Sanity: predicted probabilities are valid distributions and the
    // argmax matches `predict`.
    let ds = dataset();
    let fold = &per_class_folds(&ds, Partition::Pretraining, 20, 1, 9)[0];
    let (x, y) = flowpic_features(&ds, &fold.train);
    let model = GbdtClassifier::fit(
        &x,
        &y,
        5,
        &GbdtConfig {
            n_rounds: 10,
            ..Default::default()
        },
    );
    for xi in x.iter().take(20) {
        let p = model.predict_proba(xi);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        let argmax = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(argmax, model.predict(xi));
    }
}
