//! End-to-end quantized serving: the int8 eval lane must track the
//! exact lane closely on a full replay, and `QuantMode::Off` must be
//! byte-for-byte the default path at any batch/worker/shard count.

use std::sync::Arc;

use flowpic::{FlowpicConfig, Normalization};
use serve::engine::{CnnClassifier, EngineConfig, QuantMode};
use serve::registry::{ModelRegistry, ServedModel};
use serve::replay::{replay, trace_from_dataset};
use serve::tracker::TrackerConfig;
use tcbench::arch::supervised_net;
use tcbench::telemetry::Noop;
use trafficgen::types::{Dataset, Direction, Flow, Partition, Pkt};

const RES: usize = 16;

/// SplitMix64 — deterministic traffic without the rand crate.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn dataset(n_flows: usize, seed: u64) -> Dataset {
    let flows = (0..n_flows)
        .map(|i| {
            let h = splitmix64(seed.wrapping_add(i as u64));
            let n_pkts = 20 + (h % 30) as usize;
            let span_s = if h & 1 == 0 { 18.0 } else { 8.0 };
            let pkts = (0..n_pkts)
                .map(|j| {
                    let hj = splitmix64(h.wrapping_add(j as u64 * 7919));
                    let ts = j as f64 * span_s / n_pkts as f64;
                    let size = 60 + (hj % 1400) as u16;
                    let dir = if hj & 1 == 0 {
                        Direction::Upstream
                    } else {
                        Direction::Downstream
                    };
                    Pkt::data(ts, size, dir)
                })
                .collect();
            Flow {
                id: i as u64,
                class: (i % 3) as u16,
                partition: Partition::Unpartitioned,
                background: false,
                pkts,
            }
        })
        .collect();
    Dataset {
        name: "quant-integration".into(),
        class_names: vec!["web".into(), "video".into(), "voip".into()],
        flows,
    }
}

fn model(seed: u64) -> ServedModel {
    let net = supervised_net(RES, 3, true, seed);
    ServedModel {
        arch: "supervised".into(),
        resolution: RES,
        n_classes: 3,
        dropout: true,
        class_names: vec!["web".into(), "video".into(), "voip".into()],
        weights: net.export_weights(),
    }
}

fn tracker_cfg() -> TrackerConfig {
    TrackerConfig {
        flowpic: FlowpicConfig::with_resolution(RES),
        norm: Normalization::LogMax,
        idle_timeout_s: 60.0,
        max_flows: 10_000,
        done_horizon_s: 120.0,
    }
}

/// Replays the trace through a classifier in the given quant mode and
/// returns `(flow_id, label, confidence_bits)` sorted by flow.
fn run_replay(
    trace: &[serve::replay::PacketRecord],
    quant: QuantMode,
    max_batch: usize,
    workers: usize,
) -> Vec<(u64, Option<usize>, u32)> {
    let cnn = CnnClassifier::from_served_quant(&model(5), workers, quant).unwrap();
    let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
    let report = replay(
        trace,
        &registry,
        tracker_cfg(),
        EngineConfig {
            max_batch,
            max_wait_s: 0.2,
            ..EngineConfig::default()
        },
        Vec::new(),
        &mut Noop,
    )
    .unwrap();
    let mut v: Vec<_> = report
        .predictions
        .iter()
        .map(|p| (p.flow_id, p.label(), p.confidence.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn int8_replay_agrees_with_the_exact_lane() {
    let ds = dataset(40, 21);
    let trace = trace_from_dataset(&ds, 0.4, 1.0);
    let exact = run_replay(&trace, QuantMode::Off, 8, 1);
    let quant = run_replay(&trace, QuantMode::Int8, 8, 1);
    assert_eq!(exact.len(), ds.flows.len());
    assert_eq!(quant.len(), exact.len());

    // ≥ 99% of flows keep their label, and every confidence stays
    // within a small epsilon of the exact lane's.
    let mut agree = 0usize;
    for (e, q) in exact.iter().zip(&quant) {
        assert_eq!(e.0, q.0, "same flows must be classified");
        if e.1 == q.1 {
            agree += 1;
        }
        let ce = f32::from_bits(e.2);
        let cq = f32::from_bits(q.2);
        assert!(
            (ce - cq).abs() <= 0.05,
            "flow {}: confidence {ce} vs {cq}",
            e.0
        );
    }
    assert!(
        agree * 100 >= exact.len() * 99,
        "only {agree}/{} labels agree",
        exact.len()
    );

    // The int8 lane is still batch/worker invariant: per-sample
    // activation scales mean batching stays pure scheduling.
    assert_eq!(quant, run_replay(&trace, QuantMode::Int8, 1, 1));
    assert_eq!(quant, run_replay(&trace, QuantMode::Int8, 64, 3));
}

#[test]
fn quant_off_replay_is_bit_identical_to_the_default_path() {
    let ds = dataset(24, 22);
    let trace = trace_from_dataset(&ds, 0.4, 1.0);
    // The default constructor is the pre-quant path.
    let default_path = {
        let cnn = CnnClassifier::from_served(&model(5), 1).unwrap();
        let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
        let report = replay(
            &trace,
            &registry,
            tracker_cfg(),
            EngineConfig {
                max_batch: 8,
                max_wait_s: 0.2,
                ..EngineConfig::default()
            },
            Vec::new(),
            &mut Noop,
        )
        .unwrap();
        let mut v: Vec<_> = report
            .predictions
            .iter()
            .map(|p| (p.flow_id, p.label(), p.confidence.to_bits()))
            .collect();
        v.sort_unstable();
        v
    };
    // Off must be byte-identical to it at any batch/worker count —
    // confidences compared as exact f32 bits.
    assert_eq!(default_path, run_replay(&trace, QuantMode::Off, 8, 1));
    assert_eq!(default_path, run_replay(&trace, QuantMode::Off, 1, 1));
    assert_eq!(default_path, run_replay(&trace, QuantMode::Off, 64, 3));
}
