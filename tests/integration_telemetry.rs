//! End-to-end telemetry integration: the event stream a trainer emits
//! must agree with the `TrainSummary` it returns, and attaching any
//! observer must leave training itself bit-identical — weights, summary
//! and checkpoint files — at any `batch_workers`. Telemetry is strictly
//! observability-only.

use tcbench::data::FlowpicDataset;
use tcbench::supervised::{CheckpointSpec, SupervisedTrainer, TrainConfig};
use tcbench::telemetry::{JsonlSink, Recorder, TrainEvent};
use trafficgen::types::Partition;
use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

fn split() -> (FlowpicDataset, FlowpicDataset) {
    let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(17);
    let fpcfg = flowpic::FlowpicConfig::mini();
    let idx = ds.partition_indices(Partition::Pretraining);
    let data = FlowpicDataset::from_flows(&ds, &idx, &fpcfg, flowpic::Normalization::LogMax);
    data.split_validation(0.25, 8)
}

fn config(max_epochs: usize, batch_workers: usize) -> TrainConfig {
    TrainConfig {
        max_epochs,
        batch_workers,
        ..TrainConfig::supervised(23)
    }
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tcbench_integration_telemetry_{}_{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The event stream is an exact mirror of the returned summary: one
/// `EpochEnd` per epoch run, the last one carrying bit-for-bit the
/// summary's final training loss, and a closing `RunEnd` repeating the
/// summary, with measured throughput present throughout.
#[test]
fn epoch_end_stream_agrees_with_train_summary() {
    let (train, val) = split();
    let mut net = tcbench::arch::supervised_net(32, 5, false, 23);
    let mut rec = Recorder::new();
    let summary =
        SupervisedTrainer::new(config(6, 1)).train_observed(&mut net, &train, Some(&val), &mut rec);

    assert!(matches!(
        rec.events.first(),
        Some(TrainEvent::RunStart {
            trainer: "supervised",
            start_epoch: 0,
            ..
        })
    ));

    let epoch_ends: Vec<(usize, f64, Option<f64>, usize, f64)> = rec
        .events
        .iter()
        .filter_map(|e| match e {
            TrainEvent::EpochEnd {
                epoch,
                train_loss,
                val_loss,
                samples,
                samples_per_sec,
                ..
            } => Some((*epoch, *train_loss, *val_loss, *samples, *samples_per_sec)),
            _ => None,
        })
        .collect();
    assert_eq!(epoch_ends.len(), summary.epochs, "one EpochEnd per epoch");
    for (i, (epoch, _, val_loss, samples, sps)) in epoch_ends.iter().enumerate() {
        assert_eq!(*epoch, i + 1, "epochs are 1-based and consecutive");
        assert!(val_loss.is_some(), "a validation set was provided");
        assert!(*samples > 0, "the train pass forwarded samples");
        assert!(*sps > 0.0, "throughput is measured and nonzero");
    }
    let last = epoch_ends.last().unwrap();
    assert_eq!(
        last.1.to_bits(),
        summary.final_train_loss.to_bits(),
        "last EpochEnd train_loss is exactly the summary's final loss"
    );

    match rec.events.last() {
        Some(TrainEvent::RunEnd {
            epochs,
            final_train_loss,
            best_epoch,
            wall_ms,
        }) => {
            assert_eq!(*epochs, summary.epochs);
            assert_eq!(
                final_train_loss.to_bits(),
                summary.final_train_loss.to_bits()
            );
            assert_eq!(*best_epoch, summary.best_epoch);
            assert!(*wall_ms > 0.0);
        }
        other => panic!("stream must close with RunEnd, got {other:?}"),
    }
}

/// The acceptance gate of the telemetry layer: a run with a live JSONL
/// sink attached produces bit-identical weights and summary to the same
/// run without any observer — at one worker and at several.
#[test]
fn observed_run_is_bit_identical_to_plain_run_at_any_worker_count() {
    let (train, val) = split();
    let dir = tmp_dir("bitident");
    for workers in [1usize, 3] {
        let mut plain_net = tcbench::arch::supervised_net(32, 5, false, 23);
        let plain =
            SupervisedTrainer::new(config(5, workers)).train(&mut plain_net, &train, Some(&val));

        let mut sink = JsonlSink::create(dir.join(format!("w{workers}.jsonl"))).unwrap();
        let mut observed_net = tcbench::arch::supervised_net(32, 5, false, 23);
        let observed = SupervisedTrainer::new(config(5, workers)).train_observed(
            &mut observed_net,
            &train,
            Some(&val),
            &mut sink,
        );

        assert_eq!(plain, observed, "summaries must match at {workers} workers");
        assert_eq!(
            plain_net.export_weights(),
            observed_net.export_weights(),
            "weights must be bit-identical at {workers} workers"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A resumed run announces where it picks up (`start_epoch`) and emits
/// epoch events only for the epochs it actually recomputes — reused
/// epochs stay silent.
#[test]
fn resumed_run_emits_events_only_for_recomputed_epochs() {
    let (train, val) = split();
    let dir = tmp_dir("resume");
    let path = dir.join("train.ckpt");

    let mut net = tcbench::arch::supervised_net(32, 5, false, 23);
    let mut first_rec = Recorder::new();
    SupervisedTrainer::new(config(3, 1))
        .train_resumable_observed(
            &mut net,
            &train,
            Some(&val),
            &CheckpointSpec::new(&path),
            &mut first_rec,
        )
        .unwrap();
    assert_eq!(first_rec.epoch_ends().len(), 3);

    let mut net2 = tcbench::arch::supervised_net(32, 5, false, 23);
    let mut rec = Recorder::new();
    let summary = SupervisedTrainer::new(config(6, 1))
        .train_resumable_observed(
            &mut net2,
            &train,
            Some(&val),
            &CheckpointSpec::new(&path).resuming(),
            &mut rec,
        )
        .unwrap();

    match rec.events.first() {
        Some(TrainEvent::RunStart { start_epoch, .. }) => {
            assert_eq!(
                *start_epoch, 3,
                "resume picks up after the checkpointed epoch"
            )
        }
        other => panic!("expected RunStart, got {other:?}"),
    }
    let epochs: Vec<usize> = rec
        .events
        .iter()
        .filter_map(|e| match e {
            TrainEvent::EpochEnd { epoch, .. } => Some(*epoch),
            _ => None,
        })
        .collect();
    assert_eq!(
        epochs,
        (4..=summary.epochs).collect::<Vec<_>>(),
        "only recomputed epochs emit events"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Timing never enters checkpoints: the checkpoint file a run writes is
/// byte-identical whether or not an observer watched the run.
#[test]
fn checkpoint_files_identical_with_and_without_observer() {
    let (train, val) = split();
    let dir = tmp_dir("ckptbytes");

    let plain_path = dir.join("plain.ckpt");
    let mut net_a = tcbench::arch::supervised_net(32, 5, false, 23);
    SupervisedTrainer::new(config(4, 1))
        .train_resumable(
            &mut net_a,
            &train,
            Some(&val),
            &CheckpointSpec::new(&plain_path),
        )
        .unwrap();

    let observed_path = dir.join("observed.ckpt");
    let mut rec = Recorder::new();
    let mut net_b = tcbench::arch::supervised_net(32, 5, false, 23);
    SupervisedTrainer::new(config(4, 1))
        .train_resumable_observed(
            &mut net_b,
            &train,
            Some(&val),
            &CheckpointSpec::new(&observed_path),
            &mut rec,
        )
        .unwrap();

    assert!(!rec.events.is_empty(), "the observer did watch the run");
    let plain = std::fs::read(&plain_path).unwrap();
    let observed = std::fs::read(&observed_path).unwrap();
    assert_eq!(
        plain, observed,
        "checkpoint bytes must not depend on telemetry"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
