//! Integration of the contrastive pipeline: SimCLR pre-training must
//! produce a representation that beats a random-initialized extractor
//! under identical few-shot fine-tuning — the paper's reason for using
//! contrastive learning at all.

use augment::ViewPair;
use flowpic::{FlowpicConfig, Normalization};
use tcbench::arch::{finetune_net, simclr_net, EXTRACTOR_DEPTH};
use tcbench::data::FlowpicDataset;
use tcbench::simclr::{few_shot_subset, fine_tune, pretrain, SimClrConfig};
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use trafficgen::types::Partition;
use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

fn dataset() -> trafficgen::types::Dataset {
    let mut cfg = UcDavisConfig::tiny();
    cfg.pretraining_per_class = [24; 5];
    cfg.script_per_class = [10; 5];
    cfg.max_pkts = 300;
    UcDavisSim::new(cfg).generate(77)
}

#[test]
fn pretraining_beats_random_initialization() {
    let ds = dataset();
    let fpcfg = FlowpicConfig::mini();
    let norm = Normalization::LogMax;
    let pool = ds.partition_indices(Partition::Pretraining);
    let shots = few_shot_subset(&ds, &pool, 5, 3);
    let labeled = FlowpicDataset::from_flows(&ds, &shots, &fpcfg, norm);
    let script_idx = ds.partition_indices(Partition::Script);
    let script = FlowpicDataset::from_flows(&ds, &script_idx, &fpcfg, norm);
    let trainer = SupervisedTrainer::new(TrainConfig::supervised(0));

    // Contrastively pre-trained extractor.
    let config = SimClrConfig {
        max_epochs: 5,
        batch_size: 16,
        ..SimClrConfig::paper(11)
    };
    let (pre, _) = pretrain(&ds, &pool, ViewPair::paper(), &fpcfg, norm, &config);
    let tuned = fine_tune(&pre, &labeled, 5, 1);
    let pretrained_acc = trainer.evaluate(&tuned, &script).accuracy;

    // Random extractor, same fine-tuning protocol.
    let random = simclr_net(32, 30, false, 999);
    let tuned_random = fine_tune(&random, &labeled, 5, 1);
    let random_acc = trainer.evaluate(&tuned_random, &script).accuracy;

    assert!(
        pretrained_acc > random_acc + 0.05,
        "pre-training must help: pretrained {pretrained_acc} vs random {random_acc}"
    );
    assert!(
        pretrained_acc > 0.4,
        "absolute few-shot accuracy {pretrained_acc}"
    );
}

#[test]
fn finetune_transplant_is_faithful() {
    // The fine-tune network must produce the same latent features as the
    // SimCLR network it was transplanted from.
    let ds = dataset();
    let fpcfg = FlowpicConfig::mini();
    let norm = Normalization::LogMax;
    let pool = ds.partition_indices(Partition::Pretraining);
    let config = SimClrConfig {
        max_epochs: 2,
        batch_size: 16,
        ..SimClrConfig::paper(13)
    };
    let (pre, _) = pretrain(&ds, &pool, ViewPair::paper(), &fpcfg, norm, &config);

    let mut fine = finetune_net(32, 5, 321);
    fine.copy_prefix_weights_from(&pre, EXTRACTOR_DEPTH);
    // Exported prefix weights must agree tensor-by-tensor.
    let wa = pre.export_weights();
    let wb = fine.export_weights();
    // First 6 tensors = conv1 w/b, conv2 w/b, fc1 w/b (the extractor).
    for i in 0..6 {
        assert_eq!(wa.tensors[i], wb.tensors[i], "extractor tensor {i} differs");
    }
}

#[test]
fn simclr_is_deterministic_per_seed() {
    let ds = dataset();
    let fpcfg = FlowpicConfig::mini();
    let pool = ds.partition_indices(Partition::Pretraining);
    let run = |seed| {
        let config = SimClrConfig {
            max_epochs: 2,
            batch_size: 16,
            ..SimClrConfig::paper(seed)
        };
        let (net, summary) = pretrain(
            &ds,
            &pool,
            ViewPair::paper(),
            &fpcfg,
            Normalization::LogMax,
            &config,
        );
        (net.export_weights().tensors, summary.final_loss)
    };
    let (w1, l1) = run(42);
    let (w2, l2) = run(42);
    assert_eq!(w1, w2);
    assert_eq!(l1, l2);
    let (w3, _) = run(43);
    assert_ne!(w1, w3);
}
