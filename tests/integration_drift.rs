//! End-to-end drift loop: a daemon serving a `shift` trace detects the
//! mid-stream distribution change, fine-tunes in the background, and
//! hot-swaps the registry — with the whole cycle reconstructable, in
//! order, from the telemetry event stream alone.
//!
//! The reference distributions come from a calibration run: the same
//! daemon replays the *baseline* trace (the shift generator with the
//! drift disabled) and its own predictions bucket the per-flow window
//! stats by predicted class — exactly the per-predicted-class baseline
//! the monitor compares live windows against. The shifted trace shares
//! its pre-shift prefix with the baseline bit-for-bit, so the prefix is
//! quiet and only the drifted suffix raises the verdict.

use std::time::Instant;

use flowpic::{FlowpicConfig, Normalization};
use serve::daemon::{CtlRequest, CtlResponse, Daemon, DaemonConfig};
use serve::drift::{DriftConfig, RetrainConfig};
use serve::engine::{EngineConfig, QuantMode};
use serve::registry::ServedModel;
use serve::replay::{trace_from_dataset, PacketRecord};
use serve::tracker::TrackerConfig;
use tcbench::arch::supervised_net;
use tcbench::refdist::{flow_window_stats, ReferenceDistributions};
use tcbench::telemetry::{InferEvent, InferRecorder};
use trafficgen::shift::{ShiftConfig, ShiftSim};
use trafficgen::types::Dataset;

const RES: usize = 16;
const SEED: u64 = 11;
/// Flow start spacing in the replayed stream, seconds.
const FLOW_GAP_S: f64 = 0.3;

fn model(seed: u64) -> ServedModel {
    let net = supervised_net(RES, 3, true, seed);
    ServedModel {
        arch: "supervised".into(),
        resolution: RES,
        n_classes: 3,
        dropout: true,
        class_names: vec!["class0".into(), "class1".into(), "class2".into()],
        weights: net.export_weights(),
    }
}

fn daemon(workers: usize, shards: usize) -> Daemon {
    Daemon::new(
        model(SEED),
        DaemonConfig {
            tracker: TrackerConfig {
                flowpic: FlowpicConfig::with_resolution(RES),
                norm: Normalization::LogMax,
                idle_timeout_s: 60.0,
                max_flows: 10_000,
                done_horizon_s: 120.0,
            },
            engine: EngineConfig {
                max_batch: 4,
                max_wait_s: 0.5,
                ..EngineConfig::default()
            },
            workers,
            shards,
            quant: QuantMode::Off,
        },
    )
    .unwrap()
}

fn drift_cfg() -> DriftConfig {
    // Empirically the calibrated baseline scores ~0.2-0.3 per quiet
    // window and ~1.0 once the shifted suffix arrives, so the default
    // 0.6 threshold splits them with wide margins on both sides.
    DriftConfig {
        threshold: 0.6,
        check_interval_s: 5.0,
        sustain: 2,
        min_samples: 4,
        reservoir_cap: 64,
        // One verdict per run: the cycle assertion wants exactly one
        // detect → retrain → swap chain.
        cooldown_checks: 1_000,
        seed: 7,
    }
}

fn feed(daemon: &mut Daemon, trace: &[PacketRecord], obs: &mut InferRecorder) {
    for rec in trace {
        let resp = daemon.handle(
            &CtlRequest::Packet {
                flow_id: rec.flow_id,
                ts: rec.ts,
                pkt: rec.pkt,
            },
            obs,
        );
        assert_eq!(resp, CtlResponse::Ok);
    }
}

/// Replays `trace` through a drift-less daemon and buckets each flow's
/// window stats by the daemon's *predicted* class — the baseline the
/// monitor will hold live windows against. `shards` must match the
/// daemon under test so predictions line up bit-for-bit.
fn calibrated_refs(ds: &Dataset, trace: &[PacketRecord], shards: usize) -> ReferenceDistributions {
    let mut d = daemon(1, shards);
    let mut obs = InferRecorder::new();
    feed(&mut d, trace, &mut obs);
    assert_eq!(d.handle(&CtlRequest::Flush, &mut obs), CtlResponse::Ok);
    let preds = match d.handle(&CtlRequest::Predictions, &mut obs) {
        CtlResponse::Predictions { predictions } => predictions,
        other => panic!("expected predictions, got {other:?}"),
    };
    assert_eq!(preds.len(), ds.flows.len(), "every flow classified");
    let window = FlowpicConfig::with_resolution(RES).window_s;
    let stats = preds.iter().filter_map(|p| {
        let label = p.label?;
        let f = &ds.flows[p.flow_id as usize];
        flow_window_stats(f.pkts.iter().map(|k| (k.ts, k.size)), window)
            .map(|(size, iat)| (label, size, iat))
    });
    ReferenceDistributions::from_flow_stats(
        ds.class_names.clone(),
        ds.class_names.len(),
        stats,
        256,
        SEED,
    )
}

fn drift_status(daemon: &mut Daemon, obs: &mut InferRecorder) -> serve::drift::DriftStats {
    match daemon.handle(&CtlRequest::DriftStatus, obs) {
        CtlResponse::Drift { drift } => drift,
        other => panic!("expected drift status, got {other:?}"),
    }
}

/// The cycle events in stream order, by telemetry name.
fn cycle(events: &[InferEvent]) -> Vec<&'static str> {
    events
        .iter()
        .filter_map(|e| match e {
            InferEvent::DriftDetected { .. } => Some("drift_detected"),
            InferEvent::RetrainStart { .. } => Some("retrain_start"),
            InferEvent::RetrainEnd { .. } => Some("retrain_end"),
            InferEvent::ModelSwapped {
                reason: "drift", ..
            } => Some("model_swapped"),
            _ => None,
        })
        .collect()
}

#[test]
fn shift_trace_closes_the_loop_and_telemetry_reconstructs_it() {
    let cfg = ShiftConfig::tiny();
    let base = ShiftSim::new(cfg.baseline()).generate(SEED);
    let base_trace = trace_from_dataset(&base, FLOW_GAP_S, 1.0);
    let refs = calibrated_refs(&base, &base_trace, 1);

    let shifted = ShiftSim::new(cfg).generate(SEED);
    let trace = trace_from_dataset(&shifted, FLOW_GAP_S, 1.0);
    let mut d = daemon(1, 1);
    d.enable_drift(
        &refs,
        drift_cfg(),
        RetrainConfig {
            max_epochs: 1,
            min_flows: 8,
            min_accuracy: 0.0,
            val_frac: 0.25,
            ..RetrainConfig::default()
        },
    );
    let fp_before = d.registry().active().fingerprint();
    let mut obs = InferRecorder::new();
    feed(&mut d, &trace, &mut obs);

    let verdict = obs
        .events
        .iter()
        .find_map(|e| match e {
            InferEvent::DriftDetected { at_ts, score, .. } => Some((*at_ts, *score)),
            _ => None,
        })
        .expect("the shifted suffix must raise a drift verdict");
    let shift_start_s = ShiftSim::new(cfg).shift_starts_at() as f64 * FLOW_GAP_S;
    assert!(
        verdict.0 > shift_start_s,
        "verdict at t={} must come after the shift begins at t={shift_start_s}",
        verdict.0
    );
    assert!(verdict.1 > drift_cfg().threshold);

    // The fine-tune runs on a background thread; the swap is absorbed
    // at a request boundary, so poll drift-status until it lands.
    let deadline = Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let drift = drift_status(&mut d, &mut obs);
        if drift.retrain_state == "accepted" {
            assert_eq!(drift.retrains_started, 1);
            assert_eq!(drift.retrains_accepted, 1);
            assert_eq!(drift.verdicts, 1);
            break;
        }
        assert_ne!(drift.retrain_state, "rejected", "retrain must pass");
        assert!(Instant::now() < deadline, "retrain never completed");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_ne!(
        d.registry().active().fingerprint(),
        fp_before,
        "the drift swap must activate the fine-tuned candidate"
    );
    // The telemetry stream alone reconstructs the full cycle, in order.
    assert_eq!(
        cycle(&obs.events),
        vec![
            "drift_detected",
            "retrain_start",
            "retrain_end",
            "model_swapped"
        ]
    );
}

#[test]
fn verdict_packet_index_is_worker_count_invariant() {
    let cfg = ShiftConfig::tiny();
    let base = ShiftSim::new(cfg.baseline()).generate(SEED);
    let base_trace = trace_from_dataset(&base, FLOW_GAP_S, 1.0);
    const SHARDS: usize = 2;
    let refs = calibrated_refs(&base, &base_trace, SHARDS);
    let shifted = ShiftSim::new(cfg).generate(SEED);
    let trace = trace_from_dataset(&shifted, FLOW_GAP_S, 1.0);

    // Retrain disabled (min_flows unreachable): a wall-clock-timed
    // mid-stream swap would change post-swap predictions, and this test
    // is about the *detection* path being deterministic.
    let run = |workers: usize| {
        let mut d = daemon(workers, SHARDS);
        d.enable_drift(
            &refs,
            drift_cfg(),
            RetrainConfig {
                min_flows: usize::MAX,
                ..RetrainConfig::default()
            },
        );
        let mut obs = InferRecorder::new();
        feed(&mut d, &trace, &mut obs);
        let verdicts: Vec<(usize, usize, u64)> = obs
            .events
            .iter()
            .filter_map(|e| match e {
                InferEvent::DriftDetected {
                    packet,
                    class,
                    score,
                    ..
                } => Some((*packet, *class, score.to_bits())),
                _ => None,
            })
            .collect();
        let checks: Vec<(usize, u64)> = obs
            .events
            .iter()
            .filter_map(|e| match e {
                InferEvent::DriftCheck { class, score, .. } => Some((*class, score.to_bits())),
                _ => None,
            })
            .collect();
        (verdicts, checks)
    };
    let (verdicts_1, checks_1) = run(1);
    let (verdicts_4, checks_4) = run(4);
    assert!(
        !verdicts_1.is_empty(),
        "the shifted trace must raise a verdict"
    );
    assert_eq!(
        verdicts_1, verdicts_4,
        "verdict packet index, class, and score must be bit-identical at any worker count"
    );
    assert_eq!(
        checks_1, checks_4,
        "per-check scores must be bit-identical at any worker count"
    );
}

#[test]
fn baseline_trace_never_retrains() {
    let cfg = ShiftConfig::tiny();
    let base = ShiftSim::new(cfg.baseline()).generate(SEED);
    let trace = trace_from_dataset(&base, FLOW_GAP_S, 1.0);
    let refs = calibrated_refs(&base, &trace, 1);

    let mut d = daemon(1, 1);
    d.enable_drift(
        &refs,
        drift_cfg(),
        RetrainConfig {
            max_epochs: 1,
            min_flows: 8,
            min_accuracy: 0.0,
            ..RetrainConfig::default()
        },
    );
    let fp_before = d.registry().active().fingerprint();
    let mut obs = InferRecorder::new();
    feed(&mut d, &trace, &mut obs);
    assert_eq!(d.handle(&CtlRequest::Flush, &mut obs), CtlResponse::Ok);

    let drift = drift_status(&mut d, &mut obs);
    assert!(drift.enabled);
    assert!(drift.checks > 0, "the stream must span check intervals");
    assert_eq!(drift.verdicts, 0, "in-distribution traffic must be quiet");
    assert_eq!(drift.retrains_started, 0);
    assert_eq!(drift.retrain_state, "idle");
    assert!(
        !obs.events.iter().any(|e| matches!(
            e,
            InferEvent::DriftDetected { .. } | InferEvent::RetrainStart { .. }
        )),
        "no drift event may fire on the training distribution"
    );
    assert_eq!(
        d.registry().active().fingerprint(),
        fp_before,
        "no swap without a verdict"
    );
}
