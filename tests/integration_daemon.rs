//! End-to-end daemon determinism: a daemon fed a trace over its Unix
//! socket — including a mid-stream `push-model` hot-swap — produces
//! bit-identical predictions to an in-process `replay` with a
//! `ScheduledSwap` at the same packet index.

use std::path::PathBuf;
use std::sync::Arc;

use flowpic::{FlowpicConfig, Normalization};
use serve::daemon::{stream_trace, CtlClient, CtlRequest, CtlResponse, Daemon, DaemonConfig};
use serve::engine::{CnnClassifier, EngineConfig};
use serve::registry::{ModelRegistry, ServedModel};
use serve::replay::{replay, trace_from_dataset, ScheduledSwap};
use serve::tracker::TrackerConfig;
use tcbench::arch::supervised_net;
use tcbench::telemetry::Noop;
use trafficgen::types::{Dataset, Direction, Flow, Partition, Pkt};

const RES: usize = 16;

/// SplitMix64 — deterministic traffic without the rand crate.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A synthetic dataset: flows of varying length, some crossing the 15 s
/// window, some terminating early.
fn dataset(n_flows: usize, seed: u64) -> Dataset {
    let flows = (0..n_flows)
        .map(|i| {
            let h = splitmix64(seed.wrapping_add(i as u64));
            let n_pkts = 20 + (h % 30) as usize;
            let span_s = if h & 1 == 0 { 18.0 } else { 8.0 };
            let pkts = (0..n_pkts)
                .map(|j| {
                    let hj = splitmix64(h.wrapping_add(j as u64 * 7919));
                    let ts = j as f64 * span_s / n_pkts as f64;
                    let size = 60 + (hj % 1400) as u16;
                    let dir = if hj & 1 == 0 {
                        Direction::Upstream
                    } else {
                        Direction::Downstream
                    };
                    Pkt::data(ts, size, dir)
                })
                .collect();
            Flow {
                id: i as u64,
                class: (i % 3) as u16,
                partition: Partition::Unpartitioned,
                background: false,
                pkts,
            }
        })
        .collect();
    Dataset {
        name: "daemon-integration".into(),
        class_names: vec!["web".into(), "video".into(), "voip".into()],
        flows,
    }
}

fn model(seed: u64) -> ServedModel {
    let net = supervised_net(RES, 3, true, seed);
    ServedModel {
        arch: "supervised".into(),
        resolution: RES,
        n_classes: 3,
        dropout: true,
        class_names: vec!["web".into(), "video".into(), "voip".into()],
        weights: net.export_weights(),
    }
}

fn tracker_cfg() -> TrackerConfig {
    TrackerConfig {
        flowpic: FlowpicConfig::with_resolution(RES),
        norm: Normalization::LogMax,
        idle_timeout_s: 60.0,
        max_flows: 10_000,
        done_horizon_s: 120.0,
    }
}

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        max_batch: 4,
        max_wait_s: 0.5,
        ..EngineConfig::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tcb_daemon_integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn daemon_stream_with_hot_swap_matches_replay_bit_for_bit() {
    let ds = dataset(20, 42);
    let trace = trace_from_dataset(&ds, 0.3, 1.0);
    let swap_at = trace.len() / 2;
    let model_a = model(1);
    let model_b = model(2);
    assert_ne!(model_a.weights.fingerprint(), model_b.weights.fingerprint());

    // Ground truth: in-process replay with a scheduled swap.
    let baseline = {
        let cnn_a = CnnClassifier::from_served(&model_a, 1).unwrap();
        let cnn_b = CnnClassifier::from_served(&model_b, 1).unwrap();
        let registry = Arc::new(ModelRegistry::new(Arc::new(cnn_a)));
        let report = replay(
            &trace,
            &registry,
            tracker_cfg(),
            engine_cfg(),
            vec![ScheduledSwap {
                at_packet: swap_at,
                model: Arc::new(cnn_b),
            }],
            &mut Noop,
        )
        .unwrap();
        assert_eq!(report.swaps, 1);
        let mut v: Vec<(u64, Option<usize>, u32)> = report
            .predictions
            .iter()
            .map(|p| (p.flow_id, p.label(), p.confidence.to_bits()))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(baseline.len(), ds.flows.len(), "every flow classified");

    // The same trace through the daemon's socket control plane, with
    // the swap issued as a `push-model` between packets swap_at-1 and
    // swap_at.
    let model_b_path = tmp("swap-model.ckpt");
    model_b.save(&model_b_path).unwrap();
    let socket = tmp("daemon.sock");
    let _ = std::fs::remove_file(&socket);

    let daemon_model = model_a.clone();
    let socket_for_daemon = socket.clone();
    let handle = std::thread::spawn(move || {
        let mut daemon = Daemon::new(
            daemon_model,
            DaemonConfig {
                tracker: tracker_cfg(),
                engine: engine_cfg(),
                workers: 1,
                shards: 1,
                quant: serve::engine::QuantMode::Off,
            },
        )
        .unwrap();
        daemon.run_on_path(&socket_for_daemon, &mut Noop).unwrap();
        daemon.stats()
    });
    for _ in 0..500 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let mut client = CtlClient::connect(&socket).expect("daemon socket must come up");

    assert_eq!(
        stream_trace(&mut client, &trace[..swap_at]).unwrap(),
        swap_at
    );
    match client
        .request(&CtlRequest::PushModel {
            path: model_b_path.display().to_string(),
        })
        .unwrap()
    {
        CtlResponse::Swapped { old, new } => {
            assert_ne!(old, new, "swap must change the fingerprint");
        }
        other => panic!("push-model must reply swapped, got {other:?}"),
    }
    assert_eq!(
        stream_trace(&mut client, &trace[swap_at..]).unwrap(),
        trace.len() - swap_at
    );
    assert!(matches!(
        client.request(&CtlRequest::Flush).unwrap(),
        CtlResponse::Ok
    ));
    let daemon_predictions = match client.request(&CtlRequest::Predictions).unwrap() {
        CtlResponse::Predictions { predictions } => {
            let mut v: Vec<(u64, Option<usize>, u32)> = predictions
                .iter()
                .map(|p| (p.flow_id, p.label, p.confidence_bits))
                .collect();
            v.sort_unstable();
            v
        }
        other => panic!("predictions request must reply predictions, got {other:?}"),
    };
    assert!(matches!(
        client.request(&CtlRequest::Shutdown).unwrap(),
        CtlResponse::Ok
    ));
    let stats = handle.join().unwrap();

    assert_eq!(
        daemon_predictions, baseline,
        "daemon predictions must be bit-identical to the in-process replay"
    );
    assert_eq!(stats.packets, trace.len());
    assert_eq!(stats.flows_classified, ds.flows.len());
}

#[test]
fn daemon_set_config_mid_stream_keeps_serving() {
    let ds = dataset(9, 7);
    let trace = trace_from_dataset(&ds, 0.3, 1.0);
    let half = trace.len() / 2;
    let socket = tmp("daemon-cfg.sock");
    let _ = std::fs::remove_file(&socket);

    let daemon_model = model(3);
    let socket_for_daemon = socket.clone();
    let handle = std::thread::spawn(move || {
        let mut daemon = Daemon::new(
            daemon_model,
            DaemonConfig {
                tracker: tracker_cfg(),
                engine: engine_cfg(),
                workers: 1,
                shards: 1,
                quant: serve::engine::QuantMode::Off,
            },
        )
        .unwrap();
        daemon.run_on_path(&socket_for_daemon, &mut Noop).unwrap();
        daemon.stats()
    });
    for _ in 0..500 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let mut client = CtlClient::connect(&socket).unwrap();
    assert_eq!(stream_trace(&mut client, &trace[..half]).unwrap(), half);
    // Retune the live pipeline between packets.
    assert!(matches!(
        client
            .request(&CtlRequest::SetConfig {
                sparsity_threshold: None,
                max_batch: Some(2),
                max_wait_ms: Some(100.0),
                idle_timeout_s: Some(45.0),
                max_flows: None,
                pending_cap: None,
                quant: None,
                drift_threshold: None,
                drift_interval_s: None,
                reject_below: None,
            })
            .unwrap(),
        CtlResponse::Ok
    ));
    assert_eq!(
        stream_trace(&mut client, &trace[half..]).unwrap(),
        trace.len() - half
    );
    assert!(matches!(
        client.request(&CtlRequest::Flush).unwrap(),
        CtlResponse::Ok
    ));
    let stats = match client.request(&CtlRequest::Stats).unwrap() {
        CtlResponse::Stats { stats } => stats,
        other => panic!("stats request must reply stats, got {other:?}"),
    };
    assert_eq!(stats.max_batch, 2);
    assert_eq!(stats.idle_timeout_s, 45.0);
    assert_eq!(stats.flows_classified, ds.flows.len());
    assert!(matches!(
        client.request(&CtlRequest::Shutdown).unwrap(),
        CtlResponse::Ok
    ));
    handle.join().unwrap();
}
