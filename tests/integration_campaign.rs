//! Integration of the campaign machinery: parallel execution + tracking +
//! statistical post-processing — the skeleton every bench binary follows.

use mlstats::nemenyi::CriticalDistance;
use mlstats::tukey::TukeyHsd;
use mlstats::MeanCi;
use tcbench::campaign::{grid3, run_parallel};
use tcbench::report::Table;
use tcbench::track::Tracker;

#[test]
fn parallel_campaign_with_tracking_and_analysis() {
    // A synthetic campaign: 3 "augmentations" x 4 "splits" x 2 "seeds",
    // with a known quality ordering aug0 > aug1 > aug2.
    let grid = grid3(3, 4, 2);
    let tracker = Tracker::new();
    let tracker_ref = &tracker;
    let results: Vec<(usize, f64)> = run_parallel(grid.len(), 4, |task| {
        let (aug, split, seed) = grid[task];
        // Deterministic pseudo-accuracy with aug-dependent mean.
        let noise = ((split * 7 + seed * 13 + aug * 3) % 10) as f64 / 100.0;
        let acc = 0.95 - 0.05 * aug as f64 - noise;
        let run = tracker_ref.start_run("integration");
        run.log_param("aug", aug);
        run.log_param("split", split);
        run.log_metric("accuracy", 0, acc);
        run.finish();
        (aug, acc)
    });
    assert_eq!(results.len(), 24);
    assert_eq!(tracker.len(), 24);

    // Tracker aggregation matches the raw results.
    for aug in 0..3usize {
        let tracked = tracker.metric_values("accuracy", &[("aug", &aug.to_string())]);
        let direct: Vec<f64> = results
            .iter()
            .filter(|(a, _)| *a == aug)
            .map(|&(_, acc)| acc)
            .collect();
        assert_eq!(tracked.len(), direct.len());
        let ci_tracked = MeanCi::ci95(&tracked);
        let ci_direct = MeanCi::ci95(&direct);
        assert!((ci_tracked.mean - ci_direct.mean).abs() < 1e-12);
    }

    // Statistical post-processing: blocks = (split, seed), treatments = augs.
    let mut blocks = Vec::new();
    for split in 0..4 {
        for seed in 0..2 {
            let block: Vec<f64> = (0..3)
                .map(|aug| results[grid.iter().position(|&g| g == (aug, split, seed)).unwrap()].1)
                .collect();
            blocks.push(block);
        }
    }
    let cd = CriticalDistance::analyze(&["aug0", "aug1", "aug2"], &blocks, 0.05);
    // aug0 must rank best.
    let ranked = cd.ranked();
    assert_eq!(ranked[0].0, "aug0");

    // Tukey across the three augs: the extremes must separate.
    let groups: Vec<Vec<f64>> = (0..3)
        .map(|aug| {
            results
                .iter()
                .filter(|(a, _)| *a == aug)
                .map(|&(_, acc)| acc * 100.0)
                .collect()
        })
        .collect();
    let tukey = TukeyHsd::analyze(&["aug0", "aug1", "aug2"], &groups, 0.05);
    let extreme = tukey.pairs.iter().find(|p| p.a == 0 && p.b == 2).unwrap();
    assert!(
        extreme.is_different,
        "aug0 vs aug2 should separate: p={}",
        extreme.p_value
    );

    // Rendering round-trip.
    let mut table = Table::new("campaign", &["aug", "accuracy"]);
    for aug in 0..3usize {
        let ci = MeanCi::ci95(&tracker.metric_values("accuracy", &[("aug", &aug.to_string())]));
        table.push_row(vec![format!("aug{aug}"), ci.to_string()]);
    }
    let rendered = table.render();
    assert!(rendered.contains("aug0"));

    // JSON export parses and holds every run.
    let json = tracker.export_json();
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed.as_array().unwrap().len(), 24);
}

#[test]
fn run_parallel_matches_serial_execution() {
    let serial: Vec<u64> = (0..50).map(|i| (i as u64).pow(2) % 97).collect();
    let parallel = run_parallel(50, 8, |i| (i as u64).pow(2) % 97);
    assert_eq!(serial, parallel);
}
