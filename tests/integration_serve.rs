//! End-to-end serving: trace replay, batch-size invariance, hot-swap,
//! and bounded-memory eviction.

use std::sync::Arc;

use flowpic::{FlowpicConfig, Normalization};
use serve::engine::{CnnClassifier, EngineConfig};
use serve::registry::{ModelRegistry, ServedModel};
use serve::replay::{replay, trace_from_dataset, ScheduledSwap};
use serve::tracker::TrackerConfig;
use tcbench::arch::supervised_net;
use tcbench::telemetry::{InferEvent, InferRecorder};
use trafficgen::types::{Dataset, Direction, Flow, Partition, Pkt};

const RES: usize = 16;

/// SplitMix64 — deterministic traffic without the rand crate.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A synthetic dataset: flows of varying length, some crossing the 15 s
/// window, some terminating early.
fn dataset(n_flows: usize, seed: u64) -> Dataset {
    let flows = (0..n_flows)
        .map(|i| {
            let h = splitmix64(seed.wrapping_add(i as u64));
            let n_pkts = 20 + (h % 30) as usize;
            // Roughly half the flows outlive the window.
            let span_s = if h & 1 == 0 { 18.0 } else { 8.0 };
            let pkts = (0..n_pkts)
                .map(|j| {
                    let hj = splitmix64(h.wrapping_add(j as u64 * 7919));
                    let ts = j as f64 * span_s / n_pkts as f64;
                    let size = 60 + (hj % 1400) as u16;
                    let dir = if hj & 1 == 0 {
                        Direction::Upstream
                    } else {
                        Direction::Downstream
                    };
                    Pkt::data(ts, size, dir)
                })
                .collect();
            Flow {
                id: i as u64,
                class: (i % 3) as u16,
                partition: Partition::Unpartitioned,
                background: false,
                pkts,
            }
        })
        .collect();
    Dataset {
        name: "serve-integration".into(),
        class_names: vec!["web".into(), "video".into(), "voip".into()],
        flows,
    }
}

fn model(seed: u64) -> ServedModel {
    let net = supervised_net(RES, 3, true, seed);
    ServedModel {
        arch: "supervised".into(),
        resolution: RES,
        n_classes: 3,
        dropout: true,
        class_names: vec!["web".into(), "video".into(), "voip".into()],
        weights: net.export_weights(),
    }
}

fn tracker_cfg() -> TrackerConfig {
    TrackerConfig {
        flowpic: FlowpicConfig::with_resolution(RES),
        norm: Normalization::LogMax,
        idle_timeout_s: 60.0,
        max_flows: 10_000,
        done_horizon_s: 120.0,
    }
}

#[test]
fn predictions_are_batch_size_invariant() {
    let ds = dataset(24, 11);
    let trace = trace_from_dataset(&ds, 0.4, 1.0);
    let mut runs = Vec::new();
    for (max_batch, workers) in [(1usize, 1usize), (7, 2), (64, 4)] {
        let cnn = CnnClassifier::from_served(&model(5), workers).unwrap();
        let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
        let mut rec = InferRecorder::new();
        let report = replay(
            &trace,
            &registry,
            tracker_cfg(),
            EngineConfig {
                max_batch,
                max_wait_s: 0.2,
                ..EngineConfig::default()
            },
            Vec::new(),
            &mut rec,
        )
        .unwrap();
        assert_eq!(
            report.predictions.len(),
            ds.flows.len(),
            "every flow must be classified at max_batch {max_batch}"
        );
        runs.push(report);
    }
    // Same flows, same labels, bit-identical confidences — batching and
    // worker count are pure scheduling.
    let baseline: Vec<(u64, Option<usize>, u32)> = {
        let mut v: Vec<_> = runs[0]
            .predictions
            .iter()
            .map(|p| (p.flow_id, p.label(), p.confidence.to_bits()))
            .collect();
        v.sort_unstable();
        v
    };
    for run in &runs[1..] {
        let mut got: Vec<_> = run
            .predictions
            .iter()
            .map(|p| (p.flow_id, p.label(), p.confidence.to_bits()))
            .collect();
        got.sort_unstable();
        assert_eq!(got, baseline, "predictions depend on batch size");
    }
}

/// The sparse conv fast path is pure dispatch: a replay served by the
/// default classifier (sparse kernels engage below the density
/// threshold) must produce byte-identical predictions — and therefore
/// byte-identical JSONL label lines — to one forced onto the seed dense
/// path with `set_sparsity_threshold(0.0)`.
#[test]
fn sparse_and_dense_replays_are_byte_identical() {
    let ds = dataset(18, 23);
    let trace = trace_from_dataset(&ds, 0.4, 1.0);

    // The test is only load-bearing if the inputs actually are sparse
    // enough to take the fast path: a 16×16 flowpic holds at most ~50
    // packets, so its density sits well under the dispatch threshold.
    let cfg = tracker_cfg();
    let pic = flowpic::builder::Flowpic::build(&ds.flows[0].pkts, &cfg.flowpic);
    let input = pic.to_input(cfg.norm);
    assert!(
        nettensor::sparse::analyze(&input).density()
            < nettensor::sparse::DEFAULT_SPARSITY_THRESHOLD,
        "flowpic inputs must be sparse enough to engage the sparse kernels"
    );

    let served = model(5);
    let mut runs = Vec::new();
    for force_dense in [false, true] {
        let mut cnn = CnnClassifier::from_served(&served, 2).unwrap();
        if force_dense {
            cnn.set_sparsity_threshold(0.0);
        }
        let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
        let mut rec = InferRecorder::new();
        let report = replay(
            &trace,
            &registry,
            tracker_cfg(),
            EngineConfig {
                max_batch: 8,
                max_wait_s: 0.2,
                ..EngineConfig::default()
            },
            Vec::new(),
            &mut rec,
        )
        .unwrap();
        assert_eq!(report.predictions.len(), ds.flows.len());
        runs.push((report, rec));
    }
    let (sparse_report, sparse_rec) = &runs[0];
    let (dense_report, dense_rec) = &runs[1];

    // Predictions byte-identical, confidences compared as raw bits.
    let key = |r: &serve::replay::ReplayReport| {
        let mut v: Vec<(u64, Option<usize>, u32)> = r
            .predictions
            .iter()
            .map(|p| (p.flow_id, p.label(), p.confidence.to_bits()))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(
        key(sparse_report),
        key(dense_report),
        "sparse dispatch changed a prediction"
    );

    // The JSONL label lines an operator would log per classified flow
    // are byte-for-byte the strings the dense path produced.
    let label_lines = |r: &serve::replay::ReplayReport| {
        let mut v: Vec<String> = r
            .predictions
            .iter()
            .map(|p| {
                format!(
                    "{{\"flow_id\":{},\"label\":\"{}\",\"confidence_bits\":{}}}",
                    p.flow_id,
                    ds.class_names[p.label().unwrap()],
                    p.confidence.to_bits()
                )
            })
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(label_lines(sparse_report), label_lines(dense_report));

    // Timing-free telemetry JSONL (everything but wall-clock-carrying
    // batch/stream-end lines) is also identical: same model fingerprint,
    // same evictions, same stream shape.
    let stable_jsonl = |rec: &InferRecorder| {
        rec.events
            .iter()
            .filter(|e| {
                !matches!(
                    e,
                    InferEvent::BatchEnd { .. } | InferEvent::StreamEnd { .. }
                )
            })
            .map(|e| e.to_json_line())
            .collect::<Vec<String>>()
    };
    assert_eq!(stable_jsonl(sparse_rec), stable_jsonl(dense_rec));
    assert_eq!(sparse_report.batches, dense_report.batches);
    assert_eq!(sparse_report.evicted, dense_report.evicted);
}

#[test]
fn hot_swap_mid_replay_classifies_every_flow() {
    let ds = dataset(20, 3);
    let trace = trace_from_dataset(&ds, 0.3, 1.0);
    let model_a = model(1);
    let model_b = model(2);
    let fp_a = model_a.weights.fingerprint();
    let fp_b = model_b.weights.fingerprint();
    assert_ne!(fp_a, fp_b);

    let cnn_a = CnnClassifier::from_served(&model_a, 1).unwrap();
    let cnn_b = CnnClassifier::from_served(&model_b, 1).unwrap();
    let registry = Arc::new(ModelRegistry::new(Arc::new(cnn_a)));
    let mut rec = InferRecorder::new();
    let report = replay(
        &trace,
        &registry,
        tracker_cfg(),
        EngineConfig {
            max_batch: 4,
            max_wait_s: 0.5,
            ..EngineConfig::default()
        },
        vec![ScheduledSwap {
            at_packet: trace.len() / 2,
            model: Arc::new(cnn_b),
        }],
        &mut rec,
    )
    .unwrap();

    assert_eq!(report.swaps, 1);
    assert_eq!(
        report.predictions.len(),
        ds.flows.len(),
        "a hot-swap must not drop any flow"
    );
    let ids: std::collections::BTreeSet<u64> =
        report.predictions.iter().map(|p| p.flow_id).collect();
    assert_eq!(ids.len(), ds.flows.len(), "each flow classified once");
    assert!(rec.events.iter().any(|e| matches!(
        e,
        InferEvent::ModelSwapped {
            old_fingerprint,
            new_fingerprint,
            ..
        } if *old_fingerprint == fp_a && *new_fingerprint == fp_b
    )));
    assert_eq!(registry.active().fingerprint(), fp_b);
    // The event stream brackets the replay.
    assert!(
        matches!(rec.events.first(), Some(InferEvent::StreamStart { model_fingerprint, .. }) if *model_fingerprint == fp_a)
    );
    assert!(matches!(
        rec.events.last(),
        Some(InferEvent::StreamEnd { flows, .. }) if *flows == ds.flows.len()
    ));
}

#[test]
fn flow_cap_evicts_under_memory_pressure() {
    let ds = dataset(30, 7);
    // Gap 0: all flows run concurrently, far above the cap of 8.
    let trace = trace_from_dataset(&ds, 0.0, 1.0);
    let cnn = CnnClassifier::from_served(&model(4), 1).unwrap();
    let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
    let mut rec = InferRecorder::new();
    let report = replay(
        &trace,
        &registry,
        TrackerConfig {
            max_flows: 8,
            ..tracker_cfg()
        },
        EngineConfig::default(),
        Vec::new(),
        &mut rec,
    )
    .unwrap();

    assert!(
        report.evicted > 0,
        "30 concurrent flows must breach a cap of 8"
    );
    // Never-classified victims get the "cap-unclassified" spelling,
    // re-entrant ones plain "cap" — both are cap-pressure evictions.
    let cap_evictions = rec
        .events
        .iter()
        .filter(
            |e| matches!(e, InferEvent::FlowEvicted { reason, .. } if reason.starts_with("cap")),
        )
        .count();
    assert!(cap_evictions > 0, "evictions must carry a \"cap\" reason");
    // Evicted flows may re-enter when later packets arrive, so the
    // classified count can exceed flows-minus-evictions; what must hold
    // is that nothing is silently lost.
    assert!(
        report.predictions.len() + report.evicted >= ds.flows.len(),
        "{} classified + {} evicted < {} flows",
        report.predictions.len(),
        report.evicted,
        ds.flows.len()
    );
}

#[test]
fn idle_timeout_reclaims_dead_flows() {
    // Two bursts far apart: burst-1 flows go idle long before burst 2.
    let mut ds = dataset(6, 9);
    for (i, flow) in ds.flows.iter_mut().enumerate() {
        if i >= 3 {
            for p in &mut flow.pkts {
                p.ts += 100.0;
            }
        }
    }
    let trace = trace_from_dataset(&ds, 0.0, 1.0);
    let cnn = CnnClassifier::from_served(&model(4), 1).unwrap();
    let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
    let mut rec = InferRecorder::new();
    let report = replay(
        &trace,
        &registry,
        TrackerConfig {
            idle_timeout_s: 20.0,
            ..tracker_cfg()
        },
        EngineConfig::default(),
        Vec::new(),
        &mut rec,
    )
    .unwrap();
    // Burst-1 flows never reach the classifier before going idle, so
    // the reason carries the "-unclassified" suffix; accept the family.
    let idle_evictions = rec
        .events
        .iter()
        .filter(
            |e| matches!(e, InferEvent::FlowEvicted { reason, .. } if reason.starts_with("idle")),
        )
        .count();
    assert!(
        idle_evictions > 0,
        "burst-1 flows must hit the idle timeout"
    );
    assert!(report.batches > 0);
}
