//! Edge-case and failure-injection tests across the pipeline: degenerate
//! flows, pathological inputs and adversarial file bytes must produce
//! clean errors or well-defined results — never panics from deep inside
//! the stack or silent NaNs.

use augment::ALL_AUGMENTATIONS;
use flowpic::{Flowpic, FlowpicConfig, Normalization};
use tcbench::arch::supervised_net;
use tcbench::data::FlowpicDataset;
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use trafficgen::types::{Dataset, Direction, Flow, Partition, Pkt};

fn single_pkt_flow(class: u16) -> Flow {
    Flow {
        id: class as u64 + 1,
        class,
        partition: Partition::Unpartitioned,
        background: false,
        pkts: vec![Pkt::data(0.0, 100 + class * 300, Direction::Upstream)],
    }
}

fn degenerate_dataset() -> Dataset {
    // Two classes, a handful of single-packet flows each.
    let mut flows = Vec::new();
    for i in 0..8u64 {
        let mut f = single_pkt_flow((i % 2) as u16);
        f.id = i + 1;
        flows.push(f);
    }
    Dataset {
        name: "degenerate".into(),
        class_names: vec!["a".into(), "b".into()],
        flows,
    }
}

#[test]
fn training_on_single_packet_flows_is_total() {
    // Flowpics with a single non-zero cell: the whole pipeline must still
    // run and produce finite losses and valid predictions.
    let ds = degenerate_dataset();
    let idx: Vec<usize> = (0..ds.flows.len()).collect();
    let data = FlowpicDataset::from_flows(&ds, &idx, &FlowpicConfig::mini(), Normalization::LogMax);
    // Single-pixel inputs give tiny early gradients; the paper's lr 0.001
    // with patience-5 early stopping would quit before traction, so this
    // degenerate check trains faster.
    let trainer = SupervisedTrainer::new(TrainConfig {
        max_epochs: 60,
        learning_rate: 0.01,
        ..TrainConfig::supervised(1)
    });
    let mut net = supervised_net(32, 2, false, 1);
    let summary = trainer.train(&mut net, &data, None);
    assert!(summary.final_train_loss.is_finite());
    let eval = trainer.evaluate(&net, &data);
    // This degenerate two-point problem is separable; training must nail it
    // given enough steps (8 samples = 1 batch per epoch).
    assert_eq!(eval.accuracy, 1.0, "loss {}", summary.final_train_loss);
}

#[test]
fn augmentations_handle_degenerate_flows() {
    let cfg = FlowpicConfig::mini();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    // Single-packet flow, and a flow whose packets all share one timestamp.
    let singleton = vec![Pkt::data(0.0, 700, Direction::Downstream)];
    let stacked: Vec<Pkt> = (0..50)
        .map(|i| Pkt::data(0.0, 30 * (i % 50) + 1, Direction::Upstream))
        .collect();
    for pkts in [&singleton, &stacked] {
        for aug in ALL_AUGMENTATIONS {
            let pic = aug.apply(pkts, &cfg, &mut rng);
            assert!(
                pic.data.iter().all(|v| v.is_finite() && *v >= 0.0),
                "{}",
                aug.name()
            );
        }
    }
    // Empty input: rasterizes to an all-zero picture everywhere.
    for aug in ALL_AUGMENTATIONS {
        let pic = aug.apply(&[], &cfg, &mut rng);
        assert_eq!(pic.total(), 0.0, "{}", aug.name());
    }
}

#[test]
fn network_survives_adversarial_inputs() {
    // Extreme magnitudes, all-zero pictures and single-hot pixels must
    // flow through forward/backward without NaN.
    use nettensor::loss::cross_entropy;
    use nettensor::Tape;
    let net = supervised_net(32, 5, false, 9);
    let mut grads = net.grad_store();
    for scale in [0.0f32, 1.0, 1e4, -1e4] {
        let x = nettensor::Tensor::new(&[2, 1, 32, 32], vec![scale; 2 * 1024]);
        let mut tape = Tape::new();
        let logits = net.forward(&x, true, &mut tape);
        assert!(logits.data.iter().all(|v| v.is_finite()), "scale {scale}");
        let (loss, grad) = cross_entropy(&logits, &[0, 1]);
        assert!(loss.is_finite());
        grads.zero();
        let gin = net.backward(&tape, &grad, &mut grads);
        assert!(gin.data.iter().all(|v| v.is_finite()), "scale {scale}");
    }
}

#[test]
fn flowrec_decoder_survives_fuzzed_truncation_and_noise() {
    let ds = degenerate_dataset();
    let bytes = trafficgen::flowrec::encode(&ds).to_vec();
    // Exhaustive prefix truncation.
    for cut in 0..bytes.len() {
        let _ = trafficgen::flowrec::decode(&bytes[..cut]);
    }
    // Deterministic byte corruption at every offset.
    for i in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0xA5;
        let _ = trafficgen::flowrec::decode(&corrupted); // must not panic
    }
}

#[test]
fn pcap_reader_survives_corruption() {
    let flow = single_pkt_flow(0);
    let bytes = trafficgen::pcap::flow_to_pcap(&flow);
    for i in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0xFF;
        let _ = trafficgen::pcap::pcap_to_pkts(&corrupted); // must not panic
    }
}

#[test]
fn flowpic_of_pathological_timestamps() {
    // Negative and far-future timestamps are out of window: dropped, not
    // crashed on.
    let pkts = vec![
        Pkt {
            ts: 0.0,
            size: 100,
            dir: Direction::Upstream,
            is_ack: false,
        },
        Pkt {
            ts: 1e12,
            size: 100,
            dir: Direction::Upstream,
            is_ack: false,
        },
    ];
    let pic = Flowpic::build(&pkts, &FlowpicConfig::mini());
    assert_eq!(pic.total(), 1.0);
}

#[test]
fn gbdt_with_constant_and_conflicting_data() {
    use gbdt::{GbdtClassifier, GbdtConfig};
    // All features identical but labels differ: impossible problem; the
    // model must still train and emit valid probabilities.
    let x = vec![vec![1.0f32, 2.0, 3.0]; 12];
    let y: Vec<usize> = (0..12).map(|i| i % 2).collect();
    let model = GbdtClassifier::fit(
        &x,
        &y,
        2,
        &GbdtConfig {
            n_rounds: 5,
            ..Default::default()
        },
    );
    let p = model.predict_proba(&x[0]);
    assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    // Equal class frequencies → near-uniform probabilities.
    assert!((p[0] - 0.5).abs() < 0.1, "{p:?}");
}

#[test]
fn curation_of_empty_and_all_background_datasets() {
    use trafficgen::curation::CurationPipeline;
    let empty = Dataset {
        name: "e".into(),
        class_names: vec!["a".into()],
        flows: vec![],
    };
    let (out, report) = CurationPipeline::mirage(10).run(&empty);
    assert_eq!(out.flows.len(), 0);
    assert_eq!(report.flows_before, 0);

    let mut all_bg = degenerate_dataset();
    for f in &mut all_bg.flows {
        f.background = true;
    }
    let (out, report) = CurationPipeline::mirage(0).run(&all_bg);
    assert_eq!(out.flows.len(), 0);
    assert_eq!(report.background_removed, 8);
}

#[test]
fn splits_of_minimal_datasets() {
    use trafficgen::splits::{per_class_folds, stratified_three_way};
    let ds = degenerate_dataset(); // 4 flows per class
    let folds = per_class_folds(&ds, Partition::Unpartitioned, 4, 1, 0);
    assert_eq!(folds[0].train.len(), 8);
    assert!(
        folds[0].test.is_empty(),
        "taking every flow leaves an empty leftover"
    );
    let tri = stratified_three_way(&ds, Partition::Unpartitioned, 0.8, 0.1, 0);
    assert_eq!(tri.train.len() + tri.val.len() + tri.test.len(), 8);
}
