//! Sharded dataplane: determinism across worker counts, equivalence of
//! one shard with the unsharded replay loop, and bounded memory under a
//! long stream of distinct flows.

use std::sync::Arc;

use serve::engine::{Classifier, CnnClassifier, EngineConfig};
use serve::registry::{ModelRegistry, ServedModel};
use serve::replay::{replay, trace_from_dataset, ScheduledSwap};
use serve::shard::{replay_sharded, ShardedPipeline};
use serve::tracker::TrackerConfig;
use tcbench::arch::supervised_net;
use tcbench::telemetry::Noop;
use trafficgen::stress::{StressConfig, StressSim};

const RES: usize = 16;

/// A deterministic, compute-free classifier so the soak and scheduling
/// tests measure the dataplane, not the CNN forward pass. The label and
/// confidence are pure functions of the input, so any partition or
/// merge-order bug in the sharded path shows up as a changed bit.
struct StubClassifier {
    fingerprint: u64,
    names: Vec<String>,
}

impl StubClassifier {
    fn new(fingerprint: u64, n_classes: usize) -> StubClassifier {
        StubClassifier {
            fingerprint,
            names: (0..n_classes).map(|c| format!("class{c}")).collect(),
        }
    }
}

impl Classifier for StubClassifier {
    fn n_classes(&self) -> usize {
        self.names.len()
    }

    fn class_names(&self) -> &[String] {
        &self.names
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn predict_batch(&self, inputs: &[Vec<f32>]) -> Vec<(usize, f32)> {
        inputs
            .iter()
            .map(|x| {
                let mut acc = self.fingerprint;
                for v in x {
                    acc = acc.rotate_left(7).wrapping_add(u64::from(v.to_bits()));
                }
                let label = (acc % self.names.len() as u64) as usize;
                let confidence = 0.2 + (acc % 1000) as f32 / 1250.0;
                (label, confidence)
            })
            .collect()
    }
}

fn cnn_model(seed: u64) -> ServedModel {
    let net = supervised_net(RES, 5, true, seed);
    ServedModel {
        arch: "supervised".into(),
        resolution: RES,
        n_classes: 5,
        dropout: true,
        class_names: (0..5).map(|c| format!("class{c}")).collect(),
        weights: net.export_weights(),
    }
}

fn tracker_cfg() -> TrackerConfig {
    TrackerConfig {
        flowpic: flowpic::FlowpicConfig::with_resolution(RES),
        norm: flowpic::Normalization::LogMax,
        idle_timeout_s: 60.0,
        max_flows: 10_000,
        done_horizon_s: 120.0,
    }
}

fn engine_cfg(max_batch: usize) -> EngineConfig {
    EngineConfig {
        max_batch,
        max_wait_s: 0.3,
        ..EngineConfig::default()
    }
}

/// Raw-bit view of a prediction list: order-sensitive on purpose — the
/// sharded merge order is part of the determinism contract.
fn bits(predictions: &[serve::engine::Prediction]) -> Vec<(u64, Option<usize>, u32)> {
    predictions
        .iter()
        .map(|p| (p.flow_id, p.label(), p.confidence.to_bits()))
        .collect()
}

#[test]
fn fixed_shard_count_is_bit_identical_at_any_worker_count() {
    let ds = StressSim::new(StressConfig {
        n_flows: 400,
        n_classes: 5,
        pkts_per_flow: 6,
    })
    .generate(17);
    let trace = trace_from_dataset(&ds, 0.05, 1.0);

    let run_with = |workers: usize| {
        let registry = Arc::new(ModelRegistry::new(
            Arc::new(StubClassifier::new(0xAB, 5)) as Arc<dyn Classifier>
        ));
        replay_sharded(
            &trace,
            &registry,
            tracker_cfg(),
            engine_cfg(8),
            Vec::new(),
            4,
            workers,
            &mut Noop,
        )
        .unwrap()
    };
    let w1 = run_with(1);
    assert_eq!(w1.shards, 4);
    assert_eq!(
        w1.predictions.len(),
        ds.flows.len(),
        "every stress flow closes past the window, so every flow classifies"
    );
    for workers in [2, 4, 0] {
        let wn = run_with(workers);
        assert_eq!(
            bits(&w1.predictions),
            bits(&wn.predictions),
            "{workers} workers changed a prediction bit"
        );
        assert_eq!(w1.batches, wn.batches);
        assert_eq!(w1.evicted, wn.evicted);
        assert_eq!(w1.swaps, wn.swaps);
    }
}

#[test]
fn one_shard_is_bit_identical_to_the_unsharded_replay() {
    let ds = StressSim::new(StressConfig {
        n_flows: 60,
        n_classes: 5,
        pkts_per_flow: 6,
    })
    .generate(9);
    let trace = trace_from_dataset(&ds, 0.2, 1.0);
    let served = cnn_model(3);

    let serial = {
        let cnn = CnnClassifier::from_served(&served, 1).unwrap();
        let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
        replay(
            &trace,
            &registry,
            tracker_cfg(),
            engine_cfg(4),
            Vec::new(),
            &mut Noop,
        )
        .unwrap()
    };
    let sharded = {
        let cnn = CnnClassifier::from_served(&served, 1).unwrap();
        let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
        replay_sharded(
            &trace,
            &registry,
            tracker_cfg(),
            engine_cfg(4),
            Vec::new(),
            1,
            1,
            &mut Noop,
        )
        .unwrap()
    };
    // One lane sees the identical packet sequence the serial loop does,
    // so even the prediction *order* matches.
    assert_eq!(bits(&serial.predictions), bits(&sharded.predictions));
    assert_eq!(serial.batches, sharded.batches);
    assert_eq!(serial.evicted, sharded.evicted);
    assert_eq!(sharded.shards, 1);
}

#[test]
fn sharded_hot_swap_applies_once_and_stays_worker_invariant() {
    let ds = StressSim::new(StressConfig {
        n_flows: 300,
        n_classes: 5,
        pkts_per_flow: 6,
    })
    .generate(21);
    let trace = trace_from_dataset(&ds, 0.05, 1.0);

    let run_with = |shards: usize, workers: usize| {
        let registry = Arc::new(ModelRegistry::new(
            Arc::new(StubClassifier::new(0x0A, 5)) as Arc<dyn Classifier>
        ));
        let swap = ScheduledSwap {
            at_packet: trace.len() / 2,
            model: Arc::new(StubClassifier::new(0x0B, 5)),
        };
        replay_sharded(
            &trace,
            &registry,
            tracker_cfg(),
            engine_cfg(8),
            vec![swap],
            shards,
            workers,
            &mut Noop,
        )
        .unwrap()
    };
    let base = run_with(3, 1);
    assert_eq!(base.swaps, 1, "the schedule is reported once, not per lane");
    assert_eq!(base.predictions.len(), ds.flows.len());
    for workers in [2, 4] {
        let wn = run_with(3, workers);
        assert_eq!(bits(&base.predictions), bits(&wn.predictions));
        assert_eq!(wn.swaps, 1);
    }

    // One shard with the same schedule matches the serial loop bit for
    // bit — the per-lane swap rule degenerates to the serial one.
    let serial = {
        let registry = Arc::new(ModelRegistry::new(
            Arc::new(StubClassifier::new(0x0A, 5)) as Arc<dyn Classifier>
        ));
        replay(
            &trace,
            &registry,
            tracker_cfg(),
            engine_cfg(8),
            vec![ScheduledSwap {
                at_packet: trace.len() / 2,
                model: Arc::new(StubClassifier::new(0x0B, 5)),
            }],
            &mut Noop,
        )
        .unwrap()
    };
    let one = run_with(1, 1);
    assert_eq!(bits(&serial.predictions), bits(&one.predictions));
    assert_eq!(serial.swaps, one.swaps);
}

/// The long-stream soak: a CI-scale stress trace (20k distinct flows)
/// through a daemon-shaped pipeline — bounded retention, nothing ever
/// draining predictions — must classify every flow while every
/// unbounded-memory proxy stays flat: the done-set holds at most two
/// horizons of flow ids, pending predictions cap per lane, and the
/// latency ring keeps its window.
#[test]
fn soak_long_stream_of_distinct_flows_stays_bounded() {
    let config = StressConfig::ci();
    let ds = StressSim::new(config).generate(5);
    let trace = trace_from_dataset(&ds, 0.05, 1.0);

    let registry = Arc::new(ModelRegistry::new(
        Arc::new(StubClassifier::new(0x5A, 5)) as Arc<dyn Classifier>
    ));
    let tracker = TrackerConfig {
        done_horizon_s: 10.0,
        ..tracker_cfg()
    };
    let engine = EngineConfig {
        max_batch: 8,
        max_wait_s: 0.3,
        pending_cap: 64,
        latency_window: 16,
        ..EngineConfig::default()
    };
    let shards = 2;
    let mut pipeline =
        ShardedPipeline::new(&registry, tracker, engine, shards).expect("shards >= 1");
    let mut done_len_high = 0usize;
    let mut pending_high = 0usize;
    for (i, rec) in trace.iter().enumerate() {
        pipeline.push(rec, &mut Noop);
        if i % 4096 == 0 {
            done_len_high = done_len_high.max(pipeline.done_len());
            pending_high = pending_high.max(pipeline.predictions_pending());
        }
    }
    let end_ts = trace.last().unwrap().ts;
    pipeline.flush_and_drain(end_ts, &mut Noop);
    done_len_high = done_len_high.max(pipeline.done_len());
    pending_high = pending_high.max(pipeline.predictions_pending());

    assert_eq!(
        pipeline.flows_classified(),
        config.n_flows,
        "every stress flow must classify"
    );
    // Done-set: ~200 completions per 10 s horizon at a 50 ms flow gap,
    // two generations retained — far below the lifetime flow count.
    assert!(
        done_len_high <= 1_000,
        "done-set grew to {done_len_high} over {} flows",
        config.n_flows
    );
    // Pending predictions: bounded by the per-lane cap even though no
    // client ever drained them; the overflow is counted, not lost
    // silently.
    assert!(
        pending_high <= shards * engine.pending_cap,
        "pending predictions grew to {pending_high}"
    );
    assert_eq!(
        pipeline.predictions_pending() + pipeline.predictions_dropped(),
        config.n_flows,
        "dropped + retained must account for every prediction"
    );
    assert!(pipeline.predictions_dropped() > 0, "the soak must overflow");
    // Latency ring: bounded per lane.
    assert!(pipeline.recent_wall_ms().len() <= shards * engine.latency_window);
    // Draining empties the buffer without touching the lifetime counter.
    let retained = pipeline.predictions_pending();
    let drained = pipeline.take_predictions();
    assert_eq!(
        drained.len(),
        retained,
        "drain returns exactly the retained predictions"
    );
    assert_eq!(pipeline.predictions_pending(), 0);
    assert_eq!(pipeline.flows_classified(), config.n_flows);
}
