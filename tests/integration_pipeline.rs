//! End-to-end integration: dataset simulation → serialization → splits →
//! augmentation → supervised training → evaluation, asserting the
//! paper-level invariants the whole workspace exists to reproduce.

use augment::Augmentation;
use flowpic::{FlowpicConfig, Normalization};
use tcbench::arch::supervised_net;
use tcbench::data::FlowpicDataset;
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use trafficgen::flowrec;
use trafficgen::splits::per_class_folds;
use trafficgen::types::Partition;
use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

fn quick_dataset() -> trafficgen::types::Dataset {
    let mut cfg = UcDavisConfig::tiny();
    cfg.pretraining_per_class = [40; 5];
    cfg.script_per_class = [10; 5];
    cfg.human_per_class = [10; 5];
    cfg.max_pkts = 400;
    UcDavisSim::new(cfg).generate(1234)
}

#[test]
fn supervised_pipeline_reproduces_the_data_shift() {
    let ds = quick_dataset();
    let fold = &per_class_folds(&ds, Partition::Pretraining, 30, 1, 5)[0];
    let fpcfg = FlowpicConfig::mini();
    let norm = Normalization::LogMax;

    let train_full = FlowpicDataset::augmented(
        &ds,
        &fold.train,
        Augmentation::ChangeRtt,
        2,
        &fpcfg,
        norm,
        7,
    );
    let (train, val) = train_full.split_validation(0.2, 7);
    let trainer = SupervisedTrainer::new(TrainConfig {
        max_epochs: 10,
        ..TrainConfig::supervised(7)
    });
    let mut net = supervised_net(32, ds.num_classes(), true, 7);
    let summary = trainer.train(&mut net, &train, Some(&val));
    assert!(summary.epochs >= 1);

    let eval_on = |indices: &[usize]| {
        let data = FlowpicDataset::from_flows(&ds, indices, &fpcfg, norm);
        trainer.evaluate(&net, &data).accuracy
    };
    let script = eval_on(&ds.partition_indices(Partition::Script));
    let human = eval_on(&ds.partition_indices(Partition::Human));
    let leftover = eval_on(&fold.test);

    // The paper's central invariants.
    assert!(script > 0.7, "script accuracy {script}");
    assert!(leftover > 0.7, "leftover accuracy {leftover}");
    assert!(
        script - human > 0.08,
        "the human data shift must cost accuracy: script {script} human {human}"
    );
    assert!(
        (script - leftover).abs() < 0.2,
        "script and leftover agree: {script} vs {leftover}"
    );
}

#[test]
fn disabling_the_shift_closes_the_gap() {
    // Ablation: with shift_strength = 0 the human partition behaves like
    // script, so the generator (not the model) is the source of the gap.
    let mut cfg = UcDavisConfig::tiny();
    cfg.pretraining_per_class = [40; 5];
    cfg.script_per_class = [12; 5];
    cfg.human_per_class = [12; 5];
    cfg.max_pkts = 400;
    let with_shift = UcDavisSim::new(cfg.clone()).generate(99);
    let no_shift = UcDavisSim::new(cfg.without_shift()).generate(99);

    let gap = |ds: &trafficgen::types::Dataset| {
        let fold = &per_class_folds(ds, Partition::Pretraining, 30, 1, 3)[0];
        let fpcfg = FlowpicConfig::mini();
        let norm = Normalization::LogMax;
        let train_full = FlowpicDataset::from_flows(ds, &fold.train, &fpcfg, norm);
        let (train, val) = train_full.split_validation(0.2, 3);
        let trainer = SupervisedTrainer::new(TrainConfig {
            max_epochs: 10,
            ..TrainConfig::supervised(3)
        });
        let mut net = supervised_net(32, ds.num_classes(), false, 3);
        trainer.train(&mut net, &train, Some(&val));
        let acc = |idx: &[usize]| {
            let data = FlowpicDataset::from_flows(ds, idx, &fpcfg, norm);
            trainer.evaluate(&net, &data).accuracy
        };
        acc(&ds.partition_indices(Partition::Script)) - acc(&ds.partition_indices(Partition::Human))
    };

    let gap_with = gap(&with_shift);
    let gap_without = gap(&no_shift);
    assert!(
        gap_with > gap_without + 0.05,
        "shift must widen the gap: with {gap_with} vs without {gap_without}"
    );
}

#[test]
fn flowrec_round_trips_a_simulated_dataset() {
    let ds = quick_dataset();
    let bytes = flowrec::encode(&ds);
    let back = flowrec::decode(&bytes).expect("decode");
    assert_eq!(back, ds);
}

#[test]
fn augmentations_preserve_labels_and_class_balance() {
    let ds = quick_dataset();
    let fold = &per_class_folds(&ds, Partition::Pretraining, 20, 1, 1)[0];
    let fpcfg = FlowpicConfig::mini();
    for aug in augment::ALL_AUGMENTATIONS {
        let data =
            FlowpicDataset::augmented(&ds, &fold.train, aug, 3, &fpcfg, Normalization::LogMax, 1);
        // Per-class counts stay balanced after augmentation.
        let mut counts = vec![0usize; ds.num_classes()];
        for &l in &data.labels {
            counts[l] += 1;
        }
        assert!(
            counts.iter().all(|&c| c == counts[0]),
            "{aug:?}: {counts:?}"
        );
    }
}
