//! Mean ± confidence-interval summaries.
//!
//! Every "ours" cell in the paper's tables is "the average accuracy across
//! 15 modeling experiments and the related 95-th confidence intervals"
//! computed with a t distribution (paper Sec. 4.1.1). [`MeanCi`] is that
//! cell.

use crate::special::t_critical;
use serde::Serialize;
use std::fmt;

/// Sample mean with a two-sided t confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MeanCi {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the interval (the "±" value).
    pub half_width: f64,
    /// Number of samples aggregated.
    pub n: usize,
    /// Confidence level used (e.g. 0.95).
    pub confidence: f64,
}

impl MeanCi {
    /// Computes the mean and t-interval of `samples` at `confidence`.
    ///
    /// With fewer than 2 samples the half-width is 0 (no dispersion
    /// information).
    pub fn from_samples(samples: &[f64], confidence: f64) -> MeanCi {
        assert!(!samples.is_empty(), "no samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return MeanCi {
                mean,
                half_width: 0.0,
                n,
                confidence,
            };
        }
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        let se = (var / n as f64).sqrt();
        let t = t_critical(n as f64 - 1.0, confidence);
        MeanCi {
            mean,
            half_width: t * se,
            n,
            confidence,
        }
    }

    /// The paper's default: 95 % confidence.
    pub fn ci95(samples: &[f64]) -> MeanCi {
        MeanCi::from_samples(samples, 0.95)
    }

    /// Lower interval bound.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper interval bound.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether this interval overlaps `other` — the paper's first-pass
    /// check before the rank-based analysis ("The CI in Table 4 show clear
    /// overlaps between different augmentations").
    pub fn overlaps(&self, other: &MeanCi) -> bool {
        self.lo() <= other.hi() && other.lo() <= self.hi()
    }
}

impl fmt::Display for MeanCi {
    /// Formats as the paper's cells do: `96.80 ±0.37` (values already in
    /// the caller's unit, typically percent).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ±{:.2}", self.mean, self.half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_interval() {
        // Samples 1..=5: mean 3, sd sqrt(2.5), se sqrt(.5), t(4,.95)=2.776.
        let ci = MeanCi::ci95(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((ci.mean - 3.0).abs() < 1e-12);
        let expected = 2.7764 * (2.5f64 / 5.0).sqrt();
        assert!((ci.half_width - expected).abs() < 1e-3, "{}", ci.half_width);
    }

    #[test]
    fn single_sample_zero_width() {
        let ci = MeanCi::ci95(&[7.0]);
        assert_eq!(ci.mean, 7.0);
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn constant_samples_zero_width() {
        let ci = MeanCi::ci95(&[2.0; 10]);
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn overlap_detection() {
        let a = MeanCi {
            mean: 10.0,
            half_width: 1.0,
            n: 5,
            confidence: 0.95,
        };
        let b = MeanCi {
            mean: 11.5,
            half_width: 1.0,
            n: 5,
            confidence: 0.95,
        };
        let c = MeanCi {
            mean: 13.0,
            half_width: 0.5,
            n: 5,
            confidence: 0.95,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn display_format_matches_paper_cells() {
        let ci = MeanCi {
            mean: 96.8,
            half_width: 0.37,
            n: 15,
            confidence: 0.95,
        };
        assert_eq!(ci.to_string(), "96.80 ±0.37");
    }

    #[test]
    fn wider_confidence_wider_interval() {
        let samples = [1.0, 2.0, 3.0, 4.0];
        let c90 = MeanCi::from_samples(&samples, 0.90);
        let c99 = MeanCi::from_samples(&samples, 0.99);
        assert!(c99.half_width > c90.half_width);
    }
}
