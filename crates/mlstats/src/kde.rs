//! Gaussian kernel density estimation.
//!
//! Paper Fig. 8 diagnoses the `human` data shift with per-class KDEs of
//! the packet-size distribution across partitions — the Google search
//! curve visibly shifts. This module provides the estimator plus a
//! distribution-shift metric (L1 distance between densities) so the shift
//! can be *quantified*, not just eyeballed.

use crate::special::norm_pdf;
use serde::Serialize;

/// Why a KDE could not be built. The panicking constructors are fine for
/// offline analysis scripts; long-running callers (the serving daemon's
/// drift monitor) route through the `try_` variants so a quiet class —
/// zero samples in a check interval — degrades to "skip" instead of a
/// crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KdeError {
    /// The sample slice was empty.
    EmptySample,
    /// The requested bandwidth was zero, negative, or non-finite.
    InvalidBandwidth,
    /// A sample value was NaN or infinite.
    NonFiniteSample,
}

impl std::fmt::Display for KdeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KdeError::EmptySample => write!(f, "KDE needs at least one sample"),
            KdeError::InvalidBandwidth => write!(f, "KDE bandwidth must be finite and positive"),
            KdeError::NonFiniteSample => write!(f, "KDE samples must be finite"),
        }
    }
}

impl std::error::Error for KdeError {}

/// A Gaussian KDE over a 1-D sample.
#[derive(Debug, Clone, Serialize)]
pub struct Kde {
    samples: Vec<f64>,
    /// Kernel bandwidth.
    pub bandwidth: f64,
}

impl Kde {
    /// Builds a KDE with Silverman's rule-of-thumb bandwidth
    /// `0.9 · min(σ, IQR/1.34) · n^(−1/5)`.
    ///
    /// Panics on an empty sample; see [`Kde::try_silverman`] for the
    /// non-panicking form.
    pub fn silverman(samples: &[f64]) -> Kde {
        Kde::try_silverman(samples).expect("KDE needs samples")
    }

    /// Non-panicking [`Kde::silverman`]: returns a typed error on empty
    /// or non-finite samples instead of asserting. Degenerate-but-valid
    /// inputs (all samples identical) still succeed with the `1e-6`
    /// bandwidth floor.
    pub fn try_silverman(samples: &[f64]) -> Result<Kde, KdeError> {
        if samples.is_empty() {
            return Err(KdeError::EmptySample);
        }
        if samples.iter().any(|x| !x.is_finite()) {
            return Err(KdeError::NonFiniteSample);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let sd = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n).sqrt();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let q = |f: f64| {
            sorted[((f * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)]
        };
        let iqr = q(0.75) - q(0.25);
        let spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
        let bandwidth = (0.9 * spread * n.powf(-0.2)).max(1e-6);
        Ok(Kde {
            samples: samples.to_vec(),
            bandwidth,
        })
    }

    /// Builds a KDE with an explicit bandwidth.
    ///
    /// Panics on empty samples or a non-positive bandwidth; see
    /// [`Kde::try_with_bandwidth`] for the non-panicking form.
    pub fn with_bandwidth(samples: &[f64], bandwidth: f64) -> Kde {
        Kde::try_with_bandwidth(samples, bandwidth)
            .expect("KDE needs samples and a positive bandwidth")
    }

    /// Non-panicking [`Kde::with_bandwidth`].
    pub fn try_with_bandwidth(samples: &[f64], bandwidth: f64) -> Result<Kde, KdeError> {
        if samples.is_empty() {
            return Err(KdeError::EmptySample);
        }
        if samples.iter().any(|x| !x.is_finite()) {
            return Err(KdeError::NonFiniteSample);
        }
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return Err(KdeError::InvalidBandwidth);
        }
        Ok(Kde {
            samples: samples.to_vec(),
            bandwidth,
        })
    }

    /// Density at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let n = self.samples.len() as f64;
        self.samples
            .iter()
            .map(|&s| norm_pdf((x - s) / self.bandwidth))
            .sum::<f64>()
            / (n * self.bandwidth)
    }

    /// Density evaluated on an even grid of `points` values spanning
    /// `[lo, hi]`. Returns `(xs, densities)`.
    pub fn grid(&self, lo: f64, hi: f64, points: usize) -> (Vec<f64>, Vec<f64>) {
        assert!(points >= 2 && hi > lo);
        let xs: Vec<f64> = (0..points)
            .map(|i| lo + (hi - lo) * i as f64 / (points - 1) as f64)
            .collect();
        let ds = xs.iter().map(|&x| self.density(x)).collect();
        (xs, ds)
    }
}

/// L1 distance between two KDEs on a shared grid — in `[0, 2]` for true
/// densities; 0 means identical distributions. This is the quantitative
/// form of "the Google search curve for human has an evident shift".
pub fn l1_distance(a: &Kde, b: &Kde, lo: f64, hi: f64, points: usize) -> f64 {
    let (_, da) = a.grid(lo, hi, points);
    let (_, db) = b.grid(lo, hi, points);
    let dx = (hi - lo) / (points - 1) as f64;
    da.iter().zip(&db).map(|(x, y)| (x - y).abs()).sum::<f64>() * dx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_integrates_to_one() {
        let samples: Vec<f64> = (0..200).map(|i| (i % 17) as f64).collect();
        let kde = Kde::silverman(&samples);
        let (_, ds) = kde.grid(-20.0, 40.0, 2000);
        let dx = 60.0 / 1999.0;
        let integral: f64 = ds.iter().sum::<f64>() * dx;
        assert!((integral - 1.0).abs() < 0.01, "integral {integral}");
    }

    #[test]
    fn density_peaks_at_the_mode() {
        let samples = vec![5.0; 50];
        let kde = Kde::with_bandwidth(&samples, 1.0);
        assert!(kde.density(5.0) > kde.density(8.0));
        assert!(kde.density(5.0) > kde.density(2.0));
    }

    #[test]
    fn constant_samples_get_positive_bandwidth() {
        let kde = Kde::silverman(&[3.0; 10]);
        assert!(kde.bandwidth > 0.0);
        assert!(kde.density(3.0).is_finite());
    }

    #[test]
    fn l1_distance_zero_for_identical() {
        let s: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let a = Kde::silverman(&s);
        let d = l1_distance(&a, &a.clone(), -5.0, 15.0, 500);
        assert!(d < 1e-12);
    }

    #[test]
    fn l1_distance_detects_shift() {
        let a_s: Vec<f64> = (0..200).map(|i| (i % 20) as f64 * 0.1).collect();
        let b_s: Vec<f64> = a_s.iter().map(|x| x + 5.0).collect();
        let a = Kde::silverman(&a_s);
        let b = Kde::silverman(&b_s);
        let d = l1_distance(&a, &b, -3.0, 10.0, 1000);
        assert!(
            d > 1.5,
            "distance {d} — disjoint supports should approach 2"
        );
    }

    #[test]
    fn try_constructors_reject_degenerate_inputs() {
        assert!(matches!(
            Kde::try_silverman(&[]),
            Err(KdeError::EmptySample)
        ));
        assert!(matches!(
            Kde::try_silverman(&[1.0, f64::NAN]),
            Err(KdeError::NonFiniteSample)
        ));
        assert!(matches!(
            Kde::try_with_bandwidth(&[], 1.0),
            Err(KdeError::EmptySample)
        ));
        assert!(matches!(
            Kde::try_with_bandwidth(&[1.0], 0.0),
            Err(KdeError::InvalidBandwidth)
        ));
        assert!(matches!(
            Kde::try_with_bandwidth(&[1.0], f64::NAN),
            Err(KdeError::InvalidBandwidth)
        ));
        // Degenerate-but-valid: constant samples succeed via the floor.
        let kde = Kde::try_silverman(&[3.0; 10]).unwrap();
        assert!(kde.bandwidth > 0.0);
    }

    #[test]
    fn grid_shape() {
        let kde = Kde::silverman(&[0.0, 1.0, 2.0]);
        let (xs, ds) = kde.grid(0.0, 2.0, 11);
        assert_eq!(xs.len(), 11);
        assert_eq!(ds.len(), 11);
        assert_eq!(xs[0], 0.0);
        assert_eq!(xs[10], 2.0);
    }
}
