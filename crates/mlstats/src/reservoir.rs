//! Bounded, deterministic streaming reservoir (Vitter's Algorithm R).
//!
//! The serving daemon's drift monitor needs a fixed-memory sketch of an
//! unbounded live stream of per-flow features. A uniform reservoir keeps
//! every prefix of the stream equally represented in `O(cap)` memory, and
//! — because replacement decisions are driven by a SplitMix64 counter
//! hash rather than a thread-local RNG — the same input sequence always
//! yields the same sample, which is what keeps drift verdicts replayable.

/// SplitMix64 — the workspace-standard deterministic mixer (no rand
/// crate anywhere in the dataplane).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform sample of at most `cap` values from a stream of any length.
///
/// Deterministic: replacement indices come from hashing `(seed, seen)`,
/// so two reservoirs fed the same sequence in the same order are
/// identical element for element.
#[derive(Debug, Clone)]
pub struct Reservoir {
    cap: usize,
    seed: u64,
    seen: u64,
    samples: Vec<f64>,
}

impl Reservoir {
    /// An empty reservoir holding at most `cap` samples (`cap >= 1`).
    pub fn new(cap: usize, seed: u64) -> Reservoir {
        assert!(cap >= 1, "reservoir capacity must be at least 1");
        Reservoir {
            cap,
            seed,
            seen: 0,
            samples: Vec::new(),
        }
    }

    /// Offers one value to the reservoir. The first `cap` values are
    /// kept outright; afterwards value `k` (1-based) replaces a resident
    /// sample with probability `cap / k` (Algorithm R).
    pub fn push(&mut self, x: f64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(x);
            return;
        }
        // Uniform index in [0, seen): keep x only if it lands inside
        // the reservoir. Modulo bias is negligible against u64 range.
        let j = (splitmix64(self.seed ^ self.seen.wrapping_mul(0x9E37_79B9)) % self.seen) as usize;
        if j < self.cap {
            self.samples[j] = x;
        }
    }

    /// Values currently held (order is an implementation detail, but
    /// deterministic for a given input sequence).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of resident samples (`min(seen, cap)`).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no value has been offered since the last clear.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total values offered since the last clear (including evicted).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Drops all samples and resets the stream counter; the seed is kept
    /// so consecutive windows stay deterministic but decorrelated is not
    /// required — each window re-runs the same replacement schedule.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_under_capacity() {
        let mut r = Reservoir::new(8, 1);
        for i in 0..5 {
            r.push(i as f64);
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.seen(), 5);
        assert_eq!(r.samples(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn bounded_beyond_capacity() {
        let mut r = Reservoir::new(16, 7);
        for i in 0..10_000 {
            r.push(i as f64);
        }
        assert_eq!(r.len(), 16);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Reservoir::new(32, 42);
        let mut b = Reservoir::new(32, 42);
        for i in 0..1000 {
            let x = (i * i % 997) as f64;
            a.push(x);
            b.push(x);
        }
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn seed_changes_the_sample() {
        let mut a = Reservoir::new(8, 1);
        let mut b = Reservoir::new(8, 2);
        for i in 0..1000 {
            a.push(i as f64);
            b.push(i as f64);
        }
        assert_ne!(a.samples(), b.samples());
    }

    #[test]
    fn roughly_uniform_over_the_stream() {
        // Mean of a uniform sample of 0..n-1 should approach (n-1)/2.
        let n = 100_000;
        let mut r = Reservoir::new(512, 3);
        for i in 0..n {
            r.push(i as f64);
        }
        let mean = r.samples().iter().sum::<f64>() / r.len() as f64;
        let expect = (n - 1) as f64 / 2.0;
        assert!(
            (mean - expect).abs() < expect * 0.1,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn clear_resets() {
        let mut r = Reservoir::new(4, 1);
        for i in 0..100 {
            r.push(i as f64);
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.seen(), 0);
        r.push(1.0);
        assert_eq!(r.samples(), &[1.0]);
    }
}
