//! Tukey HSD post-hoc comparison.
//!
//! Paper App. F (Table 10): to decide whether the three flowpic
//! resolutions can be pooled for the ranking analysis, each resolution is
//! treated as a group and their paired accuracy distributions compared
//! with a post-hoc Tukey test at the 0.05 significance level. The p-value
//! of a pair is `P(Q > |Δmean| / SE)` under the studentized range
//! distribution with `k` groups.

use crate::special::srange_cdf;
use serde::Serialize;

/// One pairwise comparison of the Tukey HSD.
#[derive(Debug, Clone, Serialize)]
pub struct TukeyPair {
    /// Index of the first group.
    pub a: usize,
    /// Index of the second group.
    pub b: usize,
    /// Difference of group means (`mean_a − mean_b`).
    pub mean_diff: f64,
    /// The p-value of the comparison.
    pub p_value: f64,
    /// Whether the pair is significantly different at the chosen α.
    pub is_different: bool,
}

/// Result of a Tukey HSD across `k` groups.
#[derive(Debug, Clone, Serialize)]
pub struct TukeyHsd {
    /// Group names.
    pub names: Vec<String>,
    /// Group means.
    pub means: Vec<f64>,
    /// All pairwise comparisons (`a < b`).
    pub pairs: Vec<TukeyPair>,
    /// Significance level used.
    pub alpha: f64,
}

impl TukeyHsd {
    /// Runs the test on `groups[g] = samples of group g` at level `alpha`.
    ///
    /// Uses the pooled within-group variance and, because campaign sample
    /// counts are large (≥ 30 experiments per group), the infinite-df
    /// studentized range (see [`crate::special::srange_cdf`]).
    pub fn analyze(names: &[&str], groups: &[Vec<f64>], alpha: f64) -> TukeyHsd {
        let k = groups.len();
        assert!(k >= 2, "need at least two groups");
        assert_eq!(names.len(), k);
        assert!(
            groups.iter().all(|g| g.len() >= 2),
            "each group needs >= 2 samples"
        );

        let means: Vec<f64> = groups
            .iter()
            .map(|g| g.iter().sum::<f64>() / g.len() as f64)
            .collect();
        // Pooled within-group variance (MSE of the one-way ANOVA).
        let mut ss = 0f64;
        let mut df = 0f64;
        for (g, &m) in groups.iter().zip(&means) {
            ss += g.iter().map(|x| (x - m).powi(2)).sum::<f64>();
            df += g.len() as f64 - 1.0;
        }
        let mse = if df > 0.0 { ss / df } else { 0.0 };

        let mut pairs = Vec::new();
        for a in 0..k {
            for b in (a + 1)..k {
                let (na, nb) = (groups[a].len() as f64, groups[b].len() as f64);
                // Tukey–Kramer SE for unequal group sizes.
                let se = (mse / 2.0 * (1.0 / na + 1.0 / nb)).sqrt();
                let diff = means[a] - means[b];
                let (p_value, is_different) = if se == 0.0 {
                    // Degenerate: zero within-group variance.
                    if diff == 0.0 {
                        (1.0, false)
                    } else {
                        (0.0, true)
                    }
                } else {
                    let q = diff.abs() / se;
                    let p = 1.0 - srange_cdf(q, k);
                    (p, p < alpha)
                };
                pairs.push(TukeyPair {
                    a,
                    b,
                    mean_diff: diff,
                    p_value,
                    is_different,
                });
            }
        }
        TukeyHsd {
            names: names.iter().map(|s| s.to_string()).collect(),
            means,
            pairs,
            alpha,
        }
    }

    /// Text rendering in the shape of the paper's Table 10.
    pub fn table(&self) -> String {
        let mut out = String::from("Group A      Group B      p-value     Is Different?\n");
        for p in &self.pairs {
            out.push_str(&format!(
                "{:<12} {:<12} {:<11} {}\n",
                self.names[p.a],
                self.names[p.b],
                format_p(p.p_value),
                if p.is_different { "Yes" } else { "No" }
            ));
        }
        out
    }
}

fn format_p(p: f64) -> String {
    if p >= 1e-3 {
        format!("{p:.3}")
    } else {
        format!("{p:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_groups_not_different() {
        let g = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let t = TukeyHsd::analyze(&["a", "b"], &[g.clone(), g], 0.05);
        assert_eq!(t.pairs.len(), 1);
        assert!(!t.pairs[0].is_different);
        assert!(t.pairs[0].p_value > 0.9);
    }

    #[test]
    fn separated_groups_are_different() {
        let a: Vec<f64> = (0..30).map(|i| 10.0 + 0.1 * (i % 5) as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| 20.0 + 0.1 * (i % 5) as f64).collect();
        let t = TukeyHsd::analyze(&["lo", "hi"], &[a, b], 0.05);
        assert!(t.pairs[0].is_different);
        assert!(t.pairs[0].p_value < 1e-6);
        assert!(t.pairs[0].mean_diff < 0.0);
    }

    #[test]
    fn three_groups_table10_shape() {
        // Mimic the paper's Table 10: 32≈64, both ≠ 1500.
        let g32: Vec<f64> = (0..30)
            .map(|i| 96.0 + 0.5 * ((i % 7) as f64 - 3.0))
            .collect();
        let g64: Vec<f64> = (0..30)
            .map(|i| 96.1 + 0.5 * ((i % 5) as f64 - 2.0))
            .collect();
        let g1500: Vec<f64> = (0..30)
            .map(|i| 94.0 + 0.5 * ((i % 7) as f64 - 3.0))
            .collect();
        let t = TukeyHsd::analyze(&["32x32", "64x64", "1500x1500"], &[g32, g64, g1500], 0.05);
        let pair = |a, b| t.pairs.iter().find(|p| p.a == a && p.b == b).unwrap();
        assert!(!pair(0, 1).is_different, "32 vs 64 must pool");
        assert!(pair(0, 2).is_different, "32 vs 1500 must differ");
        assert!(pair(1, 2).is_different, "64 vs 1500 must differ");
        let table = t.table();
        assert!(table.contains("32x32"));
        assert!(table.contains("Yes") && table.contains("No"));
    }

    #[test]
    fn zero_variance_degenerate_cases() {
        let t = TukeyHsd::analyze(&["a", "b"], &[vec![5.0, 5.0], vec![5.0, 5.0]], 0.05);
        assert!(!t.pairs[0].is_different);
        let t = TukeyHsd::analyze(&["a", "b"], &[vec![5.0, 5.0], vec![6.0, 6.0]], 0.05);
        assert!(t.pairs[0].is_different);
    }

    #[test]
    fn unequal_group_sizes_supported() {
        let a: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| (i % 10) as f64).collect();
        let t = TukeyHsd::analyze(&["a", "b"], &[a, b], 0.05);
        assert!(t.pairs[0].p_value.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_group() {
        TukeyHsd::analyze(&["only"], &[vec![1.0, 2.0]], 0.05);
    }
}
