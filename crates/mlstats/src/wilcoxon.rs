//! Wilcoxon signed-rank test.
//!
//! Demšar (2006) — the methodology paper the replication follows for its
//! rank analysis — recommends the Wilcoxon signed-rank test for comparing
//! *two* classifiers over multiple datasets (the Friedman/Nemenyi
//! machinery is for ≥ 3). This completes the toolkit: pairwise follow-ups
//! like "is Change RTT better than Time shift, specifically?" use this
//! test.
//!
//! Uses the normal approximation with tie and zero-difference handling
//! (Pratt's method drops zeros), accurate for the N ≥ 10 block counts the
//! campaigns produce; smaller N is rejected.

use crate::ranking::rank_descending;
use crate::special::norm_cdf;
use serde::Serialize;

/// Result of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, Serialize)]
pub struct WilcoxonResult {
    /// Sum of ranks of positive differences (`a > b`).
    pub r_plus: f64,
    /// Sum of ranks of negative differences.
    pub r_minus: f64,
    /// Number of non-zero differences used.
    pub n_used: usize,
    /// Two-sided p-value (normal approximation).
    pub p_value: f64,
    /// Whether the difference is significant at the chosen α.
    pub is_different: bool,
}

/// Runs the two-sided test on paired samples `a[i]` vs `b[i]` at level
/// `alpha`. Zero differences are dropped (Pratt); ties among |d| receive
/// average ranks. Panics if fewer than 10 non-zero differences remain
/// (the normal approximation is not defensible below that).
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64], alpha: f64) -> WilcoxonResult {
    assert_eq!(a.len(), b.len(), "paired samples");
    let diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x - y)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    assert!(
        n >= 10,
        "need at least 10 non-zero differences for the normal approximation, got {n}"
    );
    // Rank |d| ascending: rank_descending on -|d|.
    let neg_abs: Vec<f64> = diffs.iter().map(|d| -d.abs()).collect();
    let ranks = rank_descending(&neg_abs);
    let mut r_plus = 0f64;
    let mut r_minus = 0f64;
    for (d, r) in diffs.iter().zip(&ranks) {
        if *d > 0.0 {
            r_plus += r;
        } else {
            r_minus += r;
        }
    }
    let w = r_plus.min(r_minus);
    let n_f = n as f64;
    let mean = n_f * (n_f + 1.0) / 4.0;
    let sd = (n_f * (n_f + 1.0) * (2.0 * n_f + 1.0) / 24.0).sqrt();
    // Continuity-corrected z.
    let z = (w - mean + 0.5) / sd;
    let p_value = (2.0 * norm_cdf(z)).min(1.0);
    WilcoxonResult {
        r_plus,
        r_minus,
        n_used: n,
        p_value,
        is_different: p_value < alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_with_noise_is_not_significant() {
        // Symmetric differences: no systematic winner.
        let a: Vec<f64> = (0..20).map(|i| 90.0 + (i % 5) as f64).collect();
        let b: Vec<f64> = (0..20).map(|i| 90.0 + ((i + 2) % 5) as f64).collect();
        let r = wilcoxon_signed_rank(&a, &b, 0.05);
        assert!(!r.is_different, "p = {}", r.p_value);
        assert!(r.p_value > 0.05);
    }

    #[test]
    fn consistent_winner_is_significant() {
        // a beats b on every one of 15 blocks, by varying margins.
        let a: Vec<f64> = (0..15).map(|i| 95.0 + (i % 4) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..15).map(|i| 92.0 + (i % 3) as f64 * 0.1).collect();
        let r = wilcoxon_signed_rank(&a, &b, 0.05);
        assert!(r.is_different, "p = {}", r.p_value);
        assert_eq!(r.r_minus, 0.0);
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn rank_sums_are_complementary() {
        let a: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..12)
            .map(|i| (i as f64) + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r = wilcoxon_signed_rank(&a, &b, 0.05);
        let n = r.n_used as f64;
        assert!((r.r_plus + r.r_minus - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn zeros_are_dropped() {
        let mut a: Vec<f64> = (0..14).map(|i| i as f64).collect();
        let b = a.clone();
        // Perturb 12 entries, leave 2 identical.
        for (i, v) in a.iter_mut().enumerate().take(12) {
            *v += if i % 2 == 0 { 0.5 } else { -0.5 };
        }
        let r = wilcoxon_signed_rank(&a, &b, 0.05);
        assert_eq!(r.n_used, 12);
    }

    #[test]
    #[should_panic(expected = "at least 10")]
    fn rejects_tiny_samples() {
        wilcoxon_signed_rank(&[1.0; 5], &[2.0; 5], 0.05);
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn rejects_unpaired() {
        wilcoxon_signed_rank(&[1.0; 12], &[2.0; 11], 0.05);
    }
}
