//! Classification metrics: confusion matrices, accuracy, F1.
//!
//! The paper measures accuracy on the (near-balanced) UCDAVIS19 test
//! partitions and switches to a weighted F1 on the imbalanced replication
//! datasets (Sec. 4.5.1). Fig. 3's per-class heatmaps are row-normalized
//! sums of per-run confusion matrices, which [`ConfusionMatrix`]
//! accumulates directly.

use serde::{Deserialize, Serialize};

/// A `k × k` confusion matrix: rows are true classes, columns predicted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Number of classes.
    pub k: usize,
    /// Row-major counts.
    pub counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// An empty matrix for `k` classes.
    pub fn new(k: usize) -> ConfusionMatrix {
        assert!(k >= 1);
        ConfusionMatrix {
            k,
            counts: vec![0; k * k],
        }
    }

    /// Builds directly from prediction/label pairs.
    pub fn from_predictions(k: usize, truths: &[usize], preds: &[usize]) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new(k);
        m.record_all(truths, preds);
        m
    }

    /// Records one observation.
    pub fn record(&mut self, truth: usize, pred: usize) {
        assert!(truth < self.k && pred < self.k, "class out of range");
        self.counts[truth * self.k + pred] += 1;
    }

    /// Records many observations.
    pub fn record_all(&mut self, truths: &[usize], preds: &[usize]) {
        assert_eq!(truths.len(), preds.len());
        for (&t, &p) in truths.iter().zip(preds) {
            self.record(t, p);
        }
    }

    /// Adds another matrix (the paper sums matrices across the 105 runs
    /// before normalizing).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.k, other.k);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Count at `(truth, pred)`.
    pub fn get(&self, truth: usize, pred: usize) -> u64 {
        self.counts[truth * self.k + pred]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.k).map(|i| self.get(i, i)).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Row-normalized matrix (per-true-class prediction distribution) —
    /// the representation of the paper's Fig. 3 heatmaps. Empty rows are
    /// all zero.
    pub fn row_normalized(&self) -> Vec<Vec<f64>> {
        (0..self.k)
            .map(|i| {
                let row: Vec<u64> = (0..self.k).map(|j| self.get(i, j)).collect();
                let sum: u64 = row.iter().sum();
                row.iter()
                    .map(|&c| if sum == 0 { 0.0 } else { c as f64 / sum as f64 })
                    .collect()
            })
            .collect()
    }

    /// Per-class recall (diagonal of the row-normalized matrix).
    pub fn per_class_recall(&self) -> Vec<f64> {
        self.row_normalized()
            .iter()
            .enumerate()
            .map(|(i, row)| row[i])
            .collect()
    }

    /// Support of class `i` (row sum: true instances).
    pub fn support(&self, i: usize) -> u64 {
        (0..self.k).map(|j| self.get(i, j)).sum()
    }

    /// Predicted count of class `i` (column sum).
    pub fn predicted(&self, i: usize) -> u64 {
        (0..self.k).map(|j| self.get(j, i)).sum()
    }

    /// Per-class precision. A class that was never *predicted* has an
    /// undefined precision (the `tp / (tp + fp)` denominator is zero),
    /// reported as `None` rather than `NaN` — the open-world replay
    /// hits this for every unknown class and for known classes the
    /// rejection threshold empties out.
    pub fn per_class_precision_checked(&self) -> Vec<Option<f64>> {
        (0..self.k)
            .map(|i| {
                let predicted = self.predicted(i);
                if predicted == 0 {
                    None
                } else {
                    Some(self.get(i, i) as f64 / predicted as f64)
                }
            })
            .collect()
    }

    /// Per-class recall with the zero-support case made explicit: a
    /// class with no true instances has an undefined recall, reported
    /// as `None` (the plain [`ConfusionMatrix::per_class_recall`]
    /// flattens it to `0.0`, which double-counts absent classes in
    /// macro averages).
    pub fn per_class_recall_checked(&self) -> Vec<Option<f64>> {
        (0..self.k)
            .map(|i| {
                let support = self.support(i);
                if support == 0 {
                    None
                } else {
                    Some(self.get(i, i) as f64 / support as f64)
                }
            })
            .collect()
    }

    /// Per-class F1 scores. Classes with no support and no predictions get
    /// F1 = 0.
    pub fn per_class_f1(&self) -> Vec<f64> {
        (0..self.k)
            .map(|i| {
                let tp = self.get(i, i) as f64;
                let support: u64 = (0..self.k).map(|j| self.get(i, j)).sum();
                let predicted: u64 = (0..self.k).map(|j| self.get(j, i)).sum();
                let denom = support as f64 + predicted as f64;
                if denom == 0.0 {
                    0.0
                } else {
                    2.0 * tp / denom
                }
            })
            .collect()
    }

    /// Macro-averaged F1 (unweighted class mean).
    pub fn macro_f1(&self) -> f64 {
        let f1 = self.per_class_f1();
        f1.iter().sum::<f64>() / self.k as f64
    }

    /// Support-weighted F1 — the metric of the paper's Table 8.
    pub fn weighted_f1(&self) -> f64 {
        let f1 = self.per_class_f1();
        let total = self.total() as f64;
        if total == 0.0 {
            return 0.0;
        }
        (0..self.k)
            .map(|i| {
                let support: u64 = (0..self.k).map(|j| self.get(i, j)).sum();
                f1[i] * support as f64 / total
            })
            .sum()
    }

    /// ASCII rendering of the row-normalized matrix with class names.
    pub fn ascii(&self, names: &[&str]) -> String {
        assert_eq!(names.len(), self.k);
        let norm = self.row_normalized();
        let width = names.iter().map(|n| n.len()).max().unwrap_or(4).max(5);
        let mut out = format!("{:>width$} ", "");
        for name in names {
            out.push_str(&format!("{name:>width$} "));
        }
        out.push('\n');
        for (i, row) in norm.iter().enumerate() {
            out.push_str(&format!("{:>width$} ", names[i]));
            for v in row {
                out.push_str(&format!("{:>width$.2} ", v));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let m = ConfusionMatrix::from_predictions(3, &[0, 1, 2, 0], &[0, 1, 2, 0]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.per_class_recall(), vec![1.0, 1.0, 1.0]);
        assert_eq!(m.macro_f1(), 1.0);
        assert_eq!(m.weighted_f1(), 1.0);
    }

    #[test]
    fn known_confusion() {
        // truth 0: predicted [0,0,1]; truth 1: predicted [1].
        let m = ConfusionMatrix::from_predictions(2, &[0, 0, 0, 1], &[0, 0, 1, 1]);
        assert_eq!(m.get(0, 0), 2);
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.get(1, 1), 1);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
        // Class 0: P=1, R=2/3, F1=0.8. Class 1: P=1/2, R=1, F1=2/3.
        let f1 = m.per_class_f1();
        assert!((f1[0] - 0.8).abs() < 1e-12);
        assert!((f1[1] - 2.0 / 3.0).abs() < 1e-12);
        // Weighted by support (3, 1): 0.8*0.75 + 0.667*0.25.
        assert!((m.weighted_f1() - (0.8 * 0.75 + (2.0 / 3.0) * 0.25)).abs() < 1e-12);
    }

    #[test]
    fn row_normalization() {
        let m = ConfusionMatrix::from_predictions(2, &[0, 0, 1, 1], &[0, 1, 1, 1]);
        let norm = m.row_normalized();
        assert_eq!(norm[0], vec![0.5, 0.5]);
        assert_eq!(norm[1], vec![0.0, 1.0]);
    }

    #[test]
    fn merge_accumulates() {
        let a = ConfusionMatrix::from_predictions(2, &[0], &[0]);
        let mut b = ConfusionMatrix::from_predictions(2, &[1], &[0]);
        b.merge(&a);
        assert_eq!(b.total(), 2);
        assert_eq!(b.get(0, 0), 1);
        assert_eq!(b.get(1, 0), 1);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = ConfusionMatrix::new(3);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.weighted_f1(), 0.0);
        assert!(m.row_normalized().iter().flatten().all(|&v| v == 0.0));
    }

    #[test]
    fn missing_class_f1_is_zero() {
        // Class 2 never appears in truth or predictions.
        let m = ConfusionMatrix::from_predictions(3, &[0, 1], &[0, 1]);
        assert_eq!(m.per_class_f1()[2], 0.0);
        assert!(m.macro_f1() < 1.0);
        assert_eq!(m.weighted_f1(), 1.0); // weighted ignores zero-support classes
    }

    #[test]
    fn absent_class_precision_and_recall_are_none_not_nan() {
        // Class 2 never appears in truth or predictions; class 1 is
        // present in truth but never predicted.
        let m = ConfusionMatrix::from_predictions(3, &[0, 1], &[0, 0]);
        let precision = m.per_class_precision_checked();
        assert_eq!(precision[0], Some(0.5));
        assert_eq!(precision[1], None, "never predicted => undefined, not NaN");
        assert_eq!(precision[2], None);
        let recall = m.per_class_recall_checked();
        assert_eq!(recall[0], Some(1.0));
        assert_eq!(recall[1], Some(0.0));
        assert_eq!(recall[2], None, "zero support => undefined, not NaN");
        // Nothing in the checked views is ever NaN.
        for v in precision.iter().chain(&recall).flatten() {
            assert!(v.is_finite());
        }
        assert_eq!(m.support(1), 1);
        assert_eq!(m.predicted(0), 2);
    }

    #[test]
    fn ascii_contains_names() {
        let m = ConfusionMatrix::from_predictions(2, &[0, 1], &[0, 1]);
        let s = m.ascii(&["cat", "dog"]);
        assert!(s.contains("cat") && s.contains("dog"));
        assert!(s.contains("1.00"));
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn rejects_out_of_range() {
        ConfusionMatrix::new(2).record(2, 0);
    }
}
