//! Principal component analysis and cluster-quality scoring.
//!
//! The Ref-Paper's public repository inspects the SimCLR latent space
//! with a 2-D t-SNE projection; this module provides the deterministic
//! equivalent — PCA by power iteration with deflation — plus the
//! silhouette score to *quantify* how well the latent space separates
//! classes (what the t-SNE plots show qualitatively).

use serde::Serialize;

/// A fitted PCA projection.
#[derive(Debug, Clone, Serialize)]
pub struct Pca {
    /// Feature means subtracted before projection.
    pub mean: Vec<f64>,
    /// Principal components, row-major `[k][d]`, unit length, ordered by
    /// decreasing explained variance.
    pub components: Vec<Vec<f64>>,
    /// Variance captured by each component.
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits the top-`k` components of row-major data `x` (`n × d`) by
    /// power iteration on the covariance with Hotelling deflation.
    ///
    /// Deterministic: the iteration starts from a fixed unit vector.
    pub fn fit(x: &[Vec<f64>], k: usize) -> Pca {
        assert!(!x.is_empty(), "PCA needs data");
        let n = x.len();
        let d = x[0].len();
        assert!(x.iter().all(|r| r.len() == d), "ragged rows");
        assert!(k >= 1 && k <= d, "k must be in 1..=d");

        let mut mean = vec![0f64; d];
        for row in x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        // Centered copy.
        let centered: Vec<Vec<f64>> = x
            .iter()
            .map(|row| row.iter().zip(&mean).map(|(v, m)| v - m).collect())
            .collect();

        // Covariance-free power iteration: v <- Xᵀ(Xv)/n, deflating by
        // previously found components.
        let mut components: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut explained = Vec::with_capacity(k);
        for comp_idx in 0..k {
            let mut v: Vec<f64> = (0..d)
                .map(|j| if j % (comp_idx + 2) == 0 { 1.0 } else { 0.5 })
                .collect();
            normalize(&mut v);
            let mut eigenvalue = 0f64;
            for _ in 0..200 {
                // w = Cov·v = Xᵀ(X·v)/n
                let mut xv = vec![0f64; n];
                for (i, row) in centered.iter().enumerate() {
                    xv[i] = dot(row, &v);
                }
                let mut w = vec![0f64; d];
                for (i, row) in centered.iter().enumerate() {
                    for (wj, rj) in w.iter_mut().zip(row) {
                        *wj += xv[i] * rj;
                    }
                }
                for wj in &mut w {
                    *wj /= n as f64;
                }
                // Deflate against earlier components.
                for c in &components {
                    let proj = dot(&w, c);
                    for (wj, cj) in w.iter_mut().zip(c) {
                        *wj -= proj * cj;
                    }
                }
                let new_eigenvalue = norm(&w);
                if new_eigenvalue < 1e-12 {
                    eigenvalue = 0.0;
                    break;
                }
                for wj in &mut w {
                    *wj /= new_eigenvalue;
                }
                let delta: f64 = w.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum::<f64>();
                v = w;
                eigenvalue = new_eigenvalue;
                if delta < 1e-10 {
                    break;
                }
            }
            components.push(v);
            explained.push(eigenvalue);
        }
        Pca {
            mean,
            components,
            explained_variance: explained,
        }
    }

    /// Projects one row onto the fitted components.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.mean.len());
        let centered: Vec<f64> = row.iter().zip(&self.mean).map(|(v, m)| v - m).collect();
        self.components.iter().map(|c| dot(&centered, c)).collect()
    }

    /// Projects many rows.
    pub fn transform_all(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|r| self.transform(r)).collect()
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

fn normalize(v: &mut [f64]) {
    let n = norm(v).max(1e-12);
    for x in v.iter_mut() {
        *x /= n;
    }
}

/// Mean silhouette score of labeled points: `(b − a) / max(a, b)` per
/// point, where `a` is the mean intra-class distance and `b` the mean
/// distance to the nearest other class. Ranges `[-1, 1]`; higher = better
/// class separation. Points in singleton classes score 0.
pub fn silhouette_score(x: &[Vec<f64>], labels: &[usize]) -> f64 {
    assert_eq!(x.len(), labels.len());
    assert!(!x.is_empty());
    let n = x.len();
    let classes: std::collections::BTreeSet<usize> = labels.iter().copied().collect();
    if classes.len() < 2 {
        return 0.0;
    }
    let mut total = 0f64;
    for i in 0..n {
        let mut intra_sum = 0f64;
        let mut intra_n = 0usize;
        let mut inter: std::collections::BTreeMap<usize, (f64, usize)> = Default::default();
        for j in 0..n {
            if i == j {
                continue;
            }
            let dist = x[i]
                .iter()
                .zip(&x[j])
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                .sqrt();
            if labels[j] == labels[i] {
                intra_sum += dist;
                intra_n += 1;
            } else {
                let e = inter.entry(labels[j]).or_insert((0.0, 0));
                e.0 += dist;
                e.1 += 1;
            }
        }
        if intra_n == 0 || inter.is_empty() {
            continue; // singleton class contributes 0
        }
        let a = intra_sum / intra_n as f64;
        let b = inter
            .values()
            .map(|&(sum, cnt)| sum / cnt as f64)
            .fold(f64::MAX, f64::min);
        total += (b - a) / a.max(b);
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.01;
            x.push(vec![0.0 + jitter, 0.0 - jitter, jitter]);
            y.push(0);
            x.push(vec![10.0 - jitter, 10.0 + jitter, jitter]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn first_component_captures_the_separation_axis() {
        let (x, _) = two_blobs();
        let pca = Pca::fit(&x, 2);
        // The blobs differ along (1, 1, 0)/√2: the first component must be
        // (anti)parallel to it.
        let c = &pca.components[0];
        let expected = 1.0 / 2f64.sqrt();
        assert!((c[0].abs() - expected).abs() < 0.05, "{c:?}");
        assert!((c[1].abs() - expected).abs() < 0.05, "{c:?}");
        assert!(c[2].abs() < 0.1, "{c:?}");
        // Variance ordering.
        assert!(pca.explained_variance[0] >= pca.explained_variance[1]);
    }

    #[test]
    fn components_are_orthonormal() {
        let (x, _) = two_blobs();
        let pca = Pca::fit(&x, 3);
        for i in 0..3 {
            assert!((norm(&pca.components[i]) - 1.0).abs() < 1e-6);
            for j in (i + 1)..3 {
                assert!(
                    dot(&pca.components[i], &pca.components[j]).abs() < 1e-4,
                    "components {i},{j} not orthogonal"
                );
            }
        }
    }

    #[test]
    fn projection_separates_the_blobs() {
        let (x, y) = two_blobs();
        let pca = Pca::fit(&x, 1);
        let proj = pca.transform_all(&x);
        // All class-0 projections on one side, class-1 on the other.
        let side: Vec<bool> = proj.iter().map(|p| p[0] > 0.0).collect();
        for (s, label) in side.iter().zip(&y) {
            assert_eq!(*s, side[*label], "classes must separate on PC1");
        }
    }

    #[test]
    fn transform_is_deterministic() {
        let (x, _) = two_blobs();
        let a = Pca::fit(&x, 2).transform_all(&x);
        let b = Pca::fit(&x, 2).transform_all(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn silhouette_high_for_separated_low_for_mixed() {
        let (x, y) = two_blobs();
        let separated = silhouette_score(&x, &y);
        assert!(separated > 0.9, "separated blobs: {separated}");
        // Scrambled labels (each "class" straddles both blobs): near zero
        // or negative. Points alternate blob0/blob1, so grouping indices
        // pairwise mixes the blobs.
        let y_mixed: Vec<usize> = (0..x.len()).map(|i| (i / 2) % 2).collect();
        let mixed = silhouette_score(&x, &y_mixed);
        assert!(mixed < 0.3, "mixed labels: {mixed}");
        assert!(separated > mixed);
    }

    #[test]
    fn silhouette_single_class_is_zero() {
        let x = vec![vec![0.0], vec![1.0]];
        assert_eq!(silhouette_score(&x, &[0, 0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn pca_rejects_ragged() {
        Pca::fit(&[vec![1.0, 2.0], vec![1.0]], 1);
    }
}
