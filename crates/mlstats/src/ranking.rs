//! Rank transforms with tie handling.
//!
//! The Demšar comparison procedure the paper follows (its Sec. 4.3.1)
//! first converts accuracies to ranks per dataset/split: the best value
//! gets rank 1, ties receive the average of the ranks they span.

/// Ranks `values` descending (largest value → rank 1.0), assigning tied
/// values their average rank — exactly the example in the paper:
/// accuracies (0.9, 0.7, 0.8) → ranks (1, 3, 2); (0.9, 0.9, 0.8) →
/// (1.5, 1.5, 3).
pub fn rank_descending(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[b].total_cmp(&values[a]));
    let mut ranks = vec![0f64; n];
    let mut i = 0;
    while i < n {
        // Find the tie group [i, j).
        let mut j = i + 1;
        while j < n && values[order[j]] == values[order[i]] {
            j += 1;
        }
        // Average rank of positions i..j (1-based).
        let avg = (i + 1..=j).sum::<usize>() as f64 / (j - i) as f64;
        for &idx in &order[i..j] {
            ranks[idx] = avg;
        }
        i = j;
    }
    ranks
}

/// Average rank per treatment across blocks: `scores[block][treatment]`.
/// Returns one mean rank per treatment. Panics on ragged blocks.
pub fn average_ranks(scores: &[Vec<f64>]) -> Vec<f64> {
    assert!(!scores.is_empty(), "no blocks");
    let k = scores[0].len();
    assert!(scores.iter().all(|row| row.len() == k), "ragged blocks");
    let mut sums = vec![0f64; k];
    for block in scores {
        for (s, r) in sums.iter_mut().zip(rank_descending(block)) {
            *s += r;
        }
    }
    sums.iter().map(|s| s / scores.len() as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        assert_eq!(rank_descending(&[0.9, 0.7, 0.8]), vec![1.0, 3.0, 2.0]);
        assert_eq!(rank_descending(&[0.9, 0.9, 0.8]), vec![1.5, 1.5, 3.0]);
    }

    #[test]
    fn all_tied() {
        assert_eq!(rank_descending(&[1.0, 1.0, 1.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn single_value() {
        assert_eq!(rank_descending(&[0.5]), vec![1.0]);
    }

    #[test]
    fn ranks_sum_is_invariant() {
        // Sum of ranks is n(n+1)/2 regardless of ties.
        let cases: Vec<Vec<f64>> = vec![
            vec![3.0, 1.0, 2.0, 5.0],
            vec![1.0, 1.0, 2.0, 2.0],
            vec![7.0, 7.0, 7.0, 1.0],
        ];
        for c in cases {
            let s: f64 = rank_descending(&c).iter().sum();
            assert!((s - 10.0).abs() < 1e-12, "{c:?}");
        }
    }

    #[test]
    fn average_ranks_across_blocks() {
        // Treatment 0 always best, treatment 2 always worst.
        let scores = vec![
            vec![0.9, 0.8, 0.1],
            vec![0.95, 0.5, 0.2],
            vec![0.7, 0.6, 0.3],
        ];
        let avg = average_ranks(&scores);
        assert_eq!(avg, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_blocks() {
        average_ranks(&[vec![1.0, 2.0], vec![1.0]]);
    }
}
