//! Percentiles and boxplot summaries (paper Fig. 11, App. E).

use serde::Serialize;

/// Linear-interpolation percentile of `values` at `q ∈ [0, 1]`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1], got {q}");
    assert!(
        values.iter().all(|v| v.is_finite()),
        "percentile requires finite values; got a NaN or infinity \
         (check the metric that produced this sample)"
    );
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A boxplot summary with whiskers at chosen percentiles (the paper's
/// Fig. 11 uses 95th-percentile whiskers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BoxStats {
    /// Lower whisker.
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker.
    pub whisker_hi: f64,
    /// Sample mean.
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

impl BoxStats {
    /// Builds a summary with whiskers at the `whisker` / `1 − whisker`
    /// percentiles (e.g. 0.05 → 5th and 95th).
    pub fn with_whiskers(values: &[f64], whisker: f64) -> BoxStats {
        assert!((0.0..0.5).contains(&whisker));
        BoxStats {
            whisker_lo: percentile(values, whisker),
            q1: percentile(values, 0.25),
            median: percentile(values, 0.5),
            q3: percentile(values, 0.75),
            whisker_hi: percentile(values, 1.0 - whisker),
            mean: values.iter().sum::<f64>() / values.len() as f64,
            n: values.len(),
        }
    }

    /// The paper's Fig. 11 convention: whiskers at the 5th/95th
    /// percentile.
    pub fn fig11(values: &[f64]) -> BoxStats {
        BoxStats::with_whiskers(values, 0.05)
    }

    /// One-line rendering: `n=15 [lo | q1 med q3 | hi] mean=…`.
    pub fn line(&self) -> String {
        format!(
            "n={} [{:.2} | {:.2} {:.2} {:.2} | {:.2}] mean={:.2}",
            self.n, self.whisker_lo, self.q1, self.median, self.q3, self.whisker_hi, self.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_known_values() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.25), 2.0);
        // Interpolation: q=0.1 → pos 0.4 → 1.4.
        assert!((percentile(&v, 0.1) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        assert_eq!(percentile(&[5.0, 1.0, 3.0], 0.5), 3.0);
    }

    #[test]
    fn box_stats_ordering_invariant() {
        let v: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let b = BoxStats::fig11(&v);
        assert!(b.whisker_lo <= b.q1);
        assert!(b.q1 <= b.median);
        assert!(b.median <= b.q3);
        assert!(b.q3 <= b.whisker_hi);
        assert_eq!(b.n, 100);
    }

    #[test]
    fn box_stats_constant() {
        let b = BoxStats::fig11(&[4.0; 8]);
        assert_eq!(b.median, 4.0);
        assert_eq!(b.whisker_lo, 4.0);
        assert_eq!(b.whisker_hi, 4.0);
        assert_eq!(b.mean, 4.0);
    }

    #[test]
    fn line_renders() {
        let b = BoxStats::fig11(&[1.0, 2.0, 3.0]);
        assert!(b.line().contains("n=3"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn percentile_rejects_nan_with_a_diagnosis() {
        // Regression: this used to die inside sort_by with an opaque
        // `Option::unwrap` panic; now the input is validated up front.
        percentile(&[1.0, f64::NAN, 3.0], 0.5);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn percentile_rejects_infinity() {
        percentile(&[1.0, f64::INFINITY], 0.5);
    }
}
