//! Special functions: log-gamma, regularized incomplete beta, Student-t,
//! standard normal, and the studentized range distribution.
//!
//! Everything downstream (confidence intervals, Nemenyi critical
//! distances, Tukey p-values) reduces to these. Implementations follow
//! the classic numerical recipes: Lanczos for `ln Γ`, Lentz's continued
//! fraction for `I_x(a,b)`, bisection for inverses, and Gauss–Legendre
//! quadrature for the studentized-range CDF.

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma needs x > 0, got {x}");
    const COEFFS: [f64; 8] = [
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return (std::f64::consts::PI / (std::f64::consts::PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + i as f64 + 1.0);
    }
    let t = x + 7.5;
    0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via Lentz's continued
/// fraction.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc needs positive parameters");
    assert!(
        (0.0..=1.0).contains(&x),
        "beta_inc needs x in [0,1], got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // Use the symmetry relation to keep the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_cf(a, b, x) / a
    } else {
        1.0 - beta_inc(b, a, 1.0 - x)
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-30;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0f64;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Student-t CDF with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0);
    let x = df / (df + t * t);
    let p = 0.5 * beta_inc(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided Student-t critical value: the `t*` with
/// `P(|T| ≤ t*) = confidence` (e.g. 0.95 → the 97.5 % quantile).
pub fn t_critical(df: f64, confidence: f64) -> f64 {
    assert!((0.0..1.0).contains(&confidence));
    let target = 0.5 + confidence / 2.0;
    bisect(|t| t_cdf(t, df), target, 0.0, 1e3)
}

/// Standard normal PDF.
pub fn norm_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (std::f64::consts::TAU).sqrt()
}

/// Standard normal CDF (via `erf`-free Abramowitz–Stegun-grade rational
/// approximation built on the incomplete beta is overkill; use the
/// complementary error function series through `erfc`-style Chebyshev).
pub fn norm_cdf(z: f64) -> f64 {
    // Hart-like rational approximation, |error| < 7.5e-8 — ample for the
    // quadratures here.
    let x = z / std::f64::consts::SQRT_2;
    0.5 * erfc_approx(-x)
}

fn erfc_approx(x: f64) -> f64 {
    // Numerical-recipes erfc with Chebyshev fit; relative error < 1.2e-7.
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// CDF of the studentized range with `k` groups and infinite degrees of
/// freedom: `P(Q ≤ q) = k ∫ φ(z) [Φ(z) − Φ(z−q)]^(k−1) dz`.
///
/// The infinite-df form is the one underlying the Nemenyi q table the
/// paper uses (its `q_0.05 = 2.949` for k=7 is `q_{.05,7,∞}/√2`); for the
/// Tukey comparisons the campaign sample counts are large enough that the
/// df→∞ approximation is accurate to the digits reported.
pub fn srange_cdf(q: f64, k: usize) -> f64 {
    assert!(k >= 2);
    if q <= 0.0 {
        return 0.0;
    }
    // Integrate over z in [-8, 8] with composite Simpson, 4000 intervals.
    let (lo, hi, n) = (-8.0f64, 8.0f64, 4000usize);
    let h = (hi - lo) / n as f64;
    let f = |z: f64| norm_pdf(z) * (norm_cdf(z) - norm_cdf(z - q)).powi(k as i32 - 1);
    let mut sum = f(lo) + f(hi);
    for i in 1..n {
        let z = lo + i as f64 * h;
        sum += if i % 2 == 1 { 4.0 } else { 2.0 } * f(z);
    }
    (k as f64 * sum * h / 3.0).clamp(0.0, 1.0)
}

/// Upper-`alpha` critical value of the studentized range
/// (`P(Q > q) = alpha`) with `k` groups, df = ∞.
pub fn srange_critical(k: usize, alpha: f64) -> f64 {
    assert!((0.0..1.0).contains(&alpha));
    bisect(|q| srange_cdf(q, k), 1.0 - alpha, 0.0, 50.0)
}

/// Monotone bisection solve `f(x) = target` on `[lo, hi]`.
fn bisect(f: impl Fn(f64) -> f64, target: f64, mut lo: f64, mut hi: f64) -> f64 {
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn beta_inc_boundaries_and_symmetry() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        let x = 0.3;
        assert!((beta_inc(2.5, 1.5, x) - (1.0 - beta_inc(1.5, 2.5, 1.0 - x))).abs() < 1e-10);
        // Uniform special case: I_x(1,1) = x.
        assert!((beta_inc(1.0, 1.0, 0.42) - 0.42).abs() < 1e-10);
    }

    #[test]
    fn t_cdf_known_values() {
        // Symmetry and median.
        assert!((t_cdf(0.0, 5.0) - 0.5).abs() < 1e-12);
        assert!((t_cdf(1.0, 10.0) + t_cdf(-1.0, 10.0) - 1.0).abs() < 1e-10);
        // t with df→∞ approaches the normal: P(T<1.96) ≈ 0.975.
        assert!((t_cdf(1.96, 1e6) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn t_critical_reference_values() {
        // Standard table values for 95 % two-sided.
        assert!((t_critical(14.0, 0.95) - 2.1448).abs() < 1e-3); // the paper's 15-experiment CIs
        assert!((t_critical(4.0, 0.95) - 2.7764).abs() < 1e-3);
        assert!((t_critical(1e6, 0.95) - 1.9600).abs() < 1e-3);
    }

    #[test]
    fn norm_cdf_reference_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_cdf(1.96) - 0.9750).abs() < 1e-4);
        assert!((norm_cdf(-1.0) - 0.15866).abs() < 1e-4);
    }

    #[test]
    fn srange_critical_matches_nemenyi_table() {
        // The paper (Sec. 4.3.1): q_0.05 = 2.949 for k = 7, where the
        // Nemenyi q is q_{.05,k,∞}/√2.
        let q7 = srange_critical(7, 0.05) / std::f64::consts::SQRT_2;
        assert!((q7 - 2.949).abs() < 5e-3, "k=7: {q7}");
        // Other standard Nemenyi values (Demšar 2006, Table 5).
        let q2 = srange_critical(2, 0.05) / std::f64::consts::SQRT_2;
        assert!((q2 - 1.960).abs() < 5e-3, "k=2: {q2}");
        let q5 = srange_critical(5, 0.05) / std::f64::consts::SQRT_2;
        assert!((q5 - 2.728).abs() < 5e-3, "k=5: {q5}");
    }

    #[test]
    fn srange_cdf_monotone_in_q_and_k() {
        assert!(srange_cdf(1.0, 3) < srange_cdf(2.0, 3));
        // More groups shift the range right: same q covers less mass.
        assert!(srange_cdf(3.0, 7) < srange_cdf(3.0, 3));
        assert_eq!(srange_cdf(-1.0, 3), 0.0);
    }
}
