//! Friedman test and Nemenyi post-hoc critical-distance analysis.
//!
//! Paper Sec. 4.3.1: accuracies are turned into per-split rankings,
//! averaged, and compared pairwise with the Nemenyi test whose critical
//! distance is `CD = q_α √(k(k+1)/(6N))`. Augmentations whose average
//! ranks are within `CD` of each other are statistically
//! indistinguishable; the paper's Fig. 5–7 are drawn from exactly this
//! structure, which [`CriticalDistance::ascii_plot`] renders in text.

use crate::ranking::average_ranks;
use crate::special::srange_critical;
use serde::Serialize;

/// Result of a critical-distance analysis over `k` treatments and `N`
/// blocks.
#[derive(Debug, Clone, Serialize)]
pub struct CriticalDistance {
    /// Treatment names.
    pub names: Vec<String>,
    /// Mean rank per treatment (lower = better).
    pub mean_ranks: Vec<f64>,
    /// The critical distance at the chosen α.
    pub cd: f64,
    /// Number of blocks (datasets × splits) the ranks aggregate.
    pub n_blocks: usize,
    /// Friedman χ² statistic (with the tie-free formula).
    pub friedman_chi2: f64,
}

impl CriticalDistance {
    /// Runs the full Demšar procedure: ranks per block, mean ranks,
    /// Friedman statistic, Nemenyi CD at level `alpha`.
    ///
    /// `scores[block][treatment]` are the raw accuracies/F1s.
    pub fn analyze(names: &[&str], scores: &[Vec<f64>], alpha: f64) -> CriticalDistance {
        let k = names.len();
        assert!(k >= 2, "need at least two treatments");
        assert!(!scores.is_empty(), "need at least one block");
        assert!(
            scores.iter().all(|b| b.len() == k),
            "block width != treatment count"
        );
        let n = scores.len();
        let mean_ranks = average_ranks(scores);

        // Friedman χ² = 12N/(k(k+1)) [Σ R_j² − k(k+1)²/4].
        let sum_r2: f64 = mean_ranks.iter().map(|r| r * r).sum();
        let friedman_chi2 = 12.0 * n as f64 / (k as f64 * (k as f64 + 1.0))
            * (sum_r2 - k as f64 * (k as f64 + 1.0).powi(2) / 4.0);

        // q_α for the Nemenyi test is the studentized range critical value
        // divided by √2 (Demšar 2006).
        let q_alpha = srange_critical(k, alpha) / std::f64::consts::SQRT_2;
        let cd = q_alpha * (k as f64 * (k as f64 + 1.0) / (6.0 * n as f64)).sqrt();

        CriticalDistance {
            names: names.iter().map(|s| s.to_string()).collect(),
            mean_ranks,
            cd,
            n_blocks: n,
            friedman_chi2,
        }
    }

    /// Whether treatments `i` and `j` are statistically different (their
    /// mean ranks differ by more than the CD).
    pub fn is_different(&self, i: usize, j: usize) -> bool {
        (self.mean_ranks[i] - self.mean_ranks[j]).abs() > self.cd
    }

    /// Maximal groups of mutually-indistinguishable treatments (the
    /// horizontal bars of a CD plot), each sorted by rank. Groups that are
    /// subsets of other groups are dropped.
    pub fn indistinct_groups(&self) -> Vec<Vec<usize>> {
        let k = self.names.len();
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| self.mean_ranks[a].total_cmp(&self.mean_ranks[b]));
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for start in 0..k {
            // Longest run starting at `start` whose span is within CD.
            let mut group = vec![order[start]];
            for &cand in &order[start + 1..] {
                if (self.mean_ranks[cand] - self.mean_ranks[order[start]]).abs() <= self.cd {
                    group.push(cand);
                } else {
                    break;
                }
            }
            // Keep only maximal groups.
            if !groups.iter().any(|g| group.iter().all(|m| g.contains(m))) {
                groups.push(group);
            }
        }
        groups
    }

    /// Treatments ranked best-first as `(name, mean_rank)`.
    pub fn ranked(&self) -> Vec<(String, f64)> {
        let mut pairs: Vec<(String, f64)> = self
            .names
            .iter()
            .cloned()
            .zip(self.mean_ranks.iter().copied())
            .collect();
        pairs.sort_by(|a, b| a.1.total_cmp(&b.1));
        pairs
    }

    /// Text rendering of the CD plot: treatments best-first with their
    /// mean rank, plus the indistinguishability groups — the information
    /// content of the paper's Fig. 5.
    pub fn ascii_plot(&self) -> String {
        let mut out = format!(
            "CD = {:.3}  (k={}, N={}, Friedman chi2={:.2})\n",
            self.cd,
            self.names.len(),
            self.n_blocks,
            self.friedman_chi2
        );
        for (name, rank) in self.ranked() {
            out.push_str(&format!("  {rank:>5.2}  {name}\n"));
        }
        for (gi, group) in self.indistinct_groups().iter().enumerate() {
            let members: Vec<&str> = group.iter().map(|&i| self.names[i].as_str()).collect();
            out.push_str(&format!("  group {}: {{{}}}\n", gi + 1, members.join(", ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cd_value() {
        // Paper Sec. 4.3.2: α=0.05, k=7, N=30 → CD = 1.644.
        let names = ["a", "b", "c", "d", "e", "f", "g"];
        let scores: Vec<Vec<f64>> = (0..30)
            .map(|b| (0..7).map(|t| (b * 7 + t) as f64 % 13.0).collect())
            .collect();
        let cd = CriticalDistance::analyze(&names, &scores, 0.05);
        assert!((cd.cd - 1.644).abs() < 5e-3, "CD {}", cd.cd);
        assert_eq!(cd.n_blocks, 30);
    }

    #[test]
    fn clear_winner_is_distinguishable() {
        // Treatment 0 always wins by a mile across many blocks.
        let names = ["best", "mid", "worst"];
        let scores: Vec<Vec<f64>> = (0..40)
            .map(|b| vec![0.95 + 0.001 * (b % 3) as f64, 0.5, 0.1])
            .collect();
        let cd = CriticalDistance::analyze(&names, &scores, 0.05);
        assert_eq!(cd.mean_ranks, vec![1.0, 2.0, 3.0]);
        assert!(cd.is_different(0, 2));
        assert!(cd.friedman_chi2 > 10.0);
    }

    #[test]
    fn noise_is_indistinguishable() {
        // Alternating winners: mean ranks nearly equal.
        let names = ["a", "b"];
        let scores: Vec<Vec<f64>> = (0..20)
            .map(|b| {
                if b % 2 == 0 {
                    vec![0.9, 0.8]
                } else {
                    vec![0.8, 0.9]
                }
            })
            .collect();
        let cd = CriticalDistance::analyze(&names, &scores, 0.05);
        assert!(!cd.is_different(0, 1));
        let groups = cd.indistinct_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn groups_cover_all_treatments() {
        let names = ["a", "b", "c", "d"];
        let scores: Vec<Vec<f64>> = (0..10)
            .map(|b| vec![0.9, 0.88 + 0.001 * b as f64, 0.5, 0.48])
            .collect();
        let cd = CriticalDistance::analyze(&names, &scores, 0.05);
        let groups = cd.indistinct_groups();
        let covered: std::collections::HashSet<usize> = groups.iter().flatten().copied().collect();
        assert_eq!(covered.len(), 4);
    }

    #[test]
    fn ascii_plot_contains_everything() {
        let names = ["alpha", "beta"];
        let scores = vec![vec![0.9, 0.1], vec![0.8, 0.2]];
        let plot = CriticalDistance::analyze(&names, &scores, 0.05).ascii_plot();
        assert!(plot.contains("alpha"));
        assert!(plot.contains("beta"));
        assert!(plot.contains("CD ="));
        assert!(plot.contains("group 1"));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_treatment() {
        CriticalDistance::analyze(&["only"], &[vec![1.0]], 0.05);
    }
}
