//! # mlstats — statistical analysis for modeling campaigns
//!
//! The replication's core methodological contribution over the Ref-Paper
//! is *statistical rigor*: every reported number carries a 95 % confidence
//! interval, augmentations are compared with the Demšar (2006) procedure —
//! Friedman ranks plus a post-hoc Nemenyi test with critical-distance
//! plots (paper Fig. 5–7) — and flowpic resolutions are compared with a
//! Tukey post-hoc test (paper Table 10, App. F). This crate implements all
//! of that from first principles:
//!
//! * [`special`] — log-gamma, regularized incomplete beta, Student-t CDF
//!   and quantiles, the studentized-range distribution;
//! * [`ci`] — mean ± 95 % t-interval summaries;
//! * [`ranking`] — rank transforms with average-rank tie handling;
//! * [`nemenyi`] — Friedman test and the Nemenyi critical distance;
//! * [`tukey`] — Tukey HSD p-values;
//! * [`kde`] — Gaussian kernel density estimation (paper Fig. 8);
//! * [`metrics`] — confusion matrices, accuracy, macro/weighted F1;
//! * [`quantiles`] — percentiles and boxplot summaries (paper Fig. 11);
//! * [`reservoir`] — bounded deterministic streaming reservoirs (the
//!   drift monitor's fixed-memory sketch of live traffic).

pub mod ci;
pub mod kde;
pub mod metrics;
pub mod nemenyi;
pub mod pca;
pub mod quantiles;
pub mod ranking;
pub mod reservoir;
pub mod special;
pub mod tukey;
pub mod wilcoxon;

pub use ci::MeanCi;
pub use metrics::ConfusionMatrix;
pub use reservoir::Reservoir;
