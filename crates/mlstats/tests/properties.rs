//! Property-based tests of the statistical machinery.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn ci_contains_the_mean_and_is_symmetric(
        samples in prop::collection::vec(-100.0f64..100.0, 2..40),
    ) {
        let ci = MeanCi::ci95(&samples);
        prop_assert!(ci.half_width >= 0.0);
        prop_assert!(ci.lo() <= ci.mean && ci.mean <= ci.hi());
        prop_assert!(((ci.hi() - ci.mean) - (ci.mean - ci.lo())).abs() < 1e-9);
    }

    #[test]
    fn rank_sum_invariant(values in prop::collection::vec(-10.0f64..10.0, 1..20)) {
        let ranks = rank_descending(&values);
        let n = values.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
        prop_assert!(ranks.iter().all(|&r| (1.0..=n).contains(&r)));
        // Larger value never gets a (strictly) worse rank.
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] > values[j] {
                    prop_assert!(ranks[i] < ranks[j]);
                }
            }
        }
    }

    #[test]
    fn percentile_is_monotone_and_bounded(
        values in prop::collection::vec(-50.0f64..50.0, 1..30),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let lo = percentile(&values, lo_q);
        let hi = percentile(&values, hi_q);
        prop_assert!(lo <= hi + 1e-12);
        let min = values.iter().copied().fold(f64::MAX, f64::min);
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        prop_assert!(lo >= min - 1e-12 && hi <= max + 1e-12);
    }

    #[test]
    fn box_stats_are_ordered(values in prop::collection::vec(-50.0f64..50.0, 2..40)) {
        let b = BoxStats::fig11(&values);
        prop_assert!(b.whisker_lo <= b.q1);
        prop_assert!(b.q1 <= b.median && b.median <= b.q3);
        prop_assert!(b.q3 <= b.whisker_hi);
    }

    #[test]
    fn cdfs_are_monotone_and_bounded(
        x1 in -6.0f64..6.0,
        x2 in -6.0f64..6.0,
        df in 1.0f64..100.0,
    ) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        for f in [
            Box::new(move |x: f64| norm_cdf(x)) as Box<dyn Fn(f64) -> f64>,
            Box::new(move |x: f64| t_cdf(x, df)),
        ] {
            let a = f(lo);
            let b = f(hi);
            prop_assert!((0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b));
            prop_assert!(a <= b + 1e-9);
        }
    }

    #[test]
    fn beta_inc_is_monotone_in_x(
        a in 0.2f64..8.0,
        b in 0.2f64..8.0,
        x1 in 0.0f64..1.0,
        x2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(beta_inc(a, b, lo) <= beta_inc(a, b, hi) + 1e-9);
    }

    #[test]
    fn srange_cdf_monotone(k in 2usize..8, q1 in 0.0f64..8.0, q2 in 0.0f64..8.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(srange_cdf(lo, k) <= srange_cdf(hi, k) + 1e-9);
    }

    #[test]
    fn confusion_metrics_are_valid(
        truths in prop::collection::vec(0usize..4, 1..60),
        preds in prop::collection::vec(0usize..4, 60),
    ) {
        let preds = &preds[..truths.len()];
        let m = ConfusionMatrix::from_predictions(4, &truths, preds);
        prop_assert_eq!(m.total() as usize, truths.len());
        prop_assert!((0.0..=1.0).contains(&m.accuracy()));
        prop_assert!((0.0..=1.0).contains(&m.macro_f1()));
        prop_assert!((0.0..=1.0).contains(&m.weighted_f1()));
        for row in m.row_normalized() {
            let sum: f64 = row.iter().sum();
            prop_assert!(sum.abs() < 1e-9 || (sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn nemenyi_cd_shrinks_with_more_blocks(
        base in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 4), 4..8),
    ) {
        let names = ["a", "b", "c", "d"];
        let small = CriticalDistance::analyze(&names, &base, 0.05);
        let mut doubled = base.clone();
        doubled.extend(base.iter().cloned());
        let large = CriticalDistance::analyze(&names, &doubled, 0.05);
        prop_assert!(large.cd < small.cd);
        // Mean ranks are in [1, k].
        prop_assert!(small.mean_ranks.iter().all(|&r| (1.0..=4.0).contains(&r)));
    }

    #[test]
    fn tukey_p_values_are_probabilities(
        ga in prop::collection::vec(0.0f64..100.0, 3..20),
        gb in prop::collection::vec(0.0f64..100.0, 3..20),
    ) {
        let t = TukeyHsd::analyze(&["a", "b"], &[ga, gb], 0.05);
        for p in &t.pairs {
            prop_assert!((0.0..=1.0).contains(&p.p_value));
            prop_assert_eq!(p.is_different, p.p_value < 0.05);
        }
    }

    #[test]
    fn kde_density_is_nonnegative(
        samples in prop::collection::vec(-10.0f64..10.0, 1..50),
        x in -20.0f64..20.0,
    ) {
        let kde = Kde::silverman(&samples);
        prop_assert!(kde.density(x) >= 0.0);
        prop_assert!(kde.density(x).is_finite());
    }
}
