//! Property-based tests of the GBDT baseline.

use proptest::prelude::*;

prop_compose! {
    fn arb_problem()(
        n_classes in 2usize..5,
    )(
        rows in prop::collection::vec(
            prop::collection::vec(-10.0f32..10.0, 4),
            8..60,
        ),
        n_classes in Just(n_classes),
    ) -> (Vec<Vec<f32>>, Vec<usize>, usize) {
        let labels = rows
            .iter()
            .enumerate()
            .map(|(i, _)| i % n_classes)
            .collect();
        (rows, labels, n_classes)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn predictions_are_always_in_class_range((x, y, k) in arb_problem()) {
        let cfg = GbdtConfig { n_rounds: 3, ..Default::default() };
        let model = GbdtClassifier::fit(&x, &y, k, &cfg);
        for row in &x {
            prop_assert!(model.predict(row) < k);
            let p = model.predict_proba(row);
            prop_assert_eq!(p.len(), k);
            prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn training_is_deterministic((x, y, k) in arb_problem()) {
        let cfg = GbdtConfig { n_rounds: 3, ..Default::default() };
        let a = GbdtClassifier::fit(&x, &y, k, &cfg);
        let b = GbdtClassifier::fit(&x, &y, k, &cfg);
        for row in x.iter().take(10) {
            prop_assert_eq!(a.raw_scores(row), b.raw_scores(row));
        }
    }

    #[test]
    fn depth_respects_configuration((x, y, k) in arb_problem(), depth in 1usize..5) {
        let cfg = GbdtConfig { n_rounds: 3, max_depth: depth, ..Default::default() };
        let model = GbdtClassifier::fit(&x, &y, k, &cfg);
        prop_assert!(model.average_depth() <= depth as f64);
    }

    #[test]
    fn binner_is_monotone_per_feature(
        values in prop::collection::vec(-100.0f32..100.0, 4..80),
        bins in 2usize..32,
    ) {
        let rows: Vec<Vec<f32>> = values.iter().map(|&v| vec![v]).collect();
        let m = BinnedMatrix::from_rows(&rows, bins);
        prop_assert!(m.n_bins(0) <= bins);
        // Larger raw value never lands in a smaller bin.
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] < values[j] {
                    prop_assert!(m.bin(i, 0) <= m.bin(j, 0));
                }
            }
        }
    }

    #[test]
    fn constant_labels_degenerate_gracefully(
        rows in prop::collection::vec(prop::collection::vec(-5.0f32..5.0, 3), 4..20),
    ) {
        // All samples share one label out of two classes: the model must
        // still train and predict that label.
        let y = vec![1usize; rows.len()];
        let cfg = GbdtConfig { n_rounds: 3, ..Default::default() };
        let model = GbdtClassifier::fit(&rows, &y, 2, &cfg);
        for row in &rows {
            prop_assert_eq!(model.predict(row), 1);
        }
    }
}
