//! A single regression tree grown with the XGBoost split criterion.
//!
//! Trees are grown depth-wise with histogram split finding: for every
//! node, per-feature gradient/hessian histograms over the binned matrix
//! are accumulated and the best bin boundary maximizes
//!
//! ```text
//! gain = ½ [ G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ) ] − γ
//! ```
//!
//! Leaves take the Newton weight `−G/(H+λ)`, scaled by the learning rate
//! at the booster level. Nodes stop splitting when the best gain is
//! non-positive, the depth limit is reached, or a child would fall below
//! the minimum hessian weight.

use crate::binner::BinnedMatrix;
use serde::{Deserialize, Serialize};

/// Tree-growing hyper-parameters (a subset of [`crate::GbdtConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0). XGBoost default: 6.
    pub max_depth: usize,
    /// L2 regularization λ on leaf weights. XGBoost default: 1.
    pub lambda: f32,
    /// Minimum split gain γ. XGBoost default: 0.
    pub gamma: f32,
    /// Minimum sum of hessians per child. XGBoost default: 1.
    pub min_child_weight: f32,
}

/// A tree node: either an internal split or a leaf.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Node {
    /// Internal split: rows with `value <= threshold` on `feature` go to
    /// `left`, others to `right`.
    Split {
        /// Feature index.
        feature: usize,
        /// Raw-value threshold (inclusive on the left).
        threshold: f32,
        /// Left child node index.
        left: usize,
        /// Right child node index.
        right: usize,
    },
    /// Leaf with an output weight.
    Leaf {
        /// The leaf's contribution to the raw score.
        weight: f32,
    },
}

/// A grown regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tree {
    /// Nodes in construction order; node 0 is the root.
    pub nodes: Vec<Node>,
}

impl Tree {
    /// Grows a tree on `rows` of the binned matrix against gradients `g`
    /// and hessians `h`.
    pub fn grow(
        matrix: &BinnedMatrix,
        g: &[f32],
        h: &[f32],
        rows: &[usize],
        params: &TreeParams,
    ) -> Tree {
        assert_eq!(g.len(), matrix.n_rows);
        assert_eq!(h.len(), matrix.n_rows);
        let mut tree = Tree { nodes: Vec::new() };
        tree.grow_node(matrix, g, h, rows.to_vec(), 0, params);
        tree
    }

    fn grow_node(
        &mut self,
        matrix: &BinnedMatrix,
        g: &[f32],
        h: &[f32],
        rows: Vec<usize>,
        depth: usize,
        params: &TreeParams,
    ) -> usize {
        let g_sum: f32 = rows.iter().map(|&i| g[i]).sum();
        let h_sum: f32 = rows.iter().map(|&i| h[i]).sum();

        let make_leaf = |tree: &mut Tree| {
            let weight = -g_sum / (h_sum + params.lambda);
            tree.nodes.push(Node::Leaf { weight });
            tree.nodes.len() - 1
        };

        if depth >= params.max_depth || rows.len() < 2 {
            return make_leaf(self);
        }

        // Histogram split search.
        let parent_score = g_sum * g_sum / (h_sum + params.lambda);
        let mut best: Option<(f32, usize, u8)> = None; // (gain, feature, last-left bin)
        let mut hist_g = vec![0f32; 256];
        let mut hist_h = vec![0f32; 256];
        for f in 0..matrix.n_features {
            let n_bins = matrix.n_bins(f);
            if n_bins < 2 {
                continue;
            }
            hist_g[..n_bins].iter_mut().for_each(|v| *v = 0.0);
            hist_h[..n_bins].iter_mut().for_each(|v| *v = 0.0);
            for &i in &rows {
                let b = matrix.bin(i, f) as usize;
                hist_g[b] += g[i];
                hist_h[b] += h[i];
            }
            let mut gl = 0f32;
            let mut hl = 0f32;
            for b in 0..n_bins - 1 {
                gl += hist_g[b];
                hl += hist_h[b];
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                if hl < params.min_child_weight || hr < params.min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda)
                        - parent_score)
                    - params.gamma;
                if gain > 0.0 && best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, f, b as u8));
                }
            }
        }

        let Some((_, feature, last_left_bin)) = best else {
            return make_leaf(self);
        };

        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
            .into_iter()
            .partition(|&i| matrix.bin(i, feature) <= last_left_bin);
        debug_assert!(!left_rows.is_empty() && !right_rows.is_empty());

        let threshold = matrix.thresholds[feature][last_left_bin as usize];
        let node_idx = self.nodes.len();
        self.nodes.push(Node::Leaf { weight: 0.0 }); // placeholder
        let left = self.grow_node(matrix, g, h, left_rows, depth + 1, params);
        let right = self.grow_node(matrix, g, h, right_rows, depth + 1, params);
        self.nodes[node_idx] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_idx
    }

    /// Predicts the raw score of a feature row.
    pub fn predict(&self, x: &[f32]) -> f32 {
        let mut idx = 0usize;
        loop {
            match self.nodes[idx] {
                Node::Leaf { weight } => return weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if x[feature] <= threshold { left } else { right };
                }
            }
        }
    }

    /// Maximum leaf depth of the tree (0 for a stump leaf).
    pub fn depth(&self) -> usize {
        self.depth_from(0)
    }

    fn depth_from(&self, idx: usize) -> usize {
        match self.nodes[idx] {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => {
                1 + self.depth_from(left).max(self.depth_from(right))
            }
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TreeParams {
        TreeParams {
            max_depth: 6,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }

    #[test]
    fn splits_separable_gradients() {
        // Feature 0 separates positive from negative gradients.
        let x: Vec<Vec<f32>> = (0..20)
            .map(|i| vec![if i < 10 { 0.0 } else { 1.0 }])
            .collect();
        let m = BinnedMatrix::from_rows(&x, 8);
        let g: Vec<f32> = (0..20).map(|i| if i < 10 { 1.0 } else { -1.0 }).collect();
        let h = vec![1.0f32; 20];
        let rows: Vec<usize> = (0..20).collect();
        let tree = Tree::grow(&m, &g, &h, &rows, &params());
        assert!(tree.depth() >= 1);
        // Left group (g=+1): weight = -10/(10+1) < 0; right > 0.
        assert!(tree.predict(&[0.0]) < -0.5);
        assert!(tree.predict(&[1.0]) > 0.5);
    }

    #[test]
    fn pure_node_stays_leaf() {
        // All gradients equal: no split improves the score.
        let x: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let m = BinnedMatrix::from_rows(&x, 8);
        let g = vec![1.0f32; 10];
        let h = vec![1.0f32; 10];
        let rows: Vec<usize> = (0..10).collect();
        let tree = Tree::grow(&m, &g, &h, &rows, &params());
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn respects_max_depth() {
        // Alternating gradients force deep splits; depth must cap.
        let x: Vec<Vec<f32>> = (0..64).map(|i| vec![i as f32]).collect();
        let m = BinnedMatrix::from_rows(&x, 64);
        let g: Vec<f32> = (0..64)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let h = vec![1.0f32; 64];
        let rows: Vec<usize> = (0..64).collect();
        let mut p = params();
        p.max_depth = 2;
        let tree = Tree::grow(&m, &g, &h, &rows, &p);
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn min_child_weight_blocks_tiny_splits() {
        let x: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32]).collect();
        let m = BinnedMatrix::from_rows(&x, 8);
        let g = vec![1.0, -1.0, 1.0, -1.0];
        let h = vec![0.1f32; 4];
        let rows: Vec<usize> = (0..4).collect();
        let mut p = params();
        p.min_child_weight = 1.0; // each child would have h ≤ 0.3
        let tree = Tree::grow(&m, &g, &h, &rows, &p);
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn leaf_weight_is_newton_step() {
        let x = vec![vec![0.0f32]; 5];
        let m = BinnedMatrix::from_rows(&x, 8);
        let g = vec![2.0f32; 5]; // G = 10
        let h = vec![1.0f32; 5]; // H = 5
        let rows: Vec<usize> = (0..5).collect();
        let tree = Tree::grow(&m, &g, &h, &rows, &params());
        // weight = -G/(H+λ) = -10/6
        assert!((tree.predict(&[0.0]) + 10.0 / 6.0).abs() < 1e-6);
    }
}
