//! Quantile binning of the feature matrix.
//!
//! Histogram-based boosting discretizes each feature into at most
//! `max_bins` quantile buckets once, up front; split search then scans
//! bins instead of raw values. Bin id `b` covers values
//! `(threshold[b-1], threshold[b]]`; a split "`feature < t`" sends bins
//! `< b` left.

/// A feature matrix binned column-wise into `u8` bucket ids.
#[derive(Debug, Clone)]
pub struct BinnedMatrix {
    /// Row-major bin ids, `n_rows × n_features`.
    pub bins: Vec<u8>,
    /// Number of rows.
    pub n_rows: usize,
    /// Number of features.
    pub n_features: usize,
    /// Per-feature upper-edge values: `thresholds[f][b]` is the largest
    /// raw value mapped to bin `b`. Splitting between bins `b` and `b+1`
    /// tests `value <= thresholds[f][b]`.
    pub thresholds: Vec<Vec<f32>>,
}

impl BinnedMatrix {
    /// Bins `x` (row-major `n × d`) into at most `max_bins` quantile
    /// buckets per feature. Constant features get a single bin.
    pub fn from_rows(x: &[Vec<f32>], max_bins: usize) -> BinnedMatrix {
        assert!(!x.is_empty(), "empty matrix");
        assert!((2..=256).contains(&max_bins), "max_bins must be in 2..=256");
        let n = x.len();
        let d = x[0].len();
        assert!(x.iter().all(|r| r.len() == d), "ragged rows");

        let mut thresholds = Vec::with_capacity(d);
        let mut bins = vec![0u8; n * d];
        let mut column = vec![0f32; n];
        for f in 0..d {
            for (i, row) in x.iter().enumerate() {
                column[i] = row[f];
            }
            let mut sorted = column.clone();
            sorted.sort_by(f32::total_cmp);
            sorted.dedup();
            // Pick up to max_bins-1 interior cut values at quantile
            // positions over the distinct values.
            let cuts: Vec<f32> = if sorted.len() <= max_bins {
                sorted[..sorted.len().saturating_sub(1)].to_vec()
            } else {
                (1..max_bins)
                    .map(|b| {
                        let pos = b * (sorted.len() - 1) / max_bins;
                        sorted[pos]
                    })
                    .collect()
            };
            // Deduplicate cut values (quantiles can coincide).
            let mut cuts_dedup = cuts;
            cuts_dedup.dedup();
            for (i, row) in x.iter().enumerate() {
                let v = row[f];
                // bin = number of cuts strictly below v.
                let bin = cuts_dedup.partition_point(|&c| c < v);
                bins[i * d + f] = bin as u8;
            }
            thresholds.push(cuts_dedup);
        }
        BinnedMatrix {
            bins,
            n_rows: n,
            n_features: d,
            thresholds,
        }
    }

    /// Bin id of row `i`, feature `f`.
    #[inline]
    pub fn bin(&self, i: usize, f: usize) -> u8 {
        self.bins[i * self.n_features + f]
    }

    /// Number of bins of feature `f` (cuts + 1).
    pub fn n_bins(&self, f: usize) -> usize {
        self.thresholds[f].len() + 1
    }

    /// Maps a raw value of feature `f` to its bin id (used at prediction
    /// time only through the stored raw thresholds in the trees, but kept
    /// for tests).
    pub fn bin_of_value(&self, f: usize, v: f32) -> u8 {
        self.thresholds[f].partition_point(|&c| c < v) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_separate_distinct_values() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let m = BinnedMatrix::from_rows(&x, 8);
        let ids: Vec<u8> = (0..4).map(|i| m.bin(i, 0)).collect();
        // All distinct values distinct bins.
        let mut sorted = ids.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "{ids:?}");
    }

    #[test]
    fn constant_feature_single_bin() {
        let x = vec![vec![5.0]; 10];
        let m = BinnedMatrix::from_rows(&x, 8);
        assert_eq!(m.n_bins(0), 1);
        assert!((0..10).all(|i| m.bin(i, 0) == 0));
    }

    #[test]
    fn many_values_respect_max_bins() {
        let x: Vec<Vec<f32>> = (0..1000).map(|i| vec![i as f32]).collect();
        let m = BinnedMatrix::from_rows(&x, 16);
        assert!(m.n_bins(0) <= 16);
        // Bins are monotone in the value.
        for i in 1..1000 {
            assert!(m.bin(i, 0) >= m.bin(i - 1, 0));
        }
    }

    #[test]
    fn bin_of_value_is_consistent_with_training_bins() {
        let x: Vec<Vec<f32>> = (0..50).map(|i| vec![(i % 7) as f32]).collect();
        let m = BinnedMatrix::from_rows(&x, 8);
        for (i, row) in x.iter().enumerate() {
            assert_eq!(m.bin(i, 0), m.bin_of_value(0, row[0]));
        }
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        BinnedMatrix::from_rows(&[vec![1.0, 2.0], vec![1.0]], 8);
    }
}
