//! Multiclass gradient boosting with the softmax objective.
//!
//! Each round grows one tree per class against the softmax gradients
//! `g_k = p_k − 𝟙[y = k]` and hessians `h_k = p_k (1 − p_k)` — the exact
//! objective XGBoost's `multi:softprob` uses. The paper's G0 baseline runs
//! this with default hyper-parameters: 100 estimators, max depth 6.

use crate::binner::BinnedMatrix;
use crate::tree::{Tree, TreeParams};
use serde::{Deserialize, Serialize};

/// Booster hyper-parameters (XGBoost defaults).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Boosting rounds ("n_estimators"). Paper: 100.
    pub n_rounds: usize,
    /// Maximum tree depth. Paper: 6.
    pub max_depth: usize,
    /// Learning rate η. XGBoost default: 0.3.
    pub learning_rate: f32,
    /// L2 leaf regularization λ.
    pub lambda: f32,
    /// Minimum split gain γ.
    pub gamma: f32,
    /// Minimum hessian sum per child.
    pub min_child_weight: f32,
    /// Histogram bins per feature.
    pub max_bins: usize,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_rounds: 100,
            max_depth: 6,
            learning_rate: 0.3,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            max_bins: 64,
        }
    }
}

/// Telemetry for one completed boosting round, handed to the observer
/// callback of [`GbdtClassifier::fit_observed`]. A round is the booster's
/// "epoch": one tree per class, fitted and applied.
#[derive(Debug, Clone, PartialEq)]
pub struct BoostRound {
    /// 1-based round index.
    pub round: usize,
    /// Total rounds configured.
    pub n_rounds: usize,
    /// Mean multiclass logloss on the training rows *after* this round's
    /// trees were applied.
    pub train_logloss: f64,
    /// Wall-clock of the round in milliseconds (tree growing + score
    /// updates + the logloss pass). Observability only — never part of
    /// the model.
    pub wall_ms: f64,
}

/// A fitted multiclass GBDT model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtClassifier {
    /// `trees[round][class]`.
    trees: Vec<Vec<Tree>>,
    n_classes: usize,
    learning_rate: f32,
}

impl GbdtClassifier {
    /// Fits the booster on row-major features `x` and labels `y`.
    ///
    /// Training is deterministic (no subsampling), so no seed is taken —
    /// matching the replication's use of default XGBoost settings where
    /// run-to-run variation comes from the data splits.
    pub fn fit(
        x: &[Vec<f32>],
        y: &[usize],
        n_classes: usize,
        config: &GbdtConfig,
    ) -> GbdtClassifier {
        Self::fit_observed(x, y, n_classes, config, &mut |_| {})
    }

    /// [`GbdtClassifier::fit`] with per-round telemetry: `on_round` is
    /// called once after each boosting round with its post-update
    /// training logloss and wall-clock. The callback is observability
    /// only — it cannot influence the fit, and `fit` (a no-op callback)
    /// produces an identical model.
    pub fn fit_observed(
        x: &[Vec<f32>],
        y: &[usize],
        n_classes: usize,
        config: &GbdtConfig,
        on_round: &mut dyn FnMut(&BoostRound),
    ) -> GbdtClassifier {
        assert_eq!(x.len(), y.len(), "feature/label count mismatch");
        assert!(n_classes >= 2, "need at least two classes");
        assert!(y.iter().all(|&l| l < n_classes), "label out of range");
        let n = x.len();
        let matrix = BinnedMatrix::from_rows(x, config.max_bins);
        let tree_params = TreeParams {
            max_depth: config.max_depth,
            lambda: config.lambda,
            gamma: config.gamma,
            min_child_weight: config.min_child_weight,
        };

        // Raw scores per sample per class, updated additively.
        let mut scores = vec![0f32; n * n_classes];
        let rows: Vec<usize> = (0..n).collect();
        let mut trees = Vec::with_capacity(config.n_rounds);
        let mut g = vec![0f32; n];
        let mut h = vec![0f32; n];

        for round in 0..config.n_rounds {
            let round_start = std::time::Instant::now();
            // Softmax probabilities for the current scores.
            let mut probs = vec![0f32; n * n_classes];
            for i in 0..n {
                let row = &scores[i * n_classes..(i + 1) * n_classes];
                let max = row.iter().copied().fold(f32::MIN, f32::max);
                let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
                let sum: f32 = exps.iter().sum();
                for k in 0..n_classes {
                    probs[i * n_classes + k] = exps[k] / sum;
                }
            }

            let mut round_trees = Vec::with_capacity(n_classes);
            for k in 0..n_classes {
                for i in 0..n {
                    let p = probs[i * n_classes + k];
                    g[i] = p - f32::from(y[i] == k);
                    // XGBoost multiplies the softmax hessian by K/(K-1) and
                    // floors it; the plain hessian works equally here.
                    h[i] = (p * (1.0 - p)).max(1e-6);
                }
                let tree = Tree::grow(&matrix, &g, &h, &rows, &tree_params);
                for (i, xi) in x.iter().enumerate() {
                    scores[i * n_classes + k] += config.learning_rate * tree.predict(xi);
                }
                round_trees.push(tree);
            }
            trees.push(round_trees);
            on_round(&BoostRound {
                round: round + 1,
                n_rounds: config.n_rounds,
                train_logloss: mean_logloss(&scores, y, n_classes),
                wall_ms: round_start.elapsed().as_secs_f64() * 1000.0,
            });
        }

        GbdtClassifier {
            trees,
            n_classes,
            learning_rate: config.learning_rate,
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Raw (pre-softmax) class scores for one feature row.
    pub fn raw_scores(&self, x: &[f32]) -> Vec<f32> {
        let mut scores = vec![0f32; self.n_classes];
        for round in &self.trees {
            for (k, tree) in round.iter().enumerate() {
                scores[k] += self.learning_rate * tree.predict(x);
            }
        }
        scores
    }

    /// Softmax class probabilities for one feature row.
    pub fn predict_proba(&self, x: &[f32]) -> Vec<f32> {
        let scores = self.raw_scores(x);
        let max = scores.iter().copied().fold(f32::MIN, f32::max);
        let exps: Vec<f32> = scores.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        exps.iter().map(|&e| e / sum).collect()
    }

    /// Predicted class of one feature row.
    pub fn predict(&self, x: &[f32]) -> usize {
        self.raw_scores(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k)
            .unwrap()
    }

    /// Predicted classes for many rows.
    pub fn predict_batch(&self, x: &[Vec<f32>]) -> Vec<usize> {
        x.iter().map(|r| self.predict(r)).collect()
    }

    /// Mean depth across all trees — the statistic of the paper's
    /// Sec. 4.1.2 ("an average depth of 1.7 for time series and 1.3 for
    /// flowpic").
    pub fn average_depth(&self) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        for round in &self.trees {
            for tree in round {
                total += tree.depth();
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }
}

/// Mean multiclass logloss of raw `scores` (row-major `[n, n_classes]`)
/// against labels `y` — the booster's training-loss telemetry.
fn mean_logloss(scores: &[f32], y: &[usize], n_classes: usize) -> f64 {
    let n = y.len();
    if n == 0 {
        return 0.0;
    }
    let mut nll = 0f64;
    for (i, &label) in y.iter().enumerate() {
        let row = &scores[i * n_classes..(i + 1) * n_classes];
        let max = row.iter().copied().fold(f32::MIN, f32::max);
        let sum: f64 = row.iter().map(|&v| f64::from((v - max).exp())).sum();
        let p = f64::from((row[label] - max).exp()) / sum;
        nll -= p.max(1e-15).ln();
    }
    nll / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn blobs(
        n_per: usize,
        centers: &[(f32, f32)],
        noise: f32,
        seed: u64,
    ) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (k, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                x.push(vec![
                    cx + noise * (rng.random::<f32>() - 0.5),
                    cy + noise * (rng.random::<f32>() - 0.5),
                ]);
                y.push(k);
            }
        }
        (x, y)
    }

    #[test]
    fn fits_separable_blobs() {
        let (x, y) = blobs(30, &[(0.0, 0.0), (5.0, 5.0), (0.0, 5.0)], 1.0, 1);
        let model = GbdtClassifier::fit(
            &x,
            &y,
            3,
            &GbdtConfig {
                n_rounds: 20,
                ..Default::default()
            },
        );
        let preds = model.predict_batch(&x);
        let acc = preds.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.97, "train accuracy {acc}");
        // Separable data needs only shallow trees.
        assert!(model.average_depth() < 4.0);
    }

    #[test]
    fn generalizes_to_held_out_points() {
        let (x, y) = blobs(50, &[(0.0, 0.0), (6.0, 6.0)], 1.5, 2);
        let model = GbdtClassifier::fit(
            &x,
            &y,
            2,
            &GbdtConfig {
                n_rounds: 10,
                ..Default::default()
            },
        );
        let (xt, yt) = blobs(20, &[(0.0, 0.0), (6.0, 6.0)], 1.5, 99);
        let preds = model.predict_batch(&xt);
        let acc = preds.iter().zip(&yt).filter(|(a, b)| a == b).count() as f64 / yt.len() as f64;
        assert!(acc > 0.9, "test accuracy {acc}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = blobs(20, &[(0.0, 0.0), (3.0, 3.0)], 1.0, 3);
        let model = GbdtClassifier::fit(
            &x,
            &y,
            2,
            &GbdtConfig {
                n_rounds: 5,
                ..Default::default()
            },
        );
        for xi in x.iter().take(10) {
            let p = model.predict_proba(xi);
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn deterministic_training() {
        let (x, y) = blobs(20, &[(0.0, 0.0), (3.0, 3.0)], 1.0, 4);
        let cfg = GbdtConfig {
            n_rounds: 5,
            ..Default::default()
        };
        let a = GbdtClassifier::fit(&x, &y, 2, &cfg);
        let b = GbdtClassifier::fit(&x, &y, 2, &cfg);
        for xi in &x {
            assert_eq!(a.raw_scores(xi), b.raw_scores(xi));
        }
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let (x, y) = blobs(40, &[(0.0, 0.0), (1.5, 1.5)], 2.5, 5);
        let acc = |rounds| {
            let m = GbdtClassifier::fit(
                &x,
                &y,
                2,
                &GbdtConfig {
                    n_rounds: rounds,
                    ..Default::default()
                },
            );
            m.predict_batch(&x)
                .iter()
                .zip(&y)
                .filter(|(a, b)| a == b)
                .count() as f64
                / y.len() as f64
        };
        assert!(acc(50) >= acc(2));
    }

    #[test]
    fn fit_observed_reports_every_round_and_changes_nothing() {
        let (x, y) = blobs(20, &[(0.0, 0.0), (4.0, 4.0)], 1.0, 7);
        let cfg = GbdtConfig {
            n_rounds: 8,
            ..Default::default()
        };
        let mut rounds: Vec<BoostRound> = Vec::new();
        let observed =
            GbdtClassifier::fit_observed(&x, &y, 2, &cfg, &mut |r| rounds.push(r.clone()));
        assert_eq!(rounds.len(), 8);
        for (i, r) in rounds.iter().enumerate() {
            assert_eq!(r.round, i + 1);
            assert_eq!(r.n_rounds, 8);
            assert!(r.train_logloss.is_finite() && r.train_logloss >= 0.0);
        }
        // Boosting on separable blobs drives the training logloss down.
        assert!(
            rounds.last().unwrap().train_logloss < rounds[0].train_logloss,
            "{rounds:?}"
        );
        // Observability only: the observed fit equals the plain fit.
        let plain = GbdtClassifier::fit(&x, &y, 2, &cfg);
        for xi in &x {
            assert_eq!(observed.raw_scores(xi), plain.raw_scores(xi));
        }
    }

    #[test]
    fn predict_is_deterministic_under_nan_scores() {
        // total_cmp ranks NaN above every number, so a NaN score cannot
        // panic the argmax — it deterministically wins. (Scores are only
        // NaN if training diverged; the guarantee here is no panic and a
        // stable answer.)
        let scores = [0.3f32, f32::NAN, 0.9];
        let pred = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k)
            .unwrap();
        assert_eq!(pred, 1);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        GbdtClassifier::fit(&[vec![0.0]], &[5], 2, &GbdtConfig::default());
    }

    #[test]
    fn high_dimensional_sparse_input() {
        // Flowpic-like: 1024 features, mostly zero, class signal in a few.
        let mut rng = StdRng::seed_from_u64(6);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let mut row = vec![0f32; 1024];
            let class = i % 2;
            let hot = if class == 0 { 17 } else { 512 };
            row[hot] = 3.0 + rng.random::<f32>();
            x.push(row);
            y.push(class);
        }
        let model = GbdtClassifier::fit(
            &x,
            &y,
            2,
            &GbdtConfig {
                n_rounds: 5,
                ..Default::default()
            },
        );
        let acc = model
            .predict_batch(&x)
            .iter()
            .zip(&y)
            .filter(|(a, b)| a == b)
            .count();
        assert_eq!(acc, 60);
        // Trivial problem => stumps, like the paper's observation of very
        // short trees on flowpic input.
        assert!(model.average_depth() <= 2.0);
    }
}
