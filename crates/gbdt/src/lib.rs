//! # gbdt — gradient-boosted decision trees
//!
//! The replication's goal **G0** adds a classic-ML baseline the Ref-Paper
//! lacked: an XGBoost classifier with default hyper-parameters (100
//! estimators, max depth 6) over either flattened flowpics or early packet
//! time series (paper Table 3). This crate is a from-scratch equivalent:
//!
//! * second-order (gradient + hessian) boosting with the XGBoost gain
//!   formula and leaf weights;
//! * softmax multiclass objective (one tree per class per round);
//! * histogram-based split finding on quantile-binned features
//!   (XGBoost's `tree_method=hist`), which keeps training fast on the
//!   1 024-feature flowpic input;
//! * the average-tree-depth statistic the paper reports ("very short
//!   trees: an average depth of 1.7 for time series and 1.3 for flowpic").
//!
//! ## Example
//!
//! ```
//! use gbdt::{GbdtClassifier, GbdtConfig};
//!
//! // Two separable 1-D classes.
//! let x: Vec<Vec<f32>> = (0..40).map(|i| vec![if i < 20 { 0.0 } else { 1.0 }]).collect();
//! let y: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
//! let model = GbdtClassifier::fit(&x, &y, 2, &GbdtConfig { n_rounds: 5, ..GbdtConfig::default() });
//! assert_eq!(model.predict(&[0.0]), 0);
//! assert_eq!(model.predict(&[1.0]), 1);
//! ```

pub mod binner;
pub mod booster;
pub mod tree;

pub use booster::{BoostRound, GbdtClassifier, GbdtConfig};
