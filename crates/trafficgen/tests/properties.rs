//! Property-based tests of the traffic substrate's invariants.

use proptest::prelude::*;
use trafficgen::types::{Direction, Partition};

fn arb_direction() -> impl Strategy<Value = Direction> {
    prop_oneof![Just(Direction::Upstream), Just(Direction::Downstream)]
}

fn arb_partition() -> impl Strategy<Value = Partition> {
    prop_oneof![
        Just(Partition::Pretraining),
        Just(Partition::Script),
        Just(Partition::Human),
        Just(Partition::ActionSpecific),
        Just(Partition::DeterministicAutomated),
        Just(Partition::RandomizedAutomated),
        Just(Partition::WildTest),
        Just(Partition::Unpartitioned),
    ]
}

prop_compose! {
    fn arb_flow(n_classes: u16)(
        id in any::<u64>(),
        class in 0..n_classes,
        partition in arb_partition(),
        background in any::<bool>(),
        // Gaps + sizes: timestamps built as cumulative sums so the
        // sortedness invariant holds by construction.
        gaps in prop::collection::vec(0.0f64..0.5, 0..40),
        sizes in prop::collection::vec(1u16..=1500, 40),
        dirs in prop::collection::vec(arb_direction(), 40),
        acks in prop::collection::vec(any::<bool>(), 40),
    ) -> Flow {
        let mut ts = 0.0;
        let pkts = gaps
            .iter()
            .enumerate()
            .map(|(i, &gap)| {
                let t = ts;
                ts += gap;
                Pkt { ts: t, size: sizes[i], dir: dirs[i], is_ack: acks[i] }
            })
            .collect();
        Flow { id, class, partition, background, pkts }
    }
}

prop_compose! {
    fn arb_dataset()(
        n_classes in 1u16..6,
    )(
        flows in prop::collection::vec(arb_flow(n_classes), 0..20),
        n_classes in Just(n_classes),
        name in "[a-z]{1,12}",
    ) -> Dataset {
        Dataset {
            name,
            class_names: (0..n_classes).map(|i| format!("class-{i}")).collect(),
            flows,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flowrec_round_trips_any_dataset(ds in arb_dataset()) {
        let bytes = flowrec::encode(&ds);
        let back = flowrec::decode(&bytes).expect("well-formed stream must decode");
        prop_assert_eq!(back, ds);
    }

    #[test]
    fn flowrec_never_panics_on_corruption(
        ds in arb_dataset(),
        flip_at in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = flowrec::encode(&ds).to_vec();
        if !bytes.is_empty() {
            let i = flip_at.index(bytes.len());
            bytes[i] ^= xor;
        }
        // Must return Ok or Err, never panic; if it decodes, the result
        // must still be internally consistent.
        if let Ok(decoded) = flowrec::decode(&bytes) {
            for f in &decoded.flows {
                prop_assert!((f.class as usize) < decoded.class_names.len());
            }
        }
    }

    #[test]
    fn generated_flows_are_always_well_formed(
        seed in any::<u64>(),
        burst_interval in 0.05f64..5.0,
        burst_len in 1.0f64..100.0,
        duration in 0.5f64..60.0,
        rtt in 0.005f64..0.3,
        up_fraction in 0.0f64..1.0,
        ack_ratio in 0.0f64..1.0,
        max_pkts in 1usize..400,
    ) {
        use rand::SeedableRng;
        let mut profile = TrafficProfile::base("prop");
        profile.burst_interval_mean = burst_interval;
        profile.burst_len_mean = burst_len;
        profile.burst_len_sd = burst_len * 0.3;
        profile.duration_mean = duration;
        profile.rtt_mean = rtt;
        profile.up_fraction = up_fraction;
        profile.ack_ratio = ack_ratio;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pkts = generate_pkts(&profile, &mut rng, max_pkts);
        let flow = Flow {
            id: 0, class: 0, partition: Partition::Unpartitioned,
            background: false, pkts,
        };
        prop_assert!(!flow.is_empty());
        prop_assert!(flow.len() <= max_pkts);
        prop_assert!(flow.is_well_formed(), "flow violates ordering/size invariants");
    }

    #[test]
    fn curation_output_is_always_consistent(
        ds in arb_dataset(),
        min_pkts in 0usize..30,
        min_class in 0usize..8,
        remove_acks in any::<bool>(),
        remove_background in any::<bool>(),
        collate in any::<bool>(),
    ) {
        let pipe = CurationPipeline {
            remove_acks,
            remove_background,
            min_pkts,
            min_class_size: min_class,
            collate_partitions: collate,
        };
        let (out, report) = pipe.run(&ds);
        // Conservation: every input flow is accounted for.
        prop_assert_eq!(
            report.flows_after
                + report.background_removed
                + report.short_removed
                + report.small_class_removed,
            report.flows_before
        );
        prop_assert_eq!(out.flows.len(), report.flows_after);
        // Output invariants.
        for f in &out.flows {
            prop_assert!((f.class as usize) < out.class_names.len());
            prop_assert!(f.len() >= min_pkts);
            if remove_acks {
                prop_assert!(f.pkts.iter().all(|p| !p.is_ack));
            }
            if remove_background {
                prop_assert!(!f.background);
            }
            if collate {
                prop_assert_eq!(f.partition, Partition::Unpartitioned);
            }
            prop_assert!(f.is_well_formed());
        }
        // Class-size floor holds.
        let counts = out.class_counts();
        for (c, &n) in counts.iter().enumerate() {
            let background_in_class = out
                .flows
                .iter()
                .filter(|f| f.background && f.class as usize == c)
                .count();
            prop_assert!(
                n + background_in_class >= min_class.min(1) * usize::from(n + background_in_class > 0)
            );
        }
    }

    #[test]
    fn splits_partition_without_overlap(
        per_class in prop::collection::vec(5usize..30, 2..5),
        frac in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        use trafficgen::splits::{random_two_way, stratified_three_way};
        let mut flows = Vec::new();
        let mut id = 0;
        for (class, &n) in per_class.iter().enumerate() {
            for _ in 0..n {
                id += 1;
                flows.push(Flow {
                    id,
                    class: class as u16,
                    partition: Partition::Unpartitioned,
                    background: false,
                    pkts: vec![Pkt::data(0.0, 100, Direction::Upstream)],
                });
            }
        }
        let ds = Dataset {
            name: "prop".into(),
            class_names: (0..per_class.len()).map(|i| format!("c{i}")).collect(),
            flows,
        };
        let indices: Vec<usize> = (0..ds.flows.len()).collect();
        let (a, b) = random_two_way(&indices, frac, seed);
        prop_assert_eq!(a.len() + b.len(), indices.len());
        let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, indices.clone());

        let tri = stratified_three_way(&ds, Partition::Unpartitioned, 0.8, 0.1, seed);
        let mut all: Vec<usize> =
            tri.train.iter().chain(tri.val.iter()).chain(tri.test.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, indices);
    }
}
