//! MIRAGE-19 dataset simulator.
//!
//! MIRAGE-19 (Aceto et al., 2019) captures 20 Android apps used by
//! volunteering students on instrumented phones. Structurally (paper
//! Table 2) it is the hardest of the four datasets: many classes, strong
//! imbalance (ρ ≈ 5.9 raw / 7.4 curated), and *very short flows* (mean
//! ≈ 20 packets), of which roughly half fall below the 10-packet curation
//! threshold. Raw captures also contain TCP ACKs and background traffic
//! (netstat-labeled netd/SSDP/gms chatter) that the paper's curation step
//! removes.
//!
//! The simulated equivalent reproduces all of these structural properties;
//! because flows are so short, flowpics are extremely sparse and the
//! achievable accuracy ceiling sits far below UCDAVIS19's — matching the
//! ≈70 % weighted F1 the paper reports in its Table 8.

use crate::synth::{app_profile, generate_dataset, imbalanced_counts, ClassGenSpec};
use crate::types::{Dataset, Partition};
use serde::Serialize;

/// Number of app classes.
pub const NUM_CLASSES: usize = 20;

/// Simulator configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Mirage19Config {
    /// Flow count of the largest class (raw, before curation).
    pub max_class_flows: usize,
    /// Target raw class-imbalance ratio ρ.
    pub rho: f64,
    /// Per-flow packet cap.
    pub max_pkts: usize,
    /// Inter-class separation (smaller = harder); 0.55 is tuned to land
    /// the supervised F1 in the paper's ≈70 % band.
    pub spread: f64,
}

impl Mirage19Config {
    /// Paper-scale (Table 2: 122 007 raw flows, largest class 11 737).
    pub fn paper() -> Self {
        Mirage19Config {
            max_class_flows: 11_737,
            rho: 5.9,
            max_pkts: 60,
            spread: 0.55,
        }
    }

    /// Reduced scale for benches.
    pub fn quick() -> Self {
        Mirage19Config {
            max_class_flows: 400,
            rho: 5.9,
            max_pkts: 60,
            spread: 0.55,
        }
    }

    /// Tiny scale for unit tests.
    pub fn tiny() -> Self {
        Mirage19Config {
            max_class_flows: 40,
            rho: 3.0,
            max_pkts: 40,
            spread: 0.55,
        }
    }
}

/// The MIRAGE-19 simulator.
#[derive(Debug, Clone)]
pub struct Mirage19Sim {
    config: Mirage19Config,
}

impl Mirage19Sim {
    /// Creates a simulator.
    pub fn new(config: Mirage19Config) -> Self {
        Mirage19Sim { config }
    }

    /// Generates the raw (uncurated) dataset.
    pub fn generate(&self, seed: u64) -> Dataset {
        let counts = imbalanced_counts(NUM_CLASSES, self.config.max_class_flows, self.config.rho);
        let specs: Vec<ClassGenSpec> = (0..NUM_CLASSES)
            .map(|i| {
                let mut profile = app_profile(i, NUM_CLASSES, self.config.spread, "mirage19-app");
                // Mobile app flows are short: tight durations, small bursts.
                profile.duration_mean = 6.0;
                profile.duration_sigma = 0.8;
                profile.burst_len_mean = (profile.burst_len_mean * 0.4).max(2.0);
                profile.burst_len_sd = profile.burst_len_mean * 0.4;
                profile.ack_ratio = 0.5; // raw captures include bare ACKs
                ClassGenSpec {
                    name: format!("mirage19-app-{i:02}"),
                    profile,
                    count: counts[i],
                    short_flow_fraction: 0.45,
                    background_fraction: 0.15,
                    partitions: vec![(Partition::Unpartitioned, 1.0)],
                }
            })
            .collect();
        generate_dataset("mirage19", &specs, seed, self.config.max_pkts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_properties() {
        let ds = Mirage19Sim::new(Mirage19Config::tiny()).generate(1);
        assert_eq!(ds.num_classes(), NUM_CLASSES);
        // Imbalance close to the configured ρ.
        let rho = ds.imbalance_rho().unwrap();
        assert!(rho > 2.0 && rho < 4.5, "rho {rho}");
        // Short flows, ACKs and background traffic all present (to be
        // curated away downstream).
        assert!(ds.flows.iter().any(|f| f.len() < 10));
        assert!(ds.flows.iter().any(|f| f.pkts.iter().any(|p| p.is_ack)));
        assert!(ds.flows.iter().any(|f| f.background));
    }

    #[test]
    fn flows_are_short() {
        let ds = Mirage19Sim::new(Mirage19Config::tiny()).generate(2);
        let mean = ds.mean_pkts();
        assert!(
            mean < 45.0,
            "mean pkts {mean} — MIRAGE-19 flows must be short"
        );
    }

    #[test]
    fn deterministic() {
        let a = Mirage19Sim::new(Mirage19Config::tiny()).generate(9);
        let b = Mirage19Sim::new(Mirage19Config::tiny()).generate(9);
        assert_eq!(a.flows, b.flows);
    }
}
