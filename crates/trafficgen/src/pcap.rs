//! PCAP export/import for simulated flows.
//!
//! The original datasets were distributed as captures (later curated to
//! CSV/JSON); tools downstream of this crate — or any standard network
//! tooling (`tcpdump -r`, Wireshark) — speak pcap. This module writes a
//! [`Flow`] as a classic little-endian pcap file with synthesized
//! Ethernet/IPv4/TCP headers sized so the *on-wire frame length equals
//! the flow's recorded packet size*, and reads such files back into
//! packet series. Round-tripping preserves exactly the attributes the
//! classifiers consume: timestamp, size, direction (endpoint A→B vs
//! B→A) and the bare-ACK flag (zero TCP payload).
//!
//! Layout written per packet: 14 B Ethernet II + 20 B IPv4 + 20 B TCP +
//! payload padding. Packets smaller than the 54-byte header stack are
//! written with the headers intact and the pcap `orig_len` carrying the
//! true size.

use crate::types::{Direction, Flow, Pkt, MAX_PKT_SIZE};
use bytes::{Buf, BufMut, BytesMut};
use std::fmt;

const PCAP_MAGIC_LE: u32 = 0xA1B2_C3D4;
const LINKTYPE_ETHERNET: u32 = 1;
const ETH_IP_TCP: usize = 14 + 20 + 20;

/// Synthesized endpoint addresses: the flow initiator (A) and responder
/// (B). Fixed values make captures deterministic and greppable.
const MAC_A: [u8; 6] = [0x02, 0x00, 0x00, 0x00, 0x00, 0x0A];
const MAC_B: [u8; 6] = [0x02, 0x00, 0x00, 0x00, 0x00, 0x0B];
const IP_A: [u8; 4] = [10, 0, 0, 1];
const IP_B: [u8; 4] = [10, 0, 0, 2];
const PORT_A: u16 = 49152;
const PORT_B: u16 = 443;

/// Errors raised by the pcap reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcapError {
    /// Not a little-endian classic pcap file.
    BadMagic,
    /// File ended mid-structure.
    Truncated(&'static str),
    /// Record is not the Ethernet/IPv4/TCP shape this module writes.
    UnsupportedPacket(&'static str),
}

impl fmt::Display for PcapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcapError::BadMagic => write!(f, "not a little-endian classic pcap"),
            PcapError::Truncated(what) => write!(f, "truncated pcap while reading {what}"),
            PcapError::UnsupportedPacket(what) => write!(f, "unsupported packet: {what}"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Serializes a flow into a pcap byte buffer.
pub fn flow_to_pcap(flow: &Flow) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(24 + flow.len() * (16 + ETH_IP_TCP + 64));
    // Global header.
    buf.put_u32_le(PCAP_MAGIC_LE);
    buf.put_u16_le(2); // version major
    buf.put_u16_le(4); // version minor
    buf.put_i32_le(0); // thiszone
    buf.put_u32_le(0); // sigfigs
    buf.put_u32_le(MAX_PKT_SIZE as u32 + ETH_IP_TCP as u32); // snaplen
    buf.put_u32_le(LINKTYPE_ETHERNET);

    for p in &flow.pkts {
        let frame = build_frame(p);
        let secs = p.ts as u32;
        let usecs = ((p.ts - secs as f64) * 1e6).round() as u32;
        buf.put_u32_le(secs);
        buf.put_u32_le(usecs.min(999_999));
        buf.put_u32_le(frame.len() as u32); // incl_len
        buf.put_u32_le(p.size.max(ETH_IP_TCP as u16) as u32); // orig_len
        buf.put_slice(&frame);
    }
    buf.to_vec()
}

fn build_frame(p: &Pkt) -> Vec<u8> {
    let (src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port) = match p.dir {
        Direction::Upstream => (MAC_A, MAC_B, IP_A, IP_B, PORT_A, PORT_B),
        Direction::Downstream => (MAC_B, MAC_A, IP_B, IP_A, PORT_B, PORT_A),
    };
    let total = (p.size as usize).max(ETH_IP_TCP);
    let payload_len = total - ETH_IP_TCP;
    // Bare ACKs carry no payload regardless of the recorded size.
    let payload_len = if p.is_ack { 0 } else { payload_len };
    let ip_total = 20 + 20 + payload_len;

    let mut f = BytesMut::with_capacity(14 + ip_total);
    // Ethernet II.
    f.put_slice(&dst_mac);
    f.put_slice(&src_mac);
    f.put_u16(0x0800); // IPv4
                       // IPv4 (big-endian on the wire).
    f.put_u8(0x45); // version 4, IHL 5
    f.put_u8(0);
    f.put_u16(ip_total as u16);
    f.put_u16(0); // id
    f.put_u16(0x4000); // don't fragment
    f.put_u8(64); // ttl
    f.put_u8(6); // TCP
    f.put_u16(0); // checksum left zero (synthetic capture)
    f.put_slice(&src_ip);
    f.put_slice(&dst_ip);
    // TCP.
    f.put_u16(src_port);
    f.put_u16(dst_port);
    f.put_u32(0); // seq
    f.put_u32(0); // ack
    f.put_u8(0x50); // data offset 5
    f.put_u8(if p.is_ack { 0x10 } else { 0x18 }); // ACK | (PSH+ACK for data)
    f.put_u16(0xFFFF); // window
    f.put_u16(0); // checksum
    f.put_u16(0); // urgent
                  // Payload padding.
    f.extend(std::iter::repeat_n(0u8, payload_len));
    f.to_vec()
}

/// Parses a pcap produced by [`flow_to_pcap`] (or any capture of one
/// Ethernet/IPv4/TCP flow between two endpoints) back into a packet
/// series. Direction is assigned by the ephemeral-port heuristic (the
/// higher source port marks the flow initiator).
pub fn pcap_to_pkts(mut buf: &[u8]) -> Result<Vec<Pkt>, PcapError> {
    if buf.remaining() < 24 {
        return Err(PcapError::Truncated("global header"));
    }
    let magic = buf.get_u32_le();
    if magic != PCAP_MAGIC_LE {
        return Err(PcapError::BadMagic);
    }
    buf.advance(16); // version, zone, sigfigs, snaplen
    let linktype = buf.get_u32_le();
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::UnsupportedPacket("non-ethernet linktype"));
    }

    let mut pkts = Vec::new();
    while buf.has_remaining() {
        if buf.remaining() < 16 {
            return Err(PcapError::Truncated("record header"));
        }
        let secs = buf.get_u32_le() as f64;
        let usecs = buf.get_u32_le() as f64;
        let incl_len = buf.get_u32_le() as usize;
        let orig_len = buf.get_u32_le() as usize;
        if buf.remaining() < incl_len {
            return Err(PcapError::Truncated("record body"));
        }
        let frame = &buf[..incl_len];
        buf.advance(incl_len);

        if frame.len() < ETH_IP_TCP {
            return Err(PcapError::UnsupportedPacket(
                "frame shorter than eth+ip+tcp",
            ));
        }
        // Ethertype must be IPv4 and protocol TCP for this reader.
        let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
        if ethertype != 0x0800 {
            return Err(PcapError::UnsupportedPacket("non-IPv4 ethertype"));
        }
        if frame[14] >> 4 != 4 || frame[23] != 6 {
            return Err(PcapError::UnsupportedPacket("not IPv4/TCP"));
        }
        let tcp_flags = frame[14 + 20 + 13];
        let is_ack = tcp_flags & 0x08 == 0; // no PSH => bare ack here

        // Initiator detection by the ephemeral-port heuristic (the same
        // one flow meters use): the endpoint on the high ephemeral port
        // is the client, so packets sourced from it travel upstream.
        let src_port = u16::from_be_bytes([frame[34], frame[35]]);
        let dst_port = u16::from_be_bytes([frame[36], frame[37]]);
        let dir = if src_port >= dst_port {
            Direction::Upstream
        } else {
            Direction::Downstream
        };
        let size = orig_len.min(MAX_PKT_SIZE as usize) as u16;
        pkts.push(Pkt {
            ts: secs + usecs / 1e6,
            size,
            dir,
            is_ack,
        });
    }
    // Re-zero timestamps (pcap stores absolute times).
    if let Some(&first) = pkts.first() {
        for p in &mut pkts {
            p.ts -= first.ts;
        }
    }
    Ok(pkts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::generate_pkts;
    use crate::profile::TrafficProfile;
    use crate::types::Partition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_flow(ack_ratio: f64) -> Flow {
        let mut profile = TrafficProfile::base("pcap-test");
        profile.ack_ratio = ack_ratio;
        let mut rng = StdRng::seed_from_u64(5);
        Flow {
            id: 1,
            class: 0,
            partition: Partition::Unpartitioned,
            background: false,
            pkts: generate_pkts(&profile, &mut rng, 120),
        }
    }

    #[test]
    fn round_trip_preserves_classifier_attributes() {
        let flow = sample_flow(0.4);
        let pcap = flow_to_pcap(&flow);
        let back = pcap_to_pkts(&pcap).expect("decode");
        assert_eq!(back.len(), flow.len());
        for (a, b) in flow.pkts.iter().zip(&back) {
            assert!((a.ts - b.ts).abs() < 2e-6, "ts {} vs {}", a.ts, b.ts);
            assert_eq!(a.size.max(ETH_IP_TCP as u16), b.size, "size");
            assert_eq!(a.dir, b.dir, "direction");
            assert_eq!(a.is_ack, b.is_ack, "ack flag");
        }
    }

    #[test]
    fn global_header_is_classic_le_pcap() {
        let pcap = flow_to_pcap(&sample_flow(0.0));
        assert_eq!(&pcap[..4], &PCAP_MAGIC_LE.to_le_bytes());
        assert_eq!(u16::from_le_bytes([pcap[4], pcap[5]]), 2);
        assert_eq!(u16::from_le_bytes([pcap[6], pcap[7]]), 4);
        assert_eq!(
            u32::from_le_bytes([pcap[20], pcap[21], pcap[22], pcap[23]]),
            LINKTYPE_ETHERNET
        );
    }

    #[test]
    fn frames_are_valid_ethernet_ipv4_tcp() {
        let flow = sample_flow(0.0);
        let pcap = flow_to_pcap(&flow);
        // First record starts at byte 24 + 16.
        let frame = &pcap[40..];
        assert_eq!(u16::from_be_bytes([frame[12], frame[13]]), 0x0800);
        assert_eq!(frame[14] >> 4, 4, "IPv4 version");
        assert_eq!(frame[23], 6, "TCP protocol");
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert_eq!(
            pcap_to_pkts(&[0u8; 10]),
            Err(PcapError::Truncated("global header"))
        );
        let mut bad = flow_to_pcap(&sample_flow(0.0));
        bad[0] = 0;
        assert_eq!(pcap_to_pkts(&bad), Err(PcapError::BadMagic));
        let good = flow_to_pcap(&sample_flow(0.0));
        for cut in 25..60 {
            assert!(pcap_to_pkts(&good[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn direction_relative_to_initiator() {
        // A downstream-first flow: the first packet defines the initiator,
        // so the decoded directions are consistent relative to it.
        let flow = Flow {
            id: 1,
            class: 0,
            partition: Partition::Unpartitioned,
            background: false,
            pkts: vec![
                Pkt::data(0.0, 600, Direction::Upstream),
                Pkt::data(0.1, 1200, Direction::Downstream),
                Pkt::data(0.2, 700, Direction::Upstream),
            ],
        };
        let back = pcap_to_pkts(&flow_to_pcap(&flow)).unwrap();
        assert_eq!(back[0].dir, Direction::Upstream);
        assert_eq!(back[1].dir, Direction::Downstream);
        assert_eq!(back[2].dir, Direction::Upstream);
    }

    #[test]
    fn empty_flow_yields_header_only_pcap() {
        let flow = Flow {
            id: 1,
            class: 0,
            partition: Partition::Unpartitioned,
            background: false,
            pkts: vec![],
        };
        let pcap = flow_to_pcap(&flow);
        assert_eq!(pcap.len(), 24);
        assert_eq!(pcap_to_pkts(&pcap).unwrap(), vec![]);
    }
}
