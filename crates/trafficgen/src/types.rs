//! Core traffic data types shared by the whole workspace.
//!
//! A [`Flow`] is the unit every downstream component consumes: the flowpic
//! builder rasterizes a flow's packet series, the augmentations transform
//! it, the dataset splits partition collections of flows.

use serde::{Deserialize, Serialize};

/// Maximum packet size considered by the study (Ethernet MTU); the flowpic
/// y-axis spans `0..=MAX_PKT_SIZE`.
pub const MAX_PKT_SIZE: u16 = 1500;

/// Packet direction relative to the flow initiator.
///
/// The flowpic representation of the Ref-Paper deliberately ignores
/// direction (its footnote 3), but the time-series baseline (Table 3) and
/// the subflow sampling reproduction (Table 9) both use it, so flows carry
/// it end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Initiator to responder (e.g. client request, upload payload).
    Upstream,
    /// Responder to initiator (e.g. server response, download payload).
    Downstream,
}

impl Direction {
    /// Signed representation used by time-series feature vectors: upstream
    /// is `+1`, downstream is `-1`.
    pub fn sign(self) -> f32 {
        match self {
            Direction::Upstream => 1.0,
            Direction::Downstream => -1.0,
        }
    }
}

/// One observed packet inside a flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pkt {
    /// Seconds since the first packet of the flow.
    pub ts: f64,
    /// L3 packet size in bytes, `0..=1500`.
    pub size: u16,
    /// Direction relative to the flow initiator.
    pub dir: Direction,
    /// Whether this is a bare TCP ACK (no payload). The MIRAGE curation
    /// step removes these before building flowpics, mirroring the paper's
    /// "we first removed TCP ACK packets from time series".
    pub is_ack: bool,
}

impl Pkt {
    /// Convenience constructor for a data packet.
    pub fn data(ts: f64, size: u16, dir: Direction) -> Self {
        Pkt {
            ts,
            size,
            dir,
            is_ack: false,
        }
    }

    /// Convenience constructor for a bare ACK.
    pub fn ack(ts: f64, dir: Direction) -> Self {
        Pkt {
            ts,
            size: 40,
            dir,
            is_ack: true,
        }
    }
}

/// Dataset partition tags.
///
/// UCDAVIS19 ships pre-partitioned (`pretraining` / `script` / `human`);
/// UTMOBILENET21 ships in four capture campaigns that the paper collates
/// into one. The remaining datasets are unpartitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Partition {
    /// UCDAVIS19: large automated-collection partition used for
    /// (pre)training.
    Pretraining,
    /// UCDAVIS19: automated-collection test partition (30 flows/class).
    Script,
    /// UCDAVIS19: human-interaction test partition (~15 flows/class) —
    /// the partition affected by the data shift the paper uncovers.
    Human,
    /// UTMOBILENET21 capture campaigns (collated "4-into-1" by curation).
    ActionSpecific,
    DeterministicAutomated,
    RandomizedAutomated,
    WildTest,
    /// Datasets that ship unpartitioned (MIRAGE-19, MIRAGE-22).
    Unpartitioned,
}

impl Partition {
    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Partition::Pretraining => "pretraining",
            Partition::Script => "script",
            Partition::Human => "human",
            Partition::ActionSpecific => "action-specific",
            Partition::DeterministicAutomated => "deterministic-automated",
            Partition::RandomizedAutomated => "randomized-automated",
            Partition::WildTest => "wild-test",
            Partition::Unpartitioned => "unpartitioned",
        }
    }
}

/// A single network flow: the packet series plus its labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Stable identifier, unique within a [`Dataset`].
    pub id: u64,
    /// Index into [`Dataset::class_names`].
    pub class: u16,
    /// Capture partition this flow belongs to.
    pub partition: Partition,
    /// Whether this flow is background traffic (netd, SSDP, Android gms…)
    /// rather than traffic of the labeled target app. The MIRAGE curation
    /// step discards these.
    pub background: bool,
    /// The packet time series, sorted by timestamp.
    pub pkts: Vec<Pkt>,
}

impl Flow {
    /// Number of packets in the flow.
    pub fn len(&self) -> usize {
        self.pkts.len()
    }

    /// Whether the flow contains no packets.
    pub fn is_empty(&self) -> bool {
        self.pkts.is_empty()
    }

    /// Duration in seconds between first and last packet (0 for flows with
    /// fewer than two packets).
    pub fn duration(&self) -> f64 {
        match (self.pkts.first(), self.pkts.last()) {
            (Some(a), Some(b)) => b.ts - a.ts,
            _ => 0.0,
        }
    }

    /// Number of non-ACK packets.
    pub fn data_pkts(&self) -> usize {
        self.pkts.iter().filter(|p| !p.is_ack).count()
    }

    /// Returns the flow with all bare-ACK packets removed.
    pub fn without_acks(&self) -> Flow {
        Flow {
            pkts: self.pkts.iter().copied().filter(|p| !p.is_ack).collect(),
            ..self.clone()
        }
    }

    /// Asserts the internal ordering invariant (timestamps non-decreasing,
    /// first timestamp zero). Used by tests and debug assertions.
    pub fn is_well_formed(&self) -> bool {
        if self.pkts.is_empty() {
            return true;
        }
        if self.pkts[0].ts != 0.0 {
            return false;
        }
        self.pkts.windows(2).all(|w| w[0].ts <= w[1].ts)
            && self.pkts.iter().all(|p| p.size <= MAX_PKT_SIZE)
    }
}

/// A labeled collection of flows, the unit datasets and splits operate on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name, e.g. `"ucdavis19"`.
    pub name: String,
    /// Class label names; `Flow::class` indexes into this.
    pub class_names: Vec<String>,
    /// All flows.
    pub flows: Vec<Flow>,
}

impl Dataset {
    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Per-class flow counts (ignoring background flows).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.class_names.len()];
        for f in self.flows.iter().filter(|f| !f.background) {
            counts[f.class as usize] += 1;
        }
        counts
    }

    /// Class-imbalance ratio ρ = max class size / min class size, as
    /// reported in the paper's Table 2. Returns `None` when some class is
    /// empty.
    pub fn imbalance_rho(&self) -> Option<f64> {
        let counts = self.class_counts();
        let max = *counts.iter().max()?;
        let min = *counts.iter().min()?;
        if min == 0 {
            None
        } else {
            Some(max as f64 / min as f64)
        }
    }

    /// Mean number of packets per flow.
    pub fn mean_pkts(&self) -> f64 {
        if self.flows.is_empty() {
            return 0.0;
        }
        let total: usize = self.flows.iter().map(Flow::len).sum();
        total as f64 / self.flows.len() as f64
    }

    /// Flows of a given partition.
    pub fn partition(&self, p: Partition) -> impl Iterator<Item = &Flow> {
        self.flows.iter().filter(move |f| f.partition == p)
    }

    /// Indices of the flows of a given partition.
    pub fn partition_indices(&self, p: Partition) -> Vec<usize> {
        self.flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.partition == p)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(pkts: Vec<Pkt>) -> Flow {
        Flow {
            id: 0,
            class: 0,
            partition: Partition::Unpartitioned,
            background: false,
            pkts,
        }
    }

    #[test]
    fn direction_sign() {
        assert_eq!(Direction::Upstream.sign(), 1.0);
        assert_eq!(Direction::Downstream.sign(), -1.0);
    }

    #[test]
    fn flow_duration_and_counts() {
        let f = flow(vec![
            Pkt::data(0.0, 100, Direction::Upstream),
            Pkt::ack(0.5, Direction::Downstream),
            Pkt::data(2.0, 1500, Direction::Downstream),
        ]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.data_pkts(), 2);
        assert!((f.duration() - 2.0).abs() < 1e-12);
        assert!(f.is_well_formed());
        let noack = f.without_acks();
        assert_eq!(noack.len(), 2);
        assert!(noack.pkts.iter().all(|p| !p.is_ack));
    }

    #[test]
    fn empty_flow_is_well_formed() {
        let f = flow(vec![]);
        assert!(f.is_empty());
        assert!(f.is_well_formed());
        assert_eq!(f.duration(), 0.0);
    }

    #[test]
    fn ill_formed_flows_detected() {
        // First timestamp not zero.
        let f = flow(vec![Pkt::data(1.0, 10, Direction::Upstream)]);
        assert!(!f.is_well_formed());
        // Out-of-order timestamps.
        let f = flow(vec![
            Pkt::data(0.0, 10, Direction::Upstream),
            Pkt::data(2.0, 10, Direction::Upstream),
            Pkt::data(1.0, 10, Direction::Upstream),
        ]);
        assert!(!f.is_well_formed());
    }

    #[test]
    fn dataset_stats() {
        let mut flows = Vec::new();
        for i in 0..6 {
            let mut f = flow(vec![Pkt::data(0.0, 10, Direction::Upstream)]);
            f.id = i;
            f.class = if i < 4 { 0 } else { 1 };
            flows.push(f);
        }
        let ds = Dataset {
            name: "t".into(),
            class_names: vec!["a".into(), "b".into()],
            flows,
        };
        assert_eq!(ds.class_counts(), vec![4, 2]);
        assert!((ds.imbalance_rho().unwrap() - 2.0).abs() < 1e-12);
        assert!((ds.mean_pkts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_none_for_empty_class() {
        let ds = Dataset {
            name: "t".into(),
            class_names: vec!["a".into(), "b".into()],
            flows: vec![flow(vec![])],
        };
        assert_eq!(ds.imbalance_rho(), None);
    }
}
