//! `flowrec` — a compact binary wire format for flow records.
//!
//! The paper consolidates each dataset's original CSV/JSON files into
//! monolithic parquet files. This crate's equivalent is `flowrec`, a
//! little-endian length-prefixed binary format built on [`bytes`]:
//! it round-trips a [`Dataset`] losslessly, is resilient to truncated or
//! corrupted input (every decode error is reported, never panicked), and
//! is cheap enough to stream datasets to disk between pipeline stages.
//!
//! ## Layout
//!
//! ```text
//! magic    "FLOWREC1"                     8 bytes
//! name     u32 len + utf-8 bytes
//! classes  u32 count, then per class: u32 len + utf-8 bytes
//! flows    u64 count, then per flow:
//!          u64 id, u16 class, u8 partition, u8 flags(bit0=background)
//!          u32 n_pkts, then per pkt:
//!            f64 ts, u16 size, u8 flags(bit0=upstream, bit1=is_ack)
//! ```

use crate::types::{Dataset, Direction, Flow, Partition, MAX_PKT_SIZE};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: &[u8; 8] = b"FLOWREC1";

/// Decoding errors. The decoder never panics on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowRecError {
    /// Input does not start with the `FLOWREC1` magic.
    BadMagic,
    /// Input ended before the structure it promised.
    Truncated(&'static str),
    /// A string field was not valid UTF-8.
    BadUtf8(&'static str),
    /// A numeric field held an impossible value.
    BadValue(&'static str),
}

impl fmt::Display for FlowRecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowRecError::BadMagic => write!(f, "bad magic: not a flowrec stream"),
            FlowRecError::Truncated(what) => write!(f, "truncated input while reading {what}"),
            FlowRecError::BadUtf8(what) => write!(f, "invalid utf-8 in {what}"),
            FlowRecError::BadValue(what) => write!(f, "invalid value for {what}"),
        }
    }
}

impl std::error::Error for FlowRecError {}

fn partition_code(p: Partition) -> u8 {
    match p {
        Partition::Pretraining => 0,
        Partition::Script => 1,
        Partition::Human => 2,
        Partition::ActionSpecific => 3,
        Partition::DeterministicAutomated => 4,
        Partition::RandomizedAutomated => 5,
        Partition::WildTest => 6,
        Partition::Unpartitioned => 7,
    }
}

fn partition_from_code(code: u8) -> Result<Partition, FlowRecError> {
    Ok(match code {
        0 => Partition::Pretraining,
        1 => Partition::Script,
        2 => Partition::Human,
        3 => Partition::ActionSpecific,
        4 => Partition::DeterministicAutomated,
        5 => Partition::RandomizedAutomated,
        6 => Partition::WildTest,
        7 => Partition::Unpartitioned,
        _ => return Err(FlowRecError::BadValue("partition code")),
    })
}

/// Serializes a dataset into a `flowrec` byte buffer.
pub fn encode(dataset: &Dataset) -> Bytes {
    // Pre-size: 24 bytes per flow header + 11 per packet is exact; strings
    // are small.
    let pkt_total: usize = dataset.flows.iter().map(Flow::len).sum();
    let mut buf = BytesMut::with_capacity(64 + dataset.flows.len() * 24 + pkt_total * 11);

    buf.put_slice(MAGIC);
    put_string(&mut buf, &dataset.name);
    buf.put_u32_le(dataset.class_names.len() as u32);
    for name in &dataset.class_names {
        put_string(&mut buf, name);
    }
    buf.put_u64_le(dataset.flows.len() as u64);
    for f in &dataset.flows {
        buf.put_u64_le(f.id);
        buf.put_u16_le(f.class);
        buf.put_u8(partition_code(f.partition));
        buf.put_u8(u8::from(f.background));
        buf.put_u32_le(f.pkts.len() as u32);
        for p in &f.pkts {
            buf.put_f64_le(p.ts);
            buf.put_u16_le(p.size);
            let flags = u8::from(p.dir == Direction::Upstream) | (u8::from(p.is_ack) << 1);
            buf.put_u8(flags);
        }
    }
    buf.freeze()
}

/// Deserializes a dataset from a `flowrec` byte buffer.
pub fn decode(mut buf: &[u8]) -> Result<Dataset, FlowRecError> {
    if buf.remaining() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(FlowRecError::BadMagic);
    }
    buf.advance(MAGIC.len());

    let name = get_string(&mut buf, "dataset name")?;
    let n_classes = get_u32(&mut buf, "class count")? as usize;
    let mut class_names = Vec::with_capacity(n_classes.min(4096));
    for _ in 0..n_classes {
        class_names.push(get_string(&mut buf, "class name")?);
    }

    let n_flows = get_u64(&mut buf, "flow count")? as usize;
    let mut flows = Vec::with_capacity(n_flows.min(1 << 20));
    for _ in 0..n_flows {
        let id = get_u64(&mut buf, "flow id")?;
        let class = get_u16(&mut buf, "flow class")?;
        if (class as usize) >= n_classes {
            return Err(FlowRecError::BadValue("flow class out of range"));
        }
        let partition = partition_from_code(get_u8(&mut buf, "partition")?)?;
        let flags = get_u8(&mut buf, "flow flags")?;
        if flags > 1 {
            return Err(FlowRecError::BadValue("flow flags"));
        }
        let n_pkts = get_u32(&mut buf, "packet count")? as usize;
        // 11 bytes per packet: reject counts the remaining buffer cannot hold
        // before allocating.
        if buf.remaining() < n_pkts.saturating_mul(11) {
            return Err(FlowRecError::Truncated("packet array"));
        }
        let mut pkts = Vec::with_capacity(n_pkts);
        for _ in 0..n_pkts {
            let ts = get_f64(&mut buf, "pkt ts")?;
            if !ts.is_finite() || ts < 0.0 {
                return Err(FlowRecError::BadValue("pkt ts"));
            }
            let size = get_u16(&mut buf, "pkt size")?;
            if size > MAX_PKT_SIZE {
                return Err(FlowRecError::BadValue("pkt size"));
            }
            let pflags = get_u8(&mut buf, "pkt flags")?;
            if pflags > 3 {
                return Err(FlowRecError::BadValue("pkt flags"));
            }
            let dir = if pflags & 1 != 0 {
                Direction::Upstream
            } else {
                Direction::Downstream
            };
            pkts.push(crate::types::Pkt {
                ts,
                size,
                dir,
                is_ack: pflags & 2 != 0,
            });
        }
        flows.push(Flow {
            id,
            class,
            partition,
            background: flags & 1 != 0,
            pkts,
        });
    }
    Ok(Dataset {
        name,
        class_names,
        flows,
    })
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8], what: &'static str) -> Result<String, FlowRecError> {
    let len = get_u32(buf, what)? as usize;
    if buf.remaining() < len {
        return Err(FlowRecError::Truncated(what));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| FlowRecError::BadUtf8(what))?
        .to_string();
    buf.advance(len);
    Ok(s)
}

macro_rules! getter {
    ($name:ident, $ty:ty, $get:ident, $size:expr) => {
        fn $name(buf: &mut &[u8], what: &'static str) -> Result<$ty, FlowRecError> {
            if buf.remaining() < $size {
                return Err(FlowRecError::Truncated(what));
            }
            Ok(buf.$get())
        }
    };
}
getter!(get_u8, u8, get_u8, 1);
getter!(get_u16, u16, get_u16_le, 2);
getter!(get_u32, u32, get_u32_le, 4);
getter!(get_u64, u64, get_u64_le, 8);
getter!(get_f64, f64, get_f64_le, 8);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Pkt;

    fn sample_dataset() -> Dataset {
        Dataset {
            name: "sample".into(),
            class_names: vec!["a".into(), "b".into()],
            flows: vec![
                Flow {
                    id: 1,
                    class: 0,
                    partition: Partition::Script,
                    background: false,
                    pkts: vec![
                        Pkt::data(0.0, 1500, Direction::Downstream),
                        Pkt::ack(0.125, Direction::Upstream),
                    ],
                },
                Flow {
                    id: 2,
                    class: 1,
                    partition: Partition::Human,
                    background: true,
                    pkts: vec![],
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let ds = sample_dataset();
        let bytes = encode(&ds);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.name, ds.name);
        assert_eq!(back.class_names, ds.class_names);
        assert_eq!(back.flows, ds.flows);
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(decode(b"NOTMAGIC........"), Err(FlowRecError::BadMagic));
        assert_eq!(decode(b""), Err(FlowRecError::BadMagic));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = encode(&sample_dataset());
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            let res = decode(&bytes[..cut]);
            assert!(res.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn rejects_out_of_range_class() {
        let mut ds = sample_dataset();
        ds.flows[0].class = 9;
        let bytes = encode(&ds);
        assert_eq!(
            decode(&bytes),
            Err(FlowRecError::BadValue("flow class out of range"))
        );
    }

    #[test]
    fn rejects_corrupt_partition_code() {
        let ds = sample_dataset();
        let mut bytes = encode(&ds).to_vec();
        // Find the first flow's partition byte: magic(8) + name(4+6) +
        // class count(4) + "a"(5) + "b"(5) + flow count(8) + id(8) + class(2).
        let off = 8 + 10 + 4 + 5 + 5 + 8 + 8 + 2;
        bytes[off] = 250;
        assert_eq!(
            decode(&bytes),
            Err(FlowRecError::BadValue("partition code"))
        );
    }

    #[test]
    fn oversize_pkt_count_is_rejected_without_allocation() {
        let ds = Dataset {
            name: "x".into(),
            class_names: vec!["a".into()],
            flows: vec![],
        };
        let mut bytes = encode(&ds).to_vec();
        // Rewrite flow count to a huge value with no data behind it.
        let len = bytes.len();
        bytes[len - 8..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = FlowRecError::Truncated("packet array");
        assert!(e.to_string().contains("packet array"));
    }
}
