//! QUIC-era open-world traffic: many classes, heavy imbalance, unknowns.
//!
//! The paper-era simulators ([`crate::ucdavis`] and friends) model the
//! 2023 replication's closed-world assumption: every flow at serve time
//! belongs to one of the trained classes. Decade-after measurements
//! (CESNET-scale TLS/QUIC datasets) break that assumption three ways at
//! once — far more classes, heavy class imbalance, and flows from
//! classes the model has never seen. This module generates that shape
//! for the open-world serving lane.
//!
//! The dataset has [`QuicConfig::n_classes`] classes of which only the
//! first [`QuicConfig::known_classes`] are *known*: [`QuicSim::generate_known`]
//! emits the training subset (known classes only), while
//! [`QuicSim::generate`] emits the full serve-time workload including
//! the held-out unknowns. Known classes occupy distinct packet-size
//! bands, so a model trained on them separates cleanly; each unknown
//! class interleaves packets from *three* well-separated known bands, so
//! the trained model's softmax splits its mass three ways and
//! confidence collapses — the signature that confidence-thresholded
//! rejection exploits.
//!
//! Class frequency is Zipf-like (class `r` carries weight `1/(r+1)`),
//! with the first `n_classes` flows dealt round-robin so every class is
//! present at any scale. Per-flow packet pacing is modulated by a
//! diurnal sinusoid over the flow-id axis (the replay scheduler starts
//! flows in id order, so flow index is a proxy for time of day),
//! giving the trace time-of-day rate drift without touching the
//! size signal the classifier keys on.
//!
//! Generation is splitmix64-hashed per flow like [`crate::stress`]:
//! O(1) state, no rand dependency, bit-identical across runs. Every
//! flow ends with a closing packet at [`crate::stress::CLOSE_TS`] so
//! the tracker classifies flows in steady state during replay.

use crate::stress::CLOSE_TS;
use crate::types::{Dataset, Direction, Flow, Partition, Pkt};

/// Packet sizes are capped at a QUIC-realistic MTU budget: 1500 minus
/// IP/UDP/QUIC overhead lands near the common 1350-byte max datagram.
pub const QUIC_MAX_PKT: u16 = 1350;

/// Shape of the open-world QUIC workload.
#[derive(Debug, Clone, Copy)]
pub struct QuicConfig {
    /// Number of flows to generate.
    pub n_flows: usize,
    /// Total classes in the serve-time workload (known + unknown).
    pub n_classes: usize,
    /// How many of those classes (always the first `known_classes`)
    /// are in the training subset. The rest are held out as unknowns.
    pub known_classes: usize,
    /// Base data packets per flow inside the observation window; each
    /// flow adds a small hash-derived jitter on top.
    pub pkts_per_flow: usize,
}

impl QuicConfig {
    /// Paper-scale open-world workload.
    pub fn paper() -> Self {
        QuicConfig {
            n_flows: 100_000,
            n_classes: 14,
            known_classes: 10,
            pkts_per_flow: 10,
        }
    }

    /// CI-sized: enough flows that the rarest class still carries a
    /// measurable share, small enough for a smoke job.
    pub fn ci() -> Self {
        QuicConfig {
            n_flows: 6_000,
            n_classes: 14,
            known_classes: 10,
            pkts_per_flow: 10,
        }
    }

    /// Unit-test sized.
    pub fn tiny() -> Self {
        QuicConfig {
            n_flows: 280,
            n_classes: 14,
            known_classes: 10,
            pkts_per_flow: 8,
        }
    }
}

/// SplitMix64: the per-flow hash behind class draws and packet shapes.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the top 53 bits of a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Center of known class `c`'s packet-size band.
fn known_band(c: usize) -> u64 {
    150 + 85 * c as u64
}

/// The three known bands an unknown class interleaves. Triples are
/// spread so each unknown straddles a *different* set of
/// well-separated known classes. Three-way mixtures matter: a two-way
/// split still lets small count/direction asymmetries hand one band a
/// confidently-winning logit, while an even three-way split caps the
/// softmax near 1/3.
fn unknown_bands(u: usize) -> [usize; 3] {
    let a = (u * 2) % 10;
    [a, (a + 3) % 10, (a + 6) % 10]
}

/// Open-world QUIC workload simulator, following the
/// `Sim::new(cfg).generate(seed)` idiom of the dataset modules.
#[derive(Debug, Clone, Copy)]
pub struct QuicSim {
    config: QuicConfig,
}

impl QuicSim {
    /// Builds a simulator for `config`.
    pub fn new(config: QuicConfig) -> Self {
        assert!(
            config.n_flows >= config.n_classes,
            "need one flow per class"
        );
        assert!(
            config.n_classes >= 12,
            "open-world workload wants >= 12 classes"
        );
        assert!(
            config.known_classes >= 2 && config.known_classes < config.n_classes,
            "need at least 2 known classes and at least 1 unknown"
        );
        assert!(config.pkts_per_flow >= 1, "need at least one data packet");
        QuicSim { config }
    }

    /// Zipf-like class draw: weight of class `r` is `1/(r+1)`. The
    /// first `n_classes` flows are dealt round-robin so every class is
    /// present at any scale.
    fn class_of(&self, i: usize, h: u64) -> usize {
        let k = self.config.n_classes;
        if i < k {
            return i;
        }
        let total: f64 = (0..k).map(|r| 1.0 / (r + 1) as f64).sum();
        let mut target = unit(h) * total;
        for r in 0..k {
            target -= 1.0 / (r + 1) as f64;
            if target < 0.0 {
                return r;
            }
        }
        k - 1
    }

    /// Generates the full serve-time workload (known + unknown
    /// classes), deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        let cfg = self.config;
        let flows = (0..cfg.n_flows)
            .map(|i| {
                let h = splitmix64(seed ^ splitmix64(i as u64));
                let class = self.class_of(i, splitmix64(h ^ 0xC1A5));
                // Diurnal pacing: flow index stands in for time of day;
                // the packet span inside the window swings between 8 s
                // and 14 s over one simulated day.
                let tod = i as f64 / cfg.n_flows as f64 * std::f64::consts::TAU;
                let span = 11.0 + 3.0 * tod.sin();
                let n_pkts = cfg.pkts_per_flow + (h % 3) as usize;
                let step = span / n_pkts as f64;
                let mut pkts: Vec<Pkt> = (0..n_pkts)
                    .map(|j| {
                        let hj = splitmix64(h.wrapping_add(j as u64 * 0x9E37));
                        let band = if class < cfg.known_classes {
                            known_band(class)
                        } else {
                            // Unknowns interleave three known bands
                            // per packet, cycling deterministically so
                            // the split stays balanced and the trained
                            // model's softmax divides three ways
                            // instead of letting a lopsided draw hand
                            // one band a confident majority.
                            let bands = unknown_bands(class - cfg.known_classes);
                            known_band(bands[j % 3])
                        };
                        // Jitter stays narrower than the 85-unit band
                        // spacing so a class's sizes never smear into
                        // its neighbor's band.
                        let size = (band + hj % 60).min(QUIC_MAX_PKT as u64) as u16;
                        let dir = if hj & 1 == 0 {
                            Direction::Upstream
                        } else {
                            Direction::Downstream
                        };
                        Pkt::data(j as f64 * step, size, dir)
                    })
                    .collect();
                pkts.push(Pkt::data(CLOSE_TS, 60, Direction::Upstream));
                Flow {
                    id: i as u64,
                    class: class as u16,
                    partition: Partition::Unpartitioned,
                    background: false,
                    pkts,
                }
            })
            .collect();
        Dataset {
            name: format!("quic-{}", cfg.n_flows),
            class_names: (0..cfg.n_classes).map(class_name).collect(),
            flows,
        }
    }

    /// Generates the training subset: the same workload filtered to
    /// the known classes, with class names truncated to match. Known
    /// class indices are shared with [`QuicSim::generate`] (0-based,
    /// first `known_classes`), so a model trained here can score the
    /// full workload without remapping.
    pub fn generate_known(&self, seed: u64) -> Dataset {
        let full = self.generate(seed);
        let known = self.config.known_classes;
        Dataset {
            name: format!("quic-known-{}", self.config.n_flows),
            class_names: full.class_names[..known].to_vec(),
            flows: full
                .flows
                .into_iter()
                .filter(|f| (f.class as usize) < known)
                .collect(),
        }
    }
}

/// Service-style class names: knowns are named services, unknowns are
/// `unknown{n}` so open-world tooling can spot them by name too.
fn class_name(c: usize) -> String {
    const KNOWN: [&str; 10] = [
        "video-stream",
        "voip",
        "file-sync",
        "web-browse",
        "social",
        "game",
        "mail",
        "maps",
        "music-stream",
        "software-update",
    ];
    if c < KNOWN.len() {
        KNOWN[c].to_string()
    } else {
        format!("unknown{}", c - KNOWN.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quic_covers_every_class_and_is_imbalanced() {
        let ds = QuicSim::new(QuicConfig::tiny()).generate(7);
        assert_eq!(ds.flows.len(), 280);
        assert_eq!(ds.num_classes(), 14);
        let mut counts = vec![0usize; 14];
        for f in &ds.flows {
            assert!(f.is_well_formed());
            counts[f.class as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "every class present: {counts:?}"
        );
        // Zipf head dominates the tail.
        assert!(
            counts[0] > 4 * counts[13],
            "head class should dwarf the tail: {counts:?}"
        );
    }

    #[test]
    fn quic_flows_close_past_the_window() {
        let ds = QuicSim::new(QuicConfig::tiny()).generate(3);
        for f in &ds.flows {
            let last = f.pkts.last().unwrap();
            assert_eq!(last.ts, CLOSE_TS);
            for p in &f.pkts[..f.pkts.len() - 1] {
                assert!(p.ts < 15.0, "data packets stay inside the window");
                assert!(p.size <= QUIC_MAX_PKT);
            }
        }
    }

    #[test]
    fn quic_generation_is_deterministic() {
        let a = QuicSim::new(QuicConfig::tiny()).generate(3);
        let b = QuicSim::new(QuicConfig::tiny()).generate(3);
        assert_eq!(a, b);
        let c = QuicSim::new(QuicConfig::tiny()).generate(4);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn known_subset_shares_ids_and_class_indices_with_the_full_set() {
        let sim = QuicSim::new(QuicConfig::tiny());
        let full = sim.generate(11);
        let known = sim.generate_known(11);
        assert_eq!(known.num_classes(), 10);
        assert!(
            known.flows.len() < full.flows.len(),
            "unknowns were held out"
        );
        for f in &known.flows {
            assert!((f.class as usize) < 10);
            let twin = full.flows.iter().find(|g| g.id == f.id).unwrap();
            assert_eq!(f, twin, "known flows are bit-identical to the full set");
        }
        assert_eq!(known.class_names, full.class_names[..10]);
    }

    #[test]
    fn diurnal_pacing_varies_flow_span() {
        let ds = QuicSim::new(QuicConfig::tiny()).generate(5);
        let span = |f: &Flow| f.pkts[f.pkts.len() - 2].ts;
        let spans: Vec<f64> = ds.flows.iter().map(span).collect();
        let (min, max) = spans
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &s| (lo.min(s), hi.max(s)));
        assert!(
            max - min > 3.0,
            "rate drift over the day: {min:.1}..{max:.1}"
        );
    }
}
