//! Mid-stream distribution shift: the paper's `human` partition in
//! miniature.
//!
//! Paper Fig. 8's headline forensic finding is that one partition's
//! packet-size distribution drifted between collection rounds and
//! silently cost ~7 accuracy points. This module generates that failure
//! mode as a replayable trace: flows start from the [`crate::stress`]
//! size/rate model (so a model trained on a stress-style baseline is the
//! reference), then — from a configurable stream position onwards — one
//! class's packets grow by a fixed size offset and arrive at a
//! multiplied rate. Replayed through the serving daemon, the pre-shift
//! prefix matches the training distribution and the suffix does not,
//! which is exactly the signal `serve::drift` exists to catch.
//!
//! The shift offset is chosen so the shifted size distribution overlaps
//! *no* class's baseline support more than partially: whatever class the
//! live model assigns the shifted flows to, the per-predicted-class L1
//! score diverges. (A shift that lands one class exactly onto another's
//! distribution is invisible to per-class monitoring — the shifted flows
//! are simply predicted as the other class and match its reference.
//! That blind spot is real and documented; this generator deliberately
//! avoids it so tests assert the detectable case.)
//!
//! Generation is splitmix64-hashed per flow like the other simulators:
//! no rand dependency, bit-identical across runs.

use crate::stress::CLOSE_TS;
use crate::types::{Dataset, Direction, Flow, Partition, Pkt};

/// Shape of a shift dataset: a stress-style baseline with one class
/// drifting mid-stream.
#[derive(Debug, Clone, Copy)]
pub struct ShiftConfig {
    /// Number of flows to generate.
    pub n_flows: usize,
    /// Number of classes (flow `i` gets class `i % n_classes`).
    pub n_classes: usize,
    /// Data packets per flow inside the observation window, excluding
    /// the closing packet.
    pub pkts_per_flow: usize,
    /// The class whose distribution shifts.
    pub shifted_class: usize,
    /// Stream position (fraction of `n_flows`, in flow-id order — the
    /// replay stream order) at which the shift begins. `1.0` disables
    /// the shift entirely; see [`ShiftConfig::baseline`].
    pub shift_at_frac: f64,
    /// Bytes added to every data packet of a shifted flow.
    pub size_shift: u64,
    /// Packet-rate multiplier for shifted flows (inter-arrival gaps are
    /// divided by this).
    pub rate_mult: f64,
}

impl ShiftConfig {
    /// Paper-scale trace.
    pub fn paper() -> Self {
        ShiftConfig {
            n_flows: 20_000,
            ..ShiftConfig::tiny()
        }
    }

    /// CI-sized: enough post-shift flows to fill several drift-check
    /// intervals, small enough for a smoke job.
    pub fn ci() -> Self {
        ShiftConfig {
            n_flows: 2_000,
            ..ShiftConfig::tiny()
        }
    }

    /// Unit-test sized.
    pub fn tiny() -> Self {
        ShiftConfig {
            n_flows: 300,
            n_classes: 3,
            pkts_per_flow: 6,
            shifted_class: 1,
            shift_at_frac: 0.5,
            // Class 1's baseline support is [370, 770); +480 moves it to
            // [850, 1250) — disjoint from class 0 ([120, 520)) and class
            // 1, and under half-overlapping class 2 ([620, 1020)), so
            // the L1 score diverges whichever class absorbs the flows.
            size_shift: 480,
            rate_mult: 2.0,
        }
    }

    /// The same distribution with the shift disabled — every flow draws
    /// from the pre-shift model. Train the serving model (and snapshot
    /// the drift references) on this; replay the shifted variant at it.
    pub fn baseline(mut self) -> Self {
        self.shift_at_frac = 1.0;
        self
    }
}

/// SplitMix64: the per-flow hash behind packet sizes and directions.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shift dataset simulator, following the `Sim::new(cfg).generate(seed)`
/// idiom of the dataset modules.
#[derive(Debug, Clone, Copy)]
pub struct ShiftSim {
    config: ShiftConfig,
}

impl ShiftSim {
    /// Builds a simulator for `config`.
    pub fn new(config: ShiftConfig) -> Self {
        assert!(config.n_flows >= 1, "need at least one flow");
        assert!(config.n_classes >= 1, "need at least one class");
        assert!(config.pkts_per_flow >= 1, "need at least one data packet");
        assert!(
            config.shifted_class < config.n_classes,
            "shifted class out of range"
        );
        assert!(
            (0.0..=1.0).contains(&config.shift_at_frac),
            "shift_at_frac must be in [0, 1]"
        );
        assert!(config.rate_mult > 0.0, "rate multiplier must be positive");
        ShiftSim { config }
    }

    /// Flow index at which the shift begins (`n_flows` when disabled).
    pub fn shift_starts_at(&self) -> usize {
        (self.config.n_flows as f64 * self.config.shift_at_frac).round() as usize
    }

    /// Generates the dataset, deterministically from `seed`. Pre-shift
    /// flows reproduce the [`crate::stress`] packet model exactly
    /// (`size = 120 + 250·class + hash % 400`, packets spread over the
    /// first 14 s, closing packet at [`CLOSE_TS`]).
    pub fn generate(&self, seed: u64) -> Dataset {
        let cfg = self.config;
        let shift_from = self.shift_starts_at();
        let flows = (0..cfg.n_flows)
            .map(|i| {
                let h = splitmix64(seed ^ splitmix64(i as u64));
                let class = (i % cfg.n_classes) as u16;
                let shifted = i >= shift_from && class as usize == cfg.shifted_class;
                let step = if shifted {
                    14.0 / cfg.rate_mult / cfg.pkts_per_flow as f64
                } else {
                    14.0 / cfg.pkts_per_flow as f64
                };
                let mut pkts: Vec<Pkt> = (0..cfg.pkts_per_flow)
                    .map(|j| {
                        let hj = splitmix64(h.wrapping_add(j as u64 * 0x9E37));
                        let mut base = 120 + 250 * class as u64;
                        if shifted {
                            base += cfg.size_shift;
                        }
                        let size = (base + hj % 400).min(1500) as u16;
                        let dir = if hj & 1 == 0 {
                            Direction::Upstream
                        } else {
                            Direction::Downstream
                        };
                        Pkt::data(j as f64 * step, size, dir)
                    })
                    .collect();
                pkts.push(Pkt::data(CLOSE_TS, 60, Direction::Upstream));
                Flow {
                    id: i as u64,
                    class,
                    partition: Partition::Unpartitioned,
                    background: false,
                    pkts,
                }
            })
            .collect();
        let tag = if shift_from >= cfg.n_flows {
            "shift-baseline"
        } else {
            "shift"
        };
        Dataset {
            name: format!("{tag}-{}", cfg.n_flows),
            class_names: (0..cfg.n_classes).map(|c| format!("class{c}")).collect(),
            flows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stress::{StressConfig, StressSim};

    #[test]
    fn pre_shift_flows_match_the_stress_model() {
        let cfg = ShiftConfig::tiny();
        let shifted = ShiftSim::new(cfg).generate(7);
        let stress = StressSim::new(StressConfig {
            n_flows: cfg.n_flows,
            n_classes: cfg.n_classes,
            pkts_per_flow: cfg.pkts_per_flow,
        })
        .generate(7);
        let cut = ShiftSim::new(cfg).shift_starts_at();
        assert!(cut > 0 && cut < cfg.n_flows);
        for (a, b) in shifted.flows[..cut].iter().zip(&stress.flows[..cut]) {
            assert_eq!(a, b, "pre-shift flows must equal the stress model");
        }
    }

    #[test]
    fn baseline_never_shifts() {
        let cfg = ShiftConfig::tiny();
        let base = ShiftSim::new(cfg.baseline()).generate(7);
        let stress = StressSim::new(StressConfig {
            n_flows: cfg.n_flows,
            n_classes: cfg.n_classes,
            pkts_per_flow: cfg.pkts_per_flow,
        })
        .generate(7);
        assert_eq!(base.flows, stress.flows);
        assert_eq!(base.name, "shift-baseline-300");
    }

    #[test]
    fn shifted_flows_move_size_and_rate() {
        let cfg = ShiftConfig::tiny();
        let sim = ShiftSim::new(cfg);
        let ds = sim.generate(3);
        let cut = sim.shift_starts_at();
        let mean_size = |f: &Flow| {
            let data = &f.pkts[..f.pkts.len() - 1];
            data.iter().map(|p| p.size as f64).sum::<f64>() / data.len() as f64
        };
        for f in &ds.flows {
            assert!(f.is_well_formed());
            assert_eq!(f.pkts.last().unwrap().ts, CLOSE_TS);
            let shifted = f.id as usize >= cut && f.class as usize == cfg.shifted_class;
            let gap = f.pkts[1].ts - f.pkts[0].ts;
            if shifted {
                // Support [850, 1250) vs baseline [370, 770).
                assert!(mean_size(f) >= 850.0, "flow {}: {}", f.id, mean_size(f));
                assert!((gap - 14.0 / 2.0 / 6.0).abs() < 1e-9);
            } else if f.class as usize == cfg.shifted_class {
                assert!(mean_size(f) < 770.0);
                assert!((gap - 14.0 / 6.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn shift_generation_is_deterministic() {
        let a = ShiftSim::new(ShiftConfig::tiny()).generate(3);
        let b = ShiftSim::new(ShiftConfig::tiny()).generate(3);
        assert_eq!(a, b);
        let c = ShiftSim::new(ShiftConfig::tiny()).generate(4);
        assert_ne!(a, c, "seed must matter");
    }
}
