//! Network-path emulation: what a flow looks like after crossing a
//! different path.
//!
//! The paper's best augmentations (Change RTT, Time shift) win because
//! they imitate *path-induced* variation. This module provides the
//! ground truth those augmentations approximate: a [`PathModel`] applies
//! added latency, per-packet queueing jitter, random loss and
//! token-bucket rate limiting to a packet series — the classic `netem` /
//! `tbf` discipline pair. The `ablation_path_robustness` bench uses it to
//! measure how models trained on clean flows survive degraded paths, and
//! how much augmentation closes that gap.

use crate::dist;
use crate::types::Pkt;
use rand::{Rng, RngExt};
use serde::Serialize;

/// A network path's impairments.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PathModel {
    /// Added one-way latency, seconds. A constant shift: alone it is
    /// exactly what the "Time shift" augmentation models (and it vanishes
    /// under the flowpic's t=0 normalization).
    pub latency_s: f64,
    /// Standard deviation of per-packet queueing jitter, seconds.
    /// Reordering is prevented (a packet never leaves before its
    /// predecessor), matching netem's default behaviour with reorder off.
    pub jitter_s: f64,
    /// Independent per-packet loss probability.
    pub loss: f64,
    /// Bottleneck rate in bytes/second (`None` = unconstrained). Modeled
    /// as a token bucket: packets wait until the bucket refills.
    pub rate_bps: Option<f64>,
    /// Token-bucket depth in bytes (burst allowance) when rate-limited.
    pub bucket_bytes: f64,
}

impl PathModel {
    /// An unimpaired path (identity).
    pub fn clean() -> PathModel {
        PathModel {
            latency_s: 0.0,
            jitter_s: 0.0,
            loss: 0.0,
            rate_bps: None,
            bucket_bytes: 0.0,
        }
    }

    /// A long-haul path: +80 ms latency, 5 ms jitter, 0.5 % loss.
    pub fn long_haul() -> PathModel {
        PathModel {
            latency_s: 0.08,
            jitter_s: 0.005,
            loss: 0.005,
            rate_bps: None,
            bucket_bytes: 0.0,
        }
    }

    /// A congested last mile: 20 ms jitter, 2 % loss, 2 Mbit/s bottleneck.
    pub fn congested() -> PathModel {
        PathModel {
            latency_s: 0.03,
            jitter_s: 0.02,
            loss: 0.02,
            rate_bps: Some(250_000.0),
            bucket_bytes: 30_000.0,
        }
    }

    /// Applies the path to a packet series, returning the egress series
    /// (re-zeroed to its first packet, as a capture at the far end would
    /// be). Empty results (everything lost) stay empty.
    pub fn apply<R: Rng + ?Sized>(&self, pkts: &[Pkt], rng: &mut R) -> Vec<Pkt> {
        assert!((0.0..=1.0).contains(&self.loss));
        assert!(self.jitter_s >= 0.0 && self.latency_s >= 0.0);
        let mut out: Vec<Pkt> = Vec::with_capacity(pkts.len());
        let mut last_egress = f64::MIN;
        // Token bucket state.
        let mut tokens = self.bucket_bytes;
        let mut bucket_t = 0.0f64;
        for p in pkts {
            if self.loss > 0.0 && rng.random::<f64>() < self.loss {
                continue;
            }
            // Queueing delay: latency + non-negative jitter draw.
            let jitter = if self.jitter_s > 0.0 {
                dist::truncated_normal(rng, 0.0, self.jitter_s, 0.0, 6.0 * self.jitter_s)
            } else {
                0.0
            };
            let mut t = p.ts + self.latency_s + jitter;
            // Rate limiting: the packet is serviced no earlier than when
            // the bucket last freed up, then waits for enough tokens.
            if let Some(rate) = self.rate_bps {
                let cap = self.bucket_bytes.max(p.size as f64);
                let service_start = t.max(bucket_t);
                tokens = (tokens + (service_start - bucket_t) * rate).min(cap);
                bucket_t = service_start;
                if tokens < p.size as f64 {
                    let wait = (p.size as f64 - tokens) / rate;
                    bucket_t += wait;
                    tokens = 0.0;
                    t = bucket_t;
                } else {
                    tokens -= p.size as f64;
                    t = service_start;
                }
            }
            // No reordering: FIFO egress.
            if t < last_egress {
                t = last_egress;
            }
            last_egress = t;
            out.push(Pkt { ts: t, ..*p });
        }
        // Re-zero.
        if let Some(&first) = out.first() {
            for p in &mut out {
                p.ts -= first.ts;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Direction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn series(n: usize, gap: f64, size: u16) -> Vec<Pkt> {
        (0..n)
            .map(|i| Pkt::data(i as f64 * gap, size, Direction::Downstream))
            .collect()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn clean_path_is_identity() {
        let s = series(50, 0.1, 500);
        let out = PathModel::clean().apply(&s, &mut rng());
        assert_eq!(out, s);
    }

    #[test]
    fn pure_latency_vanishes_after_rezeroing() {
        let s = series(20, 0.1, 500);
        let mut p = PathModel::clean();
        p.latency_s = 0.5;
        let out = p.apply(&s, &mut rng());
        for (a, b) in s.iter().zip(&out) {
            assert!((a.ts - b.ts).abs() < 1e-12);
        }
    }

    #[test]
    fn jitter_never_reorders() {
        let s = series(200, 0.001, 500);
        let mut p = PathModel::clean();
        p.jitter_s = 0.05; // jitter >> gap: reordering pressure
        let out = p.apply(&s, &mut rng());
        assert_eq!(out.len(), s.len());
        assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn loss_drops_roughly_the_right_fraction() {
        let s = series(10_000, 0.001, 500);
        let mut p = PathModel::clean();
        p.loss = 0.1;
        let out = p.apply(&s, &mut rng());
        let kept = out.len() as f64 / s.len() as f64;
        assert!((kept - 0.9).abs() < 0.02, "kept {kept}");
    }

    #[test]
    fn rate_limit_stretches_bursts() {
        // A 100-packet burst of 1000B packets in 10 ms through a
        // 100 kB/s bottleneck needs ~1 s to drain.
        let s = series(100, 0.0001, 1000);
        let mut p = PathModel::clean();
        p.rate_bps = Some(100_000.0);
        p.bucket_bytes = 2_000.0;
        let out = p.apply(&s, &mut rng());
        let duration = out.last().unwrap().ts;
        assert!(
            duration > 0.8,
            "drained in {duration}s — bottleneck not applied"
        );
        assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn unconstrained_rate_keeps_timing() {
        let s = series(50, 0.01, 1400);
        let out = PathModel::clean().apply(&s, &mut rng());
        assert_eq!(out.last().unwrap().ts, s.last().unwrap().ts);
    }

    #[test]
    fn total_loss_yields_empty() {
        let s = series(10, 0.1, 100);
        let mut p = PathModel::clean();
        p.loss = 1.0;
        assert!(p.apply(&s, &mut rng()).is_empty());
    }

    #[test]
    fn presets_are_valid() {
        let s = series(300, 0.01, 1200);
        for model in [PathModel::long_haul(), PathModel::congested()] {
            let out = model.apply(&s, &mut rng());
            assert!(!out.is_empty());
            assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts));
            assert_eq!(out[0].ts, 0.0);
        }
    }
}
