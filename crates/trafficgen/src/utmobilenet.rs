//! UTMOBILENET21 dataset simulator.
//!
//! UTMobileNetTraffic2021 (Heng et al., 2021) captures 17 mobile apps in
//! four separate measurement campaigns — "Action-Specific", "Deterministic
//! Automated", "Randomized Automated" and "Wild Test" — which the
//! replication paper collates "4-into-1". The dataset is the most
//! imbalanced of the four (ρ ≈ 35 raw, ≈ 19 after the `>10pkts` filter) and
//! several of its classes are small enough that the paper's minimum-class-
//! size curation (≥ 100 samples) drops them, leaving 10 classes.
//!
//! The simulated equivalent reproduces the 4-partition structure, the
//! imbalance, and the small classes destined to be curated away.

use crate::synth::{app_profile, generate_dataset, imbalanced_counts, ClassGenSpec};
use crate::types::{Dataset, Partition};
use serde::Serialize;

/// Raw number of app classes (before curation drops the small ones).
pub const NUM_CLASSES: usize = 17;

/// The four capture campaigns that curation collates into one.
pub const CAMPAIGNS: [Partition; 4] = [
    Partition::ActionSpecific,
    Partition::DeterministicAutomated,
    Partition::RandomizedAutomated,
    Partition::WildTest,
];

/// Simulator configuration.
#[derive(Debug, Clone, Serialize)]
pub struct UtMobileNetConfig {
    /// Flow count of the largest class (raw).
    pub max_class_flows: usize,
    /// Target raw class-imbalance ratio ρ.
    pub rho: f64,
    /// Per-flow packet cap.
    pub max_pkts: usize,
    /// Inter-class separation; 0.65 lands the supervised F1 near the
    /// paper's ≈80 % band.
    pub spread: f64,
}

impl UtMobileNetConfig {
    /// Paper-scale (Table 2: 34 378 raw flows, largest class 5 591,
    /// ρ ≈ 35.2).
    pub fn paper() -> Self {
        UtMobileNetConfig {
            max_class_flows: 5_591,
            rho: 35.2,
            max_pkts: 700,
            spread: 0.65,
        }
    }

    /// Reduced scale for benches. ρ is kept at the paper's value so that
    /// the smallest classes still fall below the 100-sample curation
    /// threshold.
    pub fn quick() -> Self {
        UtMobileNetConfig {
            max_class_flows: 1500,
            rho: 35.2,
            max_pkts: 400,
            spread: 0.65,
        }
    }

    /// Tiny scale for unit tests.
    pub fn tiny() -> Self {
        UtMobileNetConfig {
            max_class_flows: 60,
            rho: 10.0,
            max_pkts: 120,
            spread: 0.65,
        }
    }
}

/// The UTMOBILENET21 simulator.
#[derive(Debug, Clone)]
pub struct UtMobileNetSim {
    config: UtMobileNetConfig,
}

impl UtMobileNetSim {
    /// Creates a simulator.
    pub fn new(config: UtMobileNetConfig) -> Self {
        UtMobileNetSim { config }
    }

    /// Generates the raw (uncurated, four-campaign) dataset.
    pub fn generate(&self, seed: u64) -> Dataset {
        let counts = imbalanced_counts(NUM_CLASSES, self.config.max_class_flows, self.config.rho);
        let specs: Vec<ClassGenSpec> = (0..NUM_CLASSES)
            .map(|i| {
                let mut profile =
                    app_profile(i, NUM_CLASSES, self.config.spread, "utmobilenet-app");
                profile.duration_mean = 25.0;
                profile.duration_sigma = 1.0;
                ClassGenSpec {
                    name: format!("utmobilenet-app-{i:02}"),
                    profile,
                    count: counts[i],
                    short_flow_fraction: 0.5,
                    background_fraction: 0.0,
                    // The automated campaigns dominate; the wild test is the
                    // smallest, as in the original collection.
                    partitions: vec![
                        (Partition::ActionSpecific, 0.3),
                        (Partition::DeterministicAutomated, 0.3),
                        (Partition::RandomizedAutomated, 0.3),
                        (Partition::WildTest, 0.1),
                    ],
                }
            })
            .collect();
        generate_dataset("utmobilenet21", &specs, seed, self.config.max_pkts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_campaign_structure() {
        let ds = UtMobileNetSim::new(UtMobileNetConfig::tiny()).generate(1);
        assert_eq!(ds.num_classes(), NUM_CLASSES);
        for p in CAMPAIGNS {
            assert!(ds.partition(p).next().is_some(), "empty campaign {p:?}");
        }
    }

    #[test]
    fn strong_imbalance() {
        let ds = UtMobileNetSim::new(UtMobileNetConfig::tiny()).generate(2);
        let rho = ds.imbalance_rho().unwrap();
        assert!(rho > 5.0, "rho {rho}");
    }

    #[test]
    fn quick_scale_has_sub_100_classes() {
        // At quick scale, some classes must fall below the 100-sample
        // curation threshold once short flows are filtered, so that the
        // curated dataset has fewer classes than the raw 17 — as in the
        // paper's Table 2.
        let ds = UtMobileNetSim::new(UtMobileNetConfig::quick()).generate(3);
        let long_counts: Vec<usize> = {
            let mut counts = vec![0usize; NUM_CLASSES];
            for f in ds.flows.iter().filter(|f| !f.background && f.len() >= 10) {
                counts[f.class as usize] += 1;
            }
            counts
        };
        assert!(
            long_counts.iter().any(|&c| c < 100),
            "no class below 100 samples: {long_counts:?}"
        );
        assert!(
            long_counts.iter().filter(|&&c| c >= 100).count() >= 8,
            "too few surviving classes: {long_counts:?}"
        );
    }

    #[test]
    fn deterministic() {
        let a = UtMobileNetSim::new(UtMobileNetConfig::tiny()).generate(6);
        let b = UtMobileNetSim::new(UtMobileNetConfig::tiny()).generate(6);
        assert_eq!(a.flows, b.flows);
    }
}
