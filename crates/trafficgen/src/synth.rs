//! Shared machinery for the MIRAGE / UTMobileNet dataset simulators.
//!
//! These three datasets differ from UCDAVIS19 in structure (many classes,
//! strong imbalance, uncurated raw captures) but are generated the same
//! way: for every class, a [`ClassGenSpec`] describes the traffic profile,
//! flow count, and the fractions of short flows and background flows that
//! the curation pipeline is later expected to remove. This module owns the
//! generation loop so the three simulators stay declarative.

use crate::dist::{self, SizeMixture};
use crate::process::generate_pkts;
use crate::profile::TrafficProfile;
use crate::types::{Dataset, Flow, Partition};
use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;

/// Generation recipe for one class of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct ClassGenSpec {
    /// Class name.
    pub name: String,
    /// Traffic profile of the target app.
    pub profile: TrafficProfile,
    /// Number of flows to generate for this class.
    pub count: usize,
    /// Fraction of flows truncated to fewer than 10 packets — raw mobile
    /// captures are full of aborted connections, which the paper's
    /// `>10pkts` curation filter removes.
    pub short_flow_fraction: f64,
    /// Fraction of *additional* background flows (netd, SSDP, Android gms…)
    /// emitted alongside this class's captures, flagged `background`.
    pub background_fraction: f64,
    /// Partitions this class's flows are distributed over, with weights.
    /// Unweighted datasets pass `[(Partition::Unpartitioned, 1.0)]`.
    pub partitions: Vec<(Partition, f64)>,
}

/// Profile of OS/background chatter present in mobile captures: sparse tiny
/// packets (DNS, SSDP announcements, keep-alives).
pub fn background_profile() -> TrafficProfile {
    let mut p = TrafficProfile::base("background");
    p.burst_interval_mean = 3.0;
    p.burst_len_mean = 2.0;
    p.burst_len_sd = 1.0;
    p.intra_burst_gap = 0.05;
    p.down_sizes = SizeMixture::of(&[(1.0, 140.0, 60.0)]);
    p.up_sizes = SizeMixture::of(&[(1.0, 90.0, 40.0)]);
    p.up_fraction = 0.5;
    p.duration_mean = 20.0;
    p
}

/// Generates a dataset from per-class recipes, deterministically from
/// `seed`. `max_pkts` caps per-flow memory.
pub fn generate_dataset(name: &str, specs: &[ClassGenSpec], seed: u64, max_pkts: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flows = Vec::new();
    let mut next_id = 0u64;
    let bg_profile = background_profile();

    for (class_idx, spec) in specs.iter().enumerate() {
        let total_weight: f64 = spec.partitions.iter().map(|p| p.1).sum();
        for _ in 0..spec.count {
            // Pick a partition by weight.
            let mut pick = rng.random::<f64>() * total_weight;
            let mut partition = spec.partitions[spec.partitions.len() - 1].0;
            for &(p, w) in &spec.partitions {
                if pick < w {
                    partition = p;
                    break;
                }
                pick -= w;
            }

            let short = rng.random::<f64>() < spec.short_flow_fraction;
            let cap = if short {
                rng.random_range(1..10)
            } else {
                max_pkts
            };
            let pkts = generate_pkts(&spec.profile, &mut rng, cap);
            next_id += 1;
            flows.push(Flow {
                id: next_id,
                class: class_idx as u16,
                partition,
                background: false,
                pkts,
            });

            if rng.random::<f64>() < spec.background_fraction {
                let bg_cap = (dist::pareto(&mut rng, 3.0, 1.2) as usize).clamp(2, 80);
                let pkts = generate_pkts(&bg_profile, &mut rng, bg_cap);
                next_id += 1;
                flows.push(Flow {
                    id: next_id,
                    class: class_idx as u16,
                    partition,
                    background: true,
                    pkts,
                });
            }
        }
    }

    Dataset {
        name: name.into(),
        class_names: specs.iter().map(|s| s.name.clone()).collect(),
        flows,
    }
}

/// Derives a family of moderately-separable app profiles, one per class.
///
/// Classes are laid out on a low-dimensional parameter lattice (dominant
/// packet-size mode × burst cadence × burst length) with overlap between
/// lattice neighbours, which is what makes the many-class datasets harder
/// than UCDAVIS19 — matching the accuracy ceilings the paper reports
/// (≈70 % on MIRAGE-19 vs ≈97 % on UCDAVIS19 script).
///
/// `spread` scales inter-class separation: smaller values make classes
/// harder to tell apart.
pub fn app_profile(
    class_idx: usize,
    n_classes: usize,
    spread: f64,
    base_name: &str,
) -> TrafficProfile {
    // Deterministic pseudo-random, but *fixed* per class: derive parameters
    // from a per-class RNG so the class identity is stable across dataset
    // seeds.
    let mut rng = StdRng::seed_from_u64(0x5EED_0000 + class_idx as u64);
    let frac = class_idx as f64 / n_classes.max(1) as f64;

    let mut p = TrafficProfile::base(&format!("{base_name}-{class_idx:02}"));
    // Dominant size mode sweeps the size axis with per-class jitter.
    let size_main = 150.0 + 1300.0 * frac + dist::normal(&mut rng, 0.0, 40.0 * spread);
    let size_side =
        100.0 + 500.0 * ((class_idx * 7 % n_classes.max(1)) as f64 / n_classes.max(1) as f64);
    p.down_sizes = SizeMixture::of(&[
        (
            0.7,
            size_main.clamp(80.0, 1490.0),
            90.0 + 60.0 * (1.0 - spread),
        ),
        (0.3, size_side.clamp(60.0, 900.0), 120.0),
    ]);
    p.up_sizes = SizeMixture::of(&[(1.0, 90.0 + 180.0 * frac, 60.0)]);
    p.up_fraction =
        0.15 + 0.5 * ((class_idx * 3 % n_classes.max(1)) as f64 / n_classes.max(1) as f64);

    // Burst cadence cycles through a small set of regimes.
    match class_idx % 4 {
        0 => {
            p.burst_interval_mean = 0.4 + 1.6 * frac;
            p.burst_len_mean = 8.0 + 30.0 * frac;
        }
        1 => {
            p.periodic = Some(1.2 + 2.4 * frac);
            p.burst_len_mean = 15.0 + 25.0 * frac;
        }
        2 => {
            p.burst_interval_mean = 0.25 + 0.6 * frac;
            p.burst_len_mean = 3.0 + 6.0 * frac;
            p.intra_burst_gap = 0.015;
        }
        _ => {
            p.anchors = vec![0.0, 3.0 + 6.0 * frac];
            p.burst_interval_mean = 12.0;
            p.burst_len_mean = 20.0 + 20.0 * frac;
        }
    }
    p.burst_len_sd = p.burst_len_mean * 0.35;
    p.rtt_mean =
        0.03 + 0.05 * ((class_idx * 5 % n_classes.max(1)) as f64 / n_classes.max(1) as f64);

    // App-specific handshake: TLS hello + first exchange sizes, drawn once
    // per class. Lower `spread` widens the per-flow jitter, blurring the
    // early-packet signal the same way busy app markets do.
    p.handshake = vec![
        (
            dist::uniform(&mut rng, 180.0, 750.0),
            crate::types::Direction::Upstream,
        ),
        (
            dist::uniform(&mut rng, 900.0, 1480.0),
            crate::types::Direction::Downstream,
        ),
        (
            dist::uniform(&mut rng, 80.0, 420.0),
            crate::types::Direction::Upstream,
        ),
    ];
    p.handshake_jitter = 15.0 + 70.0 * (1.0 - spread.min(1.0));
    p
}

/// Imbalanced per-class flow counts with a target max/min ratio ρ.
///
/// Counts decay geometrically from `max_count` down to `max_count / rho`,
/// reproducing the class imbalance column of the paper's Table 2.
pub fn imbalanced_counts(n_classes: usize, max_count: usize, rho: f64) -> Vec<usize> {
    assert!(n_classes >= 1 && rho >= 1.0);
    (0..n_classes)
        .map(|i| {
            let frac = if n_classes == 1 {
                0.0
            } else {
                i as f64 / (n_classes - 1) as f64
            };
            let count = max_count as f64 / rho.powf(frac);
            count.round().max(1.0) as usize
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalanced_counts_hit_rho() {
        let c = imbalanced_counts(10, 1000, 5.0);
        assert_eq!(c[0], 1000);
        assert_eq!(*c.last().unwrap(), 200);
        assert!(c.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn app_profiles_are_stable_and_distinct() {
        let a = app_profile(0, 20, 1.0, "app");
        let a2 = app_profile(0, 20, 1.0, "app");
        let b = app_profile(10, 20, 1.0, "app");
        assert_eq!(a.down_sizes.modes[0].1, a2.down_sizes.modes[0].1);
        assert!((a.down_sizes.modes[0].1 - b.down_sizes.modes[0].1).abs() > 100.0);
    }

    #[test]
    fn generate_dataset_respects_specs() {
        let specs = vec![
            ClassGenSpec {
                name: "a".into(),
                profile: app_profile(0, 2, 1.0, "app"),
                count: 30,
                short_flow_fraction: 0.5,
                background_fraction: 0.3,
                partitions: vec![(Partition::Unpartitioned, 1.0)],
            },
            ClassGenSpec {
                name: "b".into(),
                profile: app_profile(1, 2, 1.0, "app"),
                count: 10,
                short_flow_fraction: 0.0,
                background_fraction: 0.0,
                partitions: vec![(Partition::Unpartitioned, 1.0)],
            },
        ];
        let ds = generate_dataset("t", &specs, 3, 200);
        assert_eq!(ds.class_names, vec!["a".to_string(), "b".to_string()]);
        // Class counts (non-background) match the spec.
        assert_eq!(ds.class_counts(), vec![30, 10]);
        // Background flows exist for class a.
        assert!(ds.flows.iter().any(|f| f.background));
        // Short flows exist (below the 10-packet curation threshold).
        assert!(ds.flows.iter().any(|f| !f.background && f.len() < 10));
        assert!(ds.flows.iter().all(|f| f.is_well_formed()));
    }

    #[test]
    fn partition_weights_are_used() {
        let specs = vec![ClassGenSpec {
            name: "a".into(),
            profile: app_profile(0, 1, 1.0, "app"),
            count: 200,
            short_flow_fraction: 0.0,
            background_fraction: 0.0,
            partitions: vec![(Partition::ActionSpecific, 3.0), (Partition::WildTest, 1.0)],
        }];
        let ds = generate_dataset("t", &specs, 3, 50);
        let action = ds.partition(Partition::ActionSpecific).count();
        let wild = ds.partition(Partition::WildTest).count();
        assert_eq!(action + wild, 200);
        assert!(action > wild, "action {action} wild {wild}");
    }
}
