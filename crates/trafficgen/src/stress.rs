//! Serving-path stress traffic: huge flow counts, tiny flows.
//!
//! The dataset simulators ([`crate::ucdavis`] and friends) model *traffic
//! structure* — realistic packet-size mixtures, burst processes, class
//! imbalance — at flow counts in the thousands. Stressing the serving
//! dataplane needs the opposite trade: the maximum number of *distinct
//! flow ids* per byte of trace, so that tracker occupancy, done-set
//! rotation, and prediction-buffer retention are the load, not the
//! traffic model. This module generates that shape directly.
//!
//! Every stress flow is short (a handful of data packets inside the
//! paper's 15 s observation window) and ends with a closing packet at
//! 15.5 s flow time, past the window edge. That closing packet is what
//! makes the trace a *steady-state* load: the tracker completes each
//! flow the moment it crosses the window, so flows classify and retire
//! continuously instead of piling up until the end-of-stream flush.
//! Replayed through `serve::replay::trace_from_dataset` with a small
//! flow gap, the trace holds tracker occupancy near
//! `window / flow_gap` flows while total flow count — and therefore
//! done-set and prediction-buffer pressure — grows without bound.
//!
//! Generation is splitmix64-hashed per flow: O(1) state, no rand
//! dependency on the hot path, bit-identical across runs, and fast
//! enough that [`StressConfig::million`] builds in seconds.

use crate::types::{Dataset, Direction, Flow, Partition, Pkt};

/// The flow-time at which every stress flow emits its closing packet —
/// just past the paper's 15 s observation window, so the tracker
/// completes the flow immediately rather than waiting for idle timeout.
pub const CLOSE_TS: f64 = 15.5;

/// Shape of a stress dataset: many flows, few packets each.
#[derive(Debug, Clone, Copy)]
pub struct StressConfig {
    /// Number of flows to generate.
    pub n_flows: usize,
    /// Number of classes (flow `i` gets class `i % n_classes`).
    pub n_classes: usize,
    /// Data packets per flow inside the observation window, excluding
    /// the closing packet. Must be at least 1.
    pub pkts_per_flow: usize,
}

impl StressConfig {
    /// The headline stress shape: one million distinct flows.
    pub fn million() -> Self {
        StressConfig {
            n_flows: 1_000_000,
            n_classes: 5,
            pkts_per_flow: 6,
        }
    }

    /// CI-sized: large enough to exercise done-set rotation and
    /// prediction retention, small enough for a smoke job.
    pub fn ci() -> Self {
        StressConfig {
            n_flows: 20_000,
            n_classes: 5,
            pkts_per_flow: 6,
        }
    }

    /// Unit-test sized.
    pub fn tiny() -> Self {
        StressConfig {
            n_flows: 200,
            n_classes: 5,
            pkts_per_flow: 6,
        }
    }
}

/// SplitMix64: the per-flow hash behind packet sizes and directions.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stress dataset simulator, following the `Sim::new(cfg).generate(seed)`
/// idiom of the dataset modules.
#[derive(Debug, Clone, Copy)]
pub struct StressSim {
    config: StressConfig,
}

impl StressSim {
    /// Builds a simulator for `config`.
    pub fn new(config: StressConfig) -> Self {
        assert!(config.n_flows >= 1, "need at least one flow");
        assert!(config.n_classes >= 1, "need at least one class");
        assert!(config.pkts_per_flow >= 1, "need at least one data packet");
        StressSim { config }
    }

    /// Generates the dataset, deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        let cfg = self.config;
        let flows = (0..cfg.n_flows)
            .map(|i| {
                let h = splitmix64(seed ^ splitmix64(i as u64));
                // Data packets spread over the first 14 s; size and
                // direction are class-tinted so the trace still has a
                // learnable (if trivial) signal.
                let class = (i % cfg.n_classes) as u16;
                let step = 14.0 / cfg.pkts_per_flow as f64;
                let mut pkts: Vec<Pkt> = (0..cfg.pkts_per_flow)
                    .map(|j| {
                        let hj = splitmix64(h.wrapping_add(j as u64 * 0x9E37));
                        let base = 120 + 250 * class as u64;
                        let size = (base + hj % 400).min(1500) as u16;
                        let dir = if hj & 1 == 0 {
                            Direction::Upstream
                        } else {
                            Direction::Downstream
                        };
                        Pkt::data(j as f64 * step, size, dir)
                    })
                    .collect();
                pkts.push(Pkt::data(CLOSE_TS, 60, Direction::Upstream));
                Flow {
                    id: i as u64,
                    class,
                    partition: Partition::Unpartitioned,
                    background: false,
                    pkts,
                }
            })
            .collect();
        Dataset {
            name: format!("stress-{}", cfg.n_flows),
            class_names: (0..cfg.n_classes).map(|c| format!("class{c}")).collect(),
            flows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stress_flows_close_past_the_window() {
        let ds = StressSim::new(StressConfig::tiny()).generate(7);
        assert_eq!(ds.flows.len(), 200);
        assert_eq!(ds.num_classes(), 5);
        for f in &ds.flows {
            assert!(f.is_well_formed());
            assert_eq!(f.len(), StressConfig::tiny().pkts_per_flow + 1);
            let last = f.pkts.last().unwrap();
            assert_eq!(last.ts, CLOSE_TS);
            assert!(last.ts > 15.0, "closing packet must cross the window");
            // Every other packet stays inside the window.
            for p in &f.pkts[..f.pkts.len() - 1] {
                assert!(p.ts < 15.0);
            }
        }
    }

    #[test]
    fn stress_generation_is_deterministic() {
        let a = StressSim::new(StressConfig::tiny()).generate(3);
        let b = StressSim::new(StressConfig::tiny()).generate(3);
        assert_eq!(a, b);
        let c = StressSim::new(StressConfig::tiny()).generate(4);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn stress_ids_are_dense_and_distinct() {
        let ds = StressSim::new(StressConfig::tiny()).generate(1);
        for (i, f) in ds.flows.iter().enumerate() {
            assert_eq!(f.id, i as u64);
        }
    }
}
