//! Scalar probability distributions for the traffic models.
//!
//! The allowed dependency set includes `rand` but not `rand_distr`, so the
//! handful of distributions the generators need are implemented here:
//! normal (Box–Muller), log-normal, exponential (inverse CDF), Pareto, and
//! truncated/clamped variants. All samplers take `&mut impl Rng` so they
//! compose with any seeded generator.

use rand::{Rng, RngExt};

/// Samples a standard normal via the Box–Muller transform.
pub fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against log(0): draw u1 from (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples N(mean, sd).
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * std_normal(rng)
}

/// Samples N(mean, sd) truncated to `[lo, hi]` by rejection with a clamp
/// fallback after 16 attempts (the fallback keeps the sampler total even
/// for degenerate bounds).
pub fn truncated_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi);
    for _ in 0..16 {
        let x = normal(rng, mean, sd);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    normal(rng, mean, sd).clamp(lo, hi)
}

/// Samples a log-normal with the given parameters of the *underlying*
/// normal (i.e. `exp(N(mu, sigma))`).
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples Exp(rate) via inverse CDF. `rate` must be positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = 1.0 - rng.random::<f64>(); // u in (0, 1]
    -u.ln() / rate
}

/// Samples a Pareto with scale `xm > 0` and shape `alpha > 0` — the
/// canonical heavy-tailed model for flow sizes.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, xm: f64, alpha: f64) -> f64 {
    debug_assert!(xm > 0.0 && alpha > 0.0);
    let u: f64 = 1.0 - rng.random::<f64>();
    xm / u.powf(1.0 / alpha)
}

/// Samples uniformly from `[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.random::<f64>()
}

/// A discrete mixture over packet-size modes.
///
/// Real traffic packet-size distributions are strongly multi-modal (full
/// MTU data packets, small control packets, mid-size application messages),
/// so the class profiles describe sizes as a weighted mixture of truncated
/// normal modes.
#[derive(Debug, Clone)]
pub struct SizeMixture {
    /// `(weight, mean, sd)` per mode. Weights need not be normalized.
    pub modes: Vec<(f64, f64, f64)>,
}

impl SizeMixture {
    /// A single-mode mixture.
    pub fn single(mean: f64, sd: f64) -> Self {
        SizeMixture {
            modes: vec![(1.0, mean, sd)],
        }
    }

    /// Builds a mixture from `(weight, mean, sd)` triples.
    pub fn of(modes: &[(f64, f64, f64)]) -> Self {
        assert!(!modes.is_empty(), "mixture needs at least one mode");
        SizeMixture {
            modes: modes.to_vec(),
        }
    }

    /// Samples one packet size, clamped to `[1, 1500]` bytes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        let total: f64 = self.modes.iter().map(|m| m.0).sum();
        let mut pick = rng.random::<f64>() * total;
        let mut chosen = &self.modes[self.modes.len() - 1];
        for mode in &self.modes {
            if pick < mode.0 {
                chosen = mode;
                break;
            }
            pick -= mode.0;
        }
        let (_, mean, sd) = *chosen;
        truncated_normal(rng, mean, sd, 1.0, 1500.0).round() as u16
    }

    /// Returns a copy with every mode's mean scaled by `factor` — the
    /// mechanism used to inject the `human`-partition size shift.
    pub fn scaled(&self, factor: f64) -> Self {
        SizeMixture {
            modes: self
                .modes
                .iter()
                .map(|&(w, m, s)| (w, m * factor, s))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.02, "mean {mean}");
        assert!((0..1000).all(|_| exponential(&mut r, 4.0) >= 0.0));
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut r = rng();
        for _ in 0..5_000 {
            let x = truncated_normal(&mut r, 0.0, 10.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn truncated_normal_degenerate_bounds() {
        let mut r = rng();
        // Bounds far outside the distribution mass: clamp fallback must fire.
        let x = truncated_normal(&mut r, 0.0, 0.001, 100.0, 101.0);
        assert!((100.0..=101.0).contains(&x));
    }

    #[test]
    fn pareto_lower_bound() {
        let mut r = rng();
        for _ in 0..5_000 {
            assert!(pareto(&mut r, 2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn log_normal_positive() {
        let mut r = rng();
        for _ in 0..5_000 {
            assert!(log_normal(&mut r, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn uniform_range() {
        let mut r = rng();
        for _ in 0..5_000 {
            let x = uniform(&mut r, -2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn size_mixture_clamps_and_picks_modes() {
        let mut r = rng();
        let mix = SizeMixture::of(&[(0.5, 1400.0, 50.0), (0.5, 100.0, 30.0)]);
        let samples: Vec<u16> = (0..4_000).map(|_| mix.sample(&mut r)).collect();
        assert!(samples.iter().all(|&s| (1..=1500).contains(&s)));
        // Both modes must be represented.
        assert!(samples.iter().any(|&s| s > 1000));
        assert!(samples.iter().any(|&s| s < 400));
    }

    #[test]
    fn size_mixture_scaling() {
        let mix = SizeMixture::single(1000.0, 10.0).scaled(0.5);
        assert!((mix.modes[0].1 - 500.0).abs() < 1e-12);
    }
}
