//! ISCX-VPN/Tor–like dataset simulator, and the 15-second window slicing
//! the Ref-Paper used to stretch it.
//!
//! The Ref-Paper evaluates on ISCX-VPN and ISCX-Tor as well, but the
//! replication *discards* them (its Sec. 3.4): the datasets "contain only
//! tens of viable flows", so reaching the 100 training samples requires
//! creating "multiple 15s windows from the same flow, which seems
//! artificious", and prior work (its ref. \[20\], "the Emperor has no
//! clothes") exposes data-bias fallacies in them. This module exists to
//! *demonstrate that argument quantitatively*:
//!
//! * [`IscxSim`] generates an ISCX-shaped dataset — 10 traffic categories
//!   (plain + VPN-tunneled), only tens of long flows per class, and
//!   strong per-flow idiosyncrasy (each capture session has its own path
//!   characteristics), which is precisely what makes window slicing
//!   dangerous;
//! * [`slice_into_windows`] cuts flows into consecutive 15 s windows, the
//!   Ref-Paper's sample-multiplication artifice;
//! * the `ablation_iscx_leakage` bench then contrasts a window-level
//!   train/test split (windows of one flow on both sides — leakage)
//!   against a flow-level split (honest), reproducing the inflated-
//!   accuracy fallacy.

use crate::dist::{self, SizeMixture};
use crate::process::generate_pkts;
use crate::profile::TrafficProfile;
use crate::types::{Dataset, Flow, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// The 10 categories the Ref-Paper combined out of ISCX-VPN/Tor.
pub const CLASSES: [&str; 10] = [
    "browsing",
    "email",
    "chat",
    "streaming",
    "ftp",
    "voip",
    "vpn-browsing",
    "vpn-chat",
    "vpn-streaming",
    "vpn-voip",
];

/// Simulator configuration.
#[derive(Debug, Clone, Serialize)]
pub struct IscxConfig {
    /// Flows per class — ISCX's defining scarcity ("tens of viable
    /// flows").
    pub flows_per_class: usize,
    /// Per-flow packet cap.
    pub max_pkts: usize,
    /// Strength of per-flow idiosyncrasy (per-session size/timing
    /// character) in `[0, 1]`. High values make windows of one flow much
    /// more alike than windows of different flows — the leakage hazard.
    pub session_character: f64,
}

impl IscxConfig {
    /// ISCX-like scarcity: 20 flows per class.
    pub fn default_config() -> IscxConfig {
        IscxConfig {
            flows_per_class: 20,
            max_pkts: 2500,
            session_character: 0.8,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> IscxConfig {
        IscxConfig {
            flows_per_class: 6,
            max_pkts: 600,
            session_character: 0.8,
        }
    }
}

/// The ISCX-like simulator.
#[derive(Debug, Clone)]
pub struct IscxSim {
    config: IscxConfig,
}

impl IscxSim {
    /// Creates a simulator.
    pub fn new(config: IscxConfig) -> IscxSim {
        IscxSim { config }
    }

    /// Base profile of a category. VPN variants shift sizes up (tunnel
    /// overhead) and smooth timing (encapsulation batches packets).
    fn profile(class: usize) -> TrafficProfile {
        let base_class = class % 6;
        let vpn = class >= 6;
        let mut p = TrafficProfile::base(CLASSES[class]);
        match base_class {
            0 => {
                // Browsing: short request/response bursts, mid sizes.
                p.burst_interval_mean = 2.0;
                p.burst_len_mean = 25.0;
                p.down_sizes = SizeMixture::of(&[(0.6, 1100.0, 250.0), (0.4, 400.0, 150.0)]);
                p.duration_mean = 120.0;
            }
            1 => {
                // Email: sparse small exchanges.
                p.burst_interval_mean = 8.0;
                p.burst_len_mean = 10.0;
                p.down_sizes = SizeMixture::of(&[(0.8, 600.0, 200.0), (0.2, 150.0, 60.0)]);
                p.duration_mean = 180.0;
            }
            2 => {
                // Chat: tiny frequent messages.
                p.burst_interval_mean = 1.2;
                p.burst_len_mean = 2.0;
                p.burst_len_sd = 1.0;
                p.down_sizes = SizeMixture::of(&[(1.0, 180.0, 80.0)]);
                p.up_fraction = 0.5;
                p.duration_mean = 300.0;
            }
            3 => {
                // Streaming: sustained near-MTU bursts.
                p.burst_interval_mean = 1.0;
                p.burst_len_mean = 120.0;
                p.down_sizes = SizeMixture::of(&[(0.9, 1420.0, 60.0), (0.1, 500.0, 150.0)]);
                p.duration_mean = 240.0;
            }
            4 => {
                // FTP: continuous bulk transfer.
                p.burst_interval_mean = 0.4;
                p.burst_len_mean = 250.0;
                p.intra_burst_gap = 0.0015;
                p.down_sizes = SizeMixture::of(&[(0.95, 1460.0, 25.0), (0.05, 200.0, 60.0)]);
                p.duration_mean = 150.0;
            }
            _ => {
                // VoIP: strictly periodic small packets.
                p.periodic = Some(0.02);
                p.burst_len_mean = 1.0;
                p.burst_len_sd = 0.2;
                p.down_sizes = SizeMixture::of(&[(1.0, 160.0, 20.0)]);
                p.up_fraction = 0.5;
                p.duration_mean = 300.0;
            }
        }
        if vpn {
            // Tunnel overhead pads every packet; encapsulation steadies
            // timing.
            p.down_sizes = p.down_sizes.scaled(1.08);
            p.up_sizes = p.up_sizes.scaled(1.08);
            p.rtt_mean *= 1.3;
            p.intra_burst_gap *= 1.4;
        }
        p
    }

    /// Generates the dataset. Each flow carries a strong per-session
    /// character (its own size scale, burst cadence and RTT), as long
    /// capture sessions do.
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flows = Vec::new();
        let mut id = 0u64;
        let strength = self.config.session_character;
        for class in 0..CLASSES.len() {
            let base = Self::profile(class);
            for _ in 0..self.config.flows_per_class {
                // The per-session character: this flow's private variant of
                // the class profile.
                let mut p = base.clone();
                let size_scale = 1.0 + strength * dist::uniform(&mut rng, -0.18, 0.18);
                p.down_sizes = p.down_sizes.scaled(size_scale);
                p.up_sizes = p.up_sizes.scaled(size_scale);
                p.burst_interval_mean *= 1.0 + strength * dist::uniform(&mut rng, -0.4, 0.4);
                p.rtt_mean *= 1.0 + strength * dist::uniform(&mut rng, -0.5, 0.8);
                let pkts = generate_pkts(&p, &mut rng, self.config.max_pkts);
                id += 1;
                flows.push(Flow {
                    id,
                    class: class as u16,
                    partition: Partition::Unpartitioned,
                    background: false,
                    pkts,
                });
            }
        }
        Dataset {
            name: "iscx-sim".into(),
            class_names: CLASSES.iter().map(|s| s.to_string()).collect(),
            flows,
        }
    }
}

/// Slices a flow into consecutive `window_s`-second windows, each
/// re-zeroed to start at `t = 0` — the Ref-Paper's artifice for
/// multiplying ISCX samples. Windows with fewer than `min_pkts` packets
/// are dropped. The returned flows share the parent's `id`, so
/// provenance-aware splits can group them.
pub fn slice_into_windows(flow: &Flow, window_s: f64, min_pkts: usize) -> Vec<Flow> {
    assert!(window_s > 0.0);
    let mut windows: Vec<Flow> = Vec::new();
    let mut current: Vec<crate::types::Pkt> = Vec::new();
    let mut window_idx = 0usize;
    let flush = |current: &mut Vec<crate::types::Pkt>, windows: &mut Vec<Flow>| {
        if current.len() >= min_pkts.max(1) {
            let t0 = current[0].ts;
            let pkts = current
                .iter()
                .map(|p| crate::types::Pkt {
                    ts: p.ts - t0,
                    ..*p
                })
                .collect();
            windows.push(Flow {
                pkts,
                ..flow.clone()
            });
        }
        current.clear();
    };
    for p in &flow.pkts {
        let idx = (p.ts / window_s) as usize;
        if idx != window_idx {
            flush(&mut current, &mut windows);
            window_idx = idx;
        }
        current.push(*p);
    }
    flush(&mut current, &mut windows);
    windows
}

/// Slices every flow of a dataset, returning the window dataset plus the
/// parent-flow id of each window (for flow-level splitting).
pub fn slice_dataset(ds: &Dataset, window_s: f64, min_pkts: usize) -> (Dataset, Vec<u64>) {
    let mut flows = Vec::new();
    let mut parents = Vec::new();
    for f in &ds.flows {
        for w in slice_into_windows(f, window_s, min_pkts) {
            parents.push(f.id);
            flows.push(w);
        }
    }
    (
        Dataset {
            name: format!("{}-windows", ds.name),
            class_names: ds.class_names.clone(),
            flows,
        },
        parents,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Direction, Pkt};

    #[test]
    fn dataset_shape_is_iscx_like() {
        let ds = IscxSim::new(IscxConfig::tiny()).generate(1);
        assert_eq!(ds.num_classes(), 10);
        assert_eq!(ds.flows.len(), 60);
        assert!(ds.flows.iter().all(|f| f.is_well_formed()));
        // Long flows: most span well past one 15s window.
        let long = ds.flows.iter().filter(|f| f.duration() > 30.0).count();
        assert!(
            long > ds.flows.len() / 2,
            "{long} long flows of {}",
            ds.flows.len()
        );
    }

    #[test]
    fn per_session_character_varies_flows() {
        let ds = IscxSim::new(IscxConfig::tiny()).generate(2);
        // Two flows of the same class: mean packet sizes differ noticeably.
        let mean_size =
            |f: &Flow| f.pkts.iter().map(|p| p.size as f64).sum::<f64>() / f.len() as f64;
        let class0: Vec<&Flow> = ds.flows.iter().filter(|f| f.class == 3).collect();
        let means: Vec<f64> = class0.iter().map(|f| mean_size(f)).collect();
        let spread = means.iter().cloned().fold(f64::MIN, f64::max)
            - means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 30.0, "per-session spread {spread}");
    }

    #[test]
    fn windows_partition_the_flow() {
        let pkts: Vec<Pkt> = (0..100)
            .map(|i| Pkt::data(i as f64 * 0.5, 100, Direction::Downstream))
            .collect();
        let flow = Flow {
            id: 9,
            class: 0,
            partition: Partition::Unpartitioned,
            background: false,
            pkts,
        };
        let windows = slice_into_windows(&flow, 15.0, 1);
        // 50 s of packets → 4 windows (0-15, 15-30, 30-45, 45-49.5).
        assert_eq!(windows.len(), 4);
        let total: usize = windows.iter().map(Flow::len).sum();
        assert_eq!(total, 100);
        for w in &windows {
            assert!(w.is_well_formed());
            assert!(w.duration() < 15.0);
            assert_eq!(w.id, 9, "windows keep the parent id");
        }
    }

    #[test]
    fn sparse_windows_are_dropped() {
        // Packets only in the first and third window; the third has 1
        // packet, below min_pkts 2.
        let pkts = vec![
            Pkt::data(0.0, 100, Direction::Downstream),
            Pkt::data(1.0, 100, Direction::Downstream),
            Pkt::data(31.0, 100, Direction::Downstream),
        ];
        let flow = Flow {
            id: 1,
            class: 0,
            partition: Partition::Unpartitioned,
            background: false,
            pkts,
        };
        let windows = slice_into_windows(&flow, 15.0, 2);
        assert_eq!(windows.len(), 1);
    }

    #[test]
    fn slice_dataset_tracks_parents() {
        let ds = IscxSim::new(IscxConfig::tiny()).generate(3);
        let (windows, parents) = slice_dataset(&ds, 15.0, 10);
        assert_eq!(windows.flows.len(), parents.len());
        assert!(
            windows.flows.len() > ds.flows.len(),
            "slicing must multiply samples"
        );
        // Every parent id is a real flow id.
        for pid in &parents {
            assert!(ds.flows.iter().any(|f| f.id == *pid));
        }
    }
}
