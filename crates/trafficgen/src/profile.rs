//! Declarative per-class traffic profiles.
//!
//! A [`TrafficProfile`] captures, in a dozen parameters, the burst/idle
//! structure of one application class. The [`crate::process`] engine turns
//! a profile into concrete packet time series. Keeping the description
//! declarative lets the dataset simulators express the paper's phenomena —
//! e.g. the `human`-partition data shift — as small parameter edits
//! ([`TrafficProfile::with_size_scale`], [`TrafficProfile::with_anchors`]).

use crate::dist::SizeMixture;
use serde::Serialize;

/// Generative description of one application class's traffic.
#[derive(Debug, Clone, Serialize)]
pub struct TrafficProfile {
    /// Class name (used for dataset class labels).
    pub name: String,

    /// Mean idle gap between consecutive burst starts, seconds.
    #[serde(skip)]
    pub burst_interval_mean: f64,
    /// Mean number of data packets per burst.
    #[serde(skip)]
    pub burst_len_mean: f64,
    /// Standard deviation of the per-burst packet count.
    #[serde(skip)]
    pub burst_len_sd: f64,
    /// Mean gap between packets inside a burst, seconds.
    #[serde(skip)]
    pub intra_burst_gap: f64,

    /// Packet-size mixture for downstream packets.
    #[serde(skip)]
    pub down_sizes: SizeMixture,
    /// Packet-size mixture for upstream packets.
    #[serde(skip)]
    pub up_sizes: SizeMixture,
    /// Fraction of data packets that travel upstream.
    #[serde(skip)]
    pub up_fraction: f64,
    /// Bare ACKs emitted per data packet (0 disables ACK generation).
    #[serde(skip)]
    pub ack_ratio: f64,

    /// Mean flow duration, seconds (log-normal across flows).
    #[serde(skip)]
    pub duration_mean: f64,
    /// Log-normal sigma of the flow duration.
    #[serde(skip)]
    pub duration_sigma: f64,

    /// Mean round-trip time, seconds. Sampled per flow; the realized
    /// RTT rescales every inter-packet gap, which is exactly the kind of
    /// natural variation the paper's "Change RTT" augmentation imitates.
    #[serde(skip)]
    pub rtt_mean: f64,
    /// Standard deviation of the per-flow RTT.
    #[serde(skip)]
    pub rtt_jitter: f64,

    /// Deterministic burst anchors (seconds). Used by classes whose
    /// flowpics show fixed activity groups, e.g. Google search's two
    /// vertical pixel groups near t=0 and mid-picture (paper Fig. 4).
    #[serde(skip)]
    pub anchors: Vec<f64>,
    /// When set, bursts repeat with this fixed period instead of a renewal
    /// process — produces the vertical "stripes" of streaming audio
    /// (Google music in paper Fig. 4, rectangle C).
    #[serde(skip)]
    pub periodic: Option<f64>,
    /// Delay added before the first burst, seconds. Shifting activity to
    /// the right of the flowpic is the second component of the injected
    /// `human` data shift (paper Fig. 4, rectangle A).
    #[serde(skip)]
    pub start_delay: f64,

    /// Application handshake: `(mean size, direction)` of the first
    /// packets every flow of this class exchanges (TLS hello, app login,
    /// first request/response). These make the *early* time series
    /// class-discriminative — the property the paper's 3×10 time-series
    /// baseline (Table 3) exploits.
    #[serde(skip)]
    pub handshake: Vec<(f64, crate::types::Direction)>,
    /// Standard deviation of the handshake packet sizes.
    #[serde(skip)]
    pub handshake_jitter: f64,
}

impl TrafficProfile {
    /// A neutral default profile; dataset simulators override the fields
    /// that characterize each class.
    pub fn base(name: &str) -> Self {
        TrafficProfile {
            name: name.to_string(),
            burst_interval_mean: 1.0,
            burst_len_mean: 12.0,
            burst_len_sd: 4.0,
            intra_burst_gap: 0.004,
            down_sizes: SizeMixture::single(1200.0, 200.0),
            up_sizes: SizeMixture::single(120.0, 60.0),
            up_fraction: 0.25,
            ack_ratio: 0.0,
            duration_mean: 30.0,
            duration_sigma: 0.5,
            rtt_mean: 0.05,
            rtt_jitter: 0.012,
            anchors: Vec::new(),
            periodic: None,
            start_delay: 0.0,
            handshake: Vec::new(),
            handshake_jitter: 42.0,
        }
    }

    /// Returns a copy with both size mixtures scaled by `factor`.
    pub fn with_size_scale(mut self, factor: f64) -> Self {
        self.down_sizes = self.down_sizes.scaled(factor);
        self.up_sizes = self.up_sizes.scaled(factor);
        self
    }

    /// Returns a copy with the deterministic burst anchors replaced.
    pub fn with_anchors(mut self, anchors: &[f64]) -> Self {
        self.anchors = anchors.to_vec();
        self
    }

    /// Returns a copy with an added start delay.
    pub fn with_start_delay(mut self, delay: f64) -> Self {
        self.start_delay = delay;
        self
    }

    /// Returns a copy with periodicity disabled (burst renewal process).
    pub fn without_periodicity(mut self) -> Self {
        self.periodic = None;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let p = TrafficProfile::base("x")
            .with_size_scale(0.5)
            .with_anchors(&[1.0, 2.0])
            .with_start_delay(3.0)
            .without_periodicity();
        assert_eq!(p.anchors, vec![1.0, 2.0]);
        assert_eq!(p.start_delay, 3.0);
        assert!(p.periodic.is_none());
        assert!((p.down_sizes.modes[0].1 - 600.0).abs() < 1e-9);
    }
}
