//! The burst/idle traffic process engine.
//!
//! Turns a [`TrafficProfile`] into concrete packet time series. The model
//! is a two-state (burst / idle) renewal process, the classic shape of
//! application traffic: activity arrives in bursts whose spacing, length
//! and packet sizes are class-specific. Per-flow variability enters through
//! a sampled RTT that rescales all gaps (so flows of one class differ the
//! way real flows behind different paths do) plus the stochastic draws of
//! every gap, burst length and size.

use crate::dist;
use crate::profile::TrafficProfile;
use crate::types::{Direction, Pkt};
use rand::{Rng, RngExt};

/// Hard cap applied when a caller passes `max_pkts = 0` by mistake; every
/// flow carries at least one packet.
const MIN_PKTS: usize = 1;

/// Generates one flow's packet series from `profile`.
///
/// * `max_pkts` caps the series length (memory guard for the long-flow
///   datasets; the flowpic only consumes the first 15 s anyway).
/// * Timestamps are normalized so the first packet is at `ts == 0`, as in
///   the curated datasets of the paper.
pub fn generate_pkts<R: Rng + ?Sized>(
    profile: &TrafficProfile,
    rng: &mut R,
    max_pkts: usize,
) -> Vec<Pkt> {
    let max_pkts = max_pkts.max(MIN_PKTS);

    // Per-flow realized RTT rescales every temporal parameter.
    let rtt = dist::truncated_normal(
        rng,
        profile.rtt_mean,
        profile.rtt_jitter,
        profile.rtt_mean * 0.25,
        profile.rtt_mean * 4.0,
    );
    let time_scale = rtt / profile.rtt_mean;

    // Flow duration: log-normal with the requested mean.
    let mu = profile.duration_mean.ln() - profile.duration_sigma.powi(2) / 2.0;
    let duration = dist::log_normal(rng, mu, profile.duration_sigma)
        .clamp(profile.duration_mean * 0.05, profile.duration_mean * 8.0);

    // 1. Lay out burst start times.
    let mut burst_starts: Vec<f64> = Vec::new();
    for &a in &profile.anchors {
        // Anchors get a small jitter so they show as pixel *groups*, not
        // single columns, in the average flowpic.
        let jitter = dist::normal(rng, 0.0, 0.15 * time_scale);
        burst_starts.push((profile.start_delay + a + jitter).max(0.0));
    }
    match profile.periodic {
        Some(period) => {
            let mut t = profile.start_delay + dist::uniform(rng, 0.0, 0.1 * period);
            while t < duration {
                burst_starts.push(t + dist::normal(rng, 0.0, 0.02 * period));
                t += period * time_scale;
            }
        }
        None => {
            let mut t = profile.start_delay;
            while t < duration {
                burst_starts.push(t);
                t += dist::exponential(rng, 1.0 / (profile.burst_interval_mean * time_scale));
            }
        }
    }
    burst_starts.retain(|&t| t >= 0.0);
    burst_starts.sort_by(f64::total_cmp);

    // 2. Emit the application handshake: the class-characteristic first
    // packets, spaced roughly half an RTT apart.
    let mut pkts: Vec<Pkt> = Vec::new();
    let mut hs_t = 0.0f64;
    for &(mean_size, dir) in &profile.handshake {
        let size = dist::truncated_normal(rng, mean_size, profile.handshake_jitter, 1.0, 1500.0)
            .round() as u16;
        pkts.push(Pkt::data(hs_t, size, dir));
        hs_t += rtt * dist::uniform(rng, 0.4, 0.6);
    }

    // 3. Fill each burst with packets.
    'bursts: for &start in &burst_starts {
        let n = dist::normal(rng, profile.burst_len_mean, profile.burst_len_sd)
            .round()
            .max(1.0) as usize;
        let mut t = start;
        for _ in 0..n {
            if pkts.len() >= max_pkts {
                break 'bursts;
            }
            let dir = if rng.random::<f64>() < profile.up_fraction {
                Direction::Upstream
            } else {
                Direction::Downstream
            };
            let size = match dir {
                Direction::Upstream => profile.up_sizes.sample(rng),
                Direction::Downstream => profile.down_sizes.sample(rng),
            };
            pkts.push(Pkt::data(t, size, dir));
            // ACKs flow opposite to the data packet, roughly half an RTT
            // later — the MIRAGE curation step strips them.
            if profile.ack_ratio > 0.0 && rng.random::<f64>() < profile.ack_ratio {
                let ack_dir = match dir {
                    Direction::Upstream => Direction::Downstream,
                    Direction::Downstream => Direction::Upstream,
                };
                pkts.push(Pkt::ack(t + 0.5 * rtt, ack_dir));
            }
            t += dist::exponential(rng, 1.0 / (profile.intra_burst_gap * time_scale));
        }
    }

    // Degenerate profiles (duration shorter than the first anchor) can
    // produce zero packets; emit a single handshake-sized packet so every
    // flow is non-empty, as in the curated datasets.
    if pkts.is_empty() {
        pkts.push(Pkt::data(
            0.0,
            profile.up_sizes.sample(rng),
            Direction::Upstream,
        ));
    }

    // 4. Normalize: sort by time, shift so the first packet is at t=0.
    pkts.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    let t0 = pkts[0].ts;
    for p in &mut pkts {
        p.ts -= t0;
    }
    pkts.truncate(max_pkts);
    pkts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Flow;
    use crate::types::Partition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen(profile: &TrafficProfile, seed: u64, max: usize) -> Vec<Pkt> {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_pkts(profile, &mut rng, max)
    }

    #[test]
    fn flows_are_well_formed() {
        let p = TrafficProfile::base("t");
        for seed in 0..50 {
            let pkts = gen(&p, seed, 500);
            let f = Flow {
                id: 0,
                class: 0,
                partition: Partition::Unpartitioned,
                background: false,
                pkts,
            };
            assert!(f.is_well_formed(), "seed {seed}");
            assert!(!f.is_empty());
        }
    }

    #[test]
    fn max_pkts_is_respected() {
        let p = TrafficProfile::base("t");
        for seed in 0..10 {
            assert!(gen(&p, seed, 37).len() <= 37);
        }
        // Zero is promoted to one.
        assert_eq!(gen(&p, 0, 0).len(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = TrafficProfile::base("t");
        assert_eq!(gen(&p, 9, 300), gen(&p, 9, 300));
    }

    #[test]
    fn periodic_profile_produces_stripes() {
        let mut p = TrafficProfile::base("music");
        p.periodic = Some(2.0);
        p.duration_mean = 14.0;
        p.duration_sigma = 0.05;
        p.burst_interval_mean = 1.0;
        let pkts = gen(&p, 3, 100_000);
        // Bursts must appear across the whole duration, spaced ~2 s: check
        // activity exists both early and late.
        assert!(pkts.iter().any(|pk| pk.ts < 1.0));
        assert!(pkts.iter().any(|pk| pk.ts > 6.0));
    }

    #[test]
    fn anchors_place_bursts() {
        let mut p = TrafficProfile::base("search");
        p.anchors = vec![0.0, 7.0];
        p.burst_interval_mean = 1e6; // suppress renewal bursts
        p.duration_mean = 14.0;
        p.duration_sigma = 0.05;
        let pkts = gen(&p, 5, 100_000);
        // Activity clusters near the anchors.
        assert!(pkts.iter().any(|pk| pk.ts < 1.5));
        assert!(
            pkts.iter().any(|pk| (5.5..9.5).contains(&pk.ts)),
            "no burst near the 7 s anchor"
        );
    }

    #[test]
    fn start_delay_shifts_activity() {
        let mut base = TrafficProfile::base("t");
        base.duration_mean = 10.0;
        base.duration_sigma = 0.05;
        let shifted = base.clone().with_start_delay(4.0);
        // With a start delay the earliest *absolute* burst is late, but
        // normalization re-zeroes timestamps; what shifts is the relative
        // structure for anchored/periodic profiles. For renewal profiles the
        // delay shortens the active window, so fewer packets are generated.
        let n_base: usize = (0..20).map(|s| gen(&base, s, 10_000).len()).sum();
        let n_shift: usize = (0..20).map(|s| gen(&shifted, s, 10_000).len()).sum();
        assert!(n_shift < n_base);
    }

    #[test]
    fn ack_generation_and_direction() {
        let mut p = TrafficProfile::base("t");
        p.ack_ratio = 1.0;
        p.up_fraction = 0.0; // all data downstream => all ACKs upstream
        let pkts = gen(&p, 11, 4_000);
        let acks: Vec<&Pkt> = pkts.iter().filter(|p| p.is_ack).collect();
        assert!(!acks.is_empty());
        assert!(acks.iter().all(|a| a.dir == Direction::Upstream));
    }

    #[test]
    fn rtt_scales_gaps() {
        // Same profile, forced different RTT via rtt_mean: slower RTT
        // stretches the flow in time for identical burst structure.
        let mut fast = TrafficProfile::base("t");
        fast.periodic = Some(1.0);
        fast.duration_mean = 8.0;
        fast.duration_sigma = 0.01;
        fast.rtt_jitter = 0.0;
        let mut slow = fast.clone();
        slow.rtt_mean = 0.2; // 4x the default 0.05
                             // Periodic spacing scales with time_scale=1 in both cases (scale is
                             // rtt/rtt_mean), but intra-burst gaps use the realized rtt too via
                             // time_scale; with zero jitter both have scale 1. So instead check
                             // ACK latency, which uses the absolute realized RTT.
        fast.ack_ratio = 1.0;
        slow.ack_ratio = 1.0;
        let lat = |p: &TrafficProfile, seed| {
            let pkts = gen(p, seed, 2_000);
            let mut gaps = Vec::new();
            for w in pkts.windows(2) {
                if w[1].is_ack && !w[0].is_ack {
                    gaps.push(w[1].ts - w[0].ts);
                }
            }
            gaps.iter().sum::<f64>() / gaps.len().max(1) as f64
        };
        let fast_lat: f64 = (0..5).map(|s| lat(&fast, s)).sum::<f64>() / 5.0;
        let slow_lat: f64 = (0..5).map(|s| lat(&slow, s)).sum::<f64>() / 5.0;
        assert!(slow_lat > fast_lat * 2.0, "fast {fast_lat} slow {slow_lat}");
    }
}
