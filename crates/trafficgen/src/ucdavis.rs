//! UCDAVIS19 dataset simulator.
//!
//! UCDAVIS19 (Rezaei & Liu, 2019) captures 5 Google services — Google Doc,
//! Google Drive, Google Music, Google Search and YouTube — in three
//! partitions: a large automated-collection `pretraining` partition
//! (592–1 915 flows/class, 6 439 total), an automated `script` test
//! partition (30 flows/class) and a `human` test partition (~15–20
//! flows/class captured from real users).
//!
//! The replication paper's central quantitative finding is that the `human`
//! partition suffers a *data shift* (its Sec. 4.2.3, Fig. 4, Fig. 8):
//!
//! * **Google search** activity groups are shifted to the right in time
//!   (Fig. 4 rectangle A) and the packet-size distribution no longer
//!   saturates the maximum size (rectangle B; KDE shift in Fig. 8).
//! * **Google music** loses its periodic vertical stripes (rectangle C).
//! * Per Rezaei & Liu's own report, Drive/YouTube/Music accuracy drops up
//!   to 7 % under human interaction.
//!
//! This simulator reproduces all of that: `script` and `pretraining` draw
//! from identical per-class profiles, while `human` draws from explicitly
//! perturbed profiles. Downstream, this makes supervised models trained on
//! `pretraining` score high on `script`/`leftover` and markedly lower on
//! `human`, with the Doc/Search confusion the paper observes in its Fig. 3.

use crate::dist::SizeMixture;
use crate::process::generate_pkts;
use crate::profile::TrafficProfile;
use crate::types::{Dataset, Direction, Flow, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Class indices, fixed in the order the paper's figures use.
pub const CLASSES: [&str; 5] = [
    "google-doc",
    "google-drive",
    "google-music",
    "google-search",
    "youtube",
];

/// Configuration of the simulator.
#[derive(Debug, Clone, Serialize)]
pub struct UcDavisConfig {
    /// Flows per class in the `pretraining` partition.
    pub pretraining_per_class: [usize; 5],
    /// Flows per class in the `script` partition.
    pub script_per_class: [usize; 5],
    /// Flows per class in the `human` partition.
    pub human_per_class: [usize; 5],
    /// Per-flow packet cap (memory guard; UCDAVIS19 flows average ~7 000
    /// packets, far more than the 15 s flowpic window consumes).
    pub max_pkts: usize,
    /// Strength of the injected `human` data shift in `[0, 1]`;
    /// `1.0` reproduces the paper's observed ≈20 % accuracy drop, `0.0`
    /// disables the shift entirely (useful for ablations).
    pub shift_strength: f64,
}

impl UcDavisConfig {
    /// Paper-scale partition sizes (Table 2: 6 439 / 150 / 83 flows).
    pub fn paper() -> Self {
        UcDavisConfig {
            pretraining_per_class: [1915, 1540, 1200, 1192, 592],
            script_per_class: [30; 5],
            human_per_class: [15, 15, 15, 18, 20],
            max_pkts: 1500,
            shift_strength: 1.0,
        }
    }

    /// Reduced-scale configuration for quick benches: enough flows per
    /// class for the paper's 100-per-class splits plus a leftover test set.
    pub fn quick() -> Self {
        UcDavisConfig {
            pretraining_per_class: [260, 240, 220, 210, 200],
            script_per_class: [30; 5],
            human_per_class: [15, 15, 15, 18, 20],
            max_pkts: 900,
            shift_strength: 1.0,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        UcDavisConfig {
            pretraining_per_class: [12; 5],
            script_per_class: [4; 5],
            human_per_class: [4; 5],
            max_pkts: 250,
            shift_strength: 1.0,
        }
    }

    /// Returns a copy with the shift disabled.
    pub fn without_shift(mut self) -> Self {
        self.shift_strength = 0.0;
        self
    }
}

/// The UCDAVIS19 simulator.
#[derive(Debug, Clone)]
pub struct UcDavisSim {
    config: UcDavisConfig,
}

impl UcDavisSim {
    /// Creates a simulator with the given configuration.
    pub fn new(config: UcDavisConfig) -> Self {
        UcDavisSim { config }
    }

    /// Base (automated-collection) profile for a class.
    pub fn base_profile(class: usize) -> TrafficProfile {
        match class {
            // Google Doc: low-rate document sync — frequent tiny bursts of
            // small messages in both directions.
            0 => {
                let mut p = TrafficProfile::base(CLASSES[0]);
                p.burst_interval_mean = 0.65;
                p.burst_len_mean = 4.0;
                p.burst_len_sd = 1.5;
                p.intra_burst_gap = 0.02;
                p.down_sizes = SizeMixture::of(&[(0.75, 340.0, 110.0), (0.25, 820.0, 150.0)]);
                p.up_sizes = SizeMixture::of(&[(1.0, 180.0, 70.0)]);
                p.up_fraction = 0.45;
                p.duration_mean = 45.0;
                p.rtt_mean = 0.04;
                p.handshake = vec![
                    (517.0, Direction::Upstream),
                    (1392.0, Direction::Downstream),
                    (231.0, Direction::Upstream),
                ];
                p
            }
            // Google Drive: bulk upload — near-continuous trains of
            // MTU-sized packets.
            1 => {
                let mut p = TrafficProfile::base(CLASSES[1]);
                p.burst_interval_mean = 0.5;
                p.burst_len_mean = 180.0;
                p.burst_len_sd = 50.0;
                p.intra_burst_gap = 0.0015;
                p.up_sizes = SizeMixture::of(&[(0.9, 1448.0, 40.0), (0.1, 220.0, 80.0)]);
                p.down_sizes = SizeMixture::of(&[(1.0, 120.0, 50.0)]);
                p.up_fraction = 0.85;
                p.duration_mean = 40.0;
                p.rtt_mean = 0.045;
                p.handshake = vec![
                    (583.0, Direction::Upstream),
                    (1310.0, Direction::Downstream),
                    (356.0, Direction::Upstream),
                ];
                p
            }
            // Google Music: audio streaming — strictly periodic chunk
            // fetches every ~2.2 s produce the vertical stripes of Fig. 4.
            2 => {
                let mut p = TrafficProfile::base(CLASSES[2]);
                p.periodic = Some(2.2);
                p.burst_len_mean = 55.0;
                p.burst_len_sd = 10.0;
                p.intra_burst_gap = 0.003;
                p.down_sizes = SizeMixture::of(&[(0.85, 1430.0, 70.0), (0.15, 320.0, 110.0)]);
                p.up_sizes = SizeMixture::of(&[(1.0, 110.0, 40.0)]);
                p.up_fraction = 0.12;
                p.duration_mean = 80.0;
                p.rtt_mean = 0.05;
                p.handshake = vec![
                    (495.0, Direction::Upstream),
                    (1438.0, Direction::Downstream),
                    (180.0, Direction::Upstream),
                ];
                p
            }
            // Google Search: two activity groups — the query near t=0 and a
            // results/prefetch group mid-window — with a packet-size mode
            // saturating the maximum size (Fig. 4 rectangles A/B).
            3 => {
                let mut p = TrafficProfile::base(CLASSES[3]);
                p.anchors = vec![0.0, 7.0];
                p.burst_interval_mean = 30.0; // sparse background activity
                p.burst_len_mean = 45.0;
                p.burst_len_sd = 12.0;
                p.intra_burst_gap = 0.006;
                p.down_sizes = SizeMixture::of(&[
                    (0.45, 1495.0, 12.0),
                    (0.4, 700.0, 240.0),
                    (0.15, 250.0, 90.0),
                ]);
                p.up_sizes = SizeMixture::of(&[(1.0, 300.0, 120.0)]);
                p.up_fraction = 0.3;
                p.duration_mean = 14.0;
                p.duration_sigma = 0.25;
                p.rtt_mean = 0.04;
                p.handshake = vec![
                    (612.0, Direction::Upstream),
                    (1455.0, Direction::Downstream),
                    (262.0, Direction::Upstream),
                ];
                p
            }
            // YouTube: adaptive video streaming — large irregular bursts of
            // MTU packets separated by variable think gaps.
            4 => {
                let mut p = TrafficProfile::base(CLASSES[4]);
                p.burst_interval_mean = 1.8;
                p.burst_len_mean = 130.0;
                p.burst_len_sd = 45.0;
                p.intra_burst_gap = 0.002;
                p.down_sizes = SizeMixture::of(&[(0.88, 1442.0, 55.0), (0.12, 620.0, 180.0)]);
                p.up_sizes = SizeMixture::of(&[(1.0, 130.0, 60.0)]);
                p.up_fraction = 0.15;
                p.duration_mean = 70.0;
                p.rtt_mean = 0.055;
                p.handshake = vec![
                    (545.0, Direction::Upstream),
                    (1365.0, Direction::Downstream),
                    (412.0, Direction::Upstream),
                ];
                p
            }
            _ => panic!("UCDAVIS19 has 5 classes, got index {class}"),
        }
    }

    /// Profile for a class under *human* interaction, i.e. with the data
    /// shift applied proportionally to `strength`.
    pub fn human_profile(class: usize, strength: f64) -> TrafficProfile {
        let base = Self::base_profile(class);
        if strength <= 0.0 {
            return base;
        }
        match class {
            // Google Search: activity groups shifted right, packet sizes
            // shifted down and the max-size saturation mode suppressed —
            // the class the paper's Fig. 4/8 single out. This is the only
            // class whose *size* distribution shifts; the others degrade
            // in timing only (Rezaei & Liu report only small per-class
            // drops elsewhere).
            3 => {
                let mut p = base.with_anchors(&[3.5 * strength, 7.0 + 3.5 * strength]);
                // Replace the saturation mode with mid-size modes.
                p.down_sizes = SizeMixture::of(&[
                    (0.45 * (1.0 - strength).max(0.02), 1495.0, 12.0),
                    (0.45, 620.0, 200.0),
                    (0.40, 450.0, 170.0),
                    (0.15, 200.0, 80.0),
                ]);
                // Human-typed queries differ from scripted ones: the
                // handshake sizes shrink and vary more.
                for hs in &mut p.handshake {
                    hs.0 *= 1.0 - 0.12 * strength;
                }
                p.handshake_jitter *= 1.0 + 1.2 * strength;
                p
            }
            // Google Music: user-driven skipping breaks the periodic
            // prefetch; playback degenerates into an irregular trickle of
            // the same-sized packets.
            2 => {
                let mut p = base;
                if strength > 0.5 {
                    p = p.without_periodicity();
                    p.burst_interval_mean = 1.1;
                    p.burst_len_mean = 22.0;
                }
                p.handshake_jitter *= 1.0 + 1.2 * strength;
                p
            }
            // Drive / YouTube: mild timing degradation (pauses, slower
            // paths) — matches the "up to 7 %" drops reported by
            // Rezaei & Liu. Packet sizes are untouched: bulk transfers
            // saturate the MTU no matter who drives them.
            1 | 4 => {
                let mut p = base;
                p.rtt_mean *= 1.0 + 0.5 * strength;
                p.burst_interval_mean *= 1.0 + 0.4 * strength;
                p.handshake_jitter *= 1.0 + 1.2 * strength;
                p
            }
            // Google Doc: essentially unchanged (its traffic is already
            // human-typing-driven in the automated capture), beyond the
            // larger handshake variability of real sessions.
            _ => {
                let mut p = base;
                p.handshake_jitter *= 1.0 + 1.2 * strength;
                p
            }
        }
    }

    /// Generates the full three-partition dataset, deterministically from
    /// `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flows = Vec::new();
        let mut next_id = 0u64;
        let mut push = |flows: &mut Vec<Flow>,
                        rng: &mut StdRng,
                        profile: &TrafficProfile,
                        class: usize,
                        partition: Partition,
                        count: usize,
                        max_pkts: usize| {
            for _ in 0..count {
                let pkts = generate_pkts(profile, rng, max_pkts);
                flows.push(Flow {
                    id: {
                        next_id += 1;
                        next_id
                    },
                    class: class as u16,
                    partition,
                    background: false,
                    pkts,
                });
            }
        };

        for class in 0..5 {
            let base = Self::base_profile(class);
            let human = Self::human_profile(class, self.config.shift_strength);
            push(
                &mut flows,
                &mut rng,
                &base,
                class,
                Partition::Pretraining,
                self.config.pretraining_per_class[class],
                self.config.max_pkts,
            );
            push(
                &mut flows,
                &mut rng,
                &base,
                class,
                Partition::Script,
                self.config.script_per_class[class],
                self.config.max_pkts,
            );
            push(
                &mut flows,
                &mut rng,
                &human,
                class,
                Partition::Human,
                self.config.human_per_class[class],
                self.config.max_pkts,
            );
        }

        Dataset {
            name: "ucdavis19".into(),
            class_names: CLASSES.iter().map(|s| s.to_string()).collect(),
            flows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_have_requested_sizes() {
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(1);
        assert_eq!(ds.partition(Partition::Pretraining).count(), 60);
        assert_eq!(ds.partition(Partition::Script).count(), 20);
        assert_eq!(ds.partition(Partition::Human).count(), 20);
        assert_eq!(ds.num_classes(), 5);
        assert!(ds.flows.iter().all(|f| f.is_well_formed()));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = UcDavisSim::new(UcDavisConfig::tiny()).generate(7);
        let b = UcDavisSim::new(UcDavisConfig::tiny()).generate(7);
        assert_eq!(a.flows.len(), b.flows.len());
        for (x, y) in a.flows.iter().zip(&b.flows) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = UcDavisSim::new(UcDavisConfig::tiny()).generate(1);
        let b = UcDavisSim::new(UcDavisConfig::tiny()).generate(2);
        assert!(a.flows.iter().zip(&b.flows).any(|(x, y)| x != y));
    }

    #[test]
    fn human_search_loses_max_size_saturation() {
        // The injected shift must materially reduce the share of
        // near-maximum-size packets for Google search in `human` —
        // the paper's Fig. 4 rectangle B / Fig. 8 KDE shift.
        let mut cfg = UcDavisConfig::tiny();
        cfg.pretraining_per_class = [40; 5];
        cfg.human_per_class = [40; 5];
        let ds = UcDavisSim::new(cfg).generate(3);
        let frac_big = |p: Partition| {
            let (mut big, mut all) = (0usize, 0usize);
            for f in ds.partition(p).filter(|f| f.class == 3) {
                for pk in &f.pkts {
                    all += 1;
                    if pk.size > 1450 {
                        big += 1;
                    }
                }
            }
            big as f64 / all.max(1) as f64
        };
        let pre = frac_big(Partition::Pretraining);
        let hum = frac_big(Partition::Human);
        assert!(pre > 0.2, "pretraining saturation fraction {pre}");
        assert!(hum < pre / 3.0, "human {hum} vs pretraining {pre}");
    }

    #[test]
    fn shift_strength_zero_matches_base_distribution() {
        let cfg = UcDavisConfig::tiny().without_shift();
        let sim = UcDavisSim::new(cfg);
        // With the shift disabled, the human profile IS the base profile.
        for class in 0..5 {
            let h = UcDavisSim::human_profile(class, 0.0);
            let b = UcDavisSim::base_profile(class);
            assert_eq!(h.anchors, b.anchors);
            assert_eq!(h.periodic, b.periodic);
        }
        let ds = sim.generate(5);
        assert!(ds.flows.iter().all(|f| f.is_well_formed()));
    }

    #[test]
    fn script_and_pretraining_share_distribution() {
        // Same profile object drives both partitions: spot-check that the
        // mean packet size of class 4 (YouTube) agrees within tolerance.
        let mut cfg = UcDavisConfig::tiny();
        cfg.pretraining_per_class = [60; 5];
        cfg.script_per_class = [60; 5];
        let ds = UcDavisSim::new(cfg).generate(11);
        let mean_size = |p: Partition| {
            let mut sum = 0f64;
            let mut n = 0usize;
            for f in ds.partition(p).filter(|f| f.class == 4) {
                for pk in &f.pkts {
                    sum += pk.size as f64;
                    n += 1;
                }
            }
            sum / n as f64
        };
        let a = mean_size(Partition::Pretraining);
        let b = mean_size(Partition::Script);
        assert!((a - b).abs() / a < 0.05, "pretraining {a} vs script {b}");
    }
}
