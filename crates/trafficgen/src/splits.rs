//! Train/validation/test split construction.
//!
//! The paper uses three split schemes:
//!
//! * **100-per-class folds** (Sec. 4.2.1): since UCDAVIS19's smallest
//!   pretraining class has 592 flows, k-fold cross-validation is not
//!   possible; instead k *splits* are built by sampling, without
//!   replacement, 100 flows per class from the pretraining partition. The
//!   samples *not* chosen form the paper's `leftover` test set.
//! * **Random 80/20 train/validation** of a chosen training pool, repeated
//!   s times per split (the paper uses k=5 splits × s=3 seeds).
//! * **Stratified 80/10/10 train/validation/test** (Sec. 4.5.1) for the
//!   replication datasets, preserving the class imbalance.
//!
//! All functions return *indices into `Dataset::flows`*, never copies, so
//! splits are cheap and the underlying flows are shared.

use crate::types::{Dataset, Partition};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A train/test split of flow indices, with the train side further
/// dividable into train/validation.
#[derive(Debug, Clone)]
pub struct Split {
    /// Flow indices selected for training (before train/val subdivision).
    pub train: Vec<usize>,
    /// Flow indices of the leftover/test side.
    pub test: Vec<usize>,
}

/// A three-way stratified split.
#[derive(Debug, Clone)]
pub struct TriSplit {
    /// Training indices.
    pub train: Vec<usize>,
    /// Validation indices.
    pub val: Vec<usize>,
    /// Test indices.
    pub test: Vec<usize>,
}

/// Groups the indices of a partition's non-background flows by class.
pub fn indices_by_class(dataset: &Dataset, partition: Partition) -> Vec<Vec<usize>> {
    let mut by_class = vec![Vec::new(); dataset.num_classes()];
    for (i, f) in dataset.flows.iter().enumerate() {
        if f.partition == partition && !f.background {
            by_class[f.class as usize].push(i);
        }
    }
    by_class
}

/// Builds `k` splits of `per_class` samples per class from `partition`,
/// sampled without replacement within each split; the complement forms the
/// `leftover` test set of each split (paper Table 4, column "leftover").
///
/// Panics if some class has fewer than `per_class` flows.
pub fn per_class_folds(
    dataset: &Dataset,
    partition: Partition,
    per_class: usize,
    k: usize,
    seed: u64,
) -> Vec<Split> {
    let by_class = indices_by_class(dataset, partition);
    for (c, idxs) in by_class.iter().enumerate() {
        assert!(
            idxs.len() >= per_class,
            "class {c} has {} flows, needs {per_class}",
            idxs.len()
        );
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k)
        .map(|_| {
            let mut train = Vec::with_capacity(per_class * by_class.len());
            let mut test = Vec::new();
            for idxs in &by_class {
                let mut shuffled = idxs.clone();
                shuffled.shuffle(&mut rng);
                train.extend_from_slice(&shuffled[..per_class]);
                test.extend_from_slice(&shuffled[per_class..]);
            }
            Split { train, test }
        })
        .collect()
}

/// Randomly divides `indices` into a `frac`/`1-frac` pair — the paper's
/// 80/20 train/validation subdivision when `frac = 0.8`.
pub fn random_two_way(indices: &[usize], frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..=1.0).contains(&frac));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shuffled = indices.to_vec();
    shuffled.shuffle(&mut rng);
    let cut = ((shuffled.len() as f64) * frac).round() as usize;
    let cut = cut.min(shuffled.len());
    let val = shuffled.split_off(cut);
    (shuffled, val)
}

/// Stratified `train_frac`/`val_frac`/rest split per class (paper
/// Sec. 4.5.1 uses 80/10/10), preserving class imbalance. Every class
/// contributes at least one flow to each side when it has ≥ 3 flows.
pub fn stratified_three_way(
    dataset: &Dataset,
    partition: Partition,
    train_frac: f64,
    val_frac: f64,
    seed: u64,
) -> TriSplit {
    assert!(train_frac > 0.0 && val_frac > 0.0 && train_frac + val_frac < 1.0);
    let by_class = indices_by_class(dataset, partition);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = TriSplit {
        train: Vec::new(),
        val: Vec::new(),
        test: Vec::new(),
    };
    for idxs in &by_class {
        if idxs.is_empty() {
            continue;
        }
        let mut shuffled = idxs.clone();
        shuffled.shuffle(&mut rng);
        let n = shuffled.len();
        let mut n_train = ((n as f64) * train_frac).round() as usize;
        let mut n_val = ((n as f64) * val_frac).round() as usize;
        // Guarantee non-empty sides for classes with at least 3 flows.
        if n >= 3 {
            n_train = n_train.clamp(1, n - 2);
            n_val = n_val.clamp(1, n - n_train - 1);
        } else {
            n_train = n_train.min(n);
            n_val = n_val.min(n - n_train);
        }
        out.train.extend_from_slice(&shuffled[..n_train]);
        out.val
            .extend_from_slice(&shuffled[n_train..n_train + n_val]);
        out.test.extend_from_slice(&shuffled[n_train + n_val..]);
    }
    out
}

/// Random (non-stratified) 80/20 split of a whole partition — the scheme of
/// the paper's Table 7 "enlarged training set" campaign, which deliberately
/// keeps the natural imbalance.
pub fn partition_two_way(
    dataset: &Dataset,
    partition: Partition,
    frac: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    let indices: Vec<usize> = dataset
        .flows
        .iter()
        .enumerate()
        .filter(|(_, f)| f.partition == partition && !f.background)
        .map(|(i, _)| i)
        .collect();
    random_two_way(&indices, frac, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Direction, Flow, Pkt};
    use std::collections::HashSet;

    fn mk_dataset(per_class: &[usize], partition: Partition) -> Dataset {
        let mut flows = Vec::new();
        let mut id = 0;
        for (class, &n) in per_class.iter().enumerate() {
            for _ in 0..n {
                id += 1;
                flows.push(Flow {
                    id,
                    class: class as u16,
                    partition,
                    background: false,
                    pkts: vec![Pkt::data(0.0, 100, Direction::Upstream)],
                });
            }
        }
        Dataset {
            name: "t".into(),
            class_names: (0..per_class.len()).map(|i| format!("c{i}")).collect(),
            flows,
        }
    }

    #[test]
    fn per_class_folds_shape() {
        let ds = mk_dataset(&[50, 40, 30], Partition::Pretraining);
        let folds = per_class_folds(&ds, Partition::Pretraining, 20, 3, 7);
        assert_eq!(folds.len(), 3);
        for fold in &folds {
            assert_eq!(fold.train.len(), 60);
            assert_eq!(fold.test.len(), 50 + 40 + 30 - 60);
            // Train and leftover are disjoint and cover the partition.
            let train: HashSet<_> = fold.train.iter().collect();
            let test: HashSet<_> = fold.test.iter().collect();
            assert!(train.is_disjoint(&test));
            // Exactly 20 per class in train.
            for class in 0..3u16 {
                let n = fold
                    .train
                    .iter()
                    .filter(|&&i| ds.flows[i].class == class)
                    .count();
                assert_eq!(n, 20);
            }
        }
        // Folds differ from each other.
        assert_ne!(folds[0].train, folds[1].train);
    }

    #[test]
    #[should_panic(expected = "needs 100")]
    fn per_class_folds_panics_when_class_too_small() {
        let ds = mk_dataset(&[50], Partition::Pretraining);
        per_class_folds(&ds, Partition::Pretraining, 100, 1, 0);
    }

    #[test]
    fn random_two_way_is_a_partition() {
        let indices: Vec<usize> = (0..100).collect();
        let (a, b) = random_two_way(&indices, 0.8, 3);
        assert_eq!(a.len(), 80);
        assert_eq!(b.len(), 20);
        let union: HashSet<_> = a.iter().chain(b.iter()).collect();
        assert_eq!(union.len(), 100);
    }

    #[test]
    fn random_two_way_deterministic_per_seed() {
        let indices: Vec<usize> = (0..50).collect();
        assert_eq!(
            random_two_way(&indices, 0.5, 9),
            random_two_way(&indices, 0.5, 9)
        );
        assert_ne!(
            random_two_way(&indices, 0.5, 9).0,
            random_two_way(&indices, 0.5, 10).0
        );
    }

    #[test]
    fn stratified_three_way_preserves_imbalance() {
        let ds = mk_dataset(&[100, 20], Partition::Unpartitioned);
        let s = stratified_three_way(&ds, Partition::Unpartitioned, 0.8, 0.1, 5);
        assert_eq!(s.train.len() + s.val.len() + s.test.len(), 120);
        let train_c0 = s.train.iter().filter(|&&i| ds.flows[i].class == 0).count();
        let train_c1 = s.train.iter().filter(|&&i| ds.flows[i].class == 1).count();
        // Ratio roughly preserved (5:1).
        assert!(train_c0 >= 4 * train_c1, "c0 {train_c0} c1 {train_c1}");
        // Every class present in every side.
        for side in [&s.train, &s.val, &s.test] {
            for class in 0..2u16 {
                assert!(side.iter().any(|&i| ds.flows[i].class == class));
            }
        }
    }

    #[test]
    fn stratified_handles_tiny_classes() {
        let ds = mk_dataset(&[3], Partition::Unpartitioned);
        let s = stratified_three_way(&ds, Partition::Unpartitioned, 0.8, 0.1, 5);
        assert_eq!(s.train.len() + s.val.len() + s.test.len(), 3);
        assert!(!s.train.is_empty());
    }

    #[test]
    fn partition_two_way_filters_partition() {
        let mut ds = mk_dataset(&[10], Partition::Pretraining);
        let other = mk_dataset(&[10], Partition::Script);
        ds.flows.extend(other.flows);
        let (train, test) = partition_two_way(&ds, Partition::Pretraining, 0.8, 1);
        assert_eq!(train.len() + test.len(), 10);
        assert!(train
            .iter()
            .chain(test.iter())
            .all(|&i| ds.flows[i].partition == Partition::Pretraining));
    }
}
