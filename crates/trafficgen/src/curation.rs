//! The paper's dataset curation pipeline.
//!
//! Paper Sec. 3.4 ("Data curation"): for MIRAGE-19, MIRAGE-22 and
//! UTMOBILENET21 the authors (i) filter out flows with fewer than 10
//! packets, (ii) remove classes with fewer than 100 samples, (iii) for the
//! MIRAGE datasets first remove TCP ACK packets and discard background
//! traffic, and (iv) collate UTMOBILENET21's four capture campaigns into
//! one. The `>1000pkts` MIRAGE-22 variant raises the packet threshold.
//!
//! This module implements each step as a composable operation plus a
//! [`CurationPipeline`] that chains them and reports what it removed — the
//! paper's Table 2 is exactly this report.

use crate::types::{Dataset, Flow, Partition};
use serde::Serialize;

/// Summary of a curation run: the numbers behind the paper's Table 2 row.
#[derive(Debug, Clone, Serialize)]
pub struct CurationReport {
    /// Dataset name.
    pub dataset: String,
    /// Flows before curation.
    pub flows_before: usize,
    /// Flows after curation.
    pub flows_after: usize,
    /// Classes before curation.
    pub classes_before: usize,
    /// Classes after curation.
    pub classes_after: usize,
    /// Background flows discarded.
    pub background_removed: usize,
    /// Flows dropped by the minimum-packet filter.
    pub short_removed: usize,
    /// Flows dropped because their class fell below the class-size floor.
    pub small_class_removed: usize,
    /// Class-imbalance ratio ρ after curation.
    pub rho: Option<f64>,
    /// Mean packets per flow after curation.
    pub mean_pkts: f64,
}

/// Declarative description of a curation pipeline.
#[derive(Debug, Clone, Serialize)]
pub struct CurationPipeline {
    /// Remove bare TCP ACK packets from every flow (MIRAGE curation).
    pub remove_acks: bool,
    /// Discard flows flagged as background traffic (MIRAGE curation).
    pub remove_background: bool,
    /// Keep only flows with at least this many packets (counted after ACK
    /// removal); the paper uses 10, and 1000 for the MIRAGE-22 variant.
    pub min_pkts: usize,
    /// Drop classes that end up with fewer samples than this; the paper
    /// uses 100.
    pub min_class_size: usize,
    /// Collate all partitions into [`Partition::Unpartitioned`]
    /// (UTMOBILENET21's "4-into-1").
    pub collate_partitions: bool,
}

impl CurationPipeline {
    /// The paper's curation for the MIRAGE datasets.
    pub fn mirage(min_pkts: usize) -> Self {
        CurationPipeline {
            remove_acks: true,
            remove_background: true,
            min_pkts,
            min_class_size: 100,
            collate_partitions: false,
        }
    }

    /// The paper's curation for UTMOBILENET21.
    pub fn utmobilenet() -> Self {
        CurationPipeline {
            remove_acks: false,
            remove_background: false,
            min_pkts: 10,
            min_class_size: 100,
            collate_partitions: true,
        }
    }

    /// A permissive pipeline for tests (no thresholds).
    pub fn passthrough() -> Self {
        CurationPipeline {
            remove_acks: false,
            remove_background: false,
            min_pkts: 0,
            min_class_size: 0,
            collate_partitions: false,
        }
    }

    /// Runs the pipeline, returning the curated dataset and a report.
    ///
    /// Class indices are re-mapped densely after dropping small classes so
    /// that downstream one-hot encodings stay compact; `class_names` keeps
    /// only the surviving names in their original order.
    pub fn run(&self, dataset: &Dataset) -> (Dataset, CurationReport) {
        let flows_before = dataset.flows.len();
        let classes_before = dataset.class_names.len();

        let mut background_removed = 0usize;
        let mut short_removed = 0usize;

        let mut kept: Vec<Flow> = Vec::new();
        for f in &dataset.flows {
            if self.remove_background && f.background {
                background_removed += 1;
                continue;
            }
            let f = if self.remove_acks {
                f.without_acks()
            } else {
                f.clone()
            };
            if f.len() < self.min_pkts {
                short_removed += 1;
                continue;
            }
            kept.push(f);
        }

        // Drop small classes.
        let mut counts = vec![0usize; classes_before];
        for f in &kept {
            counts[f.class as usize] += 1;
        }
        let surviving: Vec<u16> = (0..classes_before as u16)
            .filter(|&c| counts[c as usize] >= self.min_class_size)
            .collect();
        let remap: Vec<Option<u16>> = {
            let mut m = vec![None; classes_before];
            for (new, &old) in surviving.iter().enumerate() {
                m[old as usize] = Some(new as u16);
            }
            m
        };
        let before_class_drop = kept.len();
        let mut curated: Vec<Flow> = kept
            .into_iter()
            .filter_map(|mut f| {
                remap[f.class as usize].map(|new_class| {
                    f.class = new_class;
                    if self.collate_partitions {
                        f.partition = Partition::Unpartitioned;
                    }
                    f
                })
            })
            .collect();
        let small_class_removed = before_class_drop - curated.len();

        // Re-zero timestamps changed by ACK removal (the first remaining
        // packet defines t=0 in the curated series, as in the paper's
        // parquet exports).
        for f in &mut curated {
            if let Some(first) = f.pkts.first().copied() {
                if first.ts != 0.0 {
                    for p in &mut f.pkts {
                        p.ts -= first.ts;
                    }
                }
            }
        }

        let class_names: Vec<String> = surviving
            .iter()
            .map(|&c| dataset.class_names[c as usize].clone())
            .collect();
        let out = Dataset {
            name: dataset.name.clone(),
            class_names,
            flows: curated,
        };
        let report = CurationReport {
            dataset: out.name.clone(),
            flows_before,
            flows_after: out.flows.len(),
            classes_before,
            classes_after: out.class_names.len(),
            background_removed,
            short_removed,
            small_class_removed,
            rho: out.imbalance_rho(),
            mean_pkts: out.mean_pkts(),
        };
        (out, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Direction, Pkt};

    fn mk_flow(id: u64, class: u16, n_data: usize, n_acks: usize, background: bool) -> Flow {
        let mut pkts = Vec::new();
        for i in 0..n_data {
            pkts.push(Pkt::data(i as f64 * 0.1, 500, Direction::Downstream));
        }
        for i in 0..n_acks {
            pkts.push(Pkt::ack(i as f64 * 0.1 + 0.05, Direction::Upstream));
        }
        pkts.sort_by(|a, b| a.ts.total_cmp(&b.ts));
        if let Some(first) = pkts.first().copied() {
            for p in &mut pkts {
                p.ts -= first.ts;
            }
        }
        Flow {
            id,
            class,
            partition: Partition::Unpartitioned,
            background,
            pkts,
        }
    }

    fn mk_dataset(flows: Vec<Flow>, n_classes: usize) -> Dataset {
        Dataset {
            name: "t".into(),
            class_names: (0..n_classes).map(|i| format!("c{i}")).collect(),
            flows,
        }
    }

    #[test]
    fn ack_removal_and_min_pkts() {
        // 5 data + 20 acks: after ACK removal only 5 data packets remain,
        // below the 10-packet floor => dropped.
        let ds = mk_dataset(
            vec![mk_flow(1, 0, 5, 20, false), mk_flow(2, 0, 15, 5, false)],
            1,
        );
        let mut pipe = CurationPipeline::mirage(10);
        pipe.min_class_size = 0;
        let (out, report) = pipe.run(&ds);
        assert_eq!(out.flows.len(), 1);
        assert_eq!(report.short_removed, 1);
        assert!(out.flows[0].pkts.iter().all(|p| !p.is_ack));
        assert!(out.flows[0].is_well_formed());
    }

    #[test]
    fn background_removal() {
        let ds = mk_dataset(
            vec![mk_flow(1, 0, 15, 0, true), mk_flow(2, 0, 15, 0, false)],
            1,
        );
        let mut pipe = CurationPipeline::mirage(10);
        pipe.min_class_size = 0;
        let (out, report) = pipe.run(&ds);
        assert_eq!(report.background_removed, 1);
        assert_eq!(out.flows.len(), 1);
        assert!(!out.flows[0].background);
    }

    #[test]
    fn small_classes_are_dropped_and_remapped() {
        let mut flows = Vec::new();
        // Class 0: 3 flows (dropped), class 1: 5 flows (kept), class 2: 5 (kept).
        for i in 0..3 {
            flows.push(mk_flow(i, 0, 12, 0, false));
        }
        for i in 3..8 {
            flows.push(mk_flow(i, 1, 12, 0, false));
        }
        for i in 8..13 {
            flows.push(mk_flow(i, 2, 12, 0, false));
        }
        let ds = mk_dataset(flows, 3);
        let pipe = CurationPipeline {
            remove_acks: false,
            remove_background: false,
            min_pkts: 10,
            min_class_size: 5,
            collate_partitions: false,
        };
        let (out, report) = pipe.run(&ds);
        assert_eq!(out.class_names, vec!["c1".to_string(), "c2".to_string()]);
        assert_eq!(report.small_class_removed, 3);
        // Classes re-mapped densely: only 0 and 1 appear.
        assert!(out.flows.iter().all(|f| f.class < 2));
        assert_eq!(out.class_counts(), vec![5, 5]);
    }

    #[test]
    fn collation_merges_partitions() {
        let mut a = mk_flow(1, 0, 12, 0, false);
        a.partition = Partition::WildTest;
        let mut b = mk_flow(2, 0, 12, 0, false);
        b.partition = Partition::ActionSpecific;
        let ds = mk_dataset(vec![a, b], 1);
        let mut pipe = CurationPipeline::utmobilenet();
        pipe.min_class_size = 0;
        let (out, _) = pipe.run(&ds);
        assert!(out
            .flows
            .iter()
            .all(|f| f.partition == Partition::Unpartitioned));
    }

    #[test]
    fn passthrough_keeps_everything() {
        let ds = mk_dataset(vec![mk_flow(1, 0, 2, 3, true)], 1);
        let (out, report) = CurationPipeline::passthrough().run(&ds);
        assert_eq!(out.flows.len(), 1);
        assert_eq!(report.flows_before, report.flows_after);
    }

    #[test]
    fn timestamps_rezeroed_after_ack_removal() {
        // Flow starting with an ACK: after removal the first data packet
        // must sit at t=0.
        let mut pkts = vec![
            Pkt::ack(0.0, Direction::Upstream),
            Pkt::data(0.5, 900, Direction::Downstream),
        ];
        for i in 0..12 {
            pkts.push(Pkt::data(0.6 + i as f64 * 0.1, 900, Direction::Downstream));
        }
        let f = Flow {
            id: 1,
            class: 0,
            partition: Partition::Unpartitioned,
            background: false,
            pkts,
        };
        let ds = mk_dataset(vec![f], 1);
        let mut pipe = CurationPipeline::mirage(10);
        pipe.min_class_size = 0;
        let (out, _) = pipe.run(&ds);
        assert_eq!(out.flows[0].pkts[0].ts, 0.0);
        assert!(out.flows[0].is_well_formed());
    }

    #[test]
    fn mirage22_1000pkt_variant() {
        let ds = mk_dataset(
            vec![mk_flow(1, 0, 1500, 0, false), mk_flow(2, 0, 500, 0, false)],
            1,
        );
        let mut pipe = CurationPipeline::mirage(1000);
        pipe.min_class_size = 0;
        let (out, _) = pipe.run(&ds);
        assert_eq!(out.flows.len(), 1);
        assert!(out.flows[0].len() >= 1000);
    }
}
