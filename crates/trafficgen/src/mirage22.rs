//! MIRAGE-22 dataset simulator.
//!
//! MIRAGE-22 (Guarino et al., 2021) captures 9 communication-and-
//! collaboration apps (video-meeting services). Compared with MIRAGE-19
//! its flows are *long* — mean ≈ 3 000 packets raw, ≈ 6 600 after the
//! `>10pkts` filter, and the paper additionally studies a `>1000pkts`
//! variant whose surviving flows average ≈ 38 000 packets with imbalance
//! ρ ≈ 11.7. Meeting traffic is dominated by sustained periodic media
//! streams, which the simulated profiles reflect (audio/video RTP-like
//! cadence plus control chatter).

use crate::synth::{app_profile, generate_dataset, imbalanced_counts, ClassGenSpec};
use crate::types::{Dataset, Partition};
use serde::Serialize;

/// Number of app classes.
pub const NUM_CLASSES: usize = 9;

/// Simulator configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Mirage22Config {
    /// Flow count of the largest class (raw).
    pub max_class_flows: usize,
    /// Target raw class-imbalance ratio ρ.
    pub rho: f64,
    /// Per-flow packet cap. Meeting flows are long; the cap bounds memory
    /// while still allowing the `>1000pkts` curation variant to select a
    /// heavy tail.
    pub max_pkts: usize,
    /// Inter-class separation; 0.8 lands the supervised F1 near the
    /// paper's ≈90 % band for the `>10pkts` variant.
    pub spread: f64,
}

impl Mirage22Config {
    /// Paper-scale (Table 2: 59 071 raw flows, largest class 18 882).
    pub fn paper() -> Self {
        Mirage22Config {
            max_class_flows: 18_882,
            rho: 8.4,
            max_pkts: 1600,
            spread: 0.8,
        }
    }

    /// Reduced scale for benches.
    pub fn quick() -> Self {
        Mirage22Config {
            max_class_flows: 320,
            rho: 8.4,
            max_pkts: 1600,
            spread: 0.8,
        }
    }

    /// Tiny scale for unit tests.
    pub fn tiny() -> Self {
        Mirage22Config {
            max_class_flows: 40,
            rho: 4.0,
            max_pkts: 300,
            spread: 0.8,
        }
    }
}

/// The MIRAGE-22 simulator.
#[derive(Debug, Clone)]
pub struct Mirage22Sim {
    config: Mirage22Config,
}

impl Mirage22Sim {
    /// Creates a simulator.
    pub fn new(config: Mirage22Config) -> Self {
        Mirage22Sim { config }
    }

    /// Generates the raw (uncurated) dataset.
    pub fn generate(&self, seed: u64) -> Dataset {
        let counts = imbalanced_counts(NUM_CLASSES, self.config.max_class_flows, self.config.rho);
        let specs: Vec<ClassGenSpec> = (0..NUM_CLASSES)
            .map(|i| {
                let mut profile = app_profile(i, NUM_CLASSES, self.config.spread, "mirage22-app");
                // Meeting media streams: sustained periodic packetization
                // over long sessions, with a heavy-tailed duration so the
                // `>1000pkts` filter keeps a meaningful subset.
                profile.periodic = Some(0.06 + 0.05 * (i as f64 / NUM_CLASSES as f64));
                profile.burst_len_mean = 3.0 + 1.5 * (i % 3) as f64;
                profile.burst_len_sd = 1.0;
                profile.intra_burst_gap = 0.004;
                profile.duration_mean = 90.0;
                profile.duration_sigma = 1.4; // heavy tail => some very long flows
                profile.ack_ratio = 0.35;
                ClassGenSpec {
                    name: format!("mirage22-app-{i}"),
                    profile,
                    count: counts[i],
                    short_flow_fraction: 0.35,
                    background_fraction: 0.12,
                    partitions: vec![(Partition::Unpartitioned, 1.0)],
                }
            })
            .collect();
        generate_dataset("mirage22", &specs, seed, self.config.max_pkts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_properties() {
        let ds = Mirage22Sim::new(Mirage22Config::tiny()).generate(1);
        assert_eq!(ds.num_classes(), NUM_CLASSES);
        assert!(ds.imbalance_rho().unwrap() > 1.5);
        // Long flows dominate the non-short population.
        let long_flows: Vec<usize> = ds
            .flows
            .iter()
            .filter(|f| !f.background && f.len() >= 10)
            .map(|f| f.len())
            .collect();
        let mean = long_flows.iter().sum::<usize>() as f64 / long_flows.len().max(1) as f64;
        assert!(mean > 60.0, "mean long-flow pkts {mean}");
    }

    #[test]
    fn heavy_tail_supports_1000pkt_filter() {
        let mut cfg = Mirage22Config::tiny();
        cfg.max_class_flows = 120;
        cfg.max_pkts = 1600;
        let ds = Mirage22Sim::new(cfg).generate(2);
        let over_1000 = ds.flows.iter().filter(|f| f.len() > 1000).count();
        assert!(
            over_1000 > 0,
            "no flows above 1000 packets — the >1000pkts variant would be empty"
        );
    }

    #[test]
    fn deterministic() {
        let a = Mirage22Sim::new(Mirage22Config::tiny()).generate(4);
        let b = Mirage22Sim::new(Mirage22Config::tiny()).generate(4);
        assert_eq!(a.flows, b.flows);
    }
}
