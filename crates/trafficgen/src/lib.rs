//! # trafficgen — synthetic traffic models and dataset simulators
//!
//! The IMC'23 replication study this workspace reproduces runs its modeling
//! campaigns on four public traffic datasets (UCDAVIS19, MIRAGE-19,
//! MIRAGE-22, UTMOBILENET21). Those datasets are collections of *per-flow
//! packet time series*: for every flow, the timestamp, size and direction of
//! each packet. None of the original captures are available here, so this
//! crate provides generative substitutes: class-conditional
//! Markov-modulated packet processes whose parameters are tuned so that each
//! simulated dataset matches the *structural* properties the paper reports
//! (Table 2: class counts, class imbalance, mean flow length) and exhibits
//! the *phenomena* the paper analyses (most importantly the distribution
//! shift of the UCDAVIS19 `human` partition, paper Sec. 4.2.3 / Fig. 4 / 8).
//!
//! The crate is organized bottom-up:
//!
//! * [`types`] — packets, flows, datasets, partitions.
//! * [`dist`] — the scalar samplers (normal, log-normal, exponential,
//!   Pareto, truncated variants) every traffic model draws from.
//! * [`process`] — the burst/idle Markov traffic process engine.
//! * [`profile`] — declarative per-class traffic profiles.
//! * [`ucdavis`], [`mirage19`], [`mirage22`], [`utmobilenet`] — the four
//!   dataset simulators.
//! * [`curation`] — the paper's curation pipeline (min-packet filter,
//!   min-class-size filter, ACK removal, background-traffic removal,
//!   partition collation).
//! * [`splits`] — training/validation/test split construction (100-per-class
//!   folds, stratified 80/10/10, random 80/20).
//! * [`flowrec`] — a compact binary serialization of flow records.
//! * [`stress`] — serving-path stress traffic: up to a million tiny
//!   flows, each closed just past the 15 s window so the online
//!   dataplane classifies at steady state.
//! * [`shift`] — mid-stream distribution shift (the paper's `human`
//!   partition in miniature) for exercising the daemon's drift monitor.
//! * [`quic`] — QUIC-era open-world workload: many imbalanced classes,
//!   a held-out unknown subset, and diurnal rate drift, for the
//!   confidence-thresholded rejection lane.
//!
//! ## Example
//!
//! ```
//! use trafficgen::ucdavis::{UcDavisSim, UcDavisConfig};
//! use trafficgen::types::Partition;
//!
//! let dataset = UcDavisSim::new(UcDavisConfig::tiny()).generate(42);
//! assert_eq!(dataset.class_names.len(), 5);
//! assert!(dataset.flows.iter().any(|f| f.partition == Partition::Human));
//! ```

pub mod curation;
pub mod dist;
pub mod flowrec;
pub mod iscx;
pub mod mirage19;
pub mod mirage22;
pub mod netem;
pub mod pcap;
pub mod process;
pub mod profile;
pub mod quic;
pub mod shift;
pub mod splits;
pub mod stress;
pub mod synth;
pub mod types;
pub mod ucdavis;
pub mod utmobilenet;

pub use types::{Dataset, Direction, Flow, Partition, Pkt};
