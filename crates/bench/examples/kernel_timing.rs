//! Hand-rolled wall-clock medians for the conv-kernel paths and the
//! serving forward, mirroring the criterion benches (which the offline
//! criterion stub cannot time). Prints one line per case; medians go
//! into `bench_results/conv_kernels.json` / `inference_throughput.json`.

use std::time::Instant;

use nettensor::layers::{Conv2d, Layer};
use nettensor::tape::Tape;
use nettensor::tensor::Tensor;
use serve::engine::{Classifier, CnnClassifier, QuantMode};
use serve::registry::ServedModel;
use tcbench::arch::supervised_net;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn sparse_input(hw: usize, density: f64, seed: u64) -> Tensor {
    let data: Vec<f32> = (0..hw * hw)
        .map(|i| {
            let h = splitmix64(seed.wrapping_add(i as u64));
            if (h % 1_000_000) as f64 / 1e6 < density {
                0.5 + 2.0 * ((splitmix64(h) % 1000) as f32 / 1000.0)
            } else {
                0.0
            }
        })
        .collect();
    Tensor::new(&[1, 1, hw, hw], data)
}

fn median_ms(mut f: impl FnMut(), samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    struct Shape {
        name: &'static str,
        hw: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        density: f64,
    }
    let shapes = [
        Shape {
            name: "mini32_d5pct",
            hw: 32,
            out_c: 6,
            kernel: 5,
            stride: 1,
            density: 0.05,
        },
        Shape {
            name: "full1500_d0.08pct",
            hw: 1500,
            out_c: 10,
            kernel: 10,
            stride: 5,
            density: 0.0008,
        },
    ];
    for shape in &shapes {
        let x = sparse_input(shape.hw, shape.density, 3);
        for (path, threshold, gemm) in [
            ("dense", 0.0f32, false),
            ("sparse", 1.1, false),
            ("gemm", 0.0, true),
        ] {
            let mut conv = Conv2d::with_stride(1, shape.out_c, shape.kernel, shape.stride, 71);
            conv.set_sparsity_threshold(threshold);
            conv.set_gemm(gemm);
            let ms = median_ms(
                || {
                    std::hint::black_box(conv.forward_eval(&x));
                },
                samples,
            );
            println!("conv/{}_forward_{path} {ms:.3} ms", shape.name);

            let mut tape = Tape::new();
            let out = conv.forward(&x, true, &mut tape);
            let g = Tensor::new(
                &out.shape,
                (0..out.data.len())
                    .map(|i| ((splitmix64(i as u64) % 1000) as f32 / 1000.0) - 0.5)
                    .collect(),
            );
            let ms = median_ms(
                || {
                    let mut grads: Vec<Tensor> = conv
                        .params()
                        .iter()
                        .map(|p| Tensor::zeros(&p.shape))
                        .collect();
                    std::hint::black_box(conv.backward(&tape.entries[0], &g, &mut grads));
                },
                samples,
            );
            println!("conv/{}_backward_{path} {ms:.3} ms", shape.name);
        }
    }

    // Serving forward, batch 32 at 32x32 — f32 vs int8.
    const RES: usize = 32;
    let net = supervised_net(RES, 5, true, 1);
    let model = ServedModel {
        arch: "supervised".into(),
        resolution: RES,
        n_classes: 5,
        dropout: true,
        class_names: (0..5).map(|i| format!("class{i}")).collect(),
        weights: net.export_weights(),
    };
    let x: Vec<Vec<f32>> = (0..32)
        .map(|i| {
            (0..RES * RES)
                .map(|j| (splitmix64((i * RES * RES + j) as u64) % 1000) as f32 / 1000.0)
                .collect()
        })
        .collect();
    for (label, quant) in [("f32", QuantMode::Off), ("int8", QuantMode::Int8)] {
        let cnn = CnnClassifier::from_served_quant(&model, 1, quant).unwrap();
        let ms = median_ms(
            || {
                std::hint::black_box(cnn.predict_batch(&x));
            },
            samples,
        );
        println!("serve/cnn_batch32_workers1_{label} {ms:.3} ms");
    }
}
