//! Shared infrastructure for the per-table/figure bench binaries.
//!
//! Every binary follows the same contract:
//!
//! * `--quick` (default): reduced scale — fewer splits, seeds, augmented
//!   copies and epochs — sized for a single-core box. The *shape* of the
//!   paper's result is preserved; absolute precision is not.
//! * `--paper`: the paper's campaign scale (5 splits × 3 seeds, 10
//!   augmented copies, full early-stopping budgets). Wall-clock is hours
//!   on one core.
//! * `--out <dir>`: where the JSON result mirror is written
//!   (default `bench_results/`).
//! * `--seed <n>`: base seed for dataset generation (default 42).
//!
//! Each binary prints the table/figure it reproduces in the paper's shape
//! and writes the same content as JSON for EXPERIMENTS.md.

pub mod campaign;

use serde::Serialize;
use trafficgen::types::Dataset;
use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

/// Parsed command-line options shared by all bench binaries.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Paper-scale campaign (vs quick).
    pub paper: bool,
    /// Output directory for JSON results.
    pub out_dir: String,
    /// Base dataset seed.
    pub seed: u64,
    /// Emit per-epoch/per-cell telemetry on stderr.
    pub progress: bool,
}

impl BenchOpts {
    /// Parses `std::env::args()`. Unknown flags abort with usage help.
    pub fn from_args() -> BenchOpts {
        Self::parse(std::env::args().skip(1).collect())
    }

    fn parse(args: Vec<String>) -> BenchOpts {
        let mut opts = BenchOpts {
            paper: false,
            out_dir: "bench_results".to_string(),
            seed: 42,
            progress: false,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--paper" => opts.paper = true,
                "--quick" => opts.paper = false,
                "--progress" => opts.progress = true,
                "--out" => {
                    i += 1;
                    match args.get(i) {
                        Some(v) => opts.out_dir = v.clone(),
                        None => usage("--out needs a value"),
                    }
                }
                "--seed" => {
                    i += 1;
                    match args.get(i).and_then(|v| v.parse().ok()) {
                        Some(v) => opts.seed = v,
                        None => usage("--seed needs an integer"),
                    }
                }
                other => usage(&format!("unknown flag {other}")),
            }
            i += 1;
        }
        opts
    }

    /// The campaign-level telemetry sink this invocation asked for:
    /// per-task progress on stderr under `--progress`, silence otherwise.
    /// Telemetry is observability-only — results are identical either way.
    pub fn observer(&self) -> Box<dyn tcbench::telemetry::TrainObserver + Send> {
        if self.progress {
            Box::new(tcbench::telemetry::ProgressSink::stderr())
        } else {
            Box::new(tcbench::telemetry::Noop)
        }
    }

    /// Campaign shape: `(splits, seeds_per_split)`.
    pub fn campaign(&self) -> (usize, usize) {
        if self.paper {
            (5, 3)
        } else {
            (2, 2)
        }
    }

    /// Augmented copies per training flow, on top of the original
    /// (paper: 9 copies + original = 1 000 images per class).
    pub fn aug_copies(&self) -> usize {
        if self.paper {
            9
        } else {
            3
        }
    }

    /// Supervised epoch cap.
    pub fn max_epochs(&self) -> usize {
        if self.paper {
            50
        } else {
            10
        }
    }

    /// Flowpic resolutions to sweep (paper: 32/64/1500).
    pub fn resolutions(&self) -> Vec<usize> {
        if self.paper {
            vec![32, 64, 1500]
        } else {
            vec![32]
        }
    }

    /// Writes `value` under `out_dir/name.json` and reports the path.
    pub fn write_result<T: Serialize>(&self, name: &str, value: &T) {
        let path = format!("{}/{}.json", self.out_dir, name);
        tcbench::report::write_json(&path, value).expect("write result json");
        println!("[result json: {path}]");
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: <bench> [--quick|--paper] [--out DIR] [--seed N] [--progress]");
    std::process::exit(2);
}

/// The UCDAVIS19 simulation used by all UCDAVIS-based benches.
pub fn ucdavis_dataset(opts: &BenchOpts) -> Dataset {
    let cfg = if opts.paper {
        UcDavisConfig::paper()
    } else {
        UcDavisConfig::quick()
    };
    UcDavisSim::new(cfg).generate(opts.seed)
}

/// Per-class training-pool size for the paper's 100-per-class protocol.
pub const SAMPLES_PER_CLASS: usize = 100;

/// Converts a `[0,1]` metric list to percent values.
pub fn to_percent(values: &[f64]) -> Vec<f64> {
    values.iter().map(|v| v * 100.0).collect()
}

/// Builds the curated replication datasets of the paper's Table 8, in the
/// paper's column order: MIRAGE-22 (>10pkts), MIRAGE-22 (>1000pkts),
/// UTMOBILENET21 (>10pkts), MIRAGE-19 (>10pkts).
///
/// Quick mode scales down generation, lowers the minimum-class-size
/// curation floor proportionally (30 instead of 100) and caps each class
/// at 40 flows so the supervised campaign fits a single core.
pub fn replication_datasets(opts: &BenchOpts) -> Vec<(String, Dataset)> {
    use trafficgen::curation::CurationPipeline;
    use trafficgen::mirage19::{Mirage19Config, Mirage19Sim};
    use trafficgen::mirage22::{Mirage22Config, Mirage22Sim};
    use trafficgen::utmobilenet::{UtMobileNetConfig, UtMobileNetSim};

    let min_class = if opts.paper { 100 } else { 30 };
    let cap = if opts.paper { usize::MAX } else { 40 };

    let m22_raw = Mirage22Sim::new(if opts.paper {
        Mirage22Config::paper()
    } else {
        Mirage22Config::quick()
    })
    .generate(opts.seed ^ 0x22);
    let m19_raw = Mirage19Sim::new(if opts.paper {
        Mirage19Config::paper()
    } else {
        Mirage19Config::quick()
    })
    .generate(opts.seed ^ 0x19);
    let ut_raw = UtMobileNetSim::new(if opts.paper {
        UtMobileNetConfig::paper()
    } else {
        UtMobileNetConfig::quick()
    })
    .generate(opts.seed ^ 0x21);

    let curate = |name: &str, raw: &Dataset, pipe: CurationPipeline| -> (String, Dataset) {
        let mut pipe = pipe;
        pipe.min_class_size = min_class;
        let (curated, report) = pipe.run(raw);
        eprintln!(
            "  {name}: {} -> {} flows, {} -> {} classes, rho {:.1}, mean pkts {:.0}",
            report.flows_before,
            report.flows_after,
            report.classes_before,
            report.classes_after,
            report.rho.unwrap_or(f64::NAN),
            report.mean_pkts
        );
        (name.to_string(), cap_per_class(&curated, cap, opts.seed))
    };

    vec![
        curate(
            "MIRAGE-22 (>10pkts)",
            &m22_raw,
            CurationPipeline::mirage(10),
        ),
        curate(
            "MIRAGE-22 (>1000pkts)",
            &m22_raw,
            CurationPipeline::mirage(1000),
        ),
        curate(
            "UTMOBILENET21 (>10pkts)",
            &ut_raw,
            CurationPipeline::utmobilenet(),
        ),
        curate(
            "MIRAGE-19 (>10pkts)",
            &m19_raw,
            CurationPipeline::mirage(10),
        ),
    ]
}

/// Stratified subsample: keeps at most `cap` flows per class (seeded).
pub fn cap_per_class(ds: &Dataset, cap: usize, seed: u64) -> Dataset {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    if cap == usize::MAX {
        return ds.clone();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCA9);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); ds.num_classes()];
    for (i, f) in ds.flows.iter().enumerate() {
        by_class[f.class as usize].push(i);
    }
    let mut keep = Vec::new();
    for idxs in &mut by_class {
        idxs.shuffle(&mut rng);
        keep.extend(idxs.iter().copied().take(cap));
    }
    keep.sort_unstable();
    Dataset {
        name: ds.name.clone(),
        class_names: ds.class_names.clone(),
        flows: keep.into_iter().map(|i| ds.flows[i].clone()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_flags() {
        let o = BenchOpts::parse(vec![]);
        assert!(!o.paper);
        assert_eq!(o.seed, 42);
        let o = BenchOpts::parse(
            ["--paper", "--out", "x", "--seed", "7"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert!(o.paper);
        assert_eq!(o.out_dir, "x");
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn scale_knobs() {
        let quick = BenchOpts::parse(vec![]);
        let paper = BenchOpts::parse(vec!["--paper".to_string()]);
        assert!(paper.aug_copies() > quick.aug_copies());
        assert!(paper.resolutions().len() > quick.resolutions().len());
        assert_eq!(paper.campaign(), (5, 3));
    }

    #[test]
    fn quick_dataset_supports_100_per_class() {
        let o = BenchOpts::parse(vec![]);
        let ds = ucdavis_dataset(&o);
        let counts: Vec<usize> = {
            let mut c = vec![0usize; 5];
            for f in ds.partition(trafficgen::types::Partition::Pretraining) {
                c[f.class as usize] += 1;
            }
            c
        };
        assert!(
            counts.iter().all(|&c| c >= SAMPLES_PER_CLASS + 50),
            "{counts:?}"
        );
    }
}
