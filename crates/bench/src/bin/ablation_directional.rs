//! **Extension ablation** — direction-aware vs direction-blind flowpics.
//!
//! The Ref-Paper's footnote 3 notes that the flowpic deliberately ignores
//! traffic direction "although the representation could be reformulated
//! to take it into account". This ablation evaluates that reformulation:
//! a 2-channel flowpic (upstream / downstream histograms) against the
//! standard single-channel one, supervised training on 100-per-class
//! UCDAVIS19 splits.
//!
//! Expected shape: direction carries real signal (Google Drive is an
//! *upload*, YouTube a *download* — indistinguishable by size profile
//! alone once direction is erased), so the 2-channel input should match
//! or beat the blind one, most visibly on the shifted `human` partition
//! where every extra discriminative axis helps.

use flowpic::{FlowpicConfig, Normalization};
use mlstats::MeanCi;
use serde::Serialize;
use tcbench::arch::supervised_net_with_channels;
use tcbench::data::FlowpicDataset;
use tcbench::report::Table;
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use tcbench_bench::{ucdavis_dataset, BenchOpts, SAMPLES_PER_CLASS};
use trafficgen::splits::per_class_folds;
use trafficgen::types::{Dataset, Partition};

#[derive(Debug, Serialize)]
struct VariantCell {
    variant: String,
    script: Vec<f64>,
    human: Vec<f64>,
    leftover: Vec<f64>,
}

fn build(ds: &Dataset, idx: &[usize], directional: bool, cfg: &FlowpicConfig) -> FlowpicDataset {
    if directional {
        FlowpicDataset::from_flows_directional(ds, idx, cfg, Normalization::LogMax)
    } else {
        FlowpicDataset::from_flows(ds, idx, cfg, Normalization::LogMax)
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let ds = ucdavis_dataset(&opts);
    let (k, s) = opts.campaign();
    eprintln!("ablation_directional: {k} splits x {s} seeds per variant");

    let fpcfg = FlowpicConfig::mini();
    let folds = per_class_folds(&ds, Partition::Pretraining, SAMPLES_PER_CLASS, k, opts.seed);
    let script_idx = ds.partition_indices(Partition::Script);
    let human_idx = ds.partition_indices(Partition::Human);

    let mut cells = Vec::new();
    for directional in [false, true] {
        let variant = if directional {
            "direction-aware (2ch)"
        } else {
            "direction-blind (1ch)"
        };
        eprintln!("  {variant}...");
        let script = build(&ds, &script_idx, directional, &fpcfg);
        let human = build(&ds, &human_idx, directional, &fpcfg);
        let mut s_accs = Vec::new();
        let mut h_accs = Vec::new();
        let mut l_accs = Vec::new();
        for (ki, fold) in folds.iter().enumerate() {
            let leftover = build(&ds, &fold.test, directional, &fpcfg);
            for si in 0..s {
                let seed = opts.seed + (ki * 100 + si) as u64;
                let train_full = build(&ds, &fold.train, directional, &fpcfg);
                let (train, val) = train_full.split_validation(0.2, seed);
                let trainer = SupervisedTrainer::new(TrainConfig {
                    max_epochs: opts.max_epochs(),
                    ..TrainConfig::supervised(seed)
                });
                let channels = if directional { 2 } else { 1 };
                let mut net =
                    supervised_net_with_channels(32, channels, ds.num_classes(), true, seed);
                trainer.train(&mut net, &train, Some(&val));
                s_accs.push(100.0 * trainer.evaluate(&net, &script).accuracy);
                h_accs.push(100.0 * trainer.evaluate(&net, &human).accuracy);
                l_accs.push(100.0 * trainer.evaluate(&net, &leftover).accuracy);
            }
        }
        cells.push(VariantCell {
            variant: variant.to_string(),
            script: s_accs,
            human: h_accs,
            leftover: l_accs,
        });
    }

    let mut table = Table::new(
        "Extension — direction-aware flowpic (Ref-Paper footnote 3), 32x32",
        &["Variant", "script", "human", "leftover"],
    );
    for c in &cells {
        table.push_row(vec![
            c.variant.clone(),
            MeanCi::ci95(&c.script).to_string(),
            MeanCi::ci95(&c.human).to_string(),
            MeanCi::ci95(&c.leftover).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("expected: 2-channel >= 1-channel, the direction axis adds signal the");
    println!("paper's representation throws away (its footnote 3).");

    opts.write_result("ablation_directional", &cells);
}
