//! **Fig. 11 (App. E)** — impact of dropout in the supervised setting:
//! accuracy distributions (boxplots with 95th-percentile whiskers) with
//! and without dropout across test sets and augmentations.
//!
//! Expected shape (paper App. E): all scenarios report similar
//! performance — dropout "does not play a role" and its adoption is
//! weakly motivated.

use augment::Augmentation;
use mlstats::quantiles::BoxStats;
use serde::Serialize;
use tcbench_bench::campaign::run_supervised_cell;
use tcbench_bench::{ucdavis_dataset, BenchOpts};

#[derive(Debug, Serialize)]
struct BoxRow {
    augmentation: String,
    side: String,
    with_dropout: BoxStats,
    without_dropout: BoxStats,
    mean_diff: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    let ds = ucdavis_dataset(&opts);
    let augs = if opts.paper {
        augment::ALL_AUGMENTATIONS.to_vec()
    } else {
        vec![Augmentation::NoAug, Augmentation::ChangeRtt]
    };
    eprintln!("fig11: {} augmentations x 2 dropout settings", augs.len());

    let mut rows = Vec::new();
    for &aug in &augs {
        eprintln!("  {} w/ and w/o dropout...", aug.name());
        let with = run_supervised_cell(&ds, aug, 32, true, &opts);
        let without = run_supervised_cell(&ds, aug, 32, false, &opts);
        for side in ["script", "human", "leftover"] {
            let w = with.accuracies_pct(side);
            let wo = without.accuracies_pct(side);
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            rows.push(BoxRow {
                augmentation: aug.name().to_string(),
                side: side.to_string(),
                with_dropout: BoxStats::fig11(&w),
                without_dropout: BoxStats::fig11(&wo),
                mean_diff: mean(&w) - mean(&wo),
            });
        }
    }

    println!("== Fig. 11 — accuracy w/ and w/o dropout (boxplot stats, whiskers at 5/95 pct) ==");
    for row in &rows {
        println!("{} / {}:", row.augmentation, row.side);
        println!("  w/ dropout : {}", row.with_dropout.line());
        println!("  w/o dropout: {}", row.without_dropout.line());
        println!("  mean diff  : {:+.2} pts", row.mean_diff);
    }
    let max_abs = rows.iter().map(|r| r.mean_diff.abs()).fold(0.0, f64::max);
    println!(
        "\nshape check: max |mean difference| = {max_abs:.2} pts — expected small\n\
         (paper App. E: 'the impact of dropout does not play a role')"
    );

    opts.write_result("fig11_dropout", &rows);
}
