//! **Table 3 (G0)** — the classic-ML baseline: XGBoost-style GBDT with
//! default hyper-parameters (100 estimators, max depth 6) on two inputs —
//! the flattened 32×32 flowpic and the 3×10 early time series — trained
//! on 100-per-class splits of UCDAVIS19 `pretraining` and tested on
//! `script` and `human`. The paper's CNN reference row is printed
//! alongside for comparison.
//!
//! Expected shape (paper Sec. 4.1.2):
//! * `script`: flowpic a few points above the time series, both high;
//! * `human`: both inputs degraded, flowpic still ahead — the first
//!   symptom of the data shift;
//! * very shallow trees (average depth well under 3).

use flowpic::features::{early_time_series, flowpic_flat};
use flowpic::{FlowpicConfig, Normalization};
use gbdt::{GbdtClassifier, GbdtConfig};
use mlstats::MeanCi;
use serde::Serialize;
use tcbench::report::Table;
use tcbench_bench::{ucdavis_dataset, BenchOpts, SAMPLES_PER_CLASS};
use trafficgen::splits::per_class_folds;
use trafficgen::types::{Dataset, Partition};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Input {
    Flowpic,
    TimeSeries,
}

#[derive(Debug, Serialize)]
struct Row {
    input: String,
    script: Vec<f64>,
    human: Vec<f64>,
    avg_depth: Vec<f64>,
}

fn features(ds: &Dataset, indices: &[usize], input: Input) -> (Vec<Vec<f32>>, Vec<usize>) {
    let fpcfg = FlowpicConfig::mini();
    let x = indices
        .iter()
        .map(|&i| match input {
            Input::Flowpic => flowpic_flat(&ds.flows[i], &fpcfg, Normalization::Raw),
            Input::TimeSeries => early_time_series(&ds.flows[i], 10),
        })
        .collect();
    let y = indices
        .iter()
        .map(|&i| ds.flows[i].class as usize)
        .collect();
    (x, y)
}

fn accuracy(model: &GbdtClassifier, x: &[Vec<f32>], y: &[usize]) -> f64 {
    let preds = model.predict_batch(x);
    preds.iter().zip(y).filter(|(a, b)| a == b).count() as f64 / y.len().max(1) as f64
}

fn main() {
    let opts = BenchOpts::from_args();
    let ds = ucdavis_dataset(&opts);
    let (k, s) = opts.campaign();
    eprintln!("table3: {} splits per input", k * s);

    let script_idx = ds.partition_indices(Partition::Script);
    let human_idx = ds.partition_indices(Partition::Human);

    let mut rows = Vec::new();
    for input in [Input::Flowpic, Input::TimeSeries] {
        let name = match input {
            Input::Flowpic => "flowpic (32x32)",
            Input::TimeSeries => "time series (3x10)",
        };
        eprintln!("  training GBDT on {name}...");
        let (script_x, script_y) = features(&ds, &script_idx, input);
        let (human_x, human_y) = features(&ds, &human_idx, input);
        let mut script_accs = Vec::new();
        let mut human_accs = Vec::new();
        let mut depths = Vec::new();
        // GBDT training is deterministic, so run-to-run variation comes
        // from the data splits alone: k*s distinct splits.
        let folds = per_class_folds(
            &ds,
            Partition::Pretraining,
            SAMPLES_PER_CLASS,
            k * s,
            opts.seed,
        );
        for fold in &folds {
            let (train_x, train_y) = features(&ds, &fold.train, input);
            let model =
                GbdtClassifier::fit(&train_x, &train_y, ds.num_classes(), &GbdtConfig::default());
            script_accs.push(100.0 * accuracy(&model, &script_x, &script_y));
            human_accs.push(100.0 * accuracy(&model, &human_x, &human_y));
            depths.push(model.average_depth());
        }
        rows.push(Row {
            input: name.to_string(),
            script: script_accs,
            human: human_accs,
            avg_depth: depths,
        });
    }

    let mut table = Table::new(
        "Table 3 — baseline ML performance without augmentation (accuracy ±95% CI)",
        &[
            "Input (size)",
            "Model",
            "Origin",
            "script",
            "human",
            "avg tree depth",
        ],
    );
    table.push_row(vec![
        "flowpic (32x32)".into(),
        "CNN LeNet5".into(),
        "[17] (reference)".into(),
        "98.67".into(),
        "92.40".into(),
        "-".into(),
    ]);
    for row in &rows {
        let depth = row.avg_depth.iter().sum::<f64>() / row.avg_depth.len() as f64;
        table.push_row(vec![
            row.input.clone(),
            "GBDT (XGBoost-eq)".into(),
            "ours".into(),
            MeanCi::ci95(&row.script).to_string(),
            MeanCi::ci95(&row.human).to_string(),
            format!("{depth:.1}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "shape check: flowpic > time series on both partitions; human far below script\n\
         (paper: 96.80/73.65 flowpic vs 94.53/66.91 time series; tree depths 1.3/1.7)"
    );

    opts.write_result("table3_ml_baseline", &rows);
}
