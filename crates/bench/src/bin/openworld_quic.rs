//! **Open-world QUIC** — G0 (GBDT) vs G1 (CNN) behind the serving
//! pipeline's confidence-thresholded rejection lane.
//!
//! Both backends are trained on the `quic-known` subset (the first 10
//! classes) and then served over the full 14-class `quic` trace, where
//! classes 10..14 are open-world unknowns the models have never seen.
//! A first replay with rejection disabled supplies the winning-class
//! confidences; the sweep picks, per backend, the threshold that
//! maximizes unknown rejection while costing at most 2 accuracy points
//! on known flows. The chosen threshold is then re-run through the
//! *real* rejection lane and scored against ground truth — the JSON
//! mirror reports the re-run, not the offline estimate.
//!
//! Acceptance shape: the CNN lane rejects >= 80% of unknown flows
//! within the 2-point known-accuracy budget.

use std::sync::Arc;

use flowpic::{FlowpicConfig, Normalization};
use gbdt::{GbdtClassifier, GbdtConfig};
use serde::Serialize;
use serve::engine::{Classifier, CnnClassifier, EngineConfig, GbdtBackend};
use serve::registry::{ModelRegistry, ServedModel};
use serve::replay::{replay_dataset, ReplayConfig, ReplayReport};
use serve::tracker::TrackerConfig;
use tcbench::arch::supervised_net;
use tcbench::data::FlowpicDataset;
use tcbench::report::Table;
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use tcbench_bench::BenchOpts;
use trafficgen::quic::{QuicConfig, QuicSim};
use trafficgen::types::Dataset;

/// Known-accuracy budget for the threshold sweep, in points.
const MAX_COST_POINTS: f64 = 2.0;

#[derive(Debug, Serialize)]
struct Row {
    backend: String,
    reject_below: f32,
    baseline_known_accuracy: f64,
    known_accuracy: f64,
    known_accuracy_cost_points: f64,
    unknown_rejection_rate: f64,
    false_accept_rate: f64,
    // JSON-mirror-only context; the offline serde stub's derive does
    // not count as a read.
    #[allow(dead_code)]
    known_total: usize,
    #[allow(dead_code)]
    unknown_total: usize,
    #[allow(dead_code)]
    rejected: usize,
}

fn tracker_cfg(res: usize) -> TrackerConfig {
    TrackerConfig {
        flowpic: FlowpicConfig::with_resolution(res),
        norm: Normalization::LogMax,
        idle_timeout_s: 60.0,
        max_flows: 100_000,
        done_horizon_s: 120.0,
    }
}

fn replay_with(
    full: &Dataset,
    classifier: Arc<dyn Classifier>,
    res: usize,
    reject_below: f32,
) -> ReplayReport {
    let registry = Arc::new(ModelRegistry::new(classifier));
    let config = ReplayConfig {
        flow_gap_s: 0.05,
        rate: 1.0,
        tracker: tracker_cfg(res),
        engine: EngineConfig {
            max_batch: 32,
            max_wait_s: 0.3,
            reject_below,
            ..EngineConfig::default()
        },
        shards: 1,
        workers: 1,
    };
    replay_dataset(
        full,
        &registry,
        &config,
        Vec::new(),
        &mut tcbench::telemetry::Noop,
    )
    .expect("replay")
}

/// Offline sweep over a rejection-free replay: for every observed
/// confidence value as candidate threshold, what known accuracy and
/// unknown rejection would the half-open `conf < t` lane have produced?
/// Returns the within-budget threshold with the highest unknown
/// rejection (lowest threshold on ties).
fn pick_threshold(probe: &ReplayReport, full: &Dataset, n_known: usize) -> f32 {
    let truth: std::collections::HashMap<u64, usize> = full
        .flows
        .iter()
        .map(|f| (f.id, f.class as usize))
        .collect();
    // (known?, correct?, confidence) per classified flow.
    let joined: Vec<(bool, bool, f32)> = probe
        .predictions
        .iter()
        .filter_map(|p| {
            let t = *truth.get(&p.flow_id)?;
            let label = p.label()?;
            Some((t < n_known, label == t, p.confidence))
        })
        .collect();
    let known_total = joined.iter().filter(|(k, _, _)| *k).count().max(1);
    let unknown_total = joined.iter().filter(|(k, _, _)| !*k).count().max(1);
    let known_acc = |t: f32| {
        joined
            .iter()
            .filter(|(k, c, conf)| *k && *c && (t <= 0.0 || *conf >= t))
            .count() as f64
            / known_total as f64
    };
    let unknown_rej = |t: f32| {
        joined
            .iter()
            .filter(|(k, _, conf)| !*k && t > 0.0 && *conf < t)
            .count() as f64
            / unknown_total as f64
    };
    if std::env::var("OPENWORLD_DEBUG").is_ok() {
        let mut kc: Vec<f32> = joined.iter().filter(|(k, _, _)| *k).map(|j| j.2).collect();
        let mut uc: Vec<f32> = joined.iter().filter(|(k, _, _)| !*k).map(|j| j.2).collect();
        kc.sort_by(f32::total_cmp);
        uc.sort_by(f32::total_cmp);
        let pct = |v: &[f32], p: f64| v[((v.len() - 1) as f64 * p) as usize];
        for (name, v) in [("known", &kc), ("unknown", &uc)] {
            eprintln!(
                "  {name}: n={} p5={:.3} p25={:.3} p50={:.3} p75={:.3} p95={:.3}",
                v.len(),
                pct(v, 0.05),
                pct(v, 0.25),
                pct(v, 0.5),
                pct(v, 0.75),
                pct(v, 0.95)
            );
        }
    }
    let budget = known_acc(0.0) - MAX_COST_POINTS / 100.0;
    let mut candidates: Vec<f32> = joined.iter().map(|(_, _, c)| *c).collect();
    candidates.sort_by(f32::total_cmp);
    candidates.dedup();
    let mut best = (0.0_f32, 0.0_f64);
    for t in candidates {
        if !(0.0..=1.0).contains(&t) || known_acc(t) < budget {
            continue;
        }
        let rej = unknown_rej(t);
        if rej > best.1 {
            best = (t, rej);
        }
    }
    best.0
}

fn score_row(
    backend: &str,
    reject_below: f32,
    baseline_known_accuracy: f64,
    report: &ReplayReport,
    full: &Dataset,
    n_known: usize,
) -> Row {
    let score = report.score(full, n_known);
    Row {
        backend: backend.to_string(),
        reject_below,
        baseline_known_accuracy,
        known_accuracy: score.known_accuracy(),
        known_accuracy_cost_points: 100.0 * (baseline_known_accuracy - score.known_accuracy()),
        unknown_rejection_rate: score.unknown_rejection_rate().unwrap_or(0.0),
        false_accept_rate: score.false_accept_rate().unwrap_or(1.0),
        known_total: score.known_total,
        unknown_total: score.unknown_total,
        rejected: report.rejected(),
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let (quic, res) = if opts.paper {
        (QuicConfig::ci(), 32)
    } else {
        (
            QuicConfig {
                n_flows: 700,
                ..QuicConfig::tiny()
            },
            16,
        )
    };
    let sim = QuicSim::new(quic);
    let full = sim.generate(opts.seed);
    let known = sim.generate_known(opts.seed);
    let n_known = quic.known_classes;
    eprintln!(
        "openworld_quic: {} flows ({} known-class), {} known / {} total classes, res {res}",
        full.flows.len(),
        known.flows.len(),
        n_known,
        quic.n_classes,
    );

    // Both backends train on the same rasterization the serving tracker
    // produces, so train-time and serve-time inputs agree cell for cell.
    let fp_cfg = FlowpicConfig::with_resolution(res);
    let indices: Vec<usize> = (0..known.flows.len()).collect();
    let train_set = FlowpicDataset::from_flows(&known, &indices, &fp_cfg, Normalization::LogMax);

    // Rejection hinges on confidence *sharpness*, not just accuracy: an
    // undertrained softmax answers ~0.4 on knowns and unknowns alike and
    // no threshold can split them. Give the CNN the full supervised
    // budget even in quick mode — the workload is small enough.
    let max_epochs = opts.max_epochs().max(40);
    eprintln!("  training G1 CNN ({max_epochs} epochs max)...");
    let cnn_model = {
        let mut net = supervised_net(res, n_known, true, opts.seed);
        let (train, val) = train_set.clone().split_validation(0.2, opts.seed);
        let trainer = SupervisedTrainer::new(TrainConfig {
            max_epochs,
            ..TrainConfig::supervised(opts.seed)
        });
        let summary =
            trainer.train_observed(&mut net, &train, Some(&val), opts.observer().as_mut());
        eprintln!("  G1 trained: {} epochs", summary.epochs);
        ServedModel {
            arch: "supervised".into(),
            resolution: res,
            n_classes: n_known,
            dropout: true,
            class_names: known.class_names.clone(),
            weights: net.export_weights(),
        }
    };
    eprintln!("  training G0 GBDT...");
    let gbdt = GbdtClassifier::fit(
        &train_set.inputs,
        &train_set.labels,
        n_known,
        &GbdtConfig::default(),
    );

    let backends: Vec<(&str, Arc<dyn Classifier>)> = vec![
        (
            "G1 CNN",
            Arc::new(CnnClassifier::from_served(&cnn_model, 1).expect("serve model")),
        ),
        (
            "G0 GBDT",
            Arc::new(GbdtBackend::new(gbdt, known.class_names.clone(), res * res)),
        ),
    ];

    let mut rows = Vec::new();
    for (name, classifier) in backends {
        eprintln!("  replaying {name} (probe + thresholded)...");
        let probe = replay_with(&full, Arc::clone(&classifier), res, 0.0);
        let baseline = probe.score(&full, n_known).known_accuracy();
        let threshold = pick_threshold(&probe, &full, n_known);
        let report = replay_with(&full, classifier, res, threshold);
        rows.push(score_row(
            name, threshold, baseline, &report, &full, n_known,
        ));
    }

    let mut table = Table::new(
        "Open-world QUIC — confidence-thresholded rejection (2-point known-accuracy budget)",
        &[
            "Backend",
            "reject-below",
            "known acc (t=0)",
            "known acc",
            "cost (pts)",
            "unknown rejected",
            "false accepts",
        ],
    );
    for r in &rows {
        table.push_row(vec![
            r.backend.clone(),
            format!("{:.4}", r.reject_below),
            format!("{:.4}", r.baseline_known_accuracy),
            format!("{:.4}", r.known_accuracy),
            format!("{:.2}", r.known_accuracy_cost_points),
            format!("{:.4}", r.unknown_rejection_rate),
            format!("{:.4}", r.false_accept_rate),
        ]);
    }
    println!("{}", table.render());
    if std::env::var("OPENWORLD_DEBUG").is_ok() {
        for r in &rows {
            eprintln!("  {r:?}");
        }
    }
    let cnn = &rows[0];
    println!(
        "acceptance: G1 unknown rejection {:.1}% (target >= 80%) at {:.2} points \
         known-accuracy cost (budget {MAX_COST_POINTS:.0})",
        100.0 * cnn.unknown_rejection_rate,
        cnn.known_accuracy_cost_points,
    );

    opts.write_result("openworld_quic", &rows);
}
