//! **Table 6** — fine-tuning performance when SimCLR pre-trains with
//! different augmentation pairs (32×32, 10 fine-tuning samples,
//! projection 30, no dropout).
//!
//! Expected shape (paper Sec. 4.4.3): punctual differences between the
//! pairs, but all *qualitatively* equivalent — the paper's Change RTT +
//! Time shift pair is a good but not uniquely-best choice.

use augment::ViewPair;
use mlstats::MeanCi;
use serde::Serialize;
use tcbench::report::Table;
use tcbench_bench::campaign::run_simclr_experiment;
use tcbench_bench::{ucdavis_dataset, BenchOpts, SAMPLES_PER_CLASS};
use trafficgen::splits::per_class_folds;
use trafficgen::types::Partition;

#[derive(Debug, Serialize)]
struct PairCell {
    pair: String,
    script: Vec<f64>,
    human: Vec<f64>,
}

fn main() {
    let opts = BenchOpts::from_args();
    let ds = ucdavis_dataset(&opts);
    let (splits, simclr_seeds, ft_seeds) = if opts.paper { (5, 5, 5) } else { (2, 1, 1) };
    eprintln!(
        "table6: {splits} splits x {simclr_seeds} SimCLR seeds x {ft_seeds} ft seeds per pair"
    );

    let folds = per_class_folds(
        &ds,
        Partition::Pretraining,
        SAMPLES_PER_CLASS,
        splits,
        opts.seed,
    );
    let mut cells = Vec::new();
    for pair in ViewPair::table6_pairs() {
        eprintln!("  pair {}...", pair.label());
        let mut script = Vec::new();
        let mut human = Vec::new();
        for (ki, fold) in folds.iter().enumerate() {
            for cs in 0..simclr_seeds {
                for fs in 0..ft_seeds {
                    let out = run_simclr_experiment(
                        &ds,
                        &fold.train,
                        pair,
                        30,
                        false,
                        10,
                        opts.seed + (ki * 13 + cs) as u64,
                        opts.seed + (ki * 41 + fs) as u64 + 500,
                        &opts,
                    );
                    script.push(100.0 * out.script_acc);
                    human.push(100.0 * out.human_acc);
                }
            }
        }
        cells.push(PairCell {
            pair: pair.label(),
            script,
            human,
        });
    }

    let headers: Vec<String> = std::iter::once("Test side".to_string())
        .chain(cells.iter().map(|c| c.pair.clone()))
        .collect();
    let mut table = Table::new(
        "Table 6 — fine-tune accuracy per SimCLR augmentation pair (32x32, 10 samples)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for side in ["script", "human"] {
        let mut row = vec![format!("test on {side}")];
        for c in &cells {
            row.push(
                MeanCi::ci95(if side == "script" {
                    &c.script
                } else {
                    &c.human
                })
                .to_string(),
            );
        }
        table.push_row(row);
    }
    println!("{}", table.render());
    println!(
        "(*) Change RTT + Time shift is the Ref-Paper's pair; expected: all pairs\n\
         qualitatively equivalent (paper Table 6)"
    );

    opts.write_result("table6_aug_pairs", &cells);
}
