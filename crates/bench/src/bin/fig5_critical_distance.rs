//! **Fig. 5** — critical-distance plots of the augmentation rankings on
//! UCDAVIS19 (`script` and `human`), following the Demšar procedure the
//! paper uses (Sec. 4.3): per-run accuracies → ranks → mean ranks →
//! Nemenyi test at α = 0.05.
//!
//! Expected shape (paper Sec. 4.3.2): Change RTT and Time shift in the
//! best-performing group, but *not* statistically separable from several
//! other augmentations — on UCDAVIS19 alone the ranking is inconclusive,
//! which is exactly the paper's point.
//!
//! Reuses `table4_augmentations.json` when present (the paper joins the
//! 32×32 and 64×64 populations; we join whatever resolutions the saved
//! campaign contains — App. F justifies the pooling).

use augment::ALL_AUGMENTATIONS;
use mlstats::nemenyi::CriticalDistance;
use tcbench_bench::campaign::{load_cells, run_supervised_cell, CellResult};
use tcbench_bench::{ucdavis_dataset, BenchOpts};

fn main() {
    let opts = BenchOpts::from_args();
    let cells: Vec<CellResult> =
        match load_cells(&format!("{}/table4_augmentations.json", opts.out_dir)) {
            Some(cells) => {
                eprintln!("fig5: reusing table4 campaign results");
                cells
            }
            None => {
                eprintln!("fig5: no table4 results found; running the campaign (32x32)");
                let ds = ucdavis_dataset(&opts);
                ALL_AUGMENTATIONS
                    .into_iter()
                    .map(|aug| {
                        eprintln!("  running {}...", aug.name());
                        run_supervised_cell(&ds, aug, 32, true, &opts)
                    })
                    .collect()
            }
        };

    // Resolutions ≤ 64 are pooled (paper App. F: 32 and 64 are not
    // statistically different; 1500 is).
    let pooled: Vec<&CellResult> = cells.iter().filter(|c| c.resolution <= 64).collect();
    let names: Vec<&str> = ALL_AUGMENTATIONS.iter().map(|a| a.name()).collect();

    let mut results = Vec::new();
    for side in ["script", "human"] {
        // Blocks: one per (resolution, run index); treatments: the 7
        // augmentations.
        let n_runs = pooled
            .iter()
            .map(|c| c.runs.len())
            .min()
            .expect("at least one cell");
        let resolutions: Vec<usize> = {
            let mut r: Vec<usize> = pooled.iter().map(|c| c.resolution).collect();
            r.sort_unstable();
            r.dedup();
            r
        };
        let mut blocks: Vec<Vec<f64>> = Vec::new();
        for &res in &resolutions {
            for run in 0..n_runs {
                let block: Vec<f64> = names
                    .iter()
                    .map(|name| {
                        let cell = pooled
                            .iter()
                            .find(|c| c.augmentation == *name && c.resolution == res)
                            .unwrap_or_else(|| panic!("missing cell {name} @ {res}"));
                        cell.accuracies_pct(side)[run]
                    })
                    .collect();
                blocks.push(block);
            }
        }
        let cd = CriticalDistance::analyze(&names, &blocks, 0.05);
        println!("== Fig. 5 — critical distance plot, test on {side} ==");
        println!("{}", cd.ascii_plot());
        let rtt_rank = cd.mean_ranks[6];
        let shift_rank = cd.mean_ranks[5];
        println!(
            "paper selection check: Change RTT rank {rtt_rank:.2}, Time shift rank {shift_rank:.2} \
             (both expected in the best group)\n"
        );
        results.push((side.to_string(), cd));
    }

    opts.write_result("fig5_critical_distance", &results);
}
