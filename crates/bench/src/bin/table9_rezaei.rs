//! **Table 9 / Fig. 9–10 (App. D.3)** — reproduction of Rezaei & Liu's
//! semi-supervised pipeline on the simulated UCDAVIS19: regression
//! pre-training over subflows sampled with Fixed / Random / Incremental
//! sampling, then fine-tuning a 3-layer classifier with 10 labeled flows
//! per class, evaluated as macro-average accuracy on `script` and
//! `human`.
//!
//! Expected shape (paper Table 9): Incremental > Random > Fixed on
//! `script`; `human` several points below `script` for every method (the
//! same data shift seen through an independent pipeline).

use augment::subflow::ALL_SAMPLING_METHODS;
use mlstats::MeanCi;
use serde::Serialize;
use tcbench::regression::{
    evaluate_macro, fine_tune_classifier, pretrain_regression, FeatureDataset, RegressionConfig,
};
use tcbench::report::Table;
use tcbench::simclr::few_shot_subset;
use tcbench_bench::{ucdavis_dataset, BenchOpts};
use trafficgen::types::Partition;

#[derive(Debug, Serialize)]
struct MethodCell {
    method: String,
    script: Vec<f64>,
    human: Vec<f64>,
    per_class_human: Vec<Vec<f64>>,
}

fn main() {
    let opts = BenchOpts::from_args();
    let ds = ucdavis_dataset(&opts);
    let n_runs = if opts.paper { 15 } else { 3 };
    let samples_per_flow = if opts.paper { 50 } else { 8 };
    eprintln!("table9: {n_runs} runs per sampling method, {samples_per_flow} subflows/flow");

    let pre_idx = ds.partition_indices(Partition::Pretraining);
    let script_idx = ds.partition_indices(Partition::Script);
    let human_idx = ds.partition_indices(Partition::Human);
    let human_all = FeatureDataset::from_flows(&ds, &human_idx);

    let mut cells = Vec::new();
    for method in ALL_SAMPLING_METHODS {
        eprintln!("  sampling method {}...", method.name());
        let mut script_accs = Vec::new();
        let mut human_accs = Vec::new();
        let mut per_class = Vec::new();
        for run in 0..n_runs {
            let seed = opts.seed + run as u64 * 23;
            let config = RegressionConfig {
                samples_per_flow,
                max_epochs: if opts.paper { 30 } else { 12 },
                ..RegressionConfig::default_with_seed(seed)
            };
            let pre = pretrain_regression(&ds, &pre_idx, method, &config);
            // Fine-tune with 10 labeled script flows per class; evaluate
            // on the remaining script flows and on all of human.
            let shots = few_shot_subset(&ds, &script_idx, 10, seed ^ 0xF7);
            let rest: Vec<usize> = script_idx
                .iter()
                .copied()
                .filter(|i| !shots.contains(i))
                .collect();
            let labeled = FeatureDataset::from_flows(&ds, &shots);
            let clf = fine_tune_classifier(&pre, &labeled, seed);
            let (script_acc, _) = evaluate_macro(&clf, &FeatureDataset::from_flows(&ds, &rest));
            let (human_acc, human_conf) = evaluate_macro(&clf, &human_all);
            script_accs.push(100.0 * script_acc);
            human_accs.push(100.0 * human_acc);
            per_class.push(human_conf.per_class_recall());
        }
        cells.push(MethodCell {
            method: method.name().to_string(),
            script: script_accs,
            human: human_accs,
            per_class_human: per_class,
        });
    }

    let mut table = Table::new(
        "Table 9 — macro-average accuracy per sampling method (10 fine-tune samples)",
        &["finetune/test on", "Fixed", "Rand", "Incre"],
    );
    for side in ["script", "human"] {
        let mut row = vec![side.to_string()];
        for cell in &cells {
            let vals = if side == "script" {
                &cell.script
            } else {
                &cell.human
            };
            row.push(MeanCi::ci95(vals).to_string());
        }
        table.push_row(row);
    }
    println!("{}", table.render());

    // Fig. 10 — per-class accuracy on human for the best method.
    let incre = cells.iter().find(|c| c.method == "Incre").unwrap();
    println!("Fig. 10 — per-class human accuracy (Incremental sampling):");
    for (c, name) in trafficgen::ucdavis::CLASSES.iter().enumerate() {
        let mean: f64 = incre.per_class_human.iter().map(|r| r[c]).sum::<f64>()
            / incre.per_class_human.len() as f64;
        println!("  {name:<16} {:.1}", 100.0 * mean);
    }
    println!(
        "\nexpected: Incre > Rand > Fixed on script (paper: 96.22/94.63/87.11);\n\
         human ~5 pts below script (paper: 92.56 Incre)"
    );

    opts.write_result("table9_rezaei", &cells);
}
