//! **Extension ablation** — time-series augmentations on a packet-series
//! CNN.
//!
//! The paper's Sec. 2.3 leaves "extending the augmentations to packet
//! time-series" as future work. This bench runs it: a 1-D CNN over the
//! `(size, direction, inter-arrival)` series of the first 30 packets,
//! trained on 100-per-class UCDAVIS19 splits with each *time-series*
//! augmentation (the image policies have no series counterpart), tested
//! on `script` and `human`.
//!
//! Expected shape: the time-series input is competitive on `script`
//! (early packets carry the handshake signal, as the Table 3 GBDT
//! already showed) and degraded on `human`; the time-series
//! augmentations help the same way they do on flowpics — supporting the
//! paper's conjecture that the finding transfers to this input.

use augment::Augmentation;
use mlstats::MeanCi;
use serde::Serialize;
use tcbench::report::Table;
use tcbench::timeseries::{
    evaluate_timeseries, timeseries_net, train_timeseries, TsDataset, DEFAULT_SEQ_LEN,
};
use tcbench_bench::{ucdavis_dataset, BenchOpts, SAMPLES_PER_CLASS};
use trafficgen::splits::per_class_folds;
use trafficgen::types::Partition;

#[derive(Debug, Serialize)]
struct TsCell {
    augmentation: String,
    script: Vec<f64>,
    human: Vec<f64>,
}

fn main() {
    let opts = BenchOpts::from_args();
    let ds = ucdavis_dataset(&opts);
    let (k, s) = opts.campaign();
    eprintln!("ablation_timeseries_cnn: {k} splits x {s} seeds per augmentation");

    let seq_len = DEFAULT_SEQ_LEN;
    let folds = per_class_folds(&ds, Partition::Pretraining, SAMPLES_PER_CLASS, k, opts.seed);
    let script_idx = ds.partition_indices(Partition::Script);
    let human_idx = ds.partition_indices(Partition::Human);
    let script = TsDataset::from_flows(&ds, &script_idx, seq_len);
    let human = TsDataset::from_flows(&ds, &human_idx, seq_len);

    let augs = [
        Augmentation::NoAug,
        Augmentation::PacketLoss,
        Augmentation::TimeShift,
        Augmentation::ChangeRtt,
    ];
    let mut cells = Vec::new();
    for aug in augs {
        eprintln!("  {}...", aug.name());
        let mut s_accs = Vec::new();
        let mut h_accs = Vec::new();
        for (ki, fold) in folds.iter().enumerate() {
            for si in 0..s {
                let seed = opts.seed + (ki * 100 + si) as u64 + aug as u64;
                let train =
                    TsDataset::augmented(&ds, &fold.train, aug, opts.aug_copies(), seq_len, seed);
                let mut net = timeseries_net(seq_len, ds.num_classes(), seed);
                train_timeseries(
                    &mut net,
                    &train,
                    None,
                    if opts.paper { 40 } else { 12 },
                    seed,
                );
                s_accs.push(100.0 * evaluate_timeseries(&net, &script).0);
                h_accs.push(100.0 * evaluate_timeseries(&net, &human).0);
            }
        }
        cells.push(TsCell {
            augmentation: aug.name().to_string(),
            script: s_accs,
            human: h_accs,
        });
    }

    let mut table = Table::new(
        "Extension — time-series CNN under time-series augmentations (first 30 pkts)",
        &["Augmentation", "script", "human"],
    );
    for c in &cells {
        table.push_row(vec![
            c.augmentation.clone(),
            MeanCi::ci95(&c.script).to_string(),
            MeanCi::ci95(&c.human).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected: script high / human degraded (the same shift seen by this input);\n\
         augmentations >= no augmentation — the paper's future-work conjecture."
    );

    opts.write_result("ablation_timeseries_cnn", &cells);
}
