//! **Fig. 4** — average 32×32 flowpic per class across dataset
//! partitions: `pretraining`, one 100-per-class training split, `script`
//! and `human`, rendered as ASCII heatmaps and written as PGM images.
//!
//! Expected shape (paper Sec. 4.2.3): the first three rows visually
//! agree; `human` deviates for *Google search* (activity groups shifted
//! right — rectangle A — and the max-size line missing — rectangle B) and
//! *Google music* (periodic stripes gone — rectangle C). The
//! `shift_distance` metric quantifies what the paper shows visually.

use flowpic::render::{ascii_heatmap, average_flowpic, shift_distance, to_pgm};
use flowpic::FlowpicConfig;
use serde::Serialize;
use tcbench_bench::{ucdavis_dataset, BenchOpts, SAMPLES_PER_CLASS};
use trafficgen::splits::per_class_folds;
use trafficgen::types::Partition;
use trafficgen::ucdavis::CLASSES;

#[derive(Serialize)]
struct ShiftRow {
    class: String,
    script_vs_pretraining: f32,
    human_vs_pretraining: f32,
}

fn main() {
    let opts = BenchOpts::from_args();
    let ds = ucdavis_dataset(&opts);
    let fpcfg = FlowpicConfig::mini();
    let split = &per_class_folds(&ds, Partition::Pretraining, SAMPLES_PER_CLASS, 1, opts.seed)[0];

    let rows: Vec<(&str, Vec<usize>)> = vec![
        ("pretraining", ds.partition_indices(Partition::Pretraining)),
        ("train split (100/class)", split.train.clone()),
        ("script", ds.partition_indices(Partition::Script)),
        ("human", ds.partition_indices(Partition::Human)),
    ];

    println!("== Fig. 4 — average 32x32 flowpic per class across partitions ==");
    let mut averages = Vec::new();
    for (row_name, indices) in &rows {
        let mut row_pics = Vec::new();
        for (class, class_name) in CLASSES.iter().enumerate() {
            let flows: Vec<&trafficgen::types::Flow> = indices
                .iter()
                .map(|&i| &ds.flows[i])
                .filter(|f| f.class == class as u16)
                .collect();
            let avg = average_flowpic(flows, &fpcfg);
            let pgm_path = format!(
                "{}/fig4/{}_{}.pgm",
                opts.out_dir,
                row_name.replace(' ', "_"),
                class_name
            );
            if let Some(parent) = std::path::Path::new(&pgm_path).parent() {
                std::fs::create_dir_all(parent).expect("mkdir");
            }
            std::fs::write(&pgm_path, to_pgm(&avg)).expect("write pgm");
            row_pics.push(avg);
        }
        averages.push((row_name.to_string(), row_pics));
    }
    println!("[PGM images written under {}/fig4/]", opts.out_dir);

    // ASCII rendering of the diagnostic classes (search and music).
    for &class in &[3usize, 2] {
        println!("\n--- {} ---", CLASSES[class]);
        for (row_name, pics) in &averages {
            println!("[{row_name}]");
            println!("{}", ascii_heatmap(&pics[class]));
        }
    }

    // Quantify the shift: distance of each partition's average to the
    // pretraining average, per class.
    let pre = &averages[0].1;
    let script = &averages[2].1;
    let human = &averages[3].1;
    let mut shift_rows = Vec::new();
    println!("log-view L1 distance to the pretraining average:");
    println!("{:<16} {:>10} {:>10}", "class", "script", "human");
    for (c, name) in CLASSES.iter().enumerate() {
        let s = shift_distance(&pre[c], &script[c]);
        let h = shift_distance(&pre[c], &human[c]);
        println!("{name:<16} {s:>10.1} {h:>10.1}");
        shift_rows.push(ShiftRow {
            class: name.to_string(),
            script_vs_pretraining: s,
            human_vs_pretraining: h,
        });
    }
    println!(
        "\nshape check: human >> script for google-search and google-music\n\
         (the injected data shift, paper Fig. 4 rectangles A/B/C)"
    );

    opts.write_result("fig4_average_flowpic", &shift_rows);
}
