//! **Extension ablation** — robustness to path conditions, or: *why* the
//! time-series augmentations win.
//!
//! The paper selects Change RTT and Time shift because they imitate
//! path-induced variation. This bench closes the loop with a ground-truth
//! experiment: train on clean UCDAVIS19 flows (with vs without Change RTT
//! augmentation), then test on the same `script` flows replayed through
//! emulated network paths (`trafficgen::netem`): a long-haul path (added
//! latency + jitter + light loss) and a congested last mile (heavy
//! jitter, loss, token-bucket bottleneck).
//!
//! Expected shape: accuracy degrades as the path worsens; the
//! RTT-augmented model degrades *less* — the augmentation bought
//! genuine path invariance, which is the mechanism behind the paper's
//! augmentation ranking.

use augment::Augmentation;
use flowpic::{FlowpicConfig, Normalization};
use mlstats::MeanCi;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use tcbench::arch::supervised_net;
use tcbench::data::FlowpicDataset;
use tcbench::report::Table;
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use tcbench_bench::{ucdavis_dataset, BenchOpts, SAMPLES_PER_CLASS};
use trafficgen::netem::PathModel;
use trafficgen::splits::per_class_folds;
use trafficgen::types::{Dataset, Partition};

#[derive(Debug, Serialize)]
struct RobustnessRow {
    training: String,
    clean: Vec<f64>,
    long_haul: Vec<f64>,
    congested: Vec<f64>,
}

/// Replays the flows at `indices` through `path` and rasterizes them.
fn degraded_set(
    ds: &Dataset,
    indices: &[usize],
    path: &PathModel,
    fpcfg: &FlowpicConfig,
    seed: u64,
) -> FlowpicDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inputs = Vec::with_capacity(indices.len());
    let mut labels = Vec::with_capacity(indices.len());
    for &i in indices {
        let flow = &ds.flows[i];
        let pkts = path.apply(&flow.pkts, &mut rng);
        inputs.push(flowpic::Flowpic::build(&pkts, fpcfg).to_input(Normalization::LogMax));
        labels.push(flow.class as usize);
    }
    FlowpicDataset {
        res: fpcfg.resolution,
        channels: 1,
        inputs,
        labels,
        n_classes: ds.num_classes(),
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let ds = ucdavis_dataset(&opts);
    let (k, s) = opts.campaign();
    eprintln!("ablation_path_robustness: {k} splits x {s} seeds per training regime");

    let fpcfg = FlowpicConfig::mini();
    let norm = Normalization::LogMax;
    let folds = per_class_folds(&ds, Partition::Pretraining, SAMPLES_PER_CLASS, k, opts.seed);
    let script_idx = ds.partition_indices(Partition::Script);
    let clean = FlowpicDataset::from_flows(&ds, &script_idx, &fpcfg, norm);
    // The 32x32 flowpic bins are 469 ms x 46 B: only severe impairments
    // move pixels. "degraded" is heavy bufferbloat (sub-second queueing
    // swings + a tight bottleneck that smears bursts together), "broken"
    // adds 30 % loss on top.
    let degraded_path = PathModel {
        latency_s: 0.2,
        jitter_s: 0.8,
        loss: 0.05,
        rate_bps: Some(60_000.0),
        bucket_bytes: 40_000.0,
    };
    let broken_path = PathModel {
        loss: 0.30,
        jitter_s: 1.5,
        ..degraded_path
    };
    let long_haul = degraded_set(&ds, &script_idx, &degraded_path, &fpcfg, opts.seed);
    let congested = degraded_set(&ds, &script_idx, &broken_path, &fpcfg, opts.seed ^ 1);

    let mut rows = Vec::new();
    for aug in [Augmentation::NoAug, Augmentation::ChangeRtt] {
        let label = match aug {
            Augmentation::NoAug => "trained clean (no aug)",
            _ => "trained with Change RTT",
        };
        eprintln!("  {label}...");
        let mut accs: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (ki, fold) in folds.iter().enumerate() {
            for si in 0..s {
                let seed = opts.seed + (ki * 50 + si) as u64;
                let train = FlowpicDataset::augmented(
                    &ds,
                    &fold.train,
                    aug,
                    opts.aug_copies(),
                    &fpcfg,
                    norm,
                    seed,
                );
                let (train, val) = train.split_validation(0.2, seed);
                let trainer = SupervisedTrainer::new(TrainConfig {
                    max_epochs: opts.max_epochs(),
                    ..TrainConfig::supervised(seed)
                });
                let mut net = supervised_net(32, ds.num_classes(), true, seed);
                trainer.train(&mut net, &train, Some(&val));
                for (j, test) in [&clean, &long_haul, &congested].iter().enumerate() {
                    accs[j].push(100.0 * trainer.evaluate(&net, test).accuracy);
                }
            }
        }
        let [c, l, g] = accs;
        rows.push(RobustnessRow {
            training: label.to_string(),
            clean: c,
            long_haul: l,
            congested: g,
        });
    }

    let mut table = Table::new(
        "Extension — robustness to emulated path conditions (test on script)",
        &["Training", "clean path", "bufferbloat", "bufferbloat+loss"],
    );
    for row in &rows {
        table.push_row(vec![
            row.training.clone(),
            MeanCi::ci95(&row.clean).to_string(),
            MeanCi::ci95(&row.long_haul).to_string(),
            MeanCi::ci95(&row.congested).to_string(),
        ]);
    }
    println!("{}", table.render());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let drop_noaug = mean(&rows[0].clean) - mean(&rows[0].congested);
    let drop_rtt = mean(&rows[1].clean) - mean(&rows[1].congested);
    println!(
        "congested-path accuracy drop: {drop_noaug:.1} pts (no aug) vs {drop_rtt:.1} pts\n\
         (Change RTT) — the augmentation buys path invariance, the mechanism the\n\
         paper's augmentation ranking rewards."
    );

    opts.write_result("ablation_path_robustness", &rows);
}
