//! **Table 10 (App. F)** — Tukey post-hoc comparison of augmentation
//! performance across flowpic resolutions, deciding which populations may
//! be pooled for the ranking analysis.
//!
//! Expected shape (paper Table 10): 32×32 vs 64×64 *not* different
//! (p ≈ 0.57); both different from 1500×1500 (p < 1e-5).
//!
//! Reuses `table4_augmentations.json` when it contains multiple
//! resolutions; otherwise runs a reduced two-resolution campaign (32/64)
//! and notes that the 1500×1500 group needs `--paper`.

use augment::{Augmentation, ALL_AUGMENTATIONS};
use mlstats::tukey::TukeyHsd;
use tcbench_bench::campaign::{load_cells, run_supervised_cell, CellResult};
use tcbench_bench::{ucdavis_dataset, BenchOpts};

fn main() {
    let opts = BenchOpts::from_args();
    let cells: Vec<CellResult> = {
        let loaded =
            load_cells(&format!("{}/table4_augmentations.json", opts.out_dir)).filter(|cells| {
                let mut res: Vec<usize> = cells.iter().map(|c| c.resolution).collect();
                res.sort_unstable();
                res.dedup();
                res.len() >= 2
            });
        match loaded {
            Some(cells) => {
                eprintln!("table10: reusing multi-resolution table4 results");
                cells
            }
            None => {
                eprintln!("table10: running a reduced 32/64 campaign (1500x1500 needs --paper)");
                let ds = ucdavis_dataset(&opts);
                let augs = if opts.paper {
                    ALL_AUGMENTATIONS.to_vec()
                } else {
                    vec![
                        Augmentation::NoAug,
                        Augmentation::ChangeRtt,
                        Augmentation::TimeShift,
                    ]
                };
                let mut resolutions = vec![32usize, 64];
                if opts.paper {
                    resolutions.push(1500);
                }
                let mut cells = Vec::new();
                for &res in &resolutions {
                    for &aug in &augs {
                        eprintln!("  {} @ {res}x{res}...", aug.name());
                        cells.push(run_supervised_cell(&ds, aug, res, true, &opts));
                    }
                }
                cells
            }
        }
    };

    let mut resolutions: Vec<usize> = cells.iter().map(|c| c.resolution).collect();
    resolutions.sort_unstable();
    resolutions.dedup();

    // Groups: all per-run accuracies (all augmentations, all test sides as
    // in the paper's pooled comparison) of one resolution.
    let names: Vec<String> = resolutions.iter().map(|r| format!("{r}x{r}")).collect();
    let groups: Vec<Vec<f64>> = resolutions
        .iter()
        .map(|&res| {
            cells
                .iter()
                .filter(|c| c.resolution == res)
                .flat_map(|c| {
                    let mut v = c.accuracies_pct("script");
                    v.extend(c.accuracies_pct("human"));
                    v.extend(c.accuracies_pct("leftover"));
                    v
                })
                .collect()
        })
        .collect();

    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let tukey = TukeyHsd::analyze(&name_refs, &groups, 0.05);
    println!("== Table 10 — Tukey post-hoc across flowpic sizes (alpha = 0.05) ==");
    println!("{}", tukey.table());
    println!(
        "paper reference: 32 vs 64 p=0.57 (No); 32 vs 1500 p=1.9e-6 (Yes);\n\
         64 vs 1500 p=1.0e-8 (Yes). The 1500 group appears only with --paper."
    );

    opts.write_result("table10_tukey", &tukey);
}
