//! **Fig. 6 + Fig. 7** — critical-distance plot and per-dataset average
//! ranks of the augmentations pooled across all four datasets (UCDAVIS19
//! + the three replication datasets).
//!
//! Expected shape (paper Sec. 4.5.2 / Fig. 6–7): with the extra datasets
//! in the pool, Change RTT and Time shift become *significantly better*
//! than the remaining augmentations, yet stay statistically
//! indistinguishable from each other — the evidence that finally
//! validates the Ref-Paper's selection.
//!
//! Reuses `table8_replication.json` and `table4_augmentations.json` when
//! present; otherwise runs a reduced replication campaign.

use augment::ALL_AUGMENTATIONS;
use mlstats::nemenyi::CriticalDistance;
use mlstats::ranking::average_ranks;
use serde::Deserialize;
use tcbench::report::Table;
use tcbench_bench::campaign::load_cells;
use tcbench_bench::BenchOpts;

#[derive(Debug, Deserialize)]
struct F1Cell {
    dataset: String,
    augmentation: String,
    f1: Vec<f64>,
}

fn load_f1_cells(path: &str) -> Option<Vec<F1Cell>> {
    serde_json::from_str(&std::fs::read_to_string(path).ok()?).ok()
}

fn main() {
    let opts = BenchOpts::from_args();
    let names: Vec<&str> = ALL_AUGMENTATIONS.iter().map(|a| a.name()).collect();

    // Blocks: one per (dataset, run). Start from the replication
    // datasets' runs (Table 8 JSON), add UCDAVIS19 runs (Table 4 JSON)
    // when available.
    let mut blocks: Vec<Vec<f64>> = Vec::new();
    let mut per_dataset: Vec<(String, Vec<Vec<f64>>)> = Vec::new();

    let table8_path = format!("{}/table8_replication.json", opts.out_dir);
    let f1_cells = load_f1_cells(&table8_path).unwrap_or_else(|| {
        eprintln!("fig6: {table8_path} not found — run table8_replication first;");
        eprintln!("fig6: falling back to an inline reduced replication campaign");
        // Minimal inline fallback: re-run table8 with this process.
        let status = std::process::Command::new(std::env::current_exe().unwrap().with_file_name(
            if cfg!(windows) {
                "table8_replication.exe"
            } else {
                "table8_replication"
            },
        ))
        .args(["--out", &opts.out_dir])
        .status();
        match status {
            Ok(s) if s.success() => load_f1_cells(&table8_path).expect("table8 json after rerun"),
            _ => panic!("could not obtain table8 results"),
        }
    });

    let mut datasets: Vec<String> = f1_cells.iter().map(|c| c.dataset.clone()).collect();
    datasets.dedup();
    for ds in &datasets {
        let mut ds_blocks = Vec::new();
        let n_runs = f1_cells
            .iter()
            .filter(|c| &c.dataset == ds)
            .map(|c| c.f1.len())
            .min()
            .unwrap();
        for run in 0..n_runs {
            let block: Vec<f64> = names
                .iter()
                .map(|n| {
                    f1_cells
                        .iter()
                        .find(|c| &c.dataset == ds && c.augmentation == *n)
                        .unwrap()
                        .f1[run]
                })
                .collect();
            blocks.push(block.clone());
            ds_blocks.push(block);
        }
        per_dataset.push((ds.clone(), ds_blocks));
    }

    if let Some(cells) = load_cells(&format!("{}/table4_augmentations.json", opts.out_dir)) {
        eprintln!("fig6: including UCDAVIS19 runs from table4 results");
        let cells32: Vec<_> = cells.iter().filter(|c| c.resolution == 32).collect();
        if !cells32.is_empty() {
            let n_runs = cells32.iter().map(|c| c.runs.len()).min().unwrap();
            let mut ds_blocks = Vec::new();
            for run in 0..n_runs {
                let block: Vec<f64> = names
                    .iter()
                    .map(|n| {
                        cells32
                            .iter()
                            .find(|c| c.augmentation == *n)
                            .unwrap()
                            .accuracies_pct("script")[run]
                    })
                    .collect();
                blocks.push(block.clone());
                ds_blocks.push(block);
            }
            per_dataset.push(("UCDAVIS19 (script)".into(), ds_blocks));
        }
    }

    // Fig. 6: pooled critical-distance analysis.
    let cd = CriticalDistance::analyze(&names, &blocks, 0.05);
    println!(
        "== Fig. 6 — critical distance across all datasets ({} blocks) ==",
        blocks.len()
    );
    println!("{}", cd.ascii_plot());

    // Fig. 7: average rank per augmentation and dataset.
    let mut table = Table::new(
        "Fig. 7 — average rank per augmentation and dataset (1 = best)",
        &std::iter::once("Augmentation".to_string())
            .chain(per_dataset.iter().map(|(n, _)| n.clone()))
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    );
    let per_ds_ranks: Vec<Vec<f64>> = per_dataset.iter().map(|(_, b)| average_ranks(b)).collect();
    for (ai, aug) in names.iter().enumerate() {
        let mut row = vec![aug.to_string()];
        for ranks in &per_ds_ranks {
            row.push(format!("{:.2}", ranks[ai]));
        }
        table.push_row(row);
    }
    println!("{}", table.render());
    println!(
        "expected: Change RTT and Time shift with the best (lowest) pooled ranks,\n\
         significantly separated from the image augmentations but not from each other"
    );

    opts.write_result(
        "fig6_cd_all_datasets",
        &(cd, per_dataset.iter().map(|(n, _)| n).collect::<Vec<_>>()),
    );
}
