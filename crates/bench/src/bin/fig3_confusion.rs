//! **Fig. 3** — average per-class confusion matrices (32×32, `script` and
//! `human`), summed across all runs of the Table 4 campaign and
//! row-normalized.
//!
//! Expected shape (paper Sec. 4.2.3): `script` essentially diagonal;
//! `human` with visible off-diagonal mass, the strongest clash between
//! *Google doc* and *Google search* — the classes hit by the injected
//! data shift.
//!
//! If `bench_results/table4_augmentations.json` exists (written by the
//! `table4_augmentations` bench with the same seed), its runs are reused;
//! otherwise a reduced campaign is run here.

use augment::Augmentation;
use mlstats::ConfusionMatrix;
use tcbench_bench::campaign::{load_cells, run_supervised_cell};
use tcbench_bench::{ucdavis_dataset, BenchOpts};
use trafficgen::ucdavis::CLASSES;

fn main() {
    let opts = BenchOpts::from_args();
    let cells = match load_cells(&format!("{}/table4_augmentations.json", opts.out_dir)) {
        Some(cells) => {
            eprintln!("fig3: reusing table4 campaign results");
            cells
        }
        None => {
            eprintln!("fig3: no table4 results found; running a reduced campaign");
            let ds = ucdavis_dataset(&opts);
            [Augmentation::NoAug, Augmentation::ChangeRtt]
                .into_iter()
                .map(|aug| run_supervised_cell(&ds, aug, 32, true, &opts))
                .collect()
        }
    };

    let mut script_sum = ConfusionMatrix::new(CLASSES.len());
    let mut human_sum = ConfusionMatrix::new(CLASSES.len());
    let mut n_runs = 0;
    for cell in cells.iter().filter(|c| c.resolution == 32) {
        for run in &cell.runs {
            script_sum.merge(&run.script_confusion);
            human_sum.merge(&run.human_confusion);
            n_runs += 1;
        }
    }
    assert!(n_runs > 0, "no 32x32 runs available");

    println!("== Fig. 3 — average confusion matrices, 32x32, {n_runs} runs ==\n");
    println!("test on script (row-normalized):");
    println!("{}", script_sum.ascii(&CLASSES));
    println!("test on human (row-normalized):");
    println!("{}", human_sum.ascii(&CLASSES));

    // The paper's headline observation, quantified: the doc/search clash.
    let human_norm = human_sum.row_normalized();
    let script_norm = script_sum.row_normalized();
    let doc = 0;
    let search = 3;
    println!(
        "doc<->search confusion, human: {:.2} / {:.2} (script: {:.2} / {:.2})",
        human_norm[doc][search],
        human_norm[search][doc],
        script_norm[doc][search],
        script_norm[search][doc],
    );
    println!(
        "mean diagonal, script: {:.3}  human: {:.3} (paper: human visibly lower)",
        (0..CLASSES.len()).map(|i| script_norm[i][i]).sum::<f64>() / CLASSES.len() as f64,
        (0..CLASSES.len()).map(|i| human_norm[i][i]).sum::<f64>() / CLASSES.len() as f64,
    );

    opts.write_result("fig3_confusion", &(script_sum, human_sum));
}
