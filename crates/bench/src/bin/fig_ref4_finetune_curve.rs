//! **Ref-Paper Fig. 4** — fine-tuning sample-count sensitivity.
//!
//! The Ref-Paper's Figure 4 (quoted by the replication's Sec. 4.4.2)
//! sweeps the number of labeled samples used for SimCLR fine-tuning:
//! "Our method achieves 93.4% accuracy with only 3 samples, and 94.5%
//! with 10 samples" on `script`, and ≈80 % on `human` at 10 samples. The
//! replication reruns only the 10-sample point (its Table 5); this bench
//! restores the full curve.
//!
//! Expected shape: steep gains from 1 → 3 samples, a plateau by ~10
//! (the paper's reason for picking 10), `human` below `script` at every
//! point.

use augment::ViewPair;
use flowpic::{FlowpicConfig, Normalization};
use mlstats::MeanCi;
use serde::Serialize;
use tcbench::data::FlowpicDataset;
use tcbench::report::Table;
use tcbench::simclr::{few_shot_subset, fine_tune, pretrain, SimClrConfig};
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use tcbench_bench::{ucdavis_dataset, BenchOpts, SAMPLES_PER_CLASS};
use trafficgen::splits::per_class_folds;
use trafficgen::types::Partition;

#[derive(Debug, Serialize)]
struct CurvePoint {
    shots: usize,
    script: Vec<f64>,
    human: Vec<f64>,
}

fn main() {
    let opts = BenchOpts::from_args();
    let ds = ucdavis_dataset(&opts);
    let (splits, ft_seeds) = if opts.paper { (5, 5) } else { (2, 2) };
    let shot_counts = [1usize, 3, 5, 10, 20];
    eprintln!(
        "fig_ref4: {splits} splits x {ft_seeds} fine-tune seeds x {} shot counts",
        shot_counts.len()
    );

    let fpcfg = FlowpicConfig::mini();
    let norm = Normalization::LogMax;
    let folds = per_class_folds(
        &ds,
        Partition::Pretraining,
        SAMPLES_PER_CLASS,
        splits,
        opts.seed,
    );
    let script_idx = ds.partition_indices(Partition::Script);
    let human_idx = ds.partition_indices(Partition::Human);
    let script = FlowpicDataset::from_flows(&ds, &script_idx, &fpcfg, norm);
    let human = FlowpicDataset::from_flows(&ds, &human_idx, &fpcfg, norm);
    let trainer = SupervisedTrainer::new(TrainConfig::supervised(0));

    // One SimCLR pre-training per split, reused across the whole curve —
    // only the fine-tuning budget varies.
    let mut curve: Vec<CurvePoint> = shot_counts
        .iter()
        .map(|&shots| CurvePoint {
            shots,
            script: vec![],
            human: vec![],
        })
        .collect();
    for (ki, fold) in folds.iter().enumerate() {
        eprintln!("  split {}: pre-training...", ki + 1);
        let config = SimClrConfig {
            max_epochs: if opts.paper { 30 } else { 8 },
            ..SimClrConfig::paper(opts.seed + ki as u64)
        };
        let (pre, _) = pretrain(&ds, &fold.train, ViewPair::paper(), &fpcfg, norm, &config);
        for (pi, &shots) in shot_counts.iter().enumerate() {
            for fs in 0..ft_seeds {
                let seed = opts.seed + (ki * 1000 + pi * 10 + fs) as u64;
                let labeled_idx = few_shot_subset(&ds, &fold.train, shots, seed);
                let labeled = FlowpicDataset::from_flows(&ds, &labeled_idx, &fpcfg, norm);
                let tuned = fine_tune(&pre, &labeled, seed, config.batch_workers);
                curve[pi]
                    .script
                    .push(100.0 * trainer.evaluate(&tuned, &script).accuracy);
                curve[pi]
                    .human
                    .push(100.0 * trainer.evaluate(&tuned, &human).accuracy);
            }
        }
    }

    let mut table = Table::new(
        "Ref-Paper Fig. 4 — fine-tune accuracy vs labeled samples per class",
        &["samples/class", "script", "human"],
    );
    for point in &curve {
        table.push_row(vec![
            point.shots.to_string(),
            MeanCi::ci95(&point.script).to_string(),
            MeanCi::ci95(&point.human).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper reference (script): 93.4 @ 3 samples, 94.5 @ 10 samples — a steep\n\
         rise then plateau; human lower throughout (~80 @ 10 in the Ref-Paper's\n\
         figure, which the replication could not reproduce quantitatively)."
    );

    opts.write_result("fig_ref4_finetune_curve", &curve);
}
