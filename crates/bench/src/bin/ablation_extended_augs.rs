//! **Extension ablation** — three augmentations beyond the paper's six.
//!
//! The paper's Sec. 2.3 calls a "broader and more systematic comparison
//! of data augmentation techniques" a community-wide interest. This bench
//! contributes three more domain-knowledge transformations — IAT jitter
//! (per-gap queueing noise), Duplication (retransmissions) and Size
//! padding (TLS record padding) — and benchmarks them against the paper's
//! policies under the exact Table 4 protocol, plus a pooled
//! critical-distance analysis over all ten.
//!
//! Expected shape: the new time-series transformations land in the same
//! competitive band as Change RTT / Time shift (they imitate equally
//! realistic network variation); padding is the riskiest (it moves mass
//! across size-bin boundaries, the flowpic's y-axis).

use augment::{ALL_AUGMENTATIONS, EXTENDED_AUGMENTATIONS};
use mlstats::nemenyi::CriticalDistance;
use mlstats::MeanCi;
use tcbench::report::Table;
use tcbench_bench::campaign::{run_supervised_cell, CellResult};
use tcbench_bench::{ucdavis_dataset, BenchOpts};

fn main() {
    let opts = BenchOpts::from_args();
    let ds = ucdavis_dataset(&opts);
    let (k, s) = opts.campaign();
    eprintln!("ablation_extended_augs: {k} splits x {s} seeds x 10 augmentations");

    let augs: Vec<augment::Augmentation> = ALL_AUGMENTATIONS
        .iter()
        .chain(EXTENDED_AUGMENTATIONS.iter())
        .copied()
        .collect();
    let mut cells: Vec<CellResult> = Vec::new();
    for &aug in &augs {
        eprintln!("  {}...", aug.name());
        cells.push(run_supervised_cell(&ds, aug, 32, true, &opts));
    }

    let mut table = Table::new(
        "Extension — paper's augmentations + 3 new ones (32x32, Table 4 protocol)",
        &["Augmentation", "script", "human", "leftover"],
    );
    for cell in &cells {
        table.push_row(vec![
            cell.augmentation.clone(),
            MeanCi::ci95(&cell.accuracies_pct("script")).to_string(),
            MeanCi::ci95(&cell.accuracies_pct("human")).to_string(),
            MeanCi::ci95(&cell.accuracies_pct("leftover")).to_string(),
        ]);
    }
    println!("{}", table.render());

    // Pooled rank analysis over all ten policies, human side (where the
    // differences live).
    let names: Vec<&str> = augs.iter().map(|a| a.name()).collect();
    let n_runs = cells.iter().map(|c| c.runs.len()).min().unwrap();
    let blocks: Vec<Vec<f64>> = (0..n_runs)
        .map(|run| {
            cells
                .iter()
                .map(|c| c.accuracies_pct("human")[run])
                .collect()
        })
        .collect();
    let cd = CriticalDistance::analyze(&names, &blocks, 0.05);
    println!("critical-distance analysis (human):");
    println!("{}", cd.ascii_plot());
    println!(
        "expected: the new time-series policies rank alongside Change RTT / Time\n\
         shift; none should fall behind 'No augmentation'."
    );

    opts.write_result("ablation_extended_augs", &cells);
}
