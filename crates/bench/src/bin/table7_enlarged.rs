//! **Table 7** — accuracy when enlarging the training set to the whole
//! `pretraining` partition (32×32, no dropout): supervised training with
//! each augmentation, plus SimCLR + fine-tuning.
//!
//! Expected shape (paper Sec. 4.4.3): everything improves relative to the
//! 100-per-class Tables 4/5; the contrastive pipeline gains more on
//! `human` than on `script` — "the latent space created via contrastive
//! learning is better at mitigating the data shift".

use augment::{Augmentation, ViewPair, ALL_AUGMENTATIONS};
use flowpic::{FlowpicConfig, Normalization};
use mlstats::MeanCi;
use serde::Serialize;
use tcbench::arch::supervised_net;
use tcbench::data::FlowpicDataset;
use tcbench::report::Table;
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use tcbench_bench::campaign::run_simclr_experiment;
use tcbench_bench::{ucdavis_dataset, BenchOpts};
use trafficgen::splits::partition_two_way;
use trafficgen::types::Partition;

#[derive(Debug, Serialize)]
struct Row {
    setting: String,
    script: Vec<f64>,
    human: Vec<f64>,
}

fn main() {
    let opts = BenchOpts::from_args();
    let ds = ucdavis_dataset(&opts);
    // Paper: 20 experiments per row (20 seeds over 5 random 80/20 splits);
    // quick: 2. The enlarged training set is big, so quick mode also drops
    // the augmented copies to 1.
    let n_runs = if opts.paper { 20 } else { 2 };
    let copies = if opts.paper { opts.aug_copies() } else { 1 };
    eprintln!("table7: {n_runs} runs per row, {copies} aug copies");

    let fpcfg = FlowpicConfig::mini();
    let norm = Normalization::LogMax;
    let script_idx = ds.partition_indices(Partition::Script);
    let human_idx = ds.partition_indices(Partition::Human);
    let script = FlowpicDataset::from_flows(&ds, &script_idx, &fpcfg, norm);
    let human = FlowpicDataset::from_flows(&ds, &human_idx, &fpcfg, norm);

    let mut rows: Vec<Row> = Vec::new();
    for aug in ALL_AUGMENTATIONS {
        eprintln!("  supervised, {}...", aug.name());
        let mut s_accs = Vec::new();
        let mut h_accs = Vec::new();
        for run in 0..n_runs {
            let seed = opts.seed + run as u64 * 7 + aug as u64;
            let (train_idx, val_idx) = partition_two_way(&ds, Partition::Pretraining, 0.8, seed);
            let train = FlowpicDataset::augmented(&ds, &train_idx, aug, copies, &fpcfg, norm, seed);
            let val = FlowpicDataset::from_flows(&ds, &val_idx, &fpcfg, norm);
            let trainer = SupervisedTrainer::new(TrainConfig {
                max_epochs: opts.max_epochs(),
                ..TrainConfig::supervised(seed)
            });
            // Table 7 is the w/o-dropout setting.
            let mut net = supervised_net(32, ds.num_classes(), false, seed);
            trainer.train(&mut net, &train, Some(&val));
            s_accs.push(100.0 * trainer.evaluate(&net, &script).accuracy);
            h_accs.push(100.0 * trainer.evaluate(&net, &human).accuracy);
        }
        rows.push(Row {
            setting: format!("Supervised / {}", aug.name()),
            script: s_accs,
            human: h_accs,
        });
    }

    eprintln!("  SimCLR + fine-tuning...");
    let pool = ds.partition_indices(Partition::Pretraining);
    let mut s_accs = Vec::new();
    let mut h_accs = Vec::new();
    for run in 0..n_runs {
        let out = run_simclr_experiment(
            &ds,
            &pool,
            ViewPair::paper(),
            30,
            false,
            10,
            opts.seed + run as u64 * 11,
            opts.seed + run as u64 * 13 + 99,
            &opts,
        );
        s_accs.push(100.0 * out.script_acc);
        h_accs.push(100.0 * out.human_acc);
    }
    rows.push(Row {
        setting: "SimCLR + fine-tuning".into(),
        script: s_accs,
        human: h_accs,
    });

    let mut table = Table::new(
        "Table 7 — 32x32 flowpic, enlarged training set (w/o dropout)",
        &["Setting", "script", "human"],
    );
    for row in &rows {
        table.push_row(vec![
            row.setting.clone(),
            MeanCi::ci95(&row.script).to_string(),
            MeanCi::ci95(&row.human).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected: supervised script ~98, human ~73; SimCLR script lower (~94)\n\
         but human HIGHER than the 100-sample Table 5 (paper: 80.45 vs ~74)"
    );

    opts.write_result("table7_enlarged", &rows);
}

// Silence the unused-variant lint for augmentations that appear only via
// the ALL_AUGMENTATIONS sweep.
#[allow(dead_code)]
fn _keep(_: Augmentation) {}
