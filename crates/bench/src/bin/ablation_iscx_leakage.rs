//! **Extension ablation** — the ISCX window-slicing leakage.
//!
//! The replication discards the Ref-Paper's ISCX-VPN/Tor datasets
//! (Sec. 3.4): they hold only tens of viable flows, so reaching 100
//! training samples means slicing "multiple 15s windows from the same
//! flow", which the replication calls "artificious" and links to the
//! data-bias fallacies of its ref. \[20\]. This bench quantifies the
//! hazard on the ISCX-shaped simulation:
//!
//! * **window-level split** (the artifice): slice first, then split the
//!   windows randomly — windows of the *same capture session* land on
//!   both sides, so the model can match sessions instead of classes;
//! * **flow-level split** (honest): split the flows first, then slice —
//!   no session crosses the boundary.
//!
//! Expected shape: window-level accuracy far above flow-level accuracy.
//! The gap *is* the leakage — the inflation a benchmark built this way
//! would report.

use flowpic::{FlowpicConfig, Normalization};
use mlstats::MeanCi;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;
use tcbench::arch::supervised_net;
use tcbench::data::FlowpicDataset;
use tcbench::report::Table;
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use tcbench_bench::BenchOpts;
use trafficgen::iscx::{slice_dataset, IscxConfig, IscxSim};

#[derive(Debug, Serialize)]
struct ProtocolCell {
    protocol: String,
    accuracy: Vec<f64>,
}

fn main() {
    let opts = BenchOpts::from_args();
    let n_runs = if opts.paper { 10 } else { 3 };
    let cfg = IscxConfig::default_config();
    eprintln!(
        "ablation_iscx_leakage: {} flows/class, {n_runs} runs per protocol",
        cfg.flows_per_class
    );

    let ds = IscxSim::new(cfg).generate(opts.seed);
    let (windows, parents) = slice_dataset(&ds, 15.0, 10);
    eprintln!(
        "  sliced {} flows into {} windows (the 'multiply the samples' artifice)",
        ds.flows.len(),
        windows.flows.len()
    );
    let fpcfg = FlowpicConfig::mini();
    let norm = Normalization::LogMax;
    let all = FlowpicDataset::from_flows(
        &windows,
        &(0..windows.flows.len()).collect::<Vec<_>>(),
        &fpcfg,
        norm,
    );

    let mut cells = Vec::new();
    for protocol in ["window-level (leaky)", "flow-level (honest)"] {
        eprintln!("  {protocol}...");
        let mut accs = Vec::new();
        for run in 0..n_runs {
            let seed = opts.seed + run as u64 * 31;
            let mut rng = StdRng::seed_from_u64(seed);
            let n = windows.flows.len();
            // Build the train/test index split under the protocol.
            let (train_idx, test_idx): (Vec<usize>, Vec<usize>) = if protocol.starts_with("window")
            {
                let mut idx: Vec<usize> = (0..n).collect();
                idx.shuffle(&mut rng);
                let cut = (n as f64 * 0.8) as usize;
                (idx[..cut].to_vec(), idx[cut..].to_vec())
            } else {
                // Split PARENT FLOWS 80/20, windows follow their parent.
                let mut flow_ids: Vec<u64> = ds.flows.iter().map(|f| f.id).collect();
                flow_ids.shuffle(&mut rng);
                let cut = (flow_ids.len() as f64 * 0.8) as usize;
                let train_flows: std::collections::HashSet<u64> =
                    flow_ids[..cut].iter().copied().collect();
                (0..n).partition(|&i| train_flows.contains(&parents[i]))
            };
            let train = FlowpicDataset {
                res: all.res,
                channels: 1,
                inputs: train_idx.iter().map(|&i| all.inputs[i].clone()).collect(),
                labels: train_idx.iter().map(|&i| all.labels[i]).collect(),
                n_classes: all.n_classes,
            };
            let test = FlowpicDataset {
                res: all.res,
                channels: 1,
                inputs: test_idx.iter().map(|&i| all.inputs[i].clone()).collect(),
                labels: test_idx.iter().map(|&i| all.labels[i]).collect(),
                n_classes: all.n_classes,
            };
            let (train, val) = train.split_validation(0.2, seed);
            let trainer = SupervisedTrainer::new(TrainConfig {
                max_epochs: if opts.paper { 30 } else { 10 },
                ..TrainConfig::supervised(seed)
            });
            let mut net = supervised_net(32, windows.num_classes(), true, seed);
            trainer.train(&mut net, &train, Some(&val));
            accs.push(100.0 * trainer.evaluate(&net, &test).accuracy);
        }
        cells.push(ProtocolCell {
            protocol: protocol.to_string(),
            accuracy: accs,
        });
    }

    let mut table = Table::new(
        "Extension — ISCX window-slicing leakage (10 classes, tens of flows each)",
        &["Evaluation protocol", "accuracy"],
    );
    for c in &cells {
        table.push_row(vec![
            c.protocol.clone(),
            MeanCi::ci95(&c.accuracy).to_string(),
        ]);
    }
    println!("{}", table.render());
    let leaky = MeanCi::ci95(&cells[0].accuracy).mean;
    let honest = MeanCi::ci95(&cells[1].accuracy).mean;
    println!(
        "leakage inflation: {:+.1} pts — the windows of one capture session are\n\
         near-duplicates, so the leaky protocol rewards session matching. This is\n\
         the quantitative form of the replication's reason for discarding ISCX\n\
         (its Sec. 3.4 and ref. [20]).",
        leaky - honest
    );

    opts.write_result("ablation_iscx_leakage", &cells);
}
