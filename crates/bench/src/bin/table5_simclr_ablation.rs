//! **Table 5 (G2)** — impact of dropout and the SimCLR projection-layer
//! dimension on fine-tuning performance (32×32, 10 labeled samples per
//! class for fine-tuning).
//!
//! Expected shape (paper Sec. 4.4.2):
//! * `script` close to (a few points below) supervised training;
//! * `human` markedly lower;
//! * removing dropout helps on `human`, makes no real difference on
//!   `script`;
//! * growing the projection layer from 30 to 84 gains nothing.

use augment::ViewPair;
use mlstats::MeanCi;
use serde::Serialize;
use tcbench::report::Table;
use tcbench_bench::campaign::run_simclr_experiment;
use tcbench_bench::{ucdavis_dataset, BenchOpts, SAMPLES_PER_CLASS};
use trafficgen::splits::per_class_folds;
use trafficgen::types::Partition;

#[derive(Debug, Serialize)]
struct Cell {
    proj_dim: usize,
    dropout: bool,
    script: Vec<f64>,
    human: Vec<f64>,
}

fn main() {
    let opts = BenchOpts::from_args();
    let ds = ucdavis_dataset(&opts);
    // Paper: 125 experiments per cell (5 splits × 5 SimCLR seeds × 5
    // fine-tune seeds); quick: 2 × 1 × 2.
    let (splits, simclr_seeds, ft_seeds) = if opts.paper { (5, 5, 5) } else { (2, 1, 2) };
    eprintln!(
        "table5: {splits} splits x {simclr_seeds} SimCLR seeds x {ft_seeds} ft seeds per cell"
    );

    let folds = per_class_folds(
        &ds,
        Partition::Pretraining,
        SAMPLES_PER_CLASS,
        splits,
        opts.seed,
    );
    let mut cells = Vec::new();
    for proj_dim in [30usize, 84] {
        for dropout in [true, false] {
            eprintln!("  proj_dim={proj_dim} dropout={dropout}...");
            let mut script = Vec::new();
            let mut human = Vec::new();
            for (ki, fold) in folds.iter().enumerate() {
                for cs in 0..simclr_seeds {
                    for fs in 0..ft_seeds {
                        let out = run_simclr_experiment(
                            &ds,
                            &fold.train,
                            ViewPair::paper(),
                            proj_dim,
                            dropout,
                            10,
                            opts.seed + (ki * 31 + cs) as u64,
                            opts.seed + (ki * 97 + fs) as u64 + 1000,
                            &opts,
                        );
                        script.push(100.0 * out.script_acc);
                        human.push(100.0 * out.human_acc);
                    }
                }
            }
            cells.push(Cell {
                proj_dim,
                dropout,
                script,
                human,
            });
        }
    }

    for side in ["script", "human"] {
        let mut table = Table::new(
            &format!("Table 5 — SimCLR fine-tune (10 samples), test on {side}"),
            &["Proj. dim", "w/ dropout", "w/o dropout"],
        );
        for proj_dim in [30usize, 84] {
            let get = |dropout: bool| {
                let c = cells
                    .iter()
                    .find(|c| c.proj_dim == proj_dim && c.dropout == dropout)
                    .unwrap();
                MeanCi::ci95(if side == "script" {
                    &c.script
                } else {
                    &c.human
                })
                .to_string()
            };
            table.push_row(vec![proj_dim.to_string(), get(true), get(false)]);
        }
        println!("{}", table.render());
    }
    println!(
        "paper reference: script ~92 (94.5 in the Ref-Paper), human ~72-75;\n\
         expected: w/o dropout > w/ dropout on human; proj 84 ~ proj 30"
    );

    opts.write_result("table5_simclr_ablation", &cells);
}
