//! **Table 4 (G1.1)** — comparing data augmentation functions in a
//! supervised training: mean accuracy ± 95 % CI of the 7 augmentation
//! policies across flowpic resolutions, tested on `script`, `human` and
//! the `leftover` pretraining samples.
//!
//! Expected shape (paper Sec. 4.2.2):
//! * `script` and `leftover` accuracies high and close to each other;
//! * `human` markedly lower (the ~20 % data-shift gap);
//! * augmentations within a few points of each other, time-series ones
//!   slightly ahead.

use augment::ALL_AUGMENTATIONS;
use mlstats::MeanCi;
use tcbench::report::Table;
use tcbench::telemetry::CampaignProgress;
use tcbench_bench::campaign::{run_supervised_cell_observed, CellResult};
use tcbench_bench::{ucdavis_dataset, BenchOpts};

fn main() {
    let opts = BenchOpts::from_args();
    let dataset = ucdavis_dataset(&opts);
    let resolutions = opts.resolutions();
    let (k, s) = opts.campaign();
    eprintln!(
        "table4: resolutions {resolutions:?}, {k} splits x {s} seeds, \
         {} aug copies (use --paper for full scale, --progress for telemetry)",
        opts.aug_copies()
    );

    // Campaign-level telemetry: one task_end (with ETA) per finished
    // cell; under --progress each run also streams per-epoch events.
    let n_cells = resolutions.len() * ALL_AUGMENTATIONS.len();
    let progress = CampaignProgress::new(n_cells, opts.observer());
    let mut per_epoch = opts.observer();
    let mut cells: Vec<CellResult> = Vec::new();
    for &res in &resolutions {
        for aug in ALL_AUGMENTATIONS {
            eprintln!("  running {} @ {res}x{res}...", aug.name());
            // Table 4 uses dropout "as intended in the original study"
            // (paper footnote 17).
            cells.push(run_supervised_cell_observed(
                &dataset,
                aug,
                res,
                true,
                &opts,
                per_epoch.as_mut(),
            ));
            progress.task_done(cells.len() - 1, false);
        }
    }

    for side in ["script", "human", "leftover"] {
        let headers: Vec<String> = std::iter::once("Augmentation".to_string())
            .chain(resolutions.iter().map(|r| format!("{r}x{r}")))
            .collect();
        let mut table = Table::new(
            &format!("Table 4 — test on {side} (mean accuracy ±95% CI)"),
            &headers.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        for aug in ALL_AUGMENTATIONS {
            let mut row = vec![aug.name().to_string()];
            for &res in &resolutions {
                let cell = cells
                    .iter()
                    .find(|c| c.augmentation == aug.name() && c.resolution == res)
                    .expect("cell exists");
                let ci = MeanCi::ci95(&cell.accuracies_pct(side));
                row.push(ci.to_string());
            }
            table.push_row(row);
        }
        println!("{}", table.render());
    }

    // The paper's drill-down observation: the script-vs-human gap.
    for &res in &resolutions {
        let gaps: Vec<f64> = ALL_AUGMENTATIONS
            .iter()
            .map(|aug| {
                let cell = cells
                    .iter()
                    .find(|c| c.augmentation == aug.name() && c.resolution == res)
                    .unwrap();
                let script = MeanCi::ci95(&cell.accuracies_pct("script")).mean;
                let human = MeanCi::ci95(&cell.accuracies_pct("human")).mean;
                script - human
            })
            .collect();
        let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
        println!(
            "mean script-vs-human gap @ {res}x{res}: {mean_gap:.2} pts (paper: ~20 pts at 32x32)"
        );
    }

    opts.write_result("table4_augmentations", &cells);
}
