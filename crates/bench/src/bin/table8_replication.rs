//! **Table 8 (G3)** — replicating the data-augmentation comparison on the
//! three additional datasets: supervised training with a stratified
//! 80/10/10 split, weighted F1 (the datasets are imbalanced), all 7
//! augmentation policies.
//!
//! Expected shape (paper Sec. 4.5.2):
//! * MIRAGE-22 (>1000pkts) and (>10pkts) easiest, UTMOBILENET21 mid,
//!   MIRAGE-19 hardest (≈70 %);
//! * larger gaps between augmentations than on UCDAVIS19 — enough for
//!   Change RTT and Time shift to finally separate from the pack.

use augment::{Augmentation, ALL_AUGMENTATIONS};
use flowpic::{FlowpicConfig, Normalization};
use mlstats::MeanCi;
use serde::Serialize;
use tcbench::arch::supervised_net;
use tcbench::data::FlowpicDataset;
use tcbench::report::Table;
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use tcbench_bench::{replication_datasets, BenchOpts};
use trafficgen::splits::stratified_three_way;
use trafficgen::types::{Dataset, Partition};

/// Per-(dataset, augmentation) weighted-F1 samples (percent).
#[derive(Debug, Serialize)]
pub struct F1Cell {
    /// Dataset display name.
    pub dataset: String,
    /// Augmentation name.
    pub augmentation: String,
    /// Weighted F1 per run.
    pub f1: Vec<f64>,
}

fn run_one(ds: &Dataset, aug: Augmentation, seed: u64, opts: &BenchOpts) -> f64 {
    let fpcfg = FlowpicConfig::mini();
    let norm = Normalization::LogMax;
    let split = stratified_three_way(ds, Partition::Unpartitioned, 0.8, 0.1, seed);
    let copies = if opts.paper { opts.aug_copies() } else { 2 };
    let train = FlowpicDataset::augmented(ds, &split.train, aug, copies, &fpcfg, norm, seed);
    let val = FlowpicDataset::from_flows(ds, &split.val, &fpcfg, norm);
    let test = FlowpicDataset::from_flows(ds, &split.test, &fpcfg, norm);
    let trainer = SupervisedTrainer::new(TrainConfig {
        max_epochs: if opts.paper { 50 } else { 8 },
        ..TrainConfig::supervised(seed)
    });
    let mut net = supervised_net(32, ds.num_classes(), true, seed);
    trainer.train(&mut net, &train, Some(&val));
    trainer.evaluate(&net, &test).weighted_f1
}

fn main() {
    let opts = BenchOpts::from_args();
    eprintln!("table8: generating + curating the replication datasets...");
    let datasets = replication_datasets(&opts);
    let (k, s) = opts.campaign();
    let n_runs = if opts.paper { k * s } else { 2 };
    eprintln!("table8: {n_runs} runs per cell");

    let mut cells: Vec<F1Cell> = Vec::new();
    for (name, ds) in &datasets {
        for aug in ALL_AUGMENTATIONS {
            eprintln!("  {name} / {}...", aug.name());
            let f1: Vec<f64> = (0..n_runs)
                .map(|run| {
                    100.0 * run_one(ds, aug, opts.seed + run as u64 * 17 + aug as u64, &opts)
                })
                .collect();
            cells.push(F1Cell {
                dataset: name.clone(),
                augmentation: aug.name().to_string(),
                f1,
            });
        }
    }

    let headers: Vec<String> = std::iter::once("Augmentation".to_string())
        .chain(datasets.iter().map(|(n, _)| n.clone()))
        .collect();
    let mut table = Table::new(
        "Table 8 — augmentations on the replication datasets (weighted F1 ±95% CI)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for aug in ALL_AUGMENTATIONS {
        let mut row = vec![aug.name().to_string()];
        for (name, _) in &datasets {
            let cell = cells
                .iter()
                .find(|c| &c.dataset == name && c.augmentation == aug.name())
                .unwrap();
            row.push(MeanCi::ci95(&cell.f1).to_string());
        }
        table.push_row(row);
    }
    println!("{}", table.render());
    println!(
        "expected: Change RTT / Time shift best on every dataset; MIRAGE-19 the\n\
         hardest (paper: 74.28 best vs 90+ elsewhere); max gap larger than on UCDAVIS19"
    );

    opts.write_result("table8_replication", &cells);
}
