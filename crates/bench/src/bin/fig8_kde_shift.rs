//! **Fig. 8** — kernel density estimation of the per-class packet-size
//! distributions across the three UCDAVIS19 partitions.
//!
//! Expected shape (paper App. D.1): `script` overlaps `pretraining` for
//! every class, while `human` shows an evident shift for *Google search*
//! — the KDE-level fingerprint of the injected data shift. The bench
//! prints sparkline densities and the pairwise L1 distances that quantify
//! the shift.

use mlstats::kde::{l1_distance, Kde};
use serde::Serialize;
use tcbench_bench::{ucdavis_dataset, BenchOpts};
use trafficgen::types::Partition;
use trafficgen::ucdavis::CLASSES;

#[derive(Debug, Serialize)]
struct KdeRow {
    class: String,
    l1_script_vs_pretraining: f64,
    l1_human_vs_pretraining: f64,
    density_grids: Vec<(String, Vec<f64>)>,
}

fn sparkline(values: &[f64]) -> String {
    const RAMP: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(f64::MIN, f64::max).max(1e-12);
    values
        .iter()
        .map(|&v| RAMP[((v / max) * (RAMP.len() - 1) as f64).round() as usize])
        .collect()
}

fn main() {
    let opts = BenchOpts::from_args();
    let ds = ucdavis_dataset(&opts);

    let sizes = |partition: Partition, class: u16| -> Vec<f64> {
        ds.partition(partition)
            .filter(|f| f.class == class)
            .flat_map(|f| f.pkts.iter().map(|p| p.size as f64))
            .collect()
    };

    println!("== Fig. 8 — per-class packet-size KDEs across partitions ==\n");
    let grid_points = 64;
    let mut rows = Vec::new();
    for (c, name) in CLASSES.iter().enumerate() {
        let pre = Kde::silverman(&sizes(Partition::Pretraining, c as u16));
        let script = Kde::silverman(&sizes(Partition::Script, c as u16));
        let human = Kde::silverman(&sizes(Partition::Human, c as u16));
        println!("--- {name} ---");
        let mut grids = Vec::new();
        for (label, kde) in [
            ("pretraining", &pre),
            ("script", &script),
            ("human", &human),
        ] {
            let (_, density) = kde.grid(0.0, 1500.0, grid_points);
            println!("{label:>12} |{}|", sparkline(&density));
            grids.push((label.to_string(), density));
        }
        let l1_script = l1_distance(&pre, &script, 0.0, 1500.0, 256);
        let l1_human = l1_distance(&pre, &human, 0.0, 1500.0, 256);
        println!("{:>12}  L1(script, pretraining) = {l1_script:.3}", "");
        println!("{:>12}  L1(human,  pretraining) = {l1_human:.3}\n", "");
        rows.push(KdeRow {
            class: name.to_string(),
            l1_script_vs_pretraining: l1_script,
            l1_human_vs_pretraining: l1_human,
            density_grids: grids,
        });
    }

    let search = &rows[3];
    println!(
        "shape check: google-search L1(human) = {:.3} vs L1(script) = {:.3} — the\n\
         paper's 'evident shift' (its Fig. 8); other classes shift far less.",
        search.l1_human_vs_pretraining, search.l1_script_vs_pretraining
    );

    opts.write_result("fig8_kde_shift", &rows);
}
