//! **Extension ablation** — pre-training objectives: SimCLR vs SupCon vs
//! BYOL.
//!
//! Two extensions the paper points at but does not run:
//! * its conclusions flag *supervised* contrastive learning (SupCon,
//!   Khosla et al. 2020) as the natural follow-up;
//! * its related work (ref. \[37\]) reports BYOL — the negative-free
//!   alternative — performing comparably to SimCLR on the same dataset.
//!
//! This ablation runs all three pre-training objectives under the same
//! protocol (same views, batches, fine-tuning) and compares few-shot
//! fine-tuning accuracy on `script` and `human`.
//!
//! Expected shape: SupCon (label-aware) at least matches SimCLR; BYOL in
//! the same band as SimCLR (the ref. \[37\] observation), a little less
//! stable at these tiny batch sizes.

use augment::ViewPair;
use flowpic::{FlowpicConfig, Normalization};
use mlstats::MeanCi;
use serde::Serialize;
use tcbench::byol::pretrain_byol;
use tcbench::data::FlowpicDataset;
use tcbench::report::Table;
use tcbench::simclr::{few_shot_subset, fine_tune, pretrain, pretrain_supcon, SimClrConfig};
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use tcbench_bench::{ucdavis_dataset, BenchOpts, SAMPLES_PER_CLASS};
use trafficgen::splits::per_class_folds;
use trafficgen::types::Partition;

#[derive(Debug, Serialize)]
struct LossCell {
    objective: String,
    script: Vec<f64>,
    human: Vec<f64>,
}

fn main() {
    let opts = BenchOpts::from_args();
    let ds = ucdavis_dataset(&opts);
    let (splits, seeds) = if opts.paper { (5, 5) } else { (2, 1) };
    eprintln!("ablation_supcon: {splits} splits x {seeds} seeds per objective");

    let fpcfg = FlowpicConfig::mini();
    let norm = Normalization::LogMax;
    let folds = per_class_folds(
        &ds,
        Partition::Pretraining,
        SAMPLES_PER_CLASS,
        splits,
        opts.seed,
    );
    let script_idx = ds.partition_indices(Partition::Script);
    let human_idx = ds.partition_indices(Partition::Human);
    let script = FlowpicDataset::from_flows(&ds, &script_idx, &fpcfg, norm);
    let human = FlowpicDataset::from_flows(&ds, &human_idx, &fpcfg, norm);
    let trainer = SupervisedTrainer::new(TrainConfig::supervised(0));

    let mut cells = Vec::new();
    for objective in ["SimCLR (NT-Xent)", "SupCon", "BYOL"] {
        eprintln!("  {objective}...");
        let mut s_accs = Vec::new();
        let mut h_accs = Vec::new();
        for (ki, fold) in folds.iter().enumerate() {
            for seed in 0..seeds {
                let config = SimClrConfig {
                    max_epochs: if opts.paper { 30 } else { 8 },
                    seed: opts.seed + (ki * 19 + seed) as u64,
                    ..SimClrConfig::paper(opts.seed)
                };
                let (pre, _) = match objective {
                    "SupCon" => {
                        pretrain_supcon(&ds, &fold.train, ViewPair::paper(), &fpcfg, norm, &config)
                    }
                    "BYOL" => {
                        pretrain_byol(&ds, &fold.train, ViewPair::paper(), &fpcfg, norm, &config)
                    }
                    _ => pretrain(&ds, &fold.train, ViewPair::paper(), &fpcfg, norm, &config),
                };
                let shots = few_shot_subset(&ds, &fold.train, 10, config.seed ^ 0xF);
                let labeled = FlowpicDataset::from_flows(&ds, &shots, &fpcfg, norm);
                let tuned = fine_tune(&pre, &labeled, config.seed, config.batch_workers);
                s_accs.push(100.0 * trainer.evaluate(&tuned, &script).accuracy);
                h_accs.push(100.0 * trainer.evaluate(&tuned, &human).accuracy);
            }
        }
        cells.push(LossCell {
            objective: objective.into(),
            script: s_accs,
            human: h_accs,
        });
    }

    let mut table = Table::new(
        "Extension — pre-training objectives (10-shot fine-tune, 32x32)",
        &["Objective", "script", "human"],
    );
    for c in &cells {
        table.push_row(vec![
            c.objective.clone(),
            MeanCi::ci95(&c.script).to_string(),
            MeanCi::ci95(&c.human).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "note: SupCon consumes the pre-training labels (the paper's future-work\n\
         scenario); SimCLR stays fully self-supervised."
    );

    opts.write_result("ablation_supcon", &cells);
}
