//! The supervised UCDAVIS19 campaign shared by Table 4, Fig. 3, Fig. 5,
//! Table 10 and Fig. 11: train LeNet-5 on 100-per-class splits of the
//! `pretraining` partition under one augmentation, test on `script`,
//! `human` and the `leftover` samples.

use crate::BenchOpts;
use augment::Augmentation;
use flowpic::{FlowpicConfig, Normalization};
use mlstats::ConfusionMatrix;
use serde::{Deserialize, Serialize};
use tcbench::arch::supervised_net;
use tcbench::data::FlowpicDataset;
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use trafficgen::splits::per_class_folds;
use trafficgen::types::{Dataset, Partition};

/// One training run's test-side outcomes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Accuracy on the `script` partition.
    pub script_acc: f64,
    /// Accuracy on the `human` partition.
    pub human_acc: f64,
    /// Accuracy on the split's leftover pretraining samples.
    pub leftover_acc: f64,
    /// Confusion matrix on `script`.
    pub script_confusion: ConfusionMatrix,
    /// Confusion matrix on `human`.
    pub human_confusion: ConfusionMatrix,
    /// Epochs the run took before early stopping.
    pub epochs: usize,
}

/// All runs of one `(augmentation, resolution)` cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// Augmentation name.
    pub augmentation: String,
    /// Flowpic resolution.
    pub resolution: usize,
    /// Whether dropout was enabled.
    pub dropout: bool,
    /// One outcome per (split × seed) run.
    pub runs: Vec<RunOutcome>,
}

impl CellResult {
    /// Per-run accuracies (percent) for a given test side.
    pub fn accuracies_pct(&self, side: &str) -> Vec<f64> {
        self.runs
            .iter()
            .map(|r| {
                100.0
                    * match side {
                        "script" => r.script_acc,
                        "human" => r.human_acc,
                        "leftover" => r.leftover_acc,
                        other => panic!("unknown side {other}"),
                    }
            })
            .collect()
    }
}

/// Runs the supervised campaign for one `(augmentation, resolution)` cell.
///
/// Protocol per paper Sec. 4.2.1: `k` splits of 100 samples/class from
/// `pretraining`; per split, `s` seeds each re-drawing the 80/20
/// train/validation subdivision; augmentation applied `copies`× to the
/// training side only; early stopping on validation loss.
#[allow(clippy::too_many_arguments)]
pub fn run_supervised_cell(
    dataset: &Dataset,
    aug: Augmentation,
    res: usize,
    dropout: bool,
    opts: &BenchOpts,
) -> CellResult {
    run_supervised_cell_observed(
        dataset,
        aug,
        res,
        dropout,
        opts,
        &mut tcbench::telemetry::Noop,
    )
}

/// [`run_supervised_cell`] with telemetry: every training run inside the
/// cell streams its events to `obs`. Observability-only — the returned
/// result is identical to the unobserved variant.
#[allow(clippy::too_many_arguments)]
pub fn run_supervised_cell_observed(
    dataset: &Dataset,
    aug: Augmentation,
    res: usize,
    dropout: bool,
    opts: &BenchOpts,
    obs: &mut dyn tcbench::telemetry::TrainObserver,
) -> CellResult {
    let (k_splits, s_seeds) = opts.campaign();
    let fpcfg = FlowpicConfig::with_resolution(res);
    let norm = Normalization::LogMax;
    let folds = per_class_folds(
        dataset,
        Partition::Pretraining,
        crate::SAMPLES_PER_CLASS,
        k_splits,
        opts.seed ^ 0xF01D,
    );
    let script_idx = dataset.partition_indices(Partition::Script);
    let human_idx = dataset.partition_indices(Partition::Human);
    let script = FlowpicDataset::from_flows(dataset, &script_idx, &fpcfg, norm);
    let human = FlowpicDataset::from_flows(dataset, &human_idx, &fpcfg, norm);

    let mut runs = Vec::new();
    for (ki, fold) in folds.iter().enumerate() {
        let leftover = FlowpicDataset::from_flows(dataset, &fold.test, &fpcfg, norm);
        for si in 0..s_seeds {
            let seed = opts
                .seed
                .wrapping_mul(1000)
                .wrapping_add((ki * 100 + si) as u64)
                .wrapping_add(aug as u64 * 17);
            let train_full = FlowpicDataset::augmented(
                dataset,
                &fold.train,
                aug,
                opts.aug_copies(),
                &fpcfg,
                norm,
                seed,
            );
            let (train, val) = train_full.split_validation(0.2, seed ^ 0x7A1);
            let trainer = SupervisedTrainer::new(TrainConfig {
                max_epochs: opts.max_epochs(),
                seed,
                ..TrainConfig::supervised(seed)
            });
            let mut net = supervised_net(res, dataset.num_classes(), dropout, seed);
            let summary = trainer.train_observed(&mut net, &train, Some(&val), obs);
            let script_eval = trainer.evaluate(&net, &script);
            let human_eval = trainer.evaluate(&net, &human);
            let leftover_eval = trainer.evaluate(&net, &leftover);
            runs.push(RunOutcome {
                script_acc: script_eval.accuracy,
                human_acc: human_eval.accuracy,
                leftover_acc: leftover_eval.accuracy,
                script_confusion: script_eval.confusion,
                human_confusion: human_eval.confusion,
                epochs: summary.epochs,
            });
        }
    }
    CellResult {
        augmentation: aug.name().to_string(),
        resolution: res,
        dropout,
        runs,
    }
}

/// Loads a previously saved campaign JSON (e.g.
/// `bench_results/table4_augmentations.json`) so downstream figures reuse
/// the same runs instead of re-training. Returns `None` when the file is
/// absent or unparsable.
pub fn load_cells(path: &str) -> Option<Vec<CellResult>> {
    let body = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&body).ok()
}

/// One SimCLR pre-train + fine-tune run's outcomes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimClrOutcome {
    /// Accuracy on `script`.
    pub script_acc: f64,
    /// Accuracy on `human`.
    pub human_acc: f64,
    /// Pre-training epochs before early stopping.
    pub pretrain_epochs: usize,
    /// Best contrastive top-5 accuracy during pre-training.
    pub best_top5: f64,
}

/// Runs one SimCLR experiment: pre-train on `pool` (unlabeled), fine-tune
/// on `ft_samples` labeled flows per class drawn from the same pool, test
/// on `script` and `human` — the protocol of the paper's Tables 5–7.
#[allow(clippy::too_many_arguments)]
pub fn run_simclr_experiment(
    dataset: &Dataset,
    pool: &[usize],
    pair: augment::ViewPair,
    proj_dim: usize,
    dropout: bool,
    ft_samples: usize,
    simclr_seed: u64,
    ft_seed: u64,
    opts: &BenchOpts,
) -> SimClrOutcome {
    use tcbench::simclr::{few_shot_subset, fine_tune, pretrain, SimClrConfig};
    let fpcfg = FlowpicConfig::mini();
    let norm = Normalization::LogMax;
    let config = SimClrConfig {
        max_epochs: if opts.paper { 30 } else { 8 },
        dropout,
        proj_dim,
        seed: simclr_seed,
        ..SimClrConfig::paper(simclr_seed)
    };
    let (pre, summary) = pretrain(dataset, pool, pair, &fpcfg, norm, &config);
    let shots = few_shot_subset(dataset, pool, ft_samples, ft_seed);
    let labeled = FlowpicDataset::from_flows(dataset, &shots, &fpcfg, norm);
    let tuned = fine_tune(&pre, &labeled, ft_seed, config.batch_workers);

    let trainer = SupervisedTrainer::new(TrainConfig::supervised(0));
    let script_idx = dataset.partition_indices(Partition::Script);
    let human_idx = dataset.partition_indices(Partition::Human);
    let script = FlowpicDataset::from_flows(dataset, &script_idx, &fpcfg, norm);
    let human = FlowpicDataset::from_flows(dataset, &human_idx, &fpcfg, norm);
    SimClrOutcome {
        script_acc: trainer.evaluate(&tuned, &script).accuracy,
        human_acc: trainer.evaluate(&tuned, &human).accuracy,
        pretrain_epochs: summary.epochs,
        best_top5: summary.best_top5,
    }
}
