//! Forward-only serving throughput.
//!
//! Two angles on the online inference path:
//!
//! * `serve/cnn_batch{N}_workers{W}` — one `Classifier::predict_batch`
//!   call on the mini (LeNet-5) net at 32×32, isolating the micro-batch
//!   forward pass the InferenceEngine issues per flush;
//!   `serve/cnn_batch{N}_workers{W}_int8` is the same call through the
//!   quantized eval lane (`QuantMode::Int8`);
//! * `serve/replay_*` — the whole serving loop (tracker + incremental
//!   flowpics + micro-batcher) over a synthetic trace, the figure that
//!   corresponds to `tcb serve --replay`'s samples/sec report;
//! * `serve/stress_*` — sustained flows/sec on the sharded dataplane
//!   over a `trafficgen::stress` trace (many tiny flows, each closed
//!   just past the 15 s window), the shape `--shards N` exists for.
//!
//! Predictions are bit-identical at every batch size and worker count
//! (the batch-size-invariance tests pin this), so — like
//! `engine_scaling` — these benches compare only wall-clock. Results
//! belong in `bench_results/inference_throughput.json` with the host's
//! core count noted.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use flowpic::{FlowpicConfig, Normalization};
use serve::engine::{Classifier, CnnClassifier, EngineConfig, QuantMode};
use serve::registry::{ModelRegistry, ServedModel};
use serve::replay::{replay, trace_from_dataset};
use serve::shard::replay_sharded;
use serve::tracker::TrackerConfig;
use tcbench::arch::supervised_net;
use tcbench::telemetry::Noop;
use trafficgen::stress::{StressConfig, StressSim};
use trafficgen::types::{Dataset, Direction, Flow, Partition, Pkt};

const RES: usize = 32;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn served_model(seed: u64) -> ServedModel {
    let net = supervised_net(RES, 5, true, seed);
    ServedModel {
        arch: "supervised".into(),
        resolution: RES,
        n_classes: 5,
        dropout: true,
        class_names: (0..5).map(|i| format!("class{i}")).collect(),
        weights: net.export_weights(),
    }
}

fn inputs(n: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..RES * RES)
                .map(|j| (splitmix64((i * RES * RES + j) as u64) % 1000) as f32 / 1000.0)
                .collect()
        })
        .collect()
}

fn synthetic_dataset(n_flows: usize) -> Dataset {
    let flows = (0..n_flows)
        .map(|i| {
            let h = splitmix64(i as u64);
            let pkts = (0..40)
                .map(|j| {
                    let hj = splitmix64(h.wrapping_add(j as u64));
                    Pkt::data(
                        j as f64 * 0.45,
                        60 + (hj % 1400) as u16,
                        if hj & 1 == 0 {
                            Direction::Upstream
                        } else {
                            Direction::Downstream
                        },
                    )
                })
                .collect();
            Flow {
                id: i as u64,
                class: (i % 5) as u16,
                partition: Partition::Unpartitioned,
                background: false,
                pkts,
            }
        })
        .collect();
    Dataset {
        name: "bench".into(),
        class_names: (0..5).map(|i| format!("class{i}")).collect(),
        flows,
    }
}

fn bench_cnn_batches(c: &mut Criterion) {
    let model = served_model(1);
    for (batch, workers) in [(1usize, 1usize), (8, 1), (32, 1), (32, 4)] {
        let cnn = CnnClassifier::from_served(&model, workers).unwrap();
        let x = inputs(batch);
        c.bench_function(&format!("serve/cnn_batch{batch}_workers{workers}"), |b| {
            b.iter(|| black_box(cnn.predict_batch(&x)))
        });
    }
    // The quantized eval lane at the engine's bread-and-butter shape.
    let int8 = CnnClassifier::from_served_quant(&model, 1, QuantMode::Int8).unwrap();
    let x = inputs(32);
    c.bench_function("serve/cnn_batch32_workers1_int8", |b| {
        b.iter(|| black_box(int8.predict_batch(&x)))
    });
}

fn bench_replay(c: &mut Criterion) {
    let model = served_model(1);
    let ds = synthetic_dataset(48);
    let trace = trace_from_dataset(&ds, 0.2, 1.0);
    for (max_batch, workers) in [(8usize, 1usize), (16, 4)] {
        c.bench_function(
            &format!("serve/replay_48flows_batch{max_batch}_workers{workers}"),
            |b| {
                b.iter(|| {
                    let cnn = CnnClassifier::from_served(&model, workers).unwrap();
                    let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
                    let report = replay(
                        &trace,
                        &registry,
                        TrackerConfig {
                            flowpic: FlowpicConfig::with_resolution(RES),
                            norm: Normalization::LogMax,
                            idle_timeout_s: 60.0,
                            max_flows: 10_000,
                            done_horizon_s: 120.0,
                        },
                        EngineConfig {
                            max_batch,
                            max_wait_s: 0.5,
                            ..EngineConfig::default()
                        },
                        Vec::new(),
                        &mut Noop,
                    )
                    .unwrap();
                    assert_eq!(report.predictions.len(), 48);
                    black_box(report)
                })
            },
        );
    }
}

fn bench_sharded_stress(c: &mut Criterion) {
    let model = served_model(1);
    let ds = StressSim::new(StressConfig {
        n_flows: 1_000,
        n_classes: 5,
        pkts_per_flow: 6,
    })
    .generate(3);
    let trace = trace_from_dataset(&ds, 0.02, 1.0);
    // Divide the case's median wall-clock into 1000 to read the
    // sustained flows/sec figure recorded in the results file.
    for shards in [1usize, 4] {
        c.bench_function(&format!("serve/stress_1kflows_shards{shards}"), |b| {
            b.iter(|| {
                let cnn = CnnClassifier::from_served(&model, 1).unwrap();
                let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
                let report = replay_sharded(
                    &trace,
                    &registry,
                    TrackerConfig {
                        flowpic: FlowpicConfig::with_resolution(RES),
                        norm: Normalization::LogMax,
                        idle_timeout_s: 60.0,
                        max_flows: 10_000,
                        done_horizon_s: 120.0,
                    },
                    EngineConfig {
                        max_batch: 16,
                        max_wait_s: 0.5,
                        ..EngineConfig::default()
                    },
                    Vec::new(),
                    shards,
                    shards,
                    &mut Noop,
                )
                .unwrap();
                assert_eq!(report.predictions.len(), 1_000);
                black_box(report)
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cnn_batches, bench_replay, bench_sharded_stress
}
criterion_main!(benches);
