//! Criterion micro-benchmarks of the substrates whose throughput
//! determines campaign wall-clock: dataset generation, flowpic
//! rasterization, each augmentation, conv forward/backward, NT-Xent, and
//! GBDT training.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use augment::{Augmentation, ALL_AUGMENTATIONS};
use flowpic::{Flowpic, FlowpicConfig, Normalization};
use gbdt::{GbdtClassifier, GbdtConfig};
use nettensor::layers::{Conv2d, Layer};
use nettensor::loss::NtXent;
use nettensor::{Tape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use trafficgen::process::generate_pkts;
use trafficgen::profile::TrafficProfile;
use trafficgen::types::Pkt;
use trafficgen::ucdavis::UcDavisSim;

fn sample_pkts(n: usize) -> Vec<Pkt> {
    let mut rng = StdRng::seed_from_u64(1);
    let mut profile = TrafficProfile::base("bench");
    profile.duration_mean = 20.0;
    generate_pkts(&profile, &mut rng, n)
}

fn bench_trafficgen(c: &mut Criterion) {
    let profile = UcDavisSim::base_profile(4); // YouTube
    c.bench_function("trafficgen/youtube_flow_1000pkts", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(generate_pkts(&profile, &mut rng, 1000)))
    });
}

fn bench_flowpic(c: &mut Criterion) {
    let pkts = sample_pkts(1000);
    for res in [32usize, 64, 1500] {
        let cfg = FlowpicConfig::with_resolution(res);
        c.bench_function(&format!("flowpic/build_{res}x{res}_1000pkts"), |b| {
            b.iter(|| black_box(Flowpic::build(&pkts, &cfg)))
        });
    }
    let cfg = FlowpicConfig::mini();
    let pic = Flowpic::build(&pkts, &cfg);
    c.bench_function("flowpic/lognorm_input_32x32", |b| {
        b.iter(|| black_box(pic.to_input(Normalization::LogMax)))
    });
}

fn bench_augmentations(c: &mut Criterion) {
    let pkts = sample_pkts(1000);
    let cfg = FlowpicConfig::mini();
    for aug in ALL_AUGMENTATIONS {
        if aug == Augmentation::NoAug {
            continue;
        }
        c.bench_function(&format!("augment/{}", aug.name().replace(' ', "_")), |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(aug.apply(&pkts, &cfg, &mut rng)))
        });
    }
}

fn bench_nn(c: &mut Criterion) {
    // LeNet first conv on a 32-sample batch — the campaign's hot loop.
    let x = Tensor::kaiming_uniform(&[32, 1, 32, 32], 1, 5);
    c.bench_function("nn/conv2d_forward_batch32_32x32", |b| {
        let conv = Conv2d::new(1, 6, 5, 1);
        b.iter(|| black_box(conv.forward(&x, true, &mut Tape::new())))
    });
    c.bench_function("nn/conv2d_backward_batch32_32x32", |b| {
        let conv = Conv2d::new(1, 6, 5, 1);
        let mut tape = Tape::new();
        let out = conv.forward(&x, true, &mut tape);
        let grad = Tensor::new(&out.shape, vec![1.0; out.len()]);
        let mut grads: Vec<Tensor> = conv
            .params()
            .iter()
            .map(|p| Tensor::zeros(&p.shape))
            .collect();
        b.iter_batched(
            || grad.clone(),
            |g| black_box(conv.backward(&tape.entries[0], &g, &mut grads)),
            BatchSize::SmallInput,
        )
    });
    let z = Tensor::kaiming_uniform(&[64, 30], 1, 9);
    c.bench_function("nn/ntxent_batch32pairs_dim30", |b| {
        let loss = NtXent::new(0.07);
        b.iter(|| black_box(loss.eval(&z).loss))
    });
}

fn bench_training_step(c: &mut Criterion) {
    use nettensor::loss::cross_entropy;
    use nettensor::optim::{Adam, Optimizer};
    use tcbench::arch::supervised_net;
    // One full supervised step (fwd + bwd + Adam) on a 32-sample batch —
    // the unit the campaign wall-clock estimates multiply.
    c.bench_function("train/supervised_step_batch32_32x32", |b| {
        let mut net = supervised_net(32, 5, true, 1);
        let mut opt = Adam::new(0.001);
        let mut grads = net.grad_store();
        let x = Tensor::kaiming_uniform(&[32, 1, 32, 32], 1, 3);
        let y: Vec<usize> = (0..32).map(|i| i % 5).collect();
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            let mut tape = Tape::with_context(step, 0);
            let logits = net.forward(&x, true, &mut tape);
            let (loss, grad) = cross_entropy(&logits, &y);
            grads.zero();
            net.backward(&tape, &grad, &mut grads);
            opt.step(&mut net, &grads);
            black_box(loss)
        })
    });
    use tcbench::timeseries::timeseries_net;
    c.bench_function("train/timeseries_step_batch32_len30", |b| {
        let mut net = timeseries_net(30, 5, 1);
        let mut opt = Adam::new(0.001);
        let mut grads = net.grad_store();
        let x = Tensor::kaiming_uniform(&[32, 3, 30], 1, 3);
        let y: Vec<usize> = (0..32).map(|i| i % 5).collect();
        b.iter(|| {
            let mut tape = Tape::new();
            let logits = net.forward(&x, true, &mut tape);
            let (loss, grad) = cross_entropy(&logits, &y);
            grads.zero();
            net.backward(&tape, &grad, &mut grads);
            opt.step(&mut net, &grads);
            black_box(loss)
        })
    });
}

fn bench_gbdt(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    use rand::RngExt;
    let x: Vec<Vec<f32>> = (0..200)
        .map(|i| {
            (0..30)
                .map(|j| {
                    if (i + j) % 5 == 0 {
                        rng.random::<f32>() * 3.0
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    let y: Vec<usize> = (0..200).map(|i| i % 5).collect();
    c.bench_function("gbdt/fit_200x30_5classes_10rounds", |b| {
        let cfg = GbdtConfig {
            n_rounds: 10,
            ..Default::default()
        };
        b.iter(|| black_box(GbdtClassifier::fit(&x, &y, 5, &cfg)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trafficgen, bench_flowpic, bench_augmentations, bench_nn, bench_training_step, bench_gbdt
}
criterion_main!(benches);
