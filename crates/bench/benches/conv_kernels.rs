//! Dense vs sparse convolution kernels on flowpic-shaped inputs.
//!
//! Two layer shapes from the paper's architectures:
//!
//! * `conv/mini32_*` — the mini-flowpic first layer (32×32 input,
//!   6 output channels, 5×5 kernel, stride 1);
//! * `conv/full1500_*` — the full-flowpic first layer (1500×1500 input,
//!   10 output channels, 10×10 kernel, stride 5).
//!
//! Each shape runs at its realistic input density (a mini flowpic holds
//! ~50 packets in 1024 cells ≈ 5%; a full flowpic holds a few thousand
//! packets in 2.25M cells ≪ 0.1%) with the kernels forced dense
//! (`set_sparsity_threshold(0.0)`), forced sparse (`1.1`), and forced
//! dense with the im2col+GEMM path armed (`set_gemm(true)`). Dense and
//! sparse produce bit-identical outputs (pinned by the
//! `conv_dense_vs_sparse_bit_identity_sweep` test); GEMM re-associates
//! the accumulation and is tolerance-pinned instead, so all three
//! comparisons are pure wall-clock. Results belong in
//! `bench_results/conv_kernels.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nettensor::layers::{Conv2d, Layer};
use nettensor::tape::Tape;
use nettensor::tensor::Tensor;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A `[1, 1, hw, hw]` tensor with approximately `density` non-zero
/// cells, magnitudes in `[0.5, 2.5]` (flowpic-normalized scale).
fn sparse_input(hw: usize, density: f64, seed: u64) -> Tensor {
    let data: Vec<f32> = (0..hw * hw)
        .map(|i| {
            let h = splitmix64(seed.wrapping_add(i as u64));
            if (h % 1_000_000) as f64 / 1e6 < density {
                0.5 + 2.0 * ((splitmix64(h) % 1000) as f32 / 1000.0)
            } else {
                0.0
            }
        })
        .collect();
    Tensor::new(&[1, 1, hw, hw], data)
}

fn conv_for(shape: &Shape, threshold: f32, gemm: bool) -> Conv2d {
    let mut conv = Conv2d::with_stride(1, shape.out_c, shape.kernel, shape.stride, 71);
    conv.set_sparsity_threshold(threshold);
    conv.set_gemm(gemm);
    conv
}

/// The benched kernel paths: forced dense, forced sparse, and forced
/// dense through the im2col+GEMM route.
const PATHS: [(&str, f32, bool); 3] = [
    ("dense", 0.0, false),
    ("sparse", 1.1, false),
    ("gemm", 0.0, true),
];

struct Shape {
    name: &'static str,
    hw: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    density: f64,
}

const SHAPES: [Shape; 2] = [
    Shape {
        name: "mini32_d5pct",
        hw: 32,
        out_c: 6,
        kernel: 5,
        stride: 1,
        density: 0.05,
    },
    Shape {
        name: "full1500_d0.08pct",
        hw: 1500,
        out_c: 10,
        kernel: 10,
        stride: 5,
        density: 0.0008,
    },
];

fn bench_forward(c: &mut Criterion) {
    for shape in &SHAPES {
        let x = sparse_input(shape.hw, shape.density, 3);
        for (path, threshold, gemm) in PATHS {
            let conv = conv_for(shape, threshold, gemm);
            c.bench_function(&format!("conv/{}_forward_{path}", shape.name), |b| {
                b.iter(|| black_box(conv.forward_eval(&x)))
            });
        }
    }
}

fn bench_backward(c: &mut Criterion) {
    for shape in &SHAPES {
        let x = sparse_input(shape.hw, shape.density, 3);
        for (path, threshold, gemm) in PATHS {
            let conv = conv_for(shape, threshold, gemm);
            let mut tape = Tape::new();
            let out = conv.forward(&x, true, &mut tape);
            // Dense upstream gradient: the speedup here comes from the
            // weight-gradient pass skipping zero input cells.
            let g = Tensor::new(
                &out.shape,
                (0..out.data.len())
                    .map(|i| ((splitmix64(i as u64) % 1000) as f32 / 1000.0) - 0.5)
                    .collect(),
            );
            c.bench_function(&format!("conv/{}_backward_{path}", shape.name), |b| {
                b.iter(|| {
                    let mut grads: Vec<Tensor> = conv
                        .params()
                        .iter()
                        .map(|p| Tensor::zeros(&p.shape))
                        .collect();
                    black_box(conv.backward(&tape.entries[0], &g, &mut grads))
                })
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_forward, bench_backward
}
criterion_main!(benches);
