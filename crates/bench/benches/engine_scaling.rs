//! Data-parallel scaling of nettensor's [`BatchEngine`].
//!
//! Measures one full forward + backward over a mini-batch at 1, 2, 4 and
//! 8 batch workers, for the two architectures whose step time dominates
//! campaign wall-clock:
//!
//! * the mini (LeNet-5) net on a 32-sample batch of 32×32 flowpics — the
//!   paper's standard setting;
//! * the full-flowpic (strided) family at a reduced 300×300 resolution,
//!   batch 8 — same stack as 1500×1500, scaled for bench runtime.
//!
//! The determinism contract makes every variant produce bit-identical
//! losses and gradients, so these benches compare *only* wall-clock.
//! Results belong in `bench_results/` next to the other runs, with the
//! host's core count noted: on a single-core container every worker
//! count collapses onto the same thread and no speedup can appear.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nettensor::loss::cross_entropy;
use nettensor::{BatchEngine, Sequential, Tensor};
use tcbench::arch::supervised_net;

fn step(engine: &BatchEngine, net: &Sequential, x: &Tensor, y: &[usize], salt: u64) -> f32 {
    let (logits, tapes) = engine.forward(net, x, true, salt);
    let (loss, grad) = cross_entropy(&logits, y);
    let mut grads = net.grad_store();
    engine.backward(net, &tapes, &grad, &mut grads);
    loss
}

fn bench_engine_mini(c: &mut Criterion) {
    let net = supervised_net(32, 5, true, 1);
    let x = Tensor::kaiming_uniform(&[32, 1, 32, 32], 1, 3);
    let y: Vec<usize> = (0..32).map(|i| i % 5).collect();
    for workers in [1usize, 2, 4, 8] {
        let engine = BatchEngine::new(workers);
        c.bench_function(
            &format!("engine/mini_32x32_batch32_workers{workers}"),
            |b| {
                let mut salt = 0u64;
                b.iter(|| {
                    salt += 1;
                    black_box(step(&engine, &net, &x, &y, salt))
                })
            },
        );
    }
}

fn bench_engine_full(c: &mut Criterion) {
    // Reduced full-flowpic resolution: same strided conv stack as
    // 1500×1500, sized so a bench iteration stays in milliseconds.
    let net = supervised_net(300, 5, true, 1);
    let x = Tensor::kaiming_uniform(&[8, 1, 300, 300], 1, 3);
    let y: Vec<usize> = (0..8).map(|i| i % 5).collect();
    for workers in [1usize, 2, 4, 8] {
        let engine = BatchEngine::new(workers);
        c.bench_function(
            &format!("engine/full_300x300_batch8_workers{workers}"),
            |b| {
                let mut salt = 0u64;
                b.iter(|| {
                    salt += 1;
                    black_box(step(&engine, &net, &x, &y, salt))
                })
            },
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_mini, bench_engine_full
}
criterion_main!(benches);
