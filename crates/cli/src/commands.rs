//! Subcommand implementations.

use crate::args::Flags;
use crate::CliError;
use augment::Augmentation;
use flowpic::render::ascii_heatmap;
use flowpic::{Flowpic, FlowpicConfig, Normalization};
use nettensor::checkpoint::{Decoder, Persist};
use serde::{Deserialize, Serialize};
use tcbench::arch::supervised_net;
use tcbench::data::FlowpicDataset;
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use tcbench::telemetry::{JsonlSink, ProgressSink, Tee};
use trafficgen::curation::CurationPipeline;
use trafficgen::flowrec;
use trafficgen::pcap::flow_to_pcap;
use trafficgen::splits::stratified_three_way;
use trafficgen::types::{Dataset, Partition};

/// Dispatches a subcommand. Returns the text to print on success.
pub fn run(subcommand: &str, args: &[String]) -> Result<String, CliError> {
    match subcommand {
        "generate" => generate(args),
        "curate" => curate(args),
        "stats" => stats(args),
        "flowpic" => flowpic_cmd(args),
        "export-pcap" => export_pcap(args),
        "train" => train(args),
        "evaluate" => evaluate(args),
        "serve" => serve_cmd(args),
        "windows" => windows(args),
        "pretrain" => pretrain_cmd(args),
        "finetune" => finetune_cmd(args),
        "campaign" => campaign(args),
        other => Err(CliError::Usage(format!(
            "unknown subcommand {other}\n\n{}",
            crate::USAGE
        ))),
    }
}

/// Builds the telemetry sink stack from the shared `--progress` /
/// `--log-jsonl PATH` flags. `append` keeps an existing JSONL file
/// (resumed runs accumulate their event stream); otherwise the file is
/// truncated. An empty [`Tee`] behaves like `Noop`.
fn build_observer(flags: &Flags, append: bool) -> Result<Tee, CliError> {
    let mut tee = Tee::new();
    if flags.switch("progress") {
        tee.push(Box::new(ProgressSink::stderr()));
    }
    if let Some(path) = flags.get("log-jsonl") {
        let sink = if append {
            JsonlSink::append(path)?
        } else {
            JsonlSink::create(path)?
        };
        tee.push(Box::new(sink));
    }
    Ok(tee)
}

fn load_dataset(path: &str) -> Result<Dataset, CliError> {
    let bytes = std::fs::read(path)?;
    flowrec::decode(&bytes).map_err(|e| CliError::Parse(format!("{path}: {e}")))
}

fn save_dataset(path: &str, ds: &Dataset) -> Result<(), CliError> {
    std::fs::write(path, flowrec::encode(ds))?;
    Ok(())
}

/// `tcb generate --dataset <name> [--scale quick|paper|tiny] [--seed N] --out FILE`
fn generate(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["dataset", "scale", "seed", "out"], &[])?;
    if flags.wants_help() {
        return Ok(
            "tcb generate --dataset ucdavis19|mirage19|mirage22|utmobilenet21 \
                   [--scale quick|paper|tiny] [--seed N] --out FILE"
                .into(),
        );
    }
    let seed = flags.get_parse::<u64>("seed", 42)?;
    let scale = flags.get("scale").unwrap_or("quick");
    let name = flags.require("dataset")?;
    let ds = build_dataset(name, scale, seed)?;
    let out = flags.require("out")?;
    save_dataset(out, &ds)?;
    Ok(format!(
        "generated {}: {} flows, {} classes -> {out}",
        ds.name,
        ds.flows.len(),
        ds.num_classes()
    ))
}

fn build_dataset(name: &str, scale: &str, seed: u64) -> Result<Dataset, CliError> {
    use trafficgen::mirage19::{Mirage19Config, Mirage19Sim};
    use trafficgen::mirage22::{Mirage22Config, Mirage22Sim};
    use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};
    use trafficgen::utmobilenet::{UtMobileNetConfig, UtMobileNetSim};
    macro_rules! pick {
        ($cfg:ident) => {
            match scale {
                "paper" => $cfg::paper(),
                "quick" => $cfg::quick(),
                "tiny" => $cfg::tiny(),
                other => return Err(CliError::Usage(format!("unknown scale {other}"))),
            }
        };
    }
    Ok(match name {
        "ucdavis19" => UcDavisSim::new(pick!(UcDavisConfig)).generate(seed),
        "mirage19" => Mirage19Sim::new(pick!(Mirage19Config)).generate(seed),
        "mirage22" => Mirage22Sim::new(pick!(Mirage22Config)).generate(seed),
        "utmobilenet21" => UtMobileNetSim::new(pick!(UtMobileNetConfig)).generate(seed),
        other => return Err(CliError::Usage(format!("unknown dataset {other}"))),
    })
}

/// `tcb curate --input FILE --out FILE [--min-pkts N] [--min-class-size N]
/// [--remove-acks] [--remove-background] [--collate]`
fn curate(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(
        args,
        &["input", "out", "min-pkts", "min-class-size"],
        &["remove-acks", "remove-background", "collate"],
    )?;
    if flags.wants_help() {
        return Ok(
            "tcb curate --input FILE --out FILE [--min-pkts N] [--min-class-size N] \
                   [--remove-acks] [--remove-background] [--collate]"
                .into(),
        );
    }
    let ds = load_dataset(flags.require("input")?)?;
    let pipe = CurationPipeline {
        remove_acks: flags.switch("remove-acks"),
        remove_background: flags.switch("remove-background"),
        min_pkts: flags.get_parse("min-pkts", 10)?,
        min_class_size: flags.get_parse("min-class-size", 100)?,
        collate_partitions: flags.switch("collate"),
    };
    let (curated, report) = pipe.run(&ds);
    save_dataset(flags.require("out")?, &curated)?;
    Ok(format!(
        "curated {}: {} -> {} flows, {} -> {} classes \
         (-{} background, -{} short, -{} small-class); rho {:.1}, mean pkts {:.1}",
        report.dataset,
        report.flows_before,
        report.flows_after,
        report.classes_before,
        report.classes_after,
        report.background_removed,
        report.short_removed,
        report.small_class_removed,
        report.rho.unwrap_or(f64::NAN),
        report.mean_pkts,
    ))
}

/// `tcb stats --input FILE`
fn stats(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["input"], &[])?;
    if flags.wants_help() {
        return Ok("tcb stats --input FILE".into());
    }
    let ds = load_dataset(flags.require("input")?)?;
    let counts = ds.class_counts();
    let mut out = format!(
        "{}: {} flows, {} classes, rho {}, mean pkts {:.1}\n",
        ds.name,
        ds.flows.len(),
        ds.num_classes(),
        ds.imbalance_rho()
            .map(|r| format!("{r:.1}"))
            .unwrap_or_else(|| "-".into()),
        ds.mean_pkts()
    );
    for (name, count) in ds.class_names.iter().zip(&counts) {
        out.push_str(&format!("  {name:<24} {count}\n"));
    }
    // Partition breakdown, when partitioned.
    let partitions = [
        Partition::Pretraining,
        Partition::Script,
        Partition::Human,
        Partition::ActionSpecific,
        Partition::DeterministicAutomated,
        Partition::RandomizedAutomated,
        Partition::WildTest,
        Partition::Unpartitioned,
    ];
    for p in partitions {
        let n = ds.partition(p).count();
        if n > 0 {
            out.push_str(&format!("  [{}] {n} flows\n", p.name()));
        }
    }
    Ok(out)
}

/// `tcb flowpic --input FILE --flow N [--res R]`
fn flowpic_cmd(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["input", "flow", "res"], &[])?;
    if flags.wants_help() {
        return Ok("tcb flowpic --input FILE --flow INDEX [--res 32]".into());
    }
    let ds = load_dataset(flags.require("input")?)?;
    let idx = flags.get_parse::<usize>("flow", 0)?;
    let flow = ds
        .flows
        .get(idx)
        .ok_or_else(|| CliError::Usage(format!("flow index {idx} out of range")))?;
    let res = flags.get_parse::<usize>("res", 32)?;
    let pic = Flowpic::build(&flow.pkts, &FlowpicConfig::with_resolution(res));
    Ok(format!(
        "flow {idx}: class {} ({}), {} pkts, {:.1}s\n{}",
        flow.class,
        ds.class_names[flow.class as usize],
        flow.len(),
        flow.duration(),
        ascii_heatmap(&pic)
    ))
}

/// `tcb export-pcap --input FILE --flow N --out FILE`
fn export_pcap(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["input", "flow", "out"], &[])?;
    if flags.wants_help() {
        return Ok("tcb export-pcap --input FILE --flow INDEX --out FILE".into());
    }
    let ds = load_dataset(flags.require("input")?)?;
    let idx = flags.get_parse::<usize>("flow", 0)?;
    let flow = ds
        .flows
        .get(idx)
        .ok_or_else(|| CliError::Usage(format!("flow index {idx} out of range")))?;
    let out = flags.require("out")?;
    std::fs::write(out, flow_to_pcap(flow))?;
    Ok(format!("wrote {} packets to {out}", flow.len()))
}

/// A trained model persisted to disk: architecture descriptor + weights.
#[derive(Serialize, Deserialize)]
pub struct SavedModel {
    /// Architecture family: "supervised" (App. C Listings 1-2) or
    /// "finetune" (Listing 5, the frozen-extractor head).
    #[serde(default = "default_arch")]
    pub arch: String,
    /// Flowpic resolution the model was trained on.
    pub resolution: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Whether the architecture uses dropout layers.
    pub dropout: bool,
    /// Class names (for reporting).
    pub class_names: Vec<String>,
    /// Flat weight tensors in `Sequential::export_weights` order.
    pub weights: nettensor::model::Weights,
}

/// `tcb train --input FILE --out MODEL [--aug NAME] [--res R] [--seed N] [--epochs N]
/// [--checkpoint-dir DIR [--resume]] [--progress] [--log-jsonl PATH]`
fn train(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(
        args,
        &[
            "input",
            "out",
            "aug",
            "res",
            "seed",
            "epochs",
            "batch-workers",
            "checkpoint-dir",
            "log-jsonl",
        ],
        &["resume", "progress"],
    )?;
    if flags.wants_help() {
        return Ok(
            "tcb train --input FILE --out MODEL.json [--aug no-aug|rotate|flip|\
                   color-jitter|packet-loss|time-shift|change-rtt] [--res 32] [--seed N] \
                   [--epochs N] [--batch-workers N (0 = all cores; any value gives \
                   bit-identical results)] [--checkpoint-dir DIR (save a crash-safe \
                   checkpoint each epoch)] [--resume (continue from the checkpoint in \
                   --checkpoint-dir; resumed runs finish bit-identical to uninterrupted \
                   ones)] [--progress (per-epoch progress on stderr)] [--log-jsonl PATH \
                   (append one JSON event per line; telemetry never alters training)]"
                .into(),
        );
    }
    let checkpoint_dir = flags.get("checkpoint-dir").map(str::to_string);
    let resume = flags.switch("resume");
    if resume && checkpoint_dir.is_none() {
        return Err(CliError::Usage(
            "--resume requires --checkpoint-dir (there is nothing to resume from)".into(),
        ));
    }
    let ds = load_dataset(flags.require("input")?)?;
    let res = flags.get_parse::<usize>("res", 32)?;
    let seed = flags.get_parse::<u64>("seed", 1)?;
    let epochs = flags.get_parse::<usize>("epochs", 15)?;
    let batch_workers = flags.get_parse::<usize>("batch-workers", 1)?;
    let aug = parse_aug(flags.get("aug").unwrap_or("no-aug"))?;

    // Stratified 80/10/10 over whatever partitioning the file has; the
    // partition tag is ignored here (train on everything available).
    let mut collated = ds.clone();
    for f in &mut collated.flows {
        f.partition = Partition::Unpartitioned;
    }
    let split = stratified_three_way(&collated, Partition::Unpartitioned, 0.8, 0.1, seed);
    let fpcfg = FlowpicConfig::with_resolution(res);
    let norm = Normalization::LogMax;
    let train_set = FlowpicDataset::augmented(&collated, &split.train, aug, 3, &fpcfg, norm, seed);
    let val = FlowpicDataset::from_flows(&collated, &split.val, &fpcfg, norm);
    let test = FlowpicDataset::from_flows(&collated, &split.test, &fpcfg, norm);

    let trainer = SupervisedTrainer::new(TrainConfig {
        max_epochs: epochs,
        batch_workers,
        ..TrainConfig::supervised(seed)
    });
    let mut net = supervised_net(res, collated.num_classes(), true, seed);
    // Resumed runs append to an existing JSONL log so the event stream
    // accumulates across invocations; fresh runs start a new file.
    let mut obs = build_observer(&flags, resume)?;
    let summary = match &checkpoint_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            let mut spec = tcbench::supervised::CheckpointSpec::new(
                std::path::Path::new(dir).join("train.ckpt"),
            );
            if resume {
                spec = spec.resuming();
            }
            trainer
                .train_resumable_observed(&mut net, &train_set, Some(&val), &spec, &mut obs)
                .map_err(|e| CliError::Parse(format!("checkpoint: {e}")))?
        }
        None => trainer.train_observed(&mut net, &train_set, Some(&val), &mut obs),
    };
    let eval = trainer.evaluate(&net, &test);

    let model = SavedModel {
        arch: "supervised".into(),
        resolution: res,
        n_classes: collated.num_classes(),
        dropout: true,
        class_names: collated.class_names.clone(),
        weights: net.export_weights(),
    };
    let out = flags.require("out")?;
    std::fs::write(
        out,
        serde_json::to_string(&model).expect("model serializes"),
    )?;
    Ok(format!(
        "trained {} epochs on {} flowpics ({} augmented with {}); \
         test accuracy {:.2}%, weighted F1 {:.2}% -> {out}",
        summary.epochs,
        train_set.len(),
        aug.name(),
        aug.name(),
        100.0 * eval.accuracy,
        100.0 * eval.weighted_f1,
    ))
}

/// `tcb evaluate --input FILE --model MODEL.json`
fn evaluate(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["input", "model", "batch-workers"], &[])?;
    if flags.wants_help() {
        return Ok("tcb evaluate --input FILE --model MODEL.json [--batch-workers N]".into());
    }
    let ds = load_dataset(flags.require("input")?)?;
    let raw = std::fs::read_to_string(flags.require("model")?)?;
    let model: SavedModel =
        serde_json::from_str(&raw).map_err(|e| CliError::Parse(format!("model: {e}")))?;
    if ds.num_classes() != model.n_classes {
        return Err(CliError::Parse(format!(
            "model has {} classes, dataset has {}",
            model.n_classes,
            ds.num_classes()
        )));
    }
    let mut net = match model.arch.as_str() {
        "finetune" => tcbench::arch::finetune_net(model.resolution, model.n_classes, 0),
        "supervised" => supervised_net(model.resolution, model.n_classes, model.dropout, 0),
        other => return Err(CliError::Parse(format!("unknown model arch {other}"))),
    };
    net.import_weights(&model.weights);
    let fpcfg = FlowpicConfig::with_resolution(model.resolution);
    let indices: Vec<usize> = (0..ds.flows.len())
        .filter(|&i| !ds.flows[i].background)
        .collect();
    let data = FlowpicDataset::from_flows(&ds, &indices, &fpcfg, Normalization::LogMax);
    let trainer = SupervisedTrainer::new(TrainConfig {
        batch_workers: flags.get_parse::<usize>("batch-workers", 1)?,
        ..TrainConfig::supervised(0)
    });
    let eval = trainer.evaluate(&net, &data);
    let names: Vec<&str> = model.class_names.iter().map(String::as_str).collect();
    Ok(format!(
        "evaluated {} flows: accuracy {:.2}%, weighted F1 {:.2}%\n{}",
        data.len(),
        100.0 * eval.accuracy,
        100.0 * eval.weighted_f1,
        eval.confusion.ascii(&names)
    ))
}

/// `tcb serve --replay TRACE.flowrec --model MODEL [--model2 FILE] [--swap-at F]
/// [--rate N] [--max-batch N] [--max-wait-ms N] [--idle-timeout N] [--max-flows N]
/// [--flow-gap-ms N] [--workers N] [--log-jsonl PATH]`
fn serve_cmd(args: &[String]) -> Result<String, CliError> {
    use serve::engine::{CnnClassifier, EngineConfig};
    use serve::registry::ModelRegistry;
    use serve::replay::{replay, trace_from_dataset, ScheduledSwap};
    use serve::tracker::TrackerConfig;
    use std::sync::Arc;

    let flags = Flags::parse(
        args,
        &[
            "replay",
            "model",
            "model2",
            "swap-at",
            "rate",
            "max-batch",
            "max-wait-ms",
            "idle-timeout",
            "max-flows",
            "flow-gap-ms",
            "workers",
            "log-jsonl",
        ],
        &[],
    )?;
    if flags.wants_help() {
        return Ok(
            "tcb serve --replay TRACE.flowrec --model MODEL [--model2 FILE \
                   (hot-swap replacement)] [--swap-at 0.5 (swap after this fraction of \
                   the trace)] [--rate 1.0 (replay speed multiplier)] [--max-batch 16] \
                   [--max-wait-ms 500 (micro-batch deadline, stream time)] \
                   [--idle-timeout 30 (evict flows silent this many seconds)] \
                   [--max-flows 10000 (hard tracked-flow cap)] [--flow-gap-ms 400 \
                   (stagger between flow starts)] [--workers 1 (forward workers; 0 = \
                   all cores; any value gives bit-identical predictions)] \
                   [--log-jsonl PATH (one inference telemetry event per line)]\n\
                   MODEL is either a checkpoint-envelope model (ServedModel::save) or \
                   the JSON written by `tcb train`."
                .into(),
        );
    }
    let ds = load_dataset(flags.require("replay")?)?;
    let model = load_served_model(flags.require("model")?)?;
    let workers = flags.get_parse::<usize>("workers", 1)?;
    let cnn = CnnClassifier::from_served(&model, workers)
        .map_err(|e| CliError::Parse(format!("model: {e}")))?;
    let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));

    let rate = flags.get_parse::<f64>("rate", 1.0)?;
    if rate <= 0.0 {
        return Err(CliError::Usage("--rate must be positive".into()));
    }
    let flow_gap_s = flags.get_parse::<f64>("flow-gap-ms", 400.0)? / 1e3;
    let trace = trace_from_dataset(&ds, flow_gap_s, rate);

    let mut swaps = Vec::new();
    match flags.get("model2") {
        Some(path2) => {
            let second = load_served_model(path2)?;
            let cnn2 = CnnClassifier::from_served(&second, workers)
                .map_err(|e| CliError::Parse(format!("model2: {e}")))?;
            let frac = flags.get_parse::<f64>("swap-at", 0.5)?;
            if !(0.0..=1.0).contains(&frac) {
                return Err(CliError::Usage("--swap-at must be in [0, 1]".into()));
            }
            swaps.push(ScheduledSwap {
                at_packet: (trace.len() as f64 * frac) as usize,
                model: Arc::new(cnn2),
            });
        }
        None if flags.get("swap-at").is_some() => {
            return Err(CliError::Usage("--swap-at requires --model2".into()));
        }
        None => {}
    }

    let tracker_cfg = TrackerConfig {
        flowpic: FlowpicConfig::with_resolution(model.resolution),
        norm: Normalization::LogMax,
        idle_timeout_s: flags.get_parse::<f64>("idle-timeout", 30.0)?,
        max_flows: flags.get_parse::<usize>("max-flows", 10_000)?,
    };
    let engine_cfg = EngineConfig {
        max_batch: flags.get_parse::<usize>("max-batch", 16)?,
        max_wait_s: flags.get_parse::<f64>("max-wait-ms", 500.0)? / 1e3,
    };
    let mut obs: Box<dyn tcbench::telemetry::InferObserver> = match flags.get("log-jsonl") {
        Some(path) => Box::new(JsonlSink::create(path)?),
        None => Box::new(tcbench::telemetry::Noop),
    };
    let report = replay(
        &trace,
        &registry,
        tracker_cfg,
        engine_cfg,
        swaps,
        obs.as_mut(),
    )
    .map_err(|e| CliError::Parse(format!("serve: {e}")))?;
    Ok(report.render(&model.class_names))
}

/// Loads a serving model from either on-disk format: the checksummed
/// checkpoint envelope (`ServedModel::save`) or the JSON `SavedModel`
/// written by `tcb train`.
fn load_served_model(path: &str) -> Result<serve::registry::ServedModel, CliError> {
    if let Ok(m) = serve::registry::ServedModel::load(std::path::Path::new(path)) {
        return Ok(m);
    }
    let raw = std::fs::read_to_string(path)?;
    let m: SavedModel = serde_json::from_str(&raw).map_err(|e| {
        CliError::Parse(format!(
            "{path}: neither a checkpoint-envelope model nor tcb-train JSON: {e}"
        ))
    })?;
    Ok(serve::registry::ServedModel {
        arch: m.arch,
        resolution: m.resolution,
        n_classes: m.n_classes,
        dropout: m.dropout,
        class_names: m.class_names,
        weights: m.weights,
    })
}

/// A pre-trained SimCLR extractor persisted to disk.
#[derive(Serialize, Deserialize)]
pub struct SavedPretrained {
    /// Flowpic resolution.
    pub resolution: usize,
    /// Projection dimension used during pre-training.
    pub proj_dim: usize,
    /// Objective name ("simclr" | "supcon" | "byol").
    pub objective: String,
    /// Weights of the pre-training network.
    pub weights: nettensor::model::Weights,
}

/// `tcb pretrain --input FILE --out PRE.json [--objective simclr|supcon|byol]
/// [--res R] [--epochs N] [--seed N] [--progress] [--log-jsonl PATH]`
fn pretrain_cmd(args: &[String]) -> Result<String, CliError> {
    use augment::ViewPair;
    use tcbench::byol::pretrain_byol_observed;
    use tcbench::simclr::{pretrain_observed, pretrain_supcon_observed, SimClrConfig};
    let flags = Flags::parse(
        args,
        &[
            "input",
            "out",
            "objective",
            "res",
            "epochs",
            "seed",
            "batch-workers",
            "log-jsonl",
        ],
        &["progress"],
    )?;
    if flags.wants_help() {
        return Ok("tcb pretrain --input FILE --out PRE.json \
                   [--objective simclr|supcon|byol] [--res 32] [--epochs N] [--seed N] \
                   [--batch-workers N] [--progress (per-epoch progress on stderr)] \
                   [--log-jsonl PATH (one JSON event per line)]"
            .into());
    }
    let ds = load_dataset(flags.require("input")?)?;
    let res = flags.get_parse::<usize>("res", 32)?;
    let seed = flags.get_parse::<u64>("seed", 1)?;
    let epochs = flags.get_parse::<usize>("epochs", 10)?;
    let batch_workers = flags.get_parse::<usize>("batch-workers", 1)?;
    let objective = flags.get("objective").unwrap_or("simclr").to_string();
    let fpcfg = FlowpicConfig::with_resolution(res);
    let config = SimClrConfig {
        max_epochs: epochs,
        batch_workers,
        ..SimClrConfig::paper(seed)
    };
    let indices: Vec<usize> = (0..ds.flows.len())
        .filter(|&i| !ds.flows[i].background)
        .collect();
    let mut obs = build_observer(&flags, false)?;
    let (net, summary) = match objective.as_str() {
        "simclr" => pretrain_observed(
            &ds,
            &indices,
            ViewPair::paper(),
            &fpcfg,
            Normalization::LogMax,
            &config,
            &mut obs,
        ),
        "supcon" => pretrain_supcon_observed(
            &ds,
            &indices,
            ViewPair::paper(),
            &fpcfg,
            Normalization::LogMax,
            &config,
            &mut obs,
        ),
        "byol" => pretrain_byol_observed(
            &ds,
            &indices,
            ViewPair::paper(),
            &fpcfg,
            Normalization::LogMax,
            &config,
            &mut obs,
        ),
        other => return Err(CliError::Usage(format!("unknown objective {other}"))),
    };
    let saved = SavedPretrained {
        resolution: res,
        proj_dim: config.proj_dim,
        objective: objective.clone(),
        weights: net.export_weights(),
    };
    let out = flags.require("out")?;
    std::fs::write(
        out,
        serde_json::to_string(&saved).expect("model serializes"),
    )?;
    Ok(format!(
        "pre-trained {objective} on {} flows for {} epochs (final loss {:.3}) -> {out}",
        indices.len(),
        summary.epochs,
        summary.final_loss
    ))
}

/// `tcb finetune --input FILE --pretrained PRE.json --out MODEL.json
/// [--shots N] [--seed N] [--batch-workers N]`
fn finetune_cmd(args: &[String]) -> Result<String, CliError> {
    use tcbench::arch::{byol_net, simclr_net};
    use tcbench::simclr::{few_shot_subset, fine_tune};
    let flags = Flags::parse(
        args,
        &[
            "input",
            "pretrained",
            "out",
            "shots",
            "seed",
            "batch-workers",
        ],
        &[],
    )?;
    if flags.wants_help() {
        return Ok(
            "tcb finetune --input FILE --pretrained PRE.json --out MODEL.json \
                   [--shots 10] [--seed N] [--batch-workers N (any value gives \
                   bit-identical results)]"
                .into(),
        );
    }
    let ds = load_dataset(flags.require("input")?)?;
    let raw = std::fs::read_to_string(flags.require("pretrained")?)?;
    let saved: SavedPretrained =
        serde_json::from_str(&raw).map_err(|e| CliError::Parse(format!("pretrained: {e}")))?;
    let mut pre = if saved.objective == "byol" {
        byol_net(saved.resolution, saved.proj_dim, false, 0)
    } else {
        simclr_net(saved.resolution, saved.proj_dim, false, 0)
    };
    pre.import_weights(&saved.weights);

    let seed = flags.get_parse::<u64>("seed", 2)?;
    let shots = flags.get_parse::<usize>("shots", 10)?;
    let pool: Vec<usize> = (0..ds.flows.len())
        .filter(|&i| !ds.flows[i].background)
        .collect();
    let labeled_idx = few_shot_subset(&ds, &pool, shots, seed);
    let fpcfg = FlowpicConfig::with_resolution(saved.resolution);
    let labeled = FlowpicDataset::from_flows(&ds, &labeled_idx, &fpcfg, Normalization::LogMax);
    let batch_workers = flags.get_parse::<usize>("batch-workers", 1)?;
    let tuned = fine_tune(&pre, &labeled, seed, batch_workers);

    // Evaluate on everything outside the labeled subset.
    let rest: Vec<usize> = pool
        .iter()
        .copied()
        .filter(|i| !labeled_idx.contains(i))
        .collect();
    let test = FlowpicDataset::from_flows(&ds, &rest, &fpcfg, Normalization::LogMax);
    let trainer = SupervisedTrainer::new(TrainConfig::supervised(0));
    let eval = trainer.evaluate(&tuned, &test);

    let model = SavedModel {
        arch: "finetune".into(),
        resolution: saved.resolution,
        n_classes: ds.num_classes(),
        dropout: false,
        class_names: ds.class_names.clone(),
        weights: tuned.export_weights(),
    };
    let out = flags.require("out")?;
    std::fs::write(
        out,
        serde_json::to_string(&model).expect("model serializes"),
    )?;
    Ok(format!(
        "fine-tuned with {shots} labeled flows/class; held-out accuracy {:.2}% -> {out}\n\
         note: the saved model evaluates with `tcb evaluate` only on datasets of the\n\
         same class table.",
        100.0 * eval.accuracy
    ))
}

/// One grid cell of a `tcb campaign` run, persisted to the campaign
/// directory so a killed campaign resumes instead of recomputing.
#[derive(Debug, Clone)]
struct CampaignCell {
    aug: String,
    seed: u64,
    epochs: usize,
    final_train_loss: f64,
    accuracy: f64,
    weighted_f1: f64,
}

impl Persist for CampaignCell {
    fn encode(&self, out: &mut String) {
        self.aug.encode(out);
        self.seed.encode(out);
        self.epochs.encode(out);
        self.final_train_loss.encode(out);
        self.accuracy.encode(out);
        self.weighted_f1.encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        Ok(CampaignCell {
            aug: String::decode(d)?,
            seed: u64::decode(d)?,
            epochs: usize::decode(d)?,
            final_train_loss: f64::decode(d)?,
            accuracy: f64::decode(d)?,
            weighted_f1: f64::decode(d)?,
        })
    }
}

/// `tcb campaign --input FILE --dir DIR [--augs a,b,...] [--seeds N]
/// [--res R] [--epochs N] [--workers N] [--progress] [--log-jsonl PATH]`
///
/// Runs the supervised augmentation grid (augmentations × seeds) in
/// parallel with per-cell persistence: each finished cell is written to
/// `--dir` immediately, and rerunning the same command reuses finished
/// cells instead of recomputing them (Table 4's workflow at CLI scale).
fn campaign(args: &[String]) -> Result<String, CliError> {
    use tcbench::campaign::{run_parallel_resumable_observed, worker_budget};
    use tcbench::telemetry::CampaignProgress;
    let flags = Flags::parse(
        args,
        &[
            "input",
            "dir",
            "augs",
            "seeds",
            "res",
            "epochs",
            "workers",
            "log-jsonl",
        ],
        &["progress"],
    )?;
    if flags.wants_help() {
        return Ok(
            "tcb campaign --input FILE --dir DIR [--augs no-aug,rotate,... \
                   (default: all 7)] [--seeds N (seeds 1..=N, default 3)] [--res 32] \
                   [--epochs N] [--workers N (campaign threads; 0 = all cores, \
                   remaining cores go to batch sharding)] [--progress (per-task \
                   progress + ETA on stderr)] [--log-jsonl PATH (append one \
                   task_end JSON event per line)]\n\
                   Finished cells persist in --dir; rerun the same command to resume."
                .into(),
        );
    }
    let ds = load_dataset(flags.require("input")?)?;
    let dir = flags.require("dir")?;
    let res = flags.get_parse::<usize>("res", 32)?;
    let epochs = flags.get_parse::<usize>("epochs", 15)?;
    let n_seeds = flags.get_parse::<usize>("seeds", 3)?;
    if n_seeds == 0 {
        return Err(CliError::Usage("--seeds must be at least 1".into()));
    }
    let augs: Vec<Augmentation> = flags
        .get("augs")
        .unwrap_or("no-aug,rotate,flip,color-jitter,packet-loss,time-shift,change-rtt")
        .split(',')
        .map(|name| parse_aug(name.trim()))
        .collect::<Result<_, _>>()?;
    let n_tasks = augs.len() * n_seeds;
    let (campaign_workers, batch_workers) =
        worker_budget(flags.get_parse::<usize>("workers", 0)?, n_tasks);

    let mut collated = ds.clone();
    for f in &mut collated.flows {
        f.partition = Partition::Unpartitioned;
    }
    let fpcfg = FlowpicConfig::with_resolution(res);
    let norm = Normalization::LogMax;

    // The campaign sink only sees task_end events (per-epoch streams of
    // thousands of parallel cells would be noise); append mode lets a
    // resumed campaign keep one cumulative log.
    let progress = CampaignProgress::new(n_tasks, Box::new(build_observer(&flags, true)?));
    let (cells, report) = run_parallel_resumable_observed(
        n_tasks,
        campaign_workers,
        std::path::Path::new(dir),
        |i| {
            let aug = augs[i / n_seeds];
            let seed = 1 + (i % n_seeds) as u64;
            let split = stratified_three_way(&collated, Partition::Unpartitioned, 0.8, 0.1, seed);
            let train_set =
                FlowpicDataset::augmented(&collated, &split.train, aug, 3, &fpcfg, norm, seed);
            let val = FlowpicDataset::from_flows(&collated, &split.val, &fpcfg, norm);
            let test = FlowpicDataset::from_flows(&collated, &split.test, &fpcfg, norm);
            let trainer = SupervisedTrainer::new(TrainConfig {
                max_epochs: epochs,
                batch_workers,
                ..TrainConfig::supervised(seed)
            });
            let mut net = supervised_net(res, collated.num_classes(), true, seed);
            let summary = trainer.train(&mut net, &train_set, Some(&val));
            let eval = trainer.evaluate(&net, &test);
            CampaignCell {
                aug: aug.name().to_string(),
                seed,
                epochs: summary.epochs,
                final_train_loss: summary.final_train_loss,
                accuracy: eval.accuracy,
                weighted_f1: eval.weighted_f1,
            }
        },
        &progress,
    )
    .map_err(|e| CliError::Parse(format!("campaign: {e}")))?;

    let mut out = format!(
        "campaign: {} cells ({} augs x {} seeds) on {} workers; {} computed, {} reused",
        n_tasks,
        augs.len(),
        n_seeds,
        campaign_workers,
        report.computed,
        report.reused,
    );
    if !report.invalid.is_empty() {
        out.push_str(&format!(
            " ({} corrupted cell files recomputed)",
            report.invalid.len()
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<16} {:>4} {:>6} {:>10} {:>7} {:>7}\n",
        "aug", "seed", "epochs", "loss", "acc%", "f1%"
    ));
    for c in &cells {
        out.push_str(&format!(
            "{:<16} {:>4} {:>6} {:>10.4} {:>7.2} {:>7.2}\n",
            c.aug,
            c.seed,
            c.epochs,
            c.final_train_loss,
            100.0 * c.accuracy,
            100.0 * c.weighted_f1,
        ));
    }
    out.push_str("mean accuracy per augmentation:\n");
    for (a, chunk) in augs.iter().zip(cells.chunks(n_seeds)) {
        let mean = chunk.iter().map(|c| c.accuracy).sum::<f64>() / chunk.len() as f64;
        out.push_str(&format!("  {:<16} {:>6.2}%\n", a.name(), 100.0 * mean));
    }
    Ok(out)
}

/// `tcb windows --input FILE --out FILE [--window-s S] [--min-pkts N]`
///
/// Slices every flow into consecutive windows — the Ref-Paper's ISCX
/// artifice. The paper's replication warns this invites leakage when the
/// split is done at window level; see `ablation_iscx_leakage`.
fn windows(args: &[String]) -> Result<String, CliError> {
    use trafficgen::iscx::slice_dataset;
    let flags = Flags::parse(args, &["input", "out", "window-s", "min-pkts"], &[])?;
    if flags.wants_help() {
        return Ok("tcb windows --input FILE --out FILE [--window-s 15] [--min-pkts 10]".into());
    }
    let ds = load_dataset(flags.require("input")?)?;
    let window_s = flags.get_parse::<f64>("window-s", 15.0)?;
    let min_pkts = flags.get_parse::<usize>("min-pkts", 10)?;
    if window_s <= 0.0 {
        return Err(CliError::Usage("--window-s must be positive".into()));
    }
    let (sliced, parents) = slice_dataset(&ds, window_s, min_pkts);
    save_dataset(flags.require("out")?, &sliced)?;
    let multi = parents.len() as f64 / ds.flows.len().max(1) as f64;
    Ok(format!(
        "sliced {} flows into {} windows of {window_s}s ({multi:.1}x multiplication).\n\
         WARNING: windows of one flow are near-duplicates; split at FLOW level\n\
         (windows keep the parent flow id) or accept leakage-inflated scores.",
        ds.flows.len(),
        sliced.flows.len(),
    ))
}

fn default_arch() -> String {
    "supervised".into()
}

fn parse_aug(name: &str) -> Result<Augmentation, CliError> {
    Ok(match name {
        "no-aug" => Augmentation::NoAug,
        "rotate" => Augmentation::Rotate,
        "flip" => Augmentation::HorizontalFlip,
        "color-jitter" => Augmentation::ColorJitter,
        "packet-loss" => Augmentation::PacketLoss,
        "time-shift" => Augmentation::TimeShift,
        "change-rtt" => Augmentation::ChangeRtt,
        other => return Err(CliError::Usage(format!("unknown augmentation {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("tcb_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    #[test]
    fn generate_stats_round_trip() {
        let path = tmp("gen.flowrec");
        let msg = run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "3",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        assert!(msg.contains("ucdavis19"));
        let stats = run("stats", &argv(&["--input", &path])).unwrap();
        assert!(stats.contains("5 classes"), "{stats}");
        assert!(stats.contains("[pretraining]"), "{stats}");
    }

    #[test]
    fn curate_pipeline_via_cli() {
        let raw = tmp("m19.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "mirage19",
                "--scale",
                "tiny",
                "--seed",
                "1",
                "--out",
                &raw,
            ]),
        )
        .unwrap();
        let out = tmp("m19-cur.flowrec");
        let msg = run(
            "curate",
            &argv(&[
                "--input",
                &raw,
                "--out",
                &out,
                "--min-pkts",
                "10",
                "--min-class-size",
                "5",
                "--remove-acks",
                "--remove-background",
            ]),
        )
        .unwrap();
        assert!(msg.contains("curated"), "{msg}");
        let stats = run("stats", &argv(&["--input", &out])).unwrap();
        assert!(stats.contains("flows"), "{stats}");
    }

    #[test]
    fn flowpic_and_pcap_commands() {
        let path = tmp("uc2.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "9",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        let art = run(
            "flowpic",
            &argv(&["--input", &path, "--flow", "0", "--res", "16"]),
        )
        .unwrap();
        assert!(art.contains("class"), "{art}");
        assert!(art.lines().count() > 16);

        let pcap = tmp("flow0.pcap");
        let msg = run(
            "export-pcap",
            &argv(&["--input", &path, "--flow", "0", "--out", &pcap]),
        )
        .unwrap();
        assert!(msg.contains("packets"), "{msg}");
        // The written pcap parses back.
        let bytes = std::fs::read(&pcap).unwrap();
        assert!(trafficgen::pcap::pcap_to_pkts(&bytes).is_ok());
    }

    #[test]
    fn train_then_evaluate() {
        let path = tmp("train.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "4",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        let model = tmp("model.json");
        let msg = run(
            "train",
            &argv(&[
                "--input",
                &path,
                "--out",
                &model,
                "--aug",
                "change-rtt",
                "--res",
                "16",
                "--epochs",
                "3",
                "--seed",
                "2",
            ]),
        )
        .unwrap();
        assert!(msg.contains("test accuracy"), "{msg}");
        let eval = run("evaluate", &argv(&["--input", &path, "--model", &model])).unwrap();
        assert!(eval.contains("accuracy"), "{eval}");
        assert!(eval.contains("google-doc"), "{eval}");
    }

    #[test]
    fn train_with_checkpoint_dir_then_resume() {
        let path = tmp("train-ckpt.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "4",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        let ckpt_dir = tmp("ckpts");
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        let model = tmp("model-ckpt.json");
        let base = argv(&[
            "--input",
            &path,
            "--out",
            &model,
            "--res",
            "16",
            "--epochs",
            "2",
            "--seed",
            "2",
            "--checkpoint-dir",
            &ckpt_dir,
        ]);
        let msg = run("train", &base).unwrap();
        assert!(msg.contains("test accuracy"), "{msg}");
        assert!(
            std::path::Path::new(&ckpt_dir).join("train.ckpt").is_file(),
            "checkpoint file must exist after training"
        );
        // Resuming a finished run loads the checkpoint and skips straight
        // to the end — same output shape, no retraining.
        let mut resumed = base.clone();
        resumed.push("--resume".into());
        let msg2 = run("train", &resumed).unwrap();
        assert!(msg2.contains("test accuracy"), "{msg2}");
    }

    #[test]
    fn train_with_jsonl_log_emits_valid_event_stream() {
        let path = tmp("train-telemetry.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "4",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        let model = tmp("model-telemetry.json");
        let log = tmp("train.jsonl");
        let _ = std::fs::remove_file(&log);
        run(
            "train",
            &argv(&[
                "--input",
                &path,
                "--out",
                &model,
                "--res",
                "16",
                "--epochs",
                "2",
                "--seed",
                "2",
                "--log-jsonl",
                &log,
            ]),
        )
        .unwrap();
        let text = std::fs::read_to_string(&log).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines.first().unwrap().contains("\"event\":\"run_start\""),
            "{text}"
        );
        assert!(
            lines.last().unwrap().contains("\"event\":\"run_end\""),
            "{text}"
        );
        let epoch_ends = lines
            .iter()
            .filter(|l| l.contains("\"event\":\"epoch_end\""))
            .count();
        assert_eq!(epoch_ends, 2, "one epoch_end per epoch: {text}");
        // Every line is a self-contained versioned object.
        for line in &lines {
            assert!(line.starts_with("{\"v\":1,"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn campaign_computes_then_resumes() {
        let path = tmp("campaign-src.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "5",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        let dir = tmp("campaign-cells");
        let _ = std::fs::remove_dir_all(&dir);
        let log = tmp("campaign.jsonl");
        let _ = std::fs::remove_file(&log);
        let base = argv(&[
            "--input",
            &path,
            "--dir",
            &dir,
            "--augs",
            "no-aug,rotate",
            "--seeds",
            "1",
            "--res",
            "16",
            "--epochs",
            "2",
            "--workers",
            "2",
            "--log-jsonl",
            &log,
        ]);
        let msg = run("campaign", &base).unwrap();
        assert!(msg.contains("2 computed, 0 reused"), "{msg}");
        assert!(
            msg.contains("No augmentation") && msg.contains("Rotate"),
            "{msg}"
        );
        assert!(msg.contains("mean accuracy"), "{msg}");
        let text = std::fs::read_to_string(&log).unwrap();
        let task_ends = text
            .lines()
            .filter(|l| l.contains("\"event\":\"task_end\""))
            .count();
        assert_eq!(task_ends, 2, "{text}");
        // Rerunning reuses every persisted cell and reports the same grid.
        let msg2 = run("campaign", &base).unwrap();
        assert!(msg2.contains("0 computed, 2 reused"), "{msg2}");
        assert!(msg2.contains("No augmentation"), "{msg2}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_rejects_bad_grid() {
        assert!(run(
            "campaign",
            &argv(&["--input", "/missing", "--dir", "/tmp/x", "--augs", "bogus"]),
        )
        .is_err());
        assert!(run(
            "campaign",
            &argv(&["--input", "/missing", "--dir", "/tmp/x", "--seeds", "0"]),
        )
        .is_err());
    }

    #[test]
    fn resume_without_checkpoint_dir_is_a_usage_error() {
        let err = run(
            "train",
            &argv(&["--input", "/nonexistent", "--out", "/tmp/x", "--resume"]),
        )
        .unwrap_err();
        assert!(
            format!("{err}").contains("--checkpoint-dir"),
            "error must point at the missing flag: {err}"
        );
    }

    #[test]
    fn helpful_errors() {
        assert!(run("bogus", &[]).is_err());
        assert!(run("generate", &argv(&["--dataset", "nope", "--out", "/tmp/x"])).is_err());
        assert!(run(
            "train",
            &argv(&["--input", "/definitely/missing", "--out", "/tmp/x"])
        )
        .is_err());
        let help = run("curate", &argv(&["--help"])).unwrap();
        assert!(help.contains("--min-pkts"));
    }
}

#[cfg(test)]
mod window_tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("tcb_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    #[test]
    fn windows_command_slices_and_warns() {
        let path = tmp("win-src.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "6",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        let out = tmp("win-out.flowrec");
        let msg = run(
            "windows",
            &argv(&[
                "--input",
                &path,
                "--out",
                &out,
                "--window-s",
                "5",
                "--min-pkts",
                "2",
            ]),
        )
        .unwrap();
        assert!(msg.contains("sliced"), "{msg}");
        assert!(msg.contains("WARNING"), "{msg}");
        let stats = run("stats", &argv(&["--input", &out])).unwrap();
        assert!(stats.contains("flows"));
    }

    #[test]
    fn windows_rejects_bad_window() {
        let path = tmp("win-src2.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "6",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        assert!(run(
            "windows",
            &argv(&["--input", &path, "--out", "/tmp/x", "--window-s", "-1"]),
        )
        .is_err());
    }
}

#[cfg(test)]
mod contrastive_cli_tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("tcb_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    #[test]
    fn pretrain_then_finetune_cli() {
        let data = tmp("pre-src.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "8",
                "--out",
                &data,
            ]),
        )
        .unwrap();
        let pre = tmp("pre.json");
        let msg = run(
            "pretrain",
            &argv(&[
                "--input",
                &data,
                "--out",
                &pre,
                "--objective",
                "simclr",
                "--res",
                "16",
                "--epochs",
                "2",
                "--seed",
                "3",
            ]),
        )
        .unwrap();
        assert!(msg.contains("pre-trained simclr"), "{msg}");
        let model = tmp("tuned.json");
        let msg = run(
            "finetune",
            &argv(&[
                "--input",
                &data,
                "--pretrained",
                &pre,
                "--out",
                &model,
                "--shots",
                "4",
            ]),
        )
        .unwrap();
        assert!(msg.contains("fine-tuned"), "{msg}");
        let eval = run("evaluate", &argv(&["--input", &data, "--model", &model])).unwrap();
        assert!(eval.contains("accuracy"), "{eval}");
    }

    #[test]
    fn pretrain_rejects_unknown_objective() {
        let data = tmp("pre-src2.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "8",
                "--out",
                &data,
            ]),
        )
        .unwrap();
        assert!(run(
            "pretrain",
            &argv(&["--input", &data, "--out", "/tmp/x", "--objective", "nope"]),
        )
        .is_err());
    }

    /// A random-initialized serving model in the checkpoint-envelope
    /// format (`tcb train`'s JSON needs serde_json, unavailable in the
    /// offline test environment).
    fn write_served_model(name: &str, res: usize, n_classes: usize, seed: u64) -> String {
        let net = supervised_net(res, n_classes, true, seed);
        let model = serve::registry::ServedModel {
            arch: "supervised".into(),
            resolution: res,
            n_classes,
            dropout: true,
            class_names: (0..n_classes).map(|i| format!("class{i}")).collect(),
            weights: net.export_weights(),
        };
        let path = tmp(name);
        model.save(std::path::Path::new(&path)).unwrap();
        path
    }

    #[test]
    fn serve_replays_a_trace_and_reports_latency() {
        let data = tmp("serve.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "5",
                "--out",
                &data,
            ]),
        )
        .unwrap();
        let model = write_served_model("serve-model.ckpt", 16, 5, 1);
        let jsonl = tmp("serve.jsonl");
        let msg = run(
            "serve",
            &argv(&[
                "--replay",
                &data,
                "--model",
                &model,
                "--rate",
                "10",
                "--max-batch",
                "8",
                "--log-jsonl",
                &jsonl,
            ]),
        )
        .unwrap();
        assert!(msg.contains("flows classified"), "{msg}");
        assert!(msg.contains("p50"), "{msg}");
        assert!(msg.contains("samples/sec"), "{msg}");
        let log = std::fs::read_to_string(&jsonl).unwrap();
        assert!(log.contains("\"event\":\"stream_start\""), "{log}");
        assert!(log.contains("\"event\":\"infer_batch_end\""), "{log}");
        assert!(log
            .trim_end()
            .lines()
            .last()
            .unwrap()
            .contains("stream_end"));
    }

    #[test]
    fn serve_hot_swaps_mid_replay() {
        let data = tmp("serve-swap.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "6",
                "--out",
                &data,
            ]),
        )
        .unwrap();
        let model_a = write_served_model("serve-a.ckpt", 16, 5, 1);
        let model_b = write_served_model("serve-b.ckpt", 16, 5, 2);
        let msg = run(
            "serve",
            &argv(&[
                "--replay",
                &data,
                "--model",
                &model_a,
                "--model2",
                &model_b,
                "--swap-at",
                "0.5",
            ]),
        )
        .unwrap();
        assert!(msg.contains("1 hot-swap(s)"), "{msg}");
        assert!(msg.contains("flows classified"), "{msg}");
    }

    #[test]
    fn serve_usage_errors() {
        let data = tmp("serve-usage.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "7",
                "--out",
                &data,
            ]),
        )
        .unwrap();
        let model = write_served_model("serve-usage.ckpt", 16, 5, 3);
        // --swap-at without --model2 is meaningless.
        assert!(run(
            "serve",
            &argv(&["--replay", &data, "--model", &model, "--swap-at", "0.5"]),
        )
        .is_err());
        assert!(run(
            "serve",
            &argv(&["--replay", &data, "--model", &model, "--rate", "0"]),
        )
        .is_err());
        // A model file that is neither format is a parse error.
        let bogus = tmp("serve-bogus.model");
        std::fs::write(&bogus, "not a model").unwrap();
        assert!(run("serve", &argv(&["--replay", &data, "--model", &bogus])).is_err());
    }
}
