//! Hand-rolled flag parsing.
//!
//! Deliberately dependency-free: the grammar is flat (`--flag value`,
//! `--flag=value` and boolean `--flag`), so a small table-driven parser
//! beats pulling in an argument-parsing crate the offline dependency
//! policy doesn't cover.

use crate::CliError;
use std::collections::BTreeMap;

/// Parsed flags of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `args` given the sets of value-taking and boolean flags.
    /// `--help` is always accepted.
    pub fn parse(
        args: &[String],
        value_flags: &[&str],
        switch_flags: &[&str],
    ) -> Result<Flags, CliError> {
        let mut flags = Flags::default();
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_str();
            if arg == "--help" {
                flags.switches.push("help".into());
            } else if let Some(name) = arg.strip_prefix("--") {
                // `--flag=value` splits at the FIRST `=`, so the value may
                // itself contain `=` (`--out=a=b.json` → out = "a=b.json").
                if let Some((key, value)) = name.split_once('=') {
                    if value_flags.contains(&key) {
                        flags.values.insert(key.to_string(), value.to_string());
                    } else if key == "help" || switch_flags.contains(&key) {
                        return Err(CliError::Usage(format!("--{key} does not take a value")));
                    } else {
                        return Err(CliError::Usage(format!("unknown flag --{key}")));
                    }
                } else if value_flags.contains(&name) {
                    i += 1;
                    let value = args
                        .get(i)
                        .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
                    flags.values.insert(name.to_string(), value.clone());
                } else if switch_flags.contains(&name) {
                    flags.switches.push(name.to_string());
                } else {
                    return Err(CliError::Usage(format!("unknown flag --{name}")));
                }
            } else {
                return Err(CliError::Usage(format!("unexpected argument {arg}")));
            }
            i += 1;
        }
        Ok(flags)
    }

    /// Whether `--help` was passed.
    pub fn wants_help(&self) -> bool {
        self.switch("help")
    }

    /// String value of a flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Required string value.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::Usage(format!("--{name} is required")))
    }

    /// Parsed value with a default.
    pub fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name}: cannot parse {raw:?}"))),
        }
    }

    /// Parsed value without a default: `Ok(None)` when the flag is
    /// absent, a usage error when present but unparseable.
    pub fn get_opt_parse<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("--{name}: cannot parse {raw:?}"))),
        }
    }

    /// Whether a boolean switch was passed.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let f = Flags::parse(
            &argv(&["--input", "a.flowrec", "--remove-acks", "--seed", "7"]),
            &["input", "seed"],
            &["remove-acks"],
        )
        .unwrap();
        assert_eq!(f.get("input"), Some("a.flowrec"));
        assert_eq!(f.get_parse::<u64>("seed", 0).unwrap(), 7);
        assert!(f.switch("remove-acks"));
        assert!(!f.switch("collate"));
    }

    #[test]
    fn rejects_unknown_flags() {
        let err = Flags::parse(&argv(&["--bogus"]), &[], &[]).unwrap_err();
        assert!(err.to_string().contains("--bogus"));
    }

    #[test]
    fn rejects_missing_value() {
        let err = Flags::parse(&argv(&["--input"]), &["input"], &[]).unwrap_err();
        assert!(err.to_string().contains("needs a value"));
    }

    #[test]
    fn rejects_positional_arguments() {
        let err = Flags::parse(&argv(&["stray"]), &[], &[]).unwrap_err();
        assert!(err.to_string().contains("unexpected argument"));
    }

    #[test]
    fn require_and_defaults() {
        let f = Flags::parse(&argv(&[]), &["x"], &[]).unwrap();
        assert!(f.require("x").is_err());
        assert_eq!(f.get_parse::<usize>("x", 32).unwrap(), 32);
    }

    #[test]
    fn bad_parse_is_a_usage_error() {
        let f = Flags::parse(&argv(&["--seed", "abc"]), &["seed"], &[]).unwrap();
        assert!(f.get_parse::<u64>("seed", 0).is_err());
    }

    #[test]
    fn help_always_accepted() {
        let f = Flags::parse(&argv(&["--help"]), &[], &[]).unwrap();
        assert!(f.wants_help());
    }

    #[test]
    fn equals_form_parses_value_flags() {
        let f = Flags::parse(
            &argv(&["--input=a.flowrec", "--seed=7", "--remove-acks"]),
            &["input", "seed"],
            &["remove-acks"],
        )
        .unwrap();
        assert_eq!(f.get("input"), Some("a.flowrec"));
        assert_eq!(f.get_parse::<u64>("seed", 0).unwrap(), 7);
        assert!(f.switch("remove-acks"));
    }

    #[test]
    fn equals_form_splits_at_first_equals_only() {
        let f = Flags::parse(&argv(&["--out=a=b.json"]), &["out"], &[]).unwrap();
        assert_eq!(f.get("out"), Some("a=b.json"));
    }

    #[test]
    fn equals_form_allows_empty_value() {
        let f = Flags::parse(&argv(&["--out="]), &["out"], &[]).unwrap();
        assert_eq!(f.get("out"), Some(""));
    }

    #[test]
    fn both_forms_mix_freely() {
        let f = Flags::parse(
            &argv(&["--input", "x.flowrec", "--out=y.json"]),
            &["input", "out"],
            &[],
        )
        .unwrap();
        assert_eq!(f.get("input"), Some("x.flowrec"));
        assert_eq!(f.get("out"), Some("y.json"));
    }

    #[test]
    fn equals_on_a_switch_is_a_usage_error() {
        let err = Flags::parse(&argv(&["--resume=yes"]), &[], &["resume"]).unwrap_err();
        assert!(err.to_string().contains("does not take a value"), "{err}");
        let err = Flags::parse(&argv(&["--help=1"]), &[], &[]).unwrap_err();
        assert!(err.to_string().contains("does not take a value"), "{err}");
    }

    #[test]
    fn opt_parse_distinguishes_absent_from_bad() {
        let f = Flags::parse(&argv(&["--seed", "7"]), &["seed", "rate"], &[]).unwrap();
        assert_eq!(f.get_opt_parse::<u64>("seed").unwrap(), Some(7));
        assert_eq!(f.get_opt_parse::<f64>("rate").unwrap(), None);
        let f = Flags::parse(&argv(&["--seed", "x"]), &["seed"], &[]).unwrap();
        assert!(f.get_opt_parse::<u64>("seed").is_err());
    }

    #[test]
    fn equals_on_an_unknown_flag_is_rejected() {
        let err = Flags::parse(&argv(&["--bogus=3"]), &["seed"], &[]).unwrap_err();
        assert!(err.to_string().contains("--bogus"), "{err}");
    }
}
