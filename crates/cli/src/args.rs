//! Hand-rolled flag parsing.
//!
//! Deliberately dependency-free: the grammar is flat (`--flag value` and
//! boolean `--flag`), so a small table-driven parser beats pulling in an
//! argument-parsing crate the offline dependency policy doesn't cover.

use crate::CliError;
use std::collections::BTreeMap;

/// Parsed flags of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `args` given the sets of value-taking and boolean flags.
    /// `--help` is always accepted.
    pub fn parse(
        args: &[String],
        value_flags: &[&str],
        switch_flags: &[&str],
    ) -> Result<Flags, CliError> {
        let mut flags = Flags::default();
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_str();
            if arg == "--help" {
                flags.switches.push("help".into());
            } else if let Some(name) = arg.strip_prefix("--") {
                if value_flags.contains(&name) {
                    i += 1;
                    let value = args
                        .get(i)
                        .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
                    flags.values.insert(name.to_string(), value.clone());
                } else if switch_flags.contains(&name) {
                    flags.switches.push(name.to_string());
                } else {
                    return Err(CliError::Usage(format!("unknown flag --{name}")));
                }
            } else {
                return Err(CliError::Usage(format!("unexpected argument {arg}")));
            }
            i += 1;
        }
        Ok(flags)
    }

    /// Whether `--help` was passed.
    pub fn wants_help(&self) -> bool {
        self.switch("help")
    }

    /// String value of a flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Required string value.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::Usage(format!("--{name} is required")))
    }

    /// Parsed value with a default.
    pub fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name}: cannot parse {raw:?}"))),
        }
    }

    /// Whether a boolean switch was passed.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let f = Flags::parse(
            &argv(&["--input", "a.flowrec", "--remove-acks", "--seed", "7"]),
            &["input", "seed"],
            &["remove-acks"],
        )
        .unwrap();
        assert_eq!(f.get("input"), Some("a.flowrec"));
        assert_eq!(f.get_parse::<u64>("seed", 0).unwrap(), 7);
        assert!(f.switch("remove-acks"));
        assert!(!f.switch("collate"));
    }

    #[test]
    fn rejects_unknown_flags() {
        let err = Flags::parse(&argv(&["--bogus"]), &[], &[]).unwrap_err();
        assert!(err.to_string().contains("--bogus"));
    }

    #[test]
    fn rejects_missing_value() {
        let err = Flags::parse(&argv(&["--input"]), &["input"], &[]).unwrap_err();
        assert!(err.to_string().contains("needs a value"));
    }

    #[test]
    fn rejects_positional_arguments() {
        let err = Flags::parse(&argv(&["stray"]), &[], &[]).unwrap_err();
        assert!(err.to_string().contains("unexpected argument"));
    }

    #[test]
    fn require_and_defaults() {
        let f = Flags::parse(&argv(&[]), &["x"], &[]).unwrap();
        assert!(f.require("x").is_err());
        assert_eq!(f.get_parse::<usize>("x", 32).unwrap(), 32);
    }

    #[test]
    fn bad_parse_is_a_usage_error() {
        let f = Flags::parse(&argv(&["--seed", "abc"]), &["seed"], &[]).unwrap();
        assert!(f.get_parse::<u64>("seed", 0).is_err());
    }

    #[test]
    fn help_always_accepted() {
        let f = Flags::parse(&argv(&["--help"]), &[], &[]).unwrap();
        assert!(f.wants_help());
    }
}
