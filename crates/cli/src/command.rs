//! The typed subcommand surface.
//!
//! Every `tcb` subcommand is a [`Command`] variant backed by one module
//! under [`crate::cmd`]. The enum is the single source of truth: the
//! top-level usage text is generated from it ([`usage`]), name lookup
//! goes through it ([`Command::from_name`]), and dispatch is a plain
//! `match` with no string fallthrough — adding a subcommand means adding
//! a variant, and the compiler then points at every place that must
//! learn about it.

use crate::cmd;
use crate::CliError;

/// One `tcb` subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Simulate a dataset into a flowrec file.
    Generate,
    /// Run the paper's curation pipeline on a flowrec file.
    Curate,
    /// Print Table 2-style statistics of a flowrec file.
    Stats,
    /// Render one flow's flowpic as an ASCII heatmap.
    Flowpic,
    /// Write one flow as a pcap capture.
    ExportPcap,
    /// Slice flows into 15 s windows (the ISCX artifice).
    Windows,
    /// Train a supervised flowpic classifier.
    Train,
    /// SimCLR/SupCon/BYOL pre-training on unlabeled flows.
    Pretrain,
    /// Few-shot fine-tune a pre-trained extractor.
    Finetune,
    /// Evaluate a saved model on a flowrec file.
    Evaluate,
    /// Replay a trace through the online inference engine, or host the
    /// serving daemon.
    Serve,
    /// Send one control request to a running serving daemon.
    Ctl,
    /// Run the augmentation × seed grid with resume + progress.
    Campaign,
}

impl Command {
    /// Every subcommand, in the order the usage text lists them.
    pub const ALL: [Command; 13] = [
        Command::Generate,
        Command::Curate,
        Command::Stats,
        Command::Flowpic,
        Command::ExportPcap,
        Command::Windows,
        Command::Train,
        Command::Pretrain,
        Command::Finetune,
        Command::Evaluate,
        Command::Serve,
        Command::Ctl,
        Command::Campaign,
    ];

    /// The subcommand's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Command::Generate => cmd::generate::NAME,
            Command::Curate => cmd::curate::NAME,
            Command::Stats => cmd::stats::NAME,
            Command::Flowpic => cmd::flowpic::NAME,
            Command::ExportPcap => cmd::export_pcap::NAME,
            Command::Windows => cmd::windows::NAME,
            Command::Train => cmd::train::NAME,
            Command::Pretrain => cmd::pretrain::NAME,
            Command::Finetune => cmd::finetune::NAME,
            Command::Evaluate => cmd::evaluate::NAME,
            Command::Serve => cmd::serve::NAME,
            Command::Ctl => cmd::ctl::NAME,
            Command::Campaign => cmd::campaign::NAME,
        }
    }

    /// One-line summary for the usage listing.
    pub fn summary(self) -> &'static str {
        match self {
            Command::Generate => cmd::generate::SUMMARY,
            Command::Curate => cmd::curate::SUMMARY,
            Command::Stats => cmd::stats::SUMMARY,
            Command::Flowpic => cmd::flowpic::SUMMARY,
            Command::ExportPcap => cmd::export_pcap::SUMMARY,
            Command::Windows => cmd::windows::SUMMARY,
            Command::Train => cmd::train::SUMMARY,
            Command::Pretrain => cmd::pretrain::SUMMARY,
            Command::Finetune => cmd::finetune::SUMMARY,
            Command::Evaluate => cmd::evaluate::SUMMARY,
            Command::Serve => cmd::serve::SUMMARY,
            Command::Ctl => cmd::ctl::SUMMARY,
            Command::Campaign => cmd::campaign::SUMMARY,
        }
    }

    /// Full `--help` text.
    pub fn help(self) -> &'static str {
        match self {
            Command::Generate => cmd::generate::HELP,
            Command::Curate => cmd::curate::HELP,
            Command::Stats => cmd::stats::HELP,
            Command::Flowpic => cmd::flowpic::HELP,
            Command::ExportPcap => cmd::export_pcap::HELP,
            Command::Windows => cmd::windows::HELP,
            Command::Train => cmd::train::HELP,
            Command::Pretrain => cmd::pretrain::HELP,
            Command::Finetune => cmd::finetune::HELP,
            Command::Evaluate => cmd::evaluate::HELP,
            Command::Serve => cmd::serve::HELP,
            Command::Ctl => cmd::ctl::HELP,
            Command::Campaign => cmd::campaign::HELP,
        }
    }

    /// Looks a subcommand up by its CLI name.
    pub fn from_name(name: &str) -> Option<Command> {
        Command::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Runs the subcommand. Returns the text to print on success.
    pub fn run(self, args: &[String]) -> Result<String, CliError> {
        match self {
            Command::Generate => cmd::generate::run(args),
            Command::Curate => cmd::curate::run(args),
            Command::Stats => cmd::stats::run(args),
            Command::Flowpic => cmd::flowpic::run(args),
            Command::ExportPcap => cmd::export_pcap::run(args),
            Command::Windows => cmd::windows::run(args),
            Command::Train => cmd::train::run(args),
            Command::Pretrain => cmd::pretrain::run(args),
            Command::Finetune => cmd::finetune::run(args),
            Command::Evaluate => cmd::evaluate::run(args),
            Command::Serve => cmd::serve::run(args),
            Command::Ctl => cmd::ctl::run(args),
            Command::Campaign => cmd::campaign::run(args),
        }
    }
}

/// The top-level usage text, generated from [`Command::ALL`] so it can
/// never drift from the dispatch table.
pub fn usage() -> String {
    let mut s = String::from("tcb — traffic-classification bench tool\n\nsubcommands:\n");
    for c in Command::ALL {
        s.push_str(&format!("  {:<12} {}\n", c.name(), c.summary()));
    }
    s.push_str(
        "\ntrain, pretrain and campaign accept --progress (human-readable progress\n\
         on stderr) and --log-jsonl PATH (one JSON telemetry event per line);\n\
         telemetry is observability-only and never alters training results.\n\n\
         run `tcb <subcommand> --help` for flags.",
    );
    s
}

/// Dispatches a subcommand by name. Returns the text to print on
/// success; an unknown name is a usage error carrying the full usage
/// text.
pub fn run(subcommand: &str, args: &[String]) -> Result<String, CliError> {
    match Command::from_name(subcommand) {
        Some(command) => command.run(args),
        None => Err(CliError::Usage(format!(
            "unknown subcommand {subcommand}\n\n{}",
            usage()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn usage_lists_every_command_and_every_help_renders() {
        // The golden contract: the generated usage names every variant,
        // and each subcommand's --help renders without error and names
        // the subcommand it documents.
        let usage = usage();
        for c in Command::ALL {
            assert!(
                usage.contains(c.name()),
                "usage must list {}: {usage}",
                c.name()
            );
            assert!(!c.summary().is_empty(), "{} needs a summary", c.name());
            let help = c
                .run(&argv(&["--help"]))
                .unwrap_or_else(|e| panic!("{} --help must render, got {e}", c.name()));
            assert!(
                help.contains(&format!("tcb {}", c.name())),
                "{} help must document its own invocation: {help}",
                c.name()
            );
            assert_eq!(help, c.help(), "{} --help and help() must agree", c.name());
        }
    }

    #[test]
    fn names_round_trip_and_are_unique() {
        for c in Command::ALL {
            assert_eq!(Command::from_name(c.name()), Some(c));
        }
        let mut names: Vec<&str> = Command::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Command::ALL.len(), "duplicate command name");
    }

    #[test]
    fn unknown_subcommand_is_a_usage_error_with_usage_text() {
        match run("bogus", &[]) {
            Err(CliError::Usage(msg)) => {
                assert!(msg.contains("unknown subcommand bogus"), "{msg}");
                assert!(msg.contains("subcommands:"), "{msg}");
            }
            other => panic!("expected a usage error, got {other:?}"),
        }
    }

    #[test]
    fn helpful_errors() {
        assert!(run("generate", &argv(&["--dataset", "nope", "--out", "/tmp/x"])).is_err());
        assert!(run(
            "train",
            &argv(&["--input", "/definitely/missing", "--out", "/tmp/x"])
        )
        .is_err());
        let help = run("curate", &argv(&["--help"])).unwrap();
        assert!(help.contains("--min-pkts"));
    }
}
