//! `tcb` entry point — see [`tcbench_cli`] for the command logic.
//!
//! Exit codes: 0 on success, 2 on usage errors (bad flags, unknown
//! subcommand, missing arguments), 1 on runtime errors (I/O, parse,
//! daemon failures).

use tcbench_cli::CliError;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((subcommand, rest)) = args.split_first() else {
        eprintln!("{}", tcbench_cli::usage());
        std::process::exit(2);
    };
    if subcommand == "--help" || subcommand == "help" {
        println!("{}", tcbench_cli::usage());
        return;
    }
    match tcbench_cli::run(subcommand, rest) {
        Ok(output) => println!("{output}"),
        Err(e @ CliError::Usage(_)) => {
            eprintln!("tcb: {e}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("tcb: {e}");
            std::process::exit(1);
        }
    }
}
