//! `tcb` entry point — see [`tcbench_cli`] for the command logic.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((subcommand, rest)) = args.split_first() else {
        eprintln!("{}", tcbench_cli::USAGE);
        std::process::exit(2);
    };
    if subcommand == "--help" || subcommand == "help" {
        println!("{}", tcbench_cli::USAGE);
        return;
    }
    match tcbench_cli::commands::run(subcommand, rest) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("tcb: {e}");
            std::process::exit(1);
        }
    }
}
