//! # tcbench-cli — the `tcb` command
//!
//! A small operational surface over the workspace, mirroring the original
//! tcbench framework's command-line ergonomics: generate simulated
//! datasets to `flowrec` files, curate them, inspect their Table 2-style
//! statistics, render flowpics, export flows to pcap, and train/evaluate
//! supervised models whose weights persist as JSON.
//!
//! ```text
//! tcb generate --dataset ucdavis19 --scale quick --seed 42 --out uc.flowrec
//! tcb stats    --input uc.flowrec
//! tcb curate   --input m19.flowrec --min-pkts 10 --min-class-size 100 \
//!              --remove-acks --remove-background --out m19-cur.flowrec
//! tcb flowpic  --input uc.flowrec --flow 3 --res 32
//! tcb export-pcap --input uc.flowrec --flow 3 --out flow3.pcap
//! tcb train    --input uc.flowrec --aug change-rtt --res 32 --out model.json
//! tcb evaluate --input uc.flowrec --model model.json
//! ```
//!
//! ```text
//! tcb serve    --replay uc.flowrec --model model.json --rate 10
//! tcb serve    --daemon --socket /run/tcb.sock --model model.json
//! tcb ctl      stats --socket /run/tcb.sock
//! ```
//!
//! Every subcommand is a [`command::Command`] variant backed by one
//! module under [`cmd`]; the top-level usage text is generated from the
//! enum ([`command::usage`]). The library half hosts the argument
//! parsing and command logic so they are unit-testable; `main.rs` is a
//! thin shell.

pub mod args;
pub mod cmd;
pub mod command;

pub use command::{run, usage, Command};

use std::fmt;

/// CLI-level errors, rendered to stderr by `main`. [`CliError::Usage`]
/// exits with status 2, everything else with status 1.
#[derive(Debug)]
pub enum CliError {
    /// Bad usage (unknown flag, missing value, unknown subcommand).
    Usage(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// A flowrec/pcap/model file failed to parse, or a runtime failure.
    Parse(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
