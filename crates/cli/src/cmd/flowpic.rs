//! `tcb flowpic` — render one flow's flowpic as an ASCII heatmap.

use crate::args::Flags;
use crate::cmd::common::load_dataset;
use crate::CliError;
use flowpic::render::ascii_heatmap;
use flowpic::{Flowpic, FlowpicConfig};

/// CLI name.
pub const NAME: &str = "flowpic";
/// Usage-listing summary.
pub const SUMMARY: &str = "render one flow's flowpic as an ASCII heatmap";
/// `--help` text.
pub const HELP: &str = "tcb flowpic --input FILE --flow INDEX [--res 32]";

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["input", "flow", "res"], &[])?;
    if flags.wants_help() {
        return Ok(HELP.into());
    }
    let ds = load_dataset(flags.require("input")?)?;
    let idx = flags.get_parse::<usize>("flow", 0)?;
    let flow = ds
        .flows
        .get(idx)
        .ok_or_else(|| CliError::Usage(format!("flow index {idx} out of range")))?;
    let res = flags.get_parse::<usize>("res", 32)?;
    let pic = Flowpic::build(&flow.pkts, &FlowpicConfig::with_resolution(res));
    Ok(format!(
        "flow {idx}: class {} ({}), {} pkts, {:.1}s\n{}",
        flow.class,
        ds.class_names[flow.class as usize],
        flow.len(),
        flow.duration(),
        ascii_heatmap(&pic)
    ))
}

#[cfg(test)]
mod tests {
    use crate::cmd::common::testutil::{argv, tmp};
    use crate::command::run;

    #[test]
    fn flowpic_and_pcap_commands() {
        let path = tmp("uc2.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "9",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        let art = run(
            "flowpic",
            &argv(&["--input", &path, "--flow", "0", "--res", "16"]),
        )
        .unwrap();
        assert!(art.contains("class"), "{art}");
        assert!(art.lines().count() > 16);

        let pcap = tmp("flow0.pcap");
        let msg = run(
            "export-pcap",
            &argv(&["--input", &path, "--flow", "0", "--out", &pcap]),
        )
        .unwrap();
        assert!(msg.contains("packets"), "{msg}");
        // The written pcap parses back.
        let bytes = std::fs::read(&pcap).unwrap();
        assert!(trafficgen::pcap::pcap_to_pkts(&bytes).is_ok());
    }
}
