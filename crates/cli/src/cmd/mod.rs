//! One module per subcommand.
//!
//! Each module exposes the same tiny surface the [`crate::command`]
//! enum composes over: `NAME` (the CLI name), `SUMMARY` (one line for
//! the usage listing), `HELP` (the full `--help` text) and
//! `run(args) -> Result<String, CliError>`. Flag *syntax* lives here;
//! the semantics live in typed configs next to the library entry points
//! each command calls (`tcbench::supervised::SupervisedJob`,
//! `serve::replay::ReplayConfig`, `serve::daemon::DaemonConfig`, ...).

pub mod campaign;
pub mod common;
pub mod ctl;
pub mod curate;
pub mod evaluate;
pub mod export_pcap;
pub mod finetune;
pub mod flowpic;
pub mod generate;
pub mod pretrain;
pub mod serve;
pub mod stats;
pub mod train;
pub mod windows;
