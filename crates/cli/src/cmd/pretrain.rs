//! `tcb pretrain` — contrastive pre-training (SimCLR / SupCon / BYOL).

use crate::args::Flags;
use crate::cmd::common::{build_observer, load_dataset};
use crate::CliError;
use flowpic::{FlowpicConfig, Normalization};
use serde::{Deserialize, Serialize};

/// CLI name.
pub const NAME: &str = "pretrain";
/// Usage-listing summary.
pub const SUMMARY: &str = "contrastive pre-training (simclr / supcon / byol)";
/// `--help` text.
pub const HELP: &str = "tcb pretrain --input FILE --out PRE.json \
[--objective simclr|supcon|byol] [--res 32] [--epochs N] [--seed N] \
[--batch-workers N] [--progress (per-epoch progress on stderr)] \
[--log-jsonl PATH (one JSON event per line)]";

/// A pre-trained SimCLR extractor persisted to disk.
#[derive(Serialize, Deserialize)]
pub struct SavedPretrained {
    /// Flowpic resolution.
    pub resolution: usize,
    /// Projection dimension used during pre-training.
    pub proj_dim: usize,
    /// Objective name ("simclr" | "supcon" | "byol").
    pub objective: String,
    /// Weights of the pre-training network.
    pub weights: nettensor::model::Weights,
}

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<String, CliError> {
    use augment::ViewPair;
    use tcbench::byol::pretrain_byol_observed;
    use tcbench::simclr::{pretrain_observed, pretrain_supcon_observed, SimClrConfig};
    let flags = Flags::parse(
        args,
        &[
            "input",
            "out",
            "objective",
            "res",
            "epochs",
            "seed",
            "batch-workers",
            "log-jsonl",
        ],
        &["progress"],
    )?;
    if flags.wants_help() {
        return Ok(HELP.into());
    }
    let ds = load_dataset(flags.require("input")?)?;
    let res = flags.get_parse::<usize>("res", 32)?;
    let seed = flags.get_parse::<u64>("seed", 1)?;
    let epochs = flags.get_parse::<usize>("epochs", 10)?;
    let batch_workers = flags.get_parse::<usize>("batch-workers", 1)?;
    let objective = flags.get("objective").unwrap_or("simclr").to_string();
    let fpcfg = FlowpicConfig::with_resolution(res);
    let config = SimClrConfig {
        max_epochs: epochs,
        batch_workers,
        ..SimClrConfig::paper(seed)
    };
    let indices: Vec<usize> = (0..ds.flows.len())
        .filter(|&i| !ds.flows[i].background)
        .collect();
    let mut obs = build_observer(&flags, false)?;
    let (net, summary) = match objective.as_str() {
        "simclr" => pretrain_observed(
            &ds,
            &indices,
            ViewPair::paper(),
            &fpcfg,
            Normalization::LogMax,
            &config,
            &mut obs,
        ),
        "supcon" => pretrain_supcon_observed(
            &ds,
            &indices,
            ViewPair::paper(),
            &fpcfg,
            Normalization::LogMax,
            &config,
            &mut obs,
        ),
        "byol" => pretrain_byol_observed(
            &ds,
            &indices,
            ViewPair::paper(),
            &fpcfg,
            Normalization::LogMax,
            &config,
            &mut obs,
        ),
        other => return Err(CliError::Usage(format!("unknown objective {other}"))),
    };
    let saved = SavedPretrained {
        resolution: res,
        proj_dim: config.proj_dim,
        objective: objective.clone(),
        weights: net.export_weights(),
    };
    let out = flags.require("out")?;
    std::fs::write(
        out,
        serde_json::to_string(&saved).expect("model serializes"),
    )?;
    Ok(format!(
        "pre-trained {objective} on {} flows for {} epochs (final loss {:.3}) -> {out}",
        indices.len(),
        summary.epochs,
        summary.final_loss
    ))
}

#[cfg(test)]
mod tests {
    use crate::cmd::common::testutil::{argv, tmp};
    use crate::command::run;

    #[test]
    fn pretrain_rejects_unknown_objective() {
        let data = tmp("pre-src2.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "8",
                "--out",
                &data,
            ]),
        )
        .unwrap();
        assert!(run(
            "pretrain",
            &argv(&["--input", &data, "--out", "/tmp/x", "--objective", "nope"]),
        )
        .is_err());
    }
}
