//! `tcb stats` — Table 2-style statistics of a flowrec file.

use crate::args::Flags;
use crate::cmd::common::load_dataset;
use crate::CliError;
use trafficgen::types::Partition;

/// CLI name.
pub const NAME: &str = "stats";
/// Usage-listing summary.
pub const SUMMARY: &str = "print Table 2-style statistics of a flowrec file";
/// `--help` text.
pub const HELP: &str = "tcb stats --input FILE";

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["input"], &[])?;
    if flags.wants_help() {
        return Ok(HELP.into());
    }
    let ds = load_dataset(flags.require("input")?)?;
    let counts = ds.class_counts();
    let mut out = format!(
        "{}: {} flows, {} classes, rho {}, mean pkts {:.1}\n",
        ds.name,
        ds.flows.len(),
        ds.num_classes(),
        ds.imbalance_rho()
            .map(|r| format!("{r:.1}"))
            .unwrap_or_else(|| "-".into()),
        ds.mean_pkts()
    );
    for (name, count) in ds.class_names.iter().zip(&counts) {
        out.push_str(&format!("  {name:<24} {count}\n"));
    }
    // Partition breakdown, when partitioned.
    let partitions = [
        Partition::Pretraining,
        Partition::Script,
        Partition::Human,
        Partition::ActionSpecific,
        Partition::DeterministicAutomated,
        Partition::RandomizedAutomated,
        Partition::WildTest,
        Partition::Unpartitioned,
    ];
    for p in partitions {
        let n = ds.partition(p).count();
        if n > 0 {
            out.push_str(&format!("  [{}] {n} flows\n", p.name()));
        }
    }
    Ok(out)
}
