//! `tcb export-pcap` — write one flow as a pcap capture.

use crate::args::Flags;
use crate::cmd::common::load_dataset;
use crate::CliError;
use trafficgen::pcap::flow_to_pcap;

/// CLI name.
pub const NAME: &str = "export-pcap";
/// Usage-listing summary.
pub const SUMMARY: &str = "write one flow as a pcap capture";
/// `--help` text.
pub const HELP: &str = "tcb export-pcap --input FILE --flow INDEX --out FILE";

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["input", "flow", "out"], &[])?;
    if flags.wants_help() {
        return Ok(HELP.into());
    }
    let ds = load_dataset(flags.require("input")?)?;
    let idx = flags.get_parse::<usize>("flow", 0)?;
    let flow = ds
        .flows
        .get(idx)
        .ok_or_else(|| CliError::Usage(format!("flow index {idx} out of range")))?;
    let out = flags.require("out")?;
    std::fs::write(out, flow_to_pcap(flow))?;
    Ok(format!("wrote {} packets to {out}", flow.len()))
}
