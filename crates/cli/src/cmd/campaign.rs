//! `tcb campaign` — the supervised augmentation grid (augmentations ×
//! seeds) with per-cell persistence (Table 4's workflow at CLI scale).

use crate::args::Flags;
use crate::cmd::common::{build_observer, load_dataset, parse_aug};
use crate::CliError;
use augment::Augmentation;
use flowpic::{FlowpicConfig, Normalization};
use nettensor::checkpoint::{Decoder, Persist};
use tcbench::arch::supervised_net;
use tcbench::data::FlowpicDataset;
use tcbench::supervised::{SupervisedTrainer, TrainConfig};
use trafficgen::splits::stratified_three_way;
use trafficgen::types::Partition;

/// CLI name.
pub const NAME: &str = "campaign";
/// Usage-listing summary.
pub const SUMMARY: &str = "run the augmentation grid with resumable cells";
/// `--help` text.
pub const HELP: &str = "tcb campaign --input FILE --dir DIR [--augs no-aug,rotate,... \
(default: all 7)] [--seeds N (seeds 1..=N, default 3)] [--res 32] \
[--epochs N] [--workers N (campaign threads; 0 = all cores, \
remaining cores go to batch sharding)] [--progress (per-task \
progress + ETA on stderr)] [--log-jsonl PATH (append one \
task_end JSON event per line)]\n\
Finished cells persist in --dir; rerun the same command to resume.";

/// One grid cell of a `tcb campaign` run, persisted to the campaign
/// directory so a killed campaign resumes instead of recomputing.
#[derive(Debug, Clone)]
struct CampaignCell {
    aug: String,
    seed: u64,
    epochs: usize,
    final_train_loss: f64,
    accuracy: f64,
    weighted_f1: f64,
}

impl Persist for CampaignCell {
    fn encode(&self, out: &mut String) {
        self.aug.encode(out);
        self.seed.encode(out);
        self.epochs.encode(out);
        self.final_train_loss.encode(out);
        self.accuracy.encode(out);
        self.weighted_f1.encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        Ok(CampaignCell {
            aug: String::decode(d)?,
            seed: u64::decode(d)?,
            epochs: usize::decode(d)?,
            final_train_loss: f64::decode(d)?,
            accuracy: f64::decode(d)?,
            weighted_f1: f64::decode(d)?,
        })
    }
}

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<String, CliError> {
    use tcbench::campaign::{run_parallel_resumable_observed, worker_budget};
    use tcbench::telemetry::CampaignProgress;
    let flags = Flags::parse(
        args,
        &[
            "input",
            "dir",
            "augs",
            "seeds",
            "res",
            "epochs",
            "workers",
            "log-jsonl",
        ],
        &["progress"],
    )?;
    if flags.wants_help() {
        return Ok(HELP.into());
    }
    let ds = load_dataset(flags.require("input")?)?;
    let dir = flags.require("dir")?;
    let res = flags.get_parse::<usize>("res", 32)?;
    let epochs = flags.get_parse::<usize>("epochs", 15)?;
    let n_seeds = flags.get_parse::<usize>("seeds", 3)?;
    if n_seeds == 0 {
        return Err(CliError::Usage("--seeds must be at least 1".into()));
    }
    let augs: Vec<Augmentation> = flags
        .get("augs")
        .unwrap_or("no-aug,rotate,flip,color-jitter,packet-loss,time-shift,change-rtt")
        .split(',')
        .map(|name| parse_aug(name.trim()))
        .collect::<Result<_, _>>()?;
    let n_tasks = augs.len() * n_seeds;
    let (campaign_workers, batch_workers) =
        worker_budget(flags.get_parse::<usize>("workers", 0)?, n_tasks);

    let mut collated = ds.clone();
    for f in &mut collated.flows {
        f.partition = Partition::Unpartitioned;
    }
    let fpcfg = FlowpicConfig::with_resolution(res);
    let norm = Normalization::LogMax;

    // The campaign sink only sees task_end events (per-epoch streams of
    // thousands of parallel cells would be noise); append mode lets a
    // resumed campaign keep one cumulative log.
    let progress = CampaignProgress::new(n_tasks, Box::new(build_observer(&flags, true)?));
    let (cells, report) = run_parallel_resumable_observed(
        n_tasks,
        campaign_workers,
        std::path::Path::new(dir),
        |i| {
            let aug = augs[i / n_seeds];
            let seed = 1 + (i % n_seeds) as u64;
            let split = stratified_three_way(&collated, Partition::Unpartitioned, 0.8, 0.1, seed);
            let train_set =
                FlowpicDataset::augmented(&collated, &split.train, aug, 3, &fpcfg, norm, seed);
            let val = FlowpicDataset::from_flows(&collated, &split.val, &fpcfg, norm);
            let test = FlowpicDataset::from_flows(&collated, &split.test, &fpcfg, norm);
            let trainer = SupervisedTrainer::new(TrainConfig {
                max_epochs: epochs,
                batch_workers,
                ..TrainConfig::supervised(seed)
            });
            let mut net = supervised_net(res, collated.num_classes(), true, seed);
            let summary = trainer.train(&mut net, &train_set, Some(&val));
            let eval = trainer.evaluate(&net, &test);
            CampaignCell {
                aug: aug.name().to_string(),
                seed,
                epochs: summary.epochs,
                final_train_loss: summary.final_train_loss,
                accuracy: eval.accuracy,
                weighted_f1: eval.weighted_f1,
            }
        },
        &progress,
    )
    .map_err(|e| CliError::Parse(format!("campaign: {e}")))?;

    let mut out = format!(
        "campaign: {} cells ({} augs x {} seeds) on {} workers; {} computed, {} reused",
        n_tasks,
        augs.len(),
        n_seeds,
        campaign_workers,
        report.computed,
        report.reused,
    );
    if !report.invalid.is_empty() {
        out.push_str(&format!(
            " ({} corrupted cell files recomputed)",
            report.invalid.len()
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<16} {:>4} {:>6} {:>10} {:>7} {:>7}\n",
        "aug", "seed", "epochs", "loss", "acc%", "f1%"
    ));
    for c in &cells {
        out.push_str(&format!(
            "{:<16} {:>4} {:>6} {:>10.4} {:>7.2} {:>7.2}\n",
            c.aug,
            c.seed,
            c.epochs,
            c.final_train_loss,
            100.0 * c.accuracy,
            100.0 * c.weighted_f1,
        ));
    }
    out.push_str("mean accuracy per augmentation:\n");
    for (a, chunk) in augs.iter().zip(cells.chunks(n_seeds)) {
        let mean = chunk.iter().map(|c| c.accuracy).sum::<f64>() / chunk.len() as f64;
        out.push_str(&format!("  {:<16} {:>6.2}%\n", a.name(), 100.0 * mean));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::cmd::common::testutil::{argv, tmp};
    use crate::command::run;

    #[test]
    fn campaign_computes_then_resumes() {
        let path = tmp("campaign-src.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "5",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        let dir = tmp("campaign-cells");
        let _ = std::fs::remove_dir_all(&dir);
        let log = tmp("campaign.jsonl");
        let _ = std::fs::remove_file(&log);
        let base = argv(&[
            "--input",
            &path,
            "--dir",
            &dir,
            "--augs",
            "no-aug,rotate",
            "--seeds",
            "1",
            "--res",
            "16",
            "--epochs",
            "2",
            "--workers",
            "2",
            "--log-jsonl",
            &log,
        ]);
        let msg = run("campaign", &base).unwrap();
        assert!(msg.contains("2 computed, 0 reused"), "{msg}");
        assert!(
            msg.contains("No augmentation") && msg.contains("Rotate"),
            "{msg}"
        );
        assert!(msg.contains("mean accuracy"), "{msg}");
        let text = std::fs::read_to_string(&log).unwrap();
        let task_ends = text
            .lines()
            .filter(|l| l.contains("\"event\":\"task_end\""))
            .count();
        assert_eq!(task_ends, 2, "{text}");
        // Rerunning reuses every persisted cell and reports the same grid.
        let msg2 = run("campaign", &base).unwrap();
        assert!(msg2.contains("0 computed, 2 reused"), "{msg2}");
        assert!(msg2.contains("No augmentation"), "{msg2}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_rejects_bad_grid() {
        assert!(run(
            "campaign",
            &argv(&["--input", "/missing", "--dir", "/tmp/x", "--augs", "bogus"]),
        )
        .is_err());
        assert!(run(
            "campaign",
            &argv(&["--input", "/missing", "--dir", "/tmp/x", "--seeds", "0"]),
        )
        .is_err());
    }
}
