//! `tcb evaluate` — evaluate a saved model on a flowrec file.

use crate::args::Flags;
use crate::cmd::common::{load_dataset, load_served_model};
use crate::CliError;
use flowpic::{FlowpicConfig, Normalization};
use tcbench::data::FlowpicDataset;
use tcbench::supervised::{SupervisedTrainer, TrainConfig};

/// CLI name.
pub const NAME: &str = "evaluate";
/// Usage-listing summary.
pub const SUMMARY: &str = "evaluate a saved model, print the confusion matrix";
/// `--help` text.
pub const HELP: &str = "tcb evaluate --input FILE --model MODEL.json [--batch-workers N]\n\
MODEL is either a checkpoint-envelope model (ServedModel::save) or the JSON \
written by `tcb train`.";

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["input", "model", "batch-workers"], &[])?;
    if flags.wants_help() {
        return Ok(HELP.into());
    }
    let ds = load_dataset(flags.require("input")?)?;
    let model = load_served_model(flags.require("model")?)?;
    if ds.num_classes() != model.n_classes {
        return Err(CliError::Parse(format!(
            "model has {} classes, dataset has {}",
            model.n_classes,
            ds.num_classes()
        )));
    }
    let net = model
        .build_net()
        .map_err(|e| CliError::Parse(format!("model: {e}")))?;
    let fpcfg = FlowpicConfig::with_resolution(model.resolution);
    let indices: Vec<usize> = (0..ds.flows.len())
        .filter(|&i| !ds.flows[i].background)
        .collect();
    let data = FlowpicDataset::from_flows(&ds, &indices, &fpcfg, Normalization::LogMax);
    let trainer = SupervisedTrainer::new(TrainConfig {
        batch_workers: flags.get_parse::<usize>("batch-workers", 1)?,
        ..TrainConfig::supervised(0)
    });
    let eval = trainer.evaluate(&net, &data);
    let names: Vec<&str> = model.class_names.iter().map(String::as_str).collect();
    Ok(format!(
        "evaluated {} flows: accuracy {:.2}%, weighted F1 {:.2}%\n{}",
        data.len(),
        100.0 * eval.accuracy,
        100.0 * eval.weighted_f1,
        eval.confusion.ascii(&names)
    ))
}
