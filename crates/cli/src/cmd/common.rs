//! Helpers shared by the subcommand modules.

use crate::args::Flags;
use crate::CliError;
use augment::Augmentation;
use tcbench::telemetry::{InferObserver, JsonlSink, Noop, ProgressSink, Tee};
use trafficgen::flowrec;
use trafficgen::types::Dataset;

/// Builds the training telemetry sink stack from the shared
/// `--progress` / `--log-jsonl PATH` flags. `append` keeps an existing
/// JSONL file (resumed runs accumulate their event stream); otherwise
/// the file is truncated. An empty [`Tee`] behaves like `Noop`.
pub fn build_observer(flags: &Flags, append: bool) -> Result<Tee, CliError> {
    let mut tee = Tee::new();
    if flags.switch("progress") {
        tee.push(Box::new(ProgressSink::stderr()));
    }
    if let Some(path) = flags.get("log-jsonl") {
        let sink = if append {
            JsonlSink::append(path)?
        } else {
            JsonlSink::create(path)?
        };
        tee.push(Box::new(sink));
    }
    Ok(tee)
}

/// Builds the inference telemetry sink from `--log-jsonl PATH` (serving
/// commands have no `--progress`; per-batch progress is the JSONL
/// stream itself).
pub fn build_infer_observer(flags: &Flags) -> Result<Box<dyn InferObserver>, CliError> {
    Ok(match flags.get("log-jsonl") {
        Some(path) => Box::new(JsonlSink::create(path)?),
        None => Box::new(Noop),
    })
}

/// Reads a flowrec dataset.
pub fn load_dataset(path: &str) -> Result<Dataset, CliError> {
    let bytes = std::fs::read(path)?;
    flowrec::decode(&bytes).map_err(|e| CliError::Parse(format!("{path}: {e}")))
}

/// Writes a flowrec dataset.
pub fn save_dataset(path: &str, ds: &Dataset) -> Result<(), CliError> {
    std::fs::write(path, flowrec::encode(ds))?;
    Ok(())
}

/// Loads a serving model in either on-disk format (checkpoint envelope
/// or `tcb train` JSON), mapping failures to a CLI parse error.
pub fn load_served_model(path: &str) -> Result<serve::registry::ServedModel, CliError> {
    serve::registry::ServedModel::load_auto(std::path::Path::new(path))
        .map_err(|e| CliError::Parse(format!("{e}")))
}

/// Parses an augmentation name (the paper's seven).
pub fn parse_aug(name: &str) -> Result<Augmentation, CliError> {
    Ok(match name {
        "no-aug" => Augmentation::NoAug,
        "rotate" => Augmentation::Rotate,
        "flip" => Augmentation::HorizontalFlip,
        "color-jitter" => Augmentation::ColorJitter,
        "packet-loss" => Augmentation::PacketLoss,
        "time-shift" => Augmentation::TimeShift,
        "change-rtt" => Augmentation::ChangeRtt,
        other => return Err(CliError::Usage(format!("unknown augmentation {other}"))),
    })
}

#[cfg(test)]
pub mod testutil {
    //! Shared scaffolding for the per-command test modules.

    /// Converts a literal slice into owned argv form.
    pub fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    /// A path under the shared temp dir for CLI test artifacts.
    pub fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("tcb_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    /// A random-initialized serving model in the checkpoint-envelope
    /// format, written to the temp dir.
    pub fn write_served_model(name: &str, res: usize, n_classes: usize, seed: u64) -> String {
        let net = tcbench::arch::supervised_net(res, n_classes, true, seed);
        let model = serve::registry::ServedModel {
            arch: "supervised".into(),
            resolution: res,
            n_classes,
            dropout: true,
            class_names: (0..n_classes).map(|i| format!("class{i}")).collect(),
            weights: net.export_weights(),
        };
        let path = tmp(name);
        model.save(std::path::Path::new(&path)).unwrap();
        path
    }
}
