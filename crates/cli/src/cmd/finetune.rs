//! `tcb finetune` — few-shot fine-tuning of a pre-trained extractor.

use crate::args::Flags;
use crate::cmd::common::load_dataset;
use crate::cmd::pretrain::SavedPretrained;
use crate::CliError;
use flowpic::{FlowpicConfig, Normalization};
use tcbench::data::FlowpicDataset;
use tcbench::supervised::{SupervisedTrainer, TrainConfig};

/// CLI name.
pub const NAME: &str = "finetune";
/// Usage-listing summary.
pub const SUMMARY: &str = "few-shot fine-tune a pre-trained extractor";
/// `--help` text.
pub const HELP: &str = "tcb finetune --input FILE --pretrained PRE.json --out MODEL.json \
[--shots 10] [--seed N] [--batch-workers N (any value gives bit-identical results)]";

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<String, CliError> {
    use tcbench::arch::{byol_net, simclr_net};
    use tcbench::simclr::{few_shot_subset, fine_tune};
    let flags = Flags::parse(
        args,
        &[
            "input",
            "pretrained",
            "out",
            "shots",
            "seed",
            "batch-workers",
        ],
        &[],
    )?;
    if flags.wants_help() {
        return Ok(HELP.into());
    }
    let ds = load_dataset(flags.require("input")?)?;
    let raw = std::fs::read_to_string(flags.require("pretrained")?)?;
    let saved: SavedPretrained =
        serde_json::from_str(&raw).map_err(|e| CliError::Parse(format!("pretrained: {e}")))?;
    let mut pre = if saved.objective == "byol" {
        byol_net(saved.resolution, saved.proj_dim, false, 0)
    } else {
        simclr_net(saved.resolution, saved.proj_dim, false, 0)
    };
    pre.import_weights(&saved.weights);

    let seed = flags.get_parse::<u64>("seed", 2)?;
    let shots = flags.get_parse::<usize>("shots", 10)?;
    let pool: Vec<usize> = (0..ds.flows.len())
        .filter(|&i| !ds.flows[i].background)
        .collect();
    let labeled_idx = few_shot_subset(&ds, &pool, shots, seed);
    let fpcfg = FlowpicConfig::with_resolution(saved.resolution);
    let labeled = FlowpicDataset::from_flows(&ds, &labeled_idx, &fpcfg, Normalization::LogMax);
    let batch_workers = flags.get_parse::<usize>("batch-workers", 1)?;
    let tuned = fine_tune(&pre, &labeled, seed, batch_workers);

    // Evaluate on everything outside the labeled subset.
    let rest: Vec<usize> = pool
        .iter()
        .copied()
        .filter(|i| !labeled_idx.contains(i))
        .collect();
    let test = FlowpicDataset::from_flows(&ds, &rest, &fpcfg, Normalization::LogMax);
    let trainer = SupervisedTrainer::new(TrainConfig::supervised(0));
    let eval = trainer.evaluate(&tuned, &test);

    let model = serve::registry::ServedModel {
        arch: "finetune".into(),
        resolution: saved.resolution,
        n_classes: ds.num_classes(),
        dropout: false,
        class_names: ds.class_names.clone(),
        weights: tuned.export_weights(),
    };
    let out = flags.require("out")?;
    std::fs::write(
        out,
        serde_json::to_string(&model).expect("model serializes"),
    )?;
    Ok(format!(
        "fine-tuned with {shots} labeled flows/class; held-out accuracy {:.2}% -> {out}\n\
         note: the saved model evaluates with `tcb evaluate` only on datasets of the\n\
         same class table.",
        100.0 * eval.accuracy
    ))
}

#[cfg(test)]
mod tests {
    use crate::cmd::common::testutil::{argv, tmp};
    use crate::command::run;

    #[test]
    fn pretrain_then_finetune_cli() {
        let data = tmp("pre-src.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "8",
                "--out",
                &data,
            ]),
        )
        .unwrap();
        let pre = tmp("pre.json");
        let msg = run(
            "pretrain",
            &argv(&[
                "--input",
                &data,
                "--out",
                &pre,
                "--objective",
                "simclr",
                "--res",
                "16",
                "--epochs",
                "2",
                "--seed",
                "3",
            ]),
        )
        .unwrap();
        assert!(msg.contains("pre-trained simclr"), "{msg}");
        let model = tmp("tuned.json");
        let msg = run(
            "finetune",
            &argv(&[
                "--input",
                &data,
                "--pretrained",
                &pre,
                "--out",
                &model,
                "--shots",
                "4",
            ]),
        )
        .unwrap();
        assert!(msg.contains("fine-tuned"), "{msg}");
        let eval = run("evaluate", &argv(&["--input", &data, "--model", &model])).unwrap();
        assert!(eval.contains("accuracy"), "{eval}");
    }
}
