//! `tcb curate` — the paper's curation pipeline over a flowrec file.

use crate::args::Flags;
use crate::cmd::common::{load_dataset, save_dataset};
use crate::CliError;
use trafficgen::curation::CurationPipeline;

/// CLI name.
pub const NAME: &str = "curate";
/// Usage-listing summary.
pub const SUMMARY: &str = "run the paper's curation pipeline on a flowrec file";
/// `--help` text.
pub const HELP: &str = "tcb curate --input FILE --out FILE [--min-pkts N] [--min-class-size N] \
[--remove-acks] [--remove-background] [--collate]";

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(
        args,
        &["input", "out", "min-pkts", "min-class-size"],
        &["remove-acks", "remove-background", "collate"],
    )?;
    if flags.wants_help() {
        return Ok(HELP.into());
    }
    let ds = load_dataset(flags.require("input")?)?;
    let pipe = CurationPipeline {
        remove_acks: flags.switch("remove-acks"),
        remove_background: flags.switch("remove-background"),
        min_pkts: flags.get_parse("min-pkts", 10)?,
        min_class_size: flags.get_parse("min-class-size", 100)?,
        collate_partitions: flags.switch("collate"),
    };
    let (curated, report) = pipe.run(&ds);
    save_dataset(flags.require("out")?, &curated)?;
    Ok(format!(
        "curated {}: {} -> {} flows, {} -> {} classes \
         (-{} background, -{} short, -{} small-class); rho {:.1}, mean pkts {:.1}",
        report.dataset,
        report.flows_before,
        report.flows_after,
        report.classes_before,
        report.classes_after,
        report.background_removed,
        report.short_removed,
        report.small_class_removed,
        report.rho.unwrap_or(f64::NAN),
        report.mean_pkts,
    ))
}

#[cfg(test)]
mod tests {
    use crate::cmd::common::testutil::{argv, tmp};
    use crate::command::run;

    #[test]
    fn curate_pipeline_via_cli() {
        let raw = tmp("m19.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "mirage19",
                "--scale",
                "tiny",
                "--seed",
                "1",
                "--out",
                &raw,
            ]),
        )
        .unwrap();
        let out = tmp("m19-cur.flowrec");
        let msg = run(
            "curate",
            &argv(&[
                "--input",
                &raw,
                "--out",
                &out,
                "--min-pkts",
                "10",
                "--min-class-size",
                "5",
                "--remove-acks",
                "--remove-background",
            ]),
        )
        .unwrap();
        assert!(msg.contains("curated"), "{msg}");
        let stats = run("stats", &argv(&["--input", &out])).unwrap();
        assert!(stats.contains("flows"), "{stats}");
    }
}
