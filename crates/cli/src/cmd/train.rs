//! `tcb train` — supervised training on a flowrec file.

use crate::args::Flags;
use crate::cmd::common::{build_observer, load_dataset, parse_aug};
use crate::CliError;
use flowpic::{FlowpicConfig, Normalization};
use tcbench::data::FlowpicDataset;
use tcbench::refdist;
use tcbench::supervised::{
    run_supervised_job, CheckpointSpec, SupervisedJob, SupervisedTrainer, TrainConfig,
};
use trafficgen::splits::stratified_three_way;
use trafficgen::types::Partition;

/// CLI name.
pub const NAME: &str = "train";
/// Usage-listing summary.
pub const SUMMARY: &str = "train the supervised flowpic CNN";
/// `--help` text.
pub const HELP: &str = "tcb train --input FILE --out MODEL.json [--aug no-aug|rotate|flip|\
color-jitter|packet-loss|time-shift|change-rtt] [--res 32] [--seed N] \
[--epochs N] [--batch-workers N (0 = all cores; any value gives \
bit-identical results)] [--checkpoint-dir DIR (save a crash-safe \
checkpoint each epoch)] [--resume (continue from the checkpoint in \
--checkpoint-dir; resumed runs finish bit-identical to uninterrupted \
ones)] [--progress (per-epoch progress on stderr)] [--log-jsonl PATH \
(append one JSON event per line; telemetry never alters training)] \
[--refdist-out REFS.json (snapshot the training flows' per-class \
feature distributions — mean packet size and inter-arrival over the \
flowpic window — for the serving daemon's drift monitor, fed to \
`tcb serve --daemon --drift-ref`)]";

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(
        args,
        &[
            "input",
            "out",
            "aug",
            "res",
            "seed",
            "epochs",
            "batch-workers",
            "checkpoint-dir",
            "log-jsonl",
            "refdist-out",
        ],
        &["resume", "progress"],
    )?;
    if flags.wants_help() {
        return Ok(HELP.into());
    }
    let checkpoint_dir = flags.get("checkpoint-dir").map(str::to_string);
    let resume = flags.switch("resume");
    if resume && checkpoint_dir.is_none() {
        return Err(CliError::Usage(
            "--resume requires --checkpoint-dir (there is nothing to resume from)".into(),
        ));
    }
    let ds = load_dataset(flags.require("input")?)?;
    let res = flags.get_parse::<usize>("res", 32)?;
    let seed = flags.get_parse::<u64>("seed", 1)?;
    let epochs = flags.get_parse::<usize>("epochs", 15)?;
    let batch_workers = flags.get_parse::<usize>("batch-workers", 1)?;
    let aug = parse_aug(flags.get("aug").unwrap_or("no-aug"))?;

    // Stratified 80/10/10 over whatever partitioning the file has; the
    // partition tag is ignored here (train on everything available).
    let mut collated = ds.clone();
    for f in &mut collated.flows {
        f.partition = Partition::Unpartitioned;
    }
    let split = stratified_three_way(&collated, Partition::Unpartitioned, 0.8, 0.1, seed);
    let fpcfg = FlowpicConfig::with_resolution(res);
    let norm = Normalization::LogMax;
    let train_set = FlowpicDataset::augmented(&collated, &split.train, aug, 3, &fpcfg, norm, seed);
    let val = FlowpicDataset::from_flows(&collated, &split.val, &fpcfg, norm);
    let test = FlowpicDataset::from_flows(&collated, &split.test, &fpcfg, norm);

    let mut job = SupervisedJob::new(
        res,
        collated.num_classes(),
        TrainConfig {
            max_epochs: epochs,
            batch_workers,
            ..TrainConfig::supervised(seed)
        },
    );
    if let Some(dir) = &checkpoint_dir {
        std::fs::create_dir_all(dir)?;
        let mut spec = CheckpointSpec::new(std::path::Path::new(dir).join("train.ckpt"));
        if resume {
            spec = spec.resuming();
        }
        job = job.with_checkpoint(spec);
    }
    // Resumed runs append to an existing JSONL log so the event stream
    // accumulates across invocations; fresh runs start a new file.
    let mut obs = build_observer(&flags, resume)?;
    let (net, summary) = run_supervised_job(&job, &train_set, Some(&val), &mut obs)
        .map_err(|e| CliError::Parse(format!("checkpoint: {e}")))?;
    let trainer = SupervisedTrainer::new(job.config);
    let eval = trainer.evaluate(&net, &test);

    let model = serve::registry::ServedModel {
        arch: "supervised".into(),
        resolution: res,
        n_classes: collated.num_classes(),
        dropout: true,
        class_names: collated.class_names.clone(),
        weights: net.export_weights(),
    };
    let out = flags.require("out")?;
    std::fs::write(
        out,
        serde_json::to_string(&model).expect("model serializes"),
    )?;
    let mut refdist_note = String::new();
    if let Some(ref_path) = flags.get("refdist-out") {
        // Snapshot the *training* flows only — the drift monitor's
        // baseline must be the distribution the model actually learned,
        // not the held-out slices.
        let stats = split.train.iter().filter_map(|&i| {
            let f = &collated.flows[i];
            refdist::flow_window_stats(f.pkts.iter().map(|p| (p.ts, p.size)), fpcfg.window_s)
                .map(|(size, iat)| (f.class as usize, size, iat))
        });
        let refs = refdist::ReferenceDistributions::from_flow_stats(
            collated.class_names.clone(),
            collated.num_classes(),
            stats,
            256,
            seed,
        );
        refs.save(std::path::Path::new(ref_path))?;
        refdist_note = format!(", reference distributions -> {ref_path}");
    }
    Ok(format!(
        "trained {} epochs on {} flowpics ({} augmented with {}); \
         test accuracy {:.2}%, weighted F1 {:.2}% -> {out}{refdist_note}",
        summary.epochs,
        train_set.len(),
        aug.name(),
        aug.name(),
        100.0 * eval.accuracy,
        100.0 * eval.weighted_f1,
    ))
}

#[cfg(test)]
mod tests {
    use crate::cmd::common::testutil::{argv, tmp};
    use crate::command::run;

    #[test]
    fn train_then_evaluate() {
        let path = tmp("train.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "4",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        let model = tmp("model.json");
        let msg = run(
            "train",
            &argv(&[
                "--input",
                &path,
                "--out",
                &model,
                "--aug",
                "change-rtt",
                "--res",
                "16",
                "--epochs",
                "3",
                "--seed",
                "2",
            ]),
        )
        .unwrap();
        assert!(msg.contains("test accuracy"), "{msg}");
        let eval = run("evaluate", &argv(&["--input", &path, "--model", &model])).unwrap();
        assert!(eval.contains("accuracy"), "{eval}");
        assert!(eval.contains("google-doc"), "{eval}");
    }

    #[test]
    fn train_with_checkpoint_dir_then_resume() {
        let path = tmp("train-ckpt.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "4",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        let ckpt_dir = tmp("ckpts");
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        let model = tmp("model-ckpt.json");
        let base = argv(&[
            "--input",
            &path,
            "--out",
            &model,
            "--res",
            "16",
            "--epochs",
            "2",
            "--seed",
            "2",
            "--checkpoint-dir",
            &ckpt_dir,
        ]);
        let msg = run("train", &base).unwrap();
        assert!(msg.contains("test accuracy"), "{msg}");
        assert!(
            std::path::Path::new(&ckpt_dir).join("train.ckpt").is_file(),
            "checkpoint file must exist after training"
        );
        // Resuming a finished run loads the checkpoint and skips straight
        // to the end — same output shape, no retraining.
        let mut resumed = base.clone();
        resumed.push("--resume".into());
        let msg2 = run("train", &resumed).unwrap();
        assert!(msg2.contains("test accuracy"), "{msg2}");
    }

    #[test]
    fn train_with_jsonl_log_emits_valid_event_stream() {
        let path = tmp("train-telemetry.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "4",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        let model = tmp("model-telemetry.json");
        let log = tmp("train.jsonl");
        let _ = std::fs::remove_file(&log);
        run(
            "train",
            &argv(&[
                "--input",
                &path,
                "--out",
                &model,
                "--res",
                "16",
                "--epochs",
                "2",
                "--seed",
                "2",
                "--log-jsonl",
                &log,
            ]),
        )
        .unwrap();
        let text = std::fs::read_to_string(&log).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines.first().unwrap().contains("\"event\":\"run_start\""),
            "{text}"
        );
        assert!(
            lines.last().unwrap().contains("\"event\":\"run_end\""),
            "{text}"
        );
        let epoch_ends = lines
            .iter()
            .filter(|l| l.contains("\"event\":\"epoch_end\""))
            .count();
        assert_eq!(epoch_ends, 2, "one epoch_end per epoch: {text}");
        // Every line is a self-contained versioned object.
        for line in &lines {
            assert!(line.starts_with("{\"v\":1,"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn resume_without_checkpoint_dir_is_a_usage_error() {
        let err = run(
            "train",
            &argv(&["--input", "/nonexistent", "--out", "/tmp/x", "--resume"]),
        )
        .unwrap_err();
        assert!(
            format!("{err}").contains("--checkpoint-dir"),
            "error must point at the missing flag: {err}"
        );
    }
}
