//! `tcb windows` — slice flows into consecutive windows (the
//! Ref-Paper's ISCX artifice). The replication warns this invites
//! leakage when the split is done at window level; see
//! `ablation_iscx_leakage`.

use crate::args::Flags;
use crate::cmd::common::{load_dataset, save_dataset};
use crate::CliError;

/// CLI name.
pub const NAME: &str = "windows";
/// Usage-listing summary.
pub const SUMMARY: &str = "slice flows into 15s windows (the ISCX artifice)";
/// `--help` text.
pub const HELP: &str = "tcb windows --input FILE --out FILE [--window-s 15] [--min-pkts 10]";

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<String, CliError> {
    use trafficgen::iscx::slice_dataset;
    let flags = Flags::parse(args, &["input", "out", "window-s", "min-pkts"], &[])?;
    if flags.wants_help() {
        return Ok(HELP.into());
    }
    let ds = load_dataset(flags.require("input")?)?;
    let window_s = flags.get_parse::<f64>("window-s", 15.0)?;
    let min_pkts = flags.get_parse::<usize>("min-pkts", 10)?;
    if window_s <= 0.0 {
        return Err(CliError::Usage("--window-s must be positive".into()));
    }
    let (sliced, parents) = slice_dataset(&ds, window_s, min_pkts);
    save_dataset(flags.require("out")?, &sliced)?;
    let multi = parents.len() as f64 / ds.flows.len().max(1) as f64;
    Ok(format!(
        "sliced {} flows into {} windows of {window_s}s ({multi:.1}x multiplication).\n\
         WARNING: windows of one flow are near-duplicates; split at FLOW level\n\
         (windows keep the parent flow id) or accept leakage-inflated scores.",
        ds.flows.len(),
        sliced.flows.len(),
    ))
}

#[cfg(test)]
mod tests {
    use crate::cmd::common::testutil::{argv, tmp};
    use crate::command::run;

    #[test]
    fn windows_command_slices_and_warns() {
        let path = tmp("win-src.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "6",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        let out = tmp("win-out.flowrec");
        let msg = run(
            "windows",
            &argv(&[
                "--input",
                &path,
                "--out",
                &out,
                "--window-s",
                "5",
                "--min-pkts",
                "2",
            ]),
        )
        .unwrap();
        assert!(msg.contains("sliced"), "{msg}");
        assert!(msg.contains("WARNING"), "{msg}");
        let stats = run("stats", &argv(&["--input", &out])).unwrap();
        assert!(stats.contains("flows"));
    }

    #[test]
    fn windows_rejects_bad_window() {
        let path = tmp("win-src2.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "6",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        assert!(run(
            "windows",
            &argv(&["--input", &path, "--out", "/tmp/x", "--window-s", "-1"]),
        )
        .is_err());
    }
}
