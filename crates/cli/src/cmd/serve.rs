//! `tcb serve` — online inference: replay a trace through the
//! streaming pipeline, or host the pipeline behind a Unix-socket
//! control plane (`--daemon`).

use crate::args::Flags;
use crate::cmd::common::{build_infer_observer, load_dataset, load_served_model};
use crate::CliError;
use flowpic::{FlowpicConfig, Normalization};
use serve::daemon::{Daemon, DaemonConfig};
use serve::drift::{DriftConfig, RetrainConfig};
use serve::engine::{CnnClassifier, EngineConfig, QuantMode};
use serve::registry::ModelRegistry;
use serve::replay::{replay_dataset, FractionalSwap, ReplayConfig};
use serve::tracker::TrackerConfig;
use std::sync::Arc;
use tcbench::refdist::ReferenceDistributions;

/// CLI name.
pub const NAME: &str = "serve";
/// Usage-listing summary.
pub const SUMMARY: &str = "replay a trace through the online pipeline, or run the daemon";
/// `--help` text.
pub const HELP: &str = "tcb serve --replay TRACE.flowrec --model MODEL [--model2 FILE \
(hot-swap replacement)] [--swap-at 0.5 (swap after this fraction of \
the trace)] [--rate 1.0 (replay speed multiplier)] [--max-batch 16] \
[--max-wait-ms 500 (micro-batch deadline, stream time)] \
[--idle-timeout 30 (evict flows silent this many seconds)] \
[--max-flows 10000 (hard tracked-flow cap, per lane)] \
[--done-horizon 120 (seconds a classified flow id is remembered; \
late packets within it are ignored)] [--flow-gap-ms 400 \
(stagger between flow starts)] [--shards 1 (independent dataplane \
lanes keyed by flow-id hash; a fixed count is bit-identical at any \
worker count)] [--workers 1 (forward/lane workers; 0 = all cores; \
any value gives bit-identical predictions)] [--quant off (eval-lane \
numeric mode: `off` = exact f32, `int8` = quantized eval lane — \
faster, approximate, still batch/worker/shard invariant)] \
[--reject-below 0 (open-world rejection: predictions whose winning \
confidence is below this finite [0,1] probability — or non-finite — \
are rejected instead of labeled; 0 disables the lane bit-identically)] \
[--score (append ground-truth scoring to the replay report: known \
accuracy, per-class precision/recall/F1, and — when the trace holds \
classes beyond the model's — unknown-rejection and false-accept \
rates)] \
[--log-jsonl PATH (one inference telemetry event per line)]\n\
tcb serve --daemon --socket PATH --model MODEL [same engine/tracker \
knobs incl. --shards] — host the pipeline behind a line-delimited JSON \
control plane (drive it with `tcb ctl`); runs until a `shutdown` \
request.\n\
Daemon-only drift detection (closes the drift → retrain → hot-swap \
loop): --drift-ref REFS.json (reference distributions from `tcb train \
--refdist-out`; enables the subsystem) [--drift-threshold 0.6 (L1 \
verdict threshold in (0,2])] [--drift-interval 60 (stream-time seconds \
between checks)] [--drift-sustain 2 (consecutive over-threshold checks \
before a verdict)] [--drift-min-samples 8 (live flows a class needs \
per window to be scored)] [--retrain-min-flows 24 (stored flows needed \
to start a retrain)] [--retrain-epochs 3 (fine-tune epoch cap)] \
[--retrain-min-accuracy 0.5 (held-back accuracy gate for the swap)] \
[--retrain-checkpoint PATH (resumable fine-tune checkpoint file)].\n\
MODEL is either a checkpoint-envelope model (ServedModel::save) or \
the JSON written by `tcb train`.";

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(
        args,
        &[
            "replay",
            "socket",
            "model",
            "model2",
            "swap-at",
            "rate",
            "max-batch",
            "max-wait-ms",
            "idle-timeout",
            "max-flows",
            "done-horizon",
            "flow-gap-ms",
            "shards",
            "workers",
            "quant",
            "reject-below",
            "log-jsonl",
            "drift-ref",
            "drift-threshold",
            "drift-interval",
            "drift-sustain",
            "drift-min-samples",
            "retrain-min-flows",
            "retrain-epochs",
            "retrain-min-accuracy",
            "retrain-checkpoint",
        ],
        &["daemon", "score"],
    )?;
    if flags.wants_help() {
        return Ok(HELP.into());
    }
    // Usage errors beat runtime errors: reject a drift flag outside
    // daemon mode before touching the model file.
    if !flags.switch("daemon") {
        if let Some(flag) = DRIFT_FLAGS.iter().find(|&&f| flags.get(f).is_some()) {
            return Err(CliError::Usage(format!(
                "--{flag} requires --daemon (drift detection lives in the daemon)"
            )));
        }
    }
    let model = load_served_model(flags.require("model")?)?;
    let workers = flags.get_parse::<usize>("workers", 1)?;
    let shards = flags.get_parse::<usize>("shards", 1)?;
    if shards == 0 {
        return Err(CliError::Usage("--shards must be at least 1".into()));
    }
    let quant = flags
        .get("quant")
        .unwrap_or("off")
        .parse::<QuantMode>()
        .map_err(|e| CliError::Usage(format!("--quant: {e}")))?;
    let tracker = TrackerConfig {
        flowpic: FlowpicConfig::with_resolution(model.resolution),
        norm: Normalization::LogMax,
        idle_timeout_s: flags.get_parse::<f64>("idle-timeout", 30.0)?,
        max_flows: flags.get_parse::<usize>("max-flows", 10_000)?,
        done_horizon_s: flags.get_parse::<f64>("done-horizon", 120.0)?,
    };
    let reject_below = flags.get_parse::<f32>("reject-below", 0.0)?;
    if !reject_below.is_finite() || !(0.0..=1.0).contains(&reject_below) {
        return Err(CliError::Usage(
            "--reject-below must be a finite probability in [0, 1]".into(),
        ));
    }
    // Replay forces full retention itself (the report needs it); the
    // daemon keeps the bounded defaults so a long run stays flat.
    let engine = EngineConfig {
        max_batch: flags.get_parse::<usize>("max-batch", 16)?,
        max_wait_s: flags.get_parse::<f64>("max-wait-ms", 500.0)? / 1e3,
        reject_below,
        ..EngineConfig::default()
    };
    if flags.switch("daemon") {
        return daemon_mode(&flags, model, tracker, engine, workers, shards, quant);
    }
    replay_mode(&flags, model, tracker, engine, workers, shards, quant)
}

/// Flags that only make sense with `--daemon` drift detection.
const DRIFT_FLAGS: &[&str] = &[
    "drift-ref",
    "drift-threshold",
    "drift-interval",
    "drift-sustain",
    "drift-min-samples",
    "retrain-min-flows",
    "retrain-epochs",
    "retrain-min-accuracy",
    "retrain-checkpoint",
];

/// Parses the drift/retrain flag group. `--drift-ref` is the enabling
/// flag; the others refine it and are rejected without it.
#[allow(clippy::type_complexity)]
fn parse_drift_flags(
    flags: &Flags,
) -> Result<Option<(ReferenceDistributions, DriftConfig, RetrainConfig)>, CliError> {
    let Some(ref_path) = flags.get("drift-ref") else {
        if let Some(flag) = DRIFT_FLAGS[1..].iter().find(|&&f| flags.get(f).is_some()) {
            return Err(CliError::Usage(format!(
                "--{flag} requires --drift-ref REFS.json (which enables drift detection)"
            )));
        }
        return Ok(None);
    };
    let refs = ReferenceDistributions::load(std::path::Path::new(ref_path))
        .map_err(|e| CliError::Parse(format!("--drift-ref {ref_path}: {e}")))?;
    let defaults = DriftConfig::default();
    let monitor = DriftConfig {
        threshold: flags.get_parse::<f64>("drift-threshold", defaults.threshold)?,
        check_interval_s: flags.get_parse::<f64>("drift-interval", defaults.check_interval_s)?,
        sustain: flags.get_parse::<usize>("drift-sustain", defaults.sustain)?,
        min_samples: flags.get_parse::<usize>("drift-min-samples", defaults.min_samples)?,
        ..defaults
    };
    if !monitor.threshold.is_finite() || monitor.threshold <= 0.0 || monitor.threshold > 2.0 {
        return Err(CliError::Usage(
            "--drift-threshold must be a finite value in (0, 2] (the L1 metric's range)".into(),
        ));
    }
    if !monitor.check_interval_s.is_finite() || monitor.check_interval_s <= 0.0 {
        return Err(CliError::Usage(
            "--drift-interval must be finite and positive".into(),
        ));
    }
    if monitor.sustain == 0 {
        return Err(CliError::Usage("--drift-sustain must be at least 1".into()));
    }
    let retrain_defaults = RetrainConfig::default();
    let retrain = RetrainConfig {
        min_flows: flags.get_parse::<usize>("retrain-min-flows", retrain_defaults.min_flows)?,
        max_epochs: flags.get_parse::<usize>("retrain-epochs", retrain_defaults.max_epochs)?,
        min_accuracy: flags
            .get_parse::<f64>("retrain-min-accuracy", retrain_defaults.min_accuracy)?,
        checkpoint_path: flags.get("retrain-checkpoint").map(Into::into),
        ..retrain_defaults
    };
    if retrain.max_epochs == 0 {
        return Err(CliError::Usage(
            "--retrain-epochs must be at least 1".into(),
        ));
    }
    if !(0.0..=1.0).contains(&retrain.min_accuracy) {
        return Err(CliError::Usage(
            "--retrain-min-accuracy must be in [0, 1]".into(),
        ));
    }
    Ok(Some((refs, monitor, retrain)))
}

/// `--replay`: feed a flowrec-derived trace through a fresh pipeline.
#[allow(clippy::too_many_arguments)]
fn replay_mode(
    flags: &Flags,
    model: serve::registry::ServedModel,
    tracker: TrackerConfig,
    engine: EngineConfig,
    workers: usize,
    shards: usize,
    quant: QuantMode,
) -> Result<String, CliError> {
    let ds = load_dataset(flags.require("replay")?)?;
    let cnn = CnnClassifier::from_served_quant(&model, workers, quant)
        .map_err(|e| CliError::Parse(format!("model: {e}")))?;
    let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));

    let rate = flags.get_parse::<f64>("rate", 1.0)?;
    if rate <= 0.0 {
        return Err(CliError::Usage("--rate must be positive".into()));
    }
    let config = ReplayConfig {
        flow_gap_s: flags.get_parse::<f64>("flow-gap-ms", 400.0)? / 1e3,
        rate,
        tracker,
        engine,
        shards,
        workers,
    };

    let mut swaps = Vec::new();
    match flags.get("model2") {
        Some(path2) => {
            let second = load_served_model(path2)?;
            let cnn2 = CnnClassifier::from_served_quant(&second, workers, quant)
                .map_err(|e| CliError::Parse(format!("model2: {e}")))?;
            let frac = flags.get_parse::<f64>("swap-at", 0.5)?;
            if !(0.0..=1.0).contains(&frac) {
                return Err(CliError::Usage("--swap-at must be in [0, 1]".into()));
            }
            swaps.push(FractionalSwap {
                at_fraction: frac,
                model: Arc::new(cnn2),
            });
        }
        None if flags.get("swap-at").is_some() => {
            return Err(CliError::Usage("--swap-at requires --model2".into()));
        }
        None => {}
    }

    let mut obs = build_infer_observer(flags)?;
    let report = replay_dataset(&ds, &registry, &config, swaps, obs.as_mut())
        .map_err(|e| CliError::Parse(format!("serve: {e}")))?;
    let mut out = report.render(&model.class_names);
    if flags.switch("score") {
        // Appended after the report so the default output stays
        // byte-identical without the switch.
        out.push_str(
            &report
                .score(&ds, model.class_names.len())
                .render(&model.class_names),
        );
    }
    Ok(out)
}

/// `--daemon`: bind the Unix socket and serve control-plane requests
/// until a `shutdown` request arrives.
#[allow(clippy::too_many_arguments)]
fn daemon_mode(
    flags: &Flags,
    model: serve::registry::ServedModel,
    tracker: TrackerConfig,
    engine: EngineConfig,
    workers: usize,
    shards: usize,
    quant: QuantMode,
) -> Result<String, CliError> {
    let socket = flags
        .get("socket")
        .ok_or_else(|| CliError::Usage("--daemon requires --socket PATH".into()))?;
    let class_names = model.class_names.clone();
    let drift = parse_drift_flags(flags)?;
    let mut daemon = Daemon::new(
        model,
        DaemonConfig {
            tracker,
            engine,
            workers,
            shards,
            quant,
        },
    )
    .map_err(|e| CliError::Parse(format!("model: {e}")))?;
    if let Some((refs, monitor, retrain)) = drift {
        daemon.enable_drift(&refs, monitor, retrain);
    }
    let mut obs = build_infer_observer(flags)?;
    daemon
        .run_on_path(std::path::Path::new(socket), obs.as_mut())
        .map_err(|e| CliError::Parse(format!("daemon: {e}")))?;
    let stats = daemon.stats();
    Ok(format!(
        "daemon on {socket} shut down: {} packets, {} flows classified \
         ({} classes), {} batches, {} evicted; forward p50 {:.2} ms, \
         p95 {:.2} ms, p99 {:.2} ms",
        stats.packets,
        stats.flows_classified,
        class_names.len(),
        stats.batches,
        stats.evicted,
        stats.p50_ms,
        stats.p95_ms,
        stats.p99_ms,
    ))
}

#[cfg(test)]
mod tests {
    use crate::cmd::common::testutil::{argv, tmp, write_served_model};
    use crate::command::run;

    #[test]
    fn serve_replays_a_trace_and_reports_latency() {
        let data = tmp("serve.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "5",
                "--out",
                &data,
            ]),
        )
        .unwrap();
        let model = write_served_model("serve-model.ckpt", 16, 5, 1);
        let jsonl = tmp("serve.jsonl");
        let msg = run(
            "serve",
            &argv(&[
                "--replay",
                &data,
                "--model",
                &model,
                "--rate",
                "10",
                "--max-batch",
                "8",
                "--log-jsonl",
                &jsonl,
            ]),
        )
        .unwrap();
        assert!(msg.contains("flows classified"), "{msg}");
        assert!(msg.contains("p50"), "{msg}");
        assert!(msg.contains("samples/sec"), "{msg}");
        let log = std::fs::read_to_string(&jsonl).unwrap();
        assert!(log.contains("\"event\":\"stream_start\""), "{log}");
        assert!(log.contains("\"event\":\"infer_batch_end\""), "{log}");
        assert!(log
            .trim_end()
            .lines()
            .last()
            .unwrap()
            .contains("stream_end"));
    }

    #[test]
    fn serve_hot_swaps_mid_replay() {
        let data = tmp("serve-swap.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "6",
                "--out",
                &data,
            ]),
        )
        .unwrap();
        let model_a = write_served_model("serve-a.ckpt", 16, 5, 1);
        let model_b = write_served_model("serve-b.ckpt", 16, 5, 2);
        let msg = run(
            "serve",
            &argv(&[
                "--replay",
                &data,
                "--model",
                &model_a,
                "--model2",
                &model_b,
                "--swap-at",
                "0.5",
            ]),
        )
        .unwrap();
        assert!(msg.contains("1 hot-swap(s)"), "{msg}");
        assert!(msg.contains("flows classified"), "{msg}");
    }

    #[test]
    fn serve_sharded_replay_reports_and_is_worker_invariant() {
        let data = tmp("serve-shards.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "8",
                "--out",
                &data,
            ]),
        )
        .unwrap();
        let model = write_served_model("serve-shards.ckpt", 16, 5, 1);
        let run_with = |workers: &str| {
            run(
                "serve",
                &argv(&[
                    "--replay",
                    &data,
                    "--model",
                    &model,
                    "--shards",
                    "4",
                    "--workers",
                    workers,
                ]),
            )
            .unwrap()
        };
        let w1 = run_with("1");
        assert!(w1.contains("4 shard(s)"), "{w1}");
        assert!(w1.contains("flows classified"), "{w1}");
        // The per-class tail of the report is wall-clock-free, so it
        // must be identical at any worker count.
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("  "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&w1), tail(&run_with("3")));
    }

    #[test]
    fn serve_usage_errors() {
        let data = tmp("serve-usage.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "7",
                "--out",
                &data,
            ]),
        )
        .unwrap();
        let model = write_served_model("serve-usage.ckpt", 16, 5, 3);
        // --swap-at without --model2 is meaningless.
        assert!(run(
            "serve",
            &argv(&["--replay", &data, "--model", &model, "--swap-at", "0.5"]),
        )
        .is_err());
        assert!(run(
            "serve",
            &argv(&["--replay", &data, "--model", &model, "--rate", "0"]),
        )
        .is_err());
        assert!(run(
            "serve",
            &argv(&["--replay", &data, "--model", &model, "--shards", "0"]),
        )
        .is_err());
        // --daemon without --socket has nowhere to listen.
        assert!(run("serve", &argv(&["--daemon", "--model", &model])).is_err());
        // An unknown quant mode is a usage error, not a late panic.
        assert!(run(
            "serve",
            &argv(&["--replay", &data, "--model", &model, "--quant", "fp4"]),
        )
        .is_err());
        // A model file that is neither format is a parse error.
        let bogus = tmp("serve-bogus.model");
        std::fs::write(&bogus, "not a model").unwrap();
        assert!(run("serve", &argv(&["--replay", &data, "--model", &bogus])).is_err());
        // Drift flags are daemon-only; the usage error fires before the
        // model file is even opened.
        for (flag, value) in [
            ("--drift-ref", "refs.json"),
            ("--drift-threshold", "0.5"),
            ("--retrain-min-flows", "16"),
        ] {
            let err = run(
                "serve",
                &argv(&["--replay", &data, "--model", "/nonexistent", flag, value]),
            )
            .unwrap_err();
            assert!(
                format!("{err}").contains("requires --daemon"),
                "{flag}: {err}"
            );
        }
        // Refining drift knobs without --drift-ref point at the
        // enabling flag (daemon mode, socket present but never bound).
        let err = run(
            "serve",
            &argv(&[
                "--daemon",
                "--socket",
                "/tmp/tcb-usage.sock",
                "--model",
                &model,
                "--drift-sustain",
                "3",
            ]),
        )
        .unwrap_err();
        assert!(format!("{err}").contains("--drift-ref"), "{err}");
    }

    #[test]
    fn serve_reject_below_scores_open_world_and_zero_is_identical() {
        let data = tmp("serve-quic.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "quic",
                "--scale",
                "tiny",
                "--seed",
                "11",
                "--out",
                &data,
            ]),
        )
        .unwrap();
        // A 10-class model over the 14-class quic trace: classes 10..14
        // are open-world unknowns.
        let model = write_served_model("serve-quic.ckpt", 16, 10, 1);
        let run_with = |extra: &[&str]| {
            let mut args = vec!["--replay", &data, "--model", &model];
            args.extend_from_slice(extra);
            run("serve", &argv(&args)).unwrap()
        };
        // --reject-below 0 is the default path, byte for byte — modulo
        // the wall-clock latency/throughput lines, which vary run to
        // run by construction.
        let wall_clock_free = |out: &str| {
            out.lines()
                .filter(|l| !l.contains("latency ms:") && !l.contains("throughput:"))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        let default = run_with(&[]);
        assert_eq!(
            wall_clock_free(&default),
            wall_clock_free(&run_with(&["--reject-below", "0"]))
        );
        assert!(!default.contains("(rejected)"), "{default}");
        // A maximal threshold rejects every flow and the score block
        // reports the open-world rates.
        let scored = run_with(&["--reject-below", "1.0", "--score"]);
        assert!(scored.contains("(rejected)"), "{scored}");
        assert!(scored.contains("ground truth: known accuracy"), "{scored}");
        assert!(scored.contains("open world:"), "{scored}");
        // Out-of-range and non-finite thresholds are usage errors.
        for bad in ["1.5", "-0.1", "NaN", "inf"] {
            assert!(
                run(
                    "serve",
                    &argv(&["--replay", &data, "--model", &model, "--reject-below", bad]),
                )
                .is_err(),
                "--reject-below {bad} must be rejected"
            );
        }
    }

    #[test]
    fn serve_quant_off_matches_the_default_and_int8_replays() {
        let data = tmp("serve-quant.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "9",
                "--out",
                &data,
            ]),
        )
        .unwrap();
        let model = write_served_model("serve-quant.ckpt", 16, 5, 4);
        let run_with = |extra: &[&str]| {
            let mut args = vec!["--replay", &data, "--model", &model];
            args.extend_from_slice(extra);
            run("serve", &argv(&args)).unwrap()
        };
        // The wall-clock-free tail of the report (per-class counts) is
        // the prediction-derived part.
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("  "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        // --quant off is the default path, bit for bit.
        let default = run_with(&[]);
        assert_eq!(tail(&default), tail(&run_with(&["--quant", "off"])));
        // --quant int8 replays end to end and classifies the same flows.
        let int8 = run_with(&["--quant", "int8"]);
        assert!(int8.contains("flows classified"), "{int8}");
    }
}
