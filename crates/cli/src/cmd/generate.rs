//! `tcb generate` — simulate a dataset into a flowrec file.

use crate::args::Flags;
use crate::cmd::common::save_dataset;
use crate::CliError;
use trafficgen::types::Dataset;

/// CLI name.
pub const NAME: &str = "generate";
/// Usage-listing summary.
pub const SUMMARY: &str = "simulate a dataset into a flowrec file";
/// `--help` text.
pub const HELP: &str = "tcb generate --dataset ucdavis19|mirage19|mirage22|utmobilenet21|stress|\
shift|shift-baseline|quic|quic-known [--scale quick|paper|tiny] [--seed N] --out FILE\n\
stress is the serving-path load shape (many tiny flows, each closed \
just past the 15 s window): tiny=200 flows, quick=20k, paper=1M.\n\
shift is a stress-style trace where one class's size/rate distribution \
drifts mid-stream (tiny=300 flows, quick=2k, paper=20k); shift-baseline \
is the same trace with the drift disabled — train and snapshot drift \
references on the baseline, replay the shifted trace at the daemon.\n\
quic is the QUIC-era open-world workload (14 imbalanced classes, 4 held \
out as unknown, diurnal rate drift; tiny=280 flows, quick=6k, \
paper=100k); quic-known is the training subset with only the 10 known \
classes — train on quic-known, replay quic with --reject-below.";

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["dataset", "scale", "seed", "out"], &[])?;
    if flags.wants_help() {
        return Ok(HELP.into());
    }
    let seed = flags.get_parse::<u64>("seed", 42)?;
    let scale = flags.get("scale").unwrap_or("quick");
    let name = flags.require("dataset")?;
    let ds = build_dataset(name, scale, seed)?;
    let out = flags.require("out")?;
    save_dataset(out, &ds)?;
    Ok(format!(
        "generated {}: {} flows, {} classes -> {out}",
        ds.name,
        ds.flows.len(),
        ds.num_classes()
    ))
}

fn build_dataset(name: &str, scale: &str, seed: u64) -> Result<Dataset, CliError> {
    use trafficgen::mirage19::{Mirage19Config, Mirage19Sim};
    use trafficgen::mirage22::{Mirage22Config, Mirage22Sim};
    use trafficgen::quic::{QuicConfig, QuicSim};
    use trafficgen::shift::{ShiftConfig, ShiftSim};
    use trafficgen::stress::{StressConfig, StressSim};
    use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};
    use trafficgen::utmobilenet::{UtMobileNetConfig, UtMobileNetSim};
    macro_rules! pick {
        ($cfg:ident) => {
            match scale {
                "paper" => $cfg::paper(),
                "quick" => $cfg::quick(),
                "tiny" => $cfg::tiny(),
                other => return Err(CliError::Usage(format!("unknown scale {other}"))),
            }
        };
    }
    Ok(match name {
        "ucdavis19" => UcDavisSim::new(pick!(UcDavisConfig)).generate(seed),
        "mirage19" => Mirage19Sim::new(pick!(Mirage19Config)).generate(seed),
        "mirage22" => Mirage22Sim::new(pick!(Mirage22Config)).generate(seed),
        "utmobilenet21" => UtMobileNetSim::new(pick!(UtMobileNetConfig)).generate(seed),
        // Stress scales map onto the shared scale names: paper is the
        // million-flow headline shape, quick the CI smoke size.
        "stress" => StressSim::new(match scale {
            "paper" => StressConfig::million(),
            "quick" => StressConfig::ci(),
            "tiny" => StressConfig::tiny(),
            other => return Err(CliError::Usage(format!("unknown scale {other}"))),
        })
        .generate(seed),
        // Shift scales follow the shift module's own naming: paper is the
        // 20k-flow headline trace, quick the CI smoke size. The baseline
        // variant is the identical trace with the mid-stream drift
        // disabled (train + drift references come from it).
        "shift" | "shift-baseline" => {
            let mut cfg = match scale {
                "paper" => ShiftConfig::paper(),
                "quick" => ShiftConfig::ci(),
                "tiny" => ShiftConfig::tiny(),
                other => return Err(CliError::Usage(format!("unknown scale {other}"))),
            };
            if name == "shift-baseline" {
                cfg = cfg.baseline();
            }
            ShiftSim::new(cfg).generate(seed)
        }
        // The open-world pair shares one simulator: quic is the full
        // serve-time workload (known + unknown classes), quic-known the
        // training subset filtered to the known classes. Same seed =>
        // the known flows are bit-identical across the two files.
        "quic" | "quic-known" => {
            let sim = QuicSim::new(match scale {
                "paper" => QuicConfig::paper(),
                "quick" => QuicConfig::ci(),
                "tiny" => QuicConfig::tiny(),
                other => return Err(CliError::Usage(format!("unknown scale {other}"))),
            });
            if name == "quic-known" {
                sim.generate_known(seed)
            } else {
                sim.generate(seed)
            }
        }
        other => return Err(CliError::Usage(format!("unknown dataset {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use crate::cmd::common::testutil::{argv, tmp};
    use crate::command::run;

    #[test]
    fn generate_stats_round_trip() {
        let path = tmp("gen.flowrec");
        let msg = run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "3",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        assert!(msg.contains("ucdavis19"));
        let stats = run("stats", &argv(&["--input", &path])).unwrap();
        assert!(stats.contains("5 classes"), "{stats}");
        assert!(stats.contains("[pretraining]"), "{stats}");
    }

    #[test]
    fn generate_stress_trace() {
        let path = tmp("gen-stress.flowrec");
        let msg = run(
            "generate",
            &argv(&[
                "--dataset",
                "stress",
                "--scale",
                "tiny",
                "--seed",
                "1",
                "--out",
                &path,
            ]),
        )
        .unwrap();
        assert!(msg.contains("stress-200"), "{msg}");
        assert!(msg.contains("200 flows"), "{msg}");
    }

    #[test]
    fn generate_shift_and_baseline_traces() {
        let shifted = tmp("gen-shift.flowrec");
        let msg = run(
            "generate",
            &argv(&[
                "--dataset",
                "shift",
                "--scale",
                "tiny",
                "--seed",
                "1",
                "--out",
                &shifted,
            ]),
        )
        .unwrap();
        assert!(msg.contains("shift-300"), "{msg}");
        let base = tmp("gen-shift-base.flowrec");
        let msg = run(
            "generate",
            &argv(&[
                "--dataset",
                "shift-baseline",
                "--scale",
                "tiny",
                "--seed",
                "1",
                "--out",
                &base,
            ]),
        )
        .unwrap();
        assert!(msg.contains("shift-baseline-300"), "{msg}");
    }

    #[test]
    fn generate_quic_and_known_subset() {
        let full = tmp("gen-quic.flowrec");
        let msg = run(
            "generate",
            &argv(&[
                "--dataset",
                "quic",
                "--scale",
                "tiny",
                "--seed",
                "1",
                "--out",
                &full,
            ]),
        )
        .unwrap();
        assert!(msg.contains("quic-280"), "{msg}");
        assert!(msg.contains("14 classes"), "{msg}");
        let known = tmp("gen-quic-known.flowrec");
        let msg = run(
            "generate",
            &argv(&[
                "--dataset",
                "quic-known",
                "--scale",
                "tiny",
                "--seed",
                "1",
                "--out",
                &known,
            ]),
        )
        .unwrap();
        assert!(msg.contains("quic-known-280"), "{msg}");
        assert!(msg.contains("10 classes"), "{msg}");
    }
}
