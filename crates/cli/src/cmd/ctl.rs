//! `tcb ctl` — client for the `tcb serve --daemon` control plane.
//!
//! Verb-first grammar: `tcb ctl <verb> --socket PATH [flags]`. Each
//! invocation opens one connection, sends one line-delimited JSON
//! request and renders the reply (except `send-trace`, which streams
//! one `packet` request per record over a single connection).

use crate::args::Flags;
use crate::cmd::common::load_dataset;
use crate::CliError;
use serve::daemon::{ctl_roundtrip, stream_trace, CtlClient, CtlRequest, CtlResponse};
use std::path::Path;

/// CLI name.
pub const NAME: &str = "ctl";
/// Usage-listing summary.
pub const SUMMARY: &str = "send control requests to a running daemon";
/// `--help` text.
pub const HELP: &str = "tcb ctl <verb> --socket PATH [flags]\n\
verbs:\n\
  push-model --model FILE    hot-swap the serving model (fingerprint-validated)\n\
  stats                      live counters + forward-latency quantiles\n\
  set-config [--sparsity-threshold F] [--max-batch N] [--max-wait-ms F]\n\
             [--idle-timeout F] [--max-flows N] [--pending-cap N]\n\
             [--quant off|int8] [--drift-threshold F] [--drift-interval F]\n\
             [--reject-below F]\n\
                             apply engine/tracker knobs to the live pipeline\n\
                             (caps are per dataplane lane; the shard count\n\
                             itself is fixed at daemon startup; the threshold\n\
                             must be a finite value in [0.0, 1.1]; --quant\n\
                             switches the CNN eval lane between exact f32\n\
                             and quantized int8; the drift knobs need a\n\
                             daemon started with --drift-ref: the verdict\n\
                             threshold is a finite value in (0, 2], the\n\
                             check interval positive stream-time seconds;\n\
                             --reject-below is the open-world rejection\n\
                             threshold, a finite probability in [0, 1] — 0\n\
                             disables the lane bit-identically)\n\
  send-trace --replay FILE [--rate 1.0] [--flow-gap-ms 400]\n\
                             stream a flowrec-derived packet trace\n\
  drift-status               drift checks, per-class L1 scores, verdicts\n\
                             and background-retrain progress\n\
  flush                      classify every still-open flow now\n\
  predictions                drain the pending predictions (each is\n\
                             returned exactly once)\n\
  shutdown                   graceful drain, then exit";

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let verb = match args.first().map(String::as_str) {
        None | Some("--help") => return Ok(HELP.into()),
        Some(v) if v.starts_with("--") => {
            return Err(CliError::Usage(format!(
                "ctl expects a verb before flags, got {v}\n\n{HELP}"
            )));
        }
        Some(v) => v,
    };
    let rest = &args[1..];
    match verb {
        "push-model" => {
            let flags = Flags::parse(rest, &["socket", "model"], &[])?;
            if flags.wants_help() {
                return Ok(HELP.into());
            }
            let req = CtlRequest::PushModel {
                path: flags.require("model")?.to_string(),
            };
            render(roundtrip(&flags, &req)?)
        }
        "stats" => {
            let flags = Flags::parse(rest, &["socket"], &[])?;
            if flags.wants_help() {
                return Ok(HELP.into());
            }
            render(roundtrip(&flags, &CtlRequest::Stats)?)
        }
        "set-config" => {
            let flags = Flags::parse(
                rest,
                &[
                    "socket",
                    "sparsity-threshold",
                    "max-batch",
                    "max-wait-ms",
                    "idle-timeout",
                    "max-flows",
                    "pending-cap",
                    "quant",
                    "drift-threshold",
                    "drift-interval",
                    "reject-below",
                ],
                &[],
            )?;
            if flags.wants_help() {
                return Ok(HELP.into());
            }
            let threshold = flags.get_opt_parse::<f32>("sparsity-threshold")?;
            if let Some(t) = threshold {
                // Client-side mirror of the daemon's check: fail before
                // touching the socket, with the same contract.
                if !t.is_finite() || !(0.0..=1.1).contains(&t) {
                    return Err(CliError::Usage(format!(
                        "--sparsity-threshold must be a finite value in \
                         [0.0, 1.1], got {t}"
                    )));
                }
            }
            let quant = flags.get("quant");
            if let Some(q) = quant {
                q.parse::<serve::engine::QuantMode>()
                    .map_err(|e| CliError::Usage(format!("--quant: {e}")))?;
            }
            let drift_threshold = flags.get_opt_parse::<f64>("drift-threshold")?;
            if let Some(t) = drift_threshold {
                // Client-side mirror of the daemon's (0, 2] L1 check.
                if !t.is_finite() || t <= 0.0 || t > 2.0 {
                    return Err(CliError::Usage(format!(
                        "--drift-threshold must be a finite value in (0, 2], got {t}"
                    )));
                }
            }
            let drift_interval_s = flags.get_opt_parse::<f64>("drift-interval")?;
            if let Some(s) = drift_interval_s {
                if !s.is_finite() || s <= 0.0 {
                    return Err(CliError::Usage(format!(
                        "--drift-interval must be finite and positive, got {s}"
                    )));
                }
            }
            let reject_below = flags.get_opt_parse::<f32>("reject-below")?;
            if let Some(r) = reject_below {
                // Client-side mirror of the daemon's [0, 1] check.
                if !r.is_finite() || !(0.0..=1.0).contains(&r) {
                    return Err(CliError::Usage(format!(
                        "--reject-below must be a finite probability in [0, 1], got {r}"
                    )));
                }
            }
            let req = CtlRequest::SetConfig {
                sparsity_threshold: threshold,
                max_batch: flags.get_opt_parse::<usize>("max-batch")?,
                max_wait_ms: flags.get_opt_parse::<f64>("max-wait-ms")?,
                idle_timeout_s: flags.get_opt_parse::<f64>("idle-timeout")?,
                max_flows: flags.get_opt_parse::<usize>("max-flows")?,
                pending_cap: flags.get_opt_parse::<usize>("pending-cap")?,
                quant: quant.map(String::from),
                drift_threshold,
                drift_interval_s,
                reject_below,
            };
            if matches!(
                req,
                CtlRequest::SetConfig {
                    sparsity_threshold: None,
                    max_batch: None,
                    max_wait_ms: None,
                    idle_timeout_s: None,
                    max_flows: None,
                    pending_cap: None,
                    quant: None,
                    drift_threshold: None,
                    drift_interval_s: None,
                    reject_below: None,
                }
            ) {
                return Err(CliError::Usage(
                    "set-config needs at least one knob (--sparsity-threshold, \
                     --max-batch, --max-wait-ms, --idle-timeout, --max-flows, \
                     --pending-cap, --quant, --drift-threshold, --drift-interval, \
                     --reject-below)"
                        .into(),
                ));
            }
            render(roundtrip(&flags, &req)?)
        }
        "drift-status" => {
            let flags = Flags::parse(rest, &["socket"], &[])?;
            if flags.wants_help() {
                return Ok(HELP.into());
            }
            render(roundtrip(&flags, &CtlRequest::DriftStatus)?)
        }
        "send-trace" => {
            let flags = Flags::parse(rest, &["socket", "replay", "rate", "flow-gap-ms"], &[])?;
            if flags.wants_help() {
                return Ok(HELP.into());
            }
            let ds = load_dataset(flags.require("replay")?)?;
            let rate = flags.get_parse::<f64>("rate", 1.0)?;
            if rate <= 0.0 {
                return Err(CliError::Usage("--rate must be positive".into()));
            }
            let flow_gap_s = flags.get_parse::<f64>("flow-gap-ms", 400.0)? / 1e3;
            let trace = serve::replay::trace_from_dataset(&ds, flow_gap_s, rate);
            let mut client = CtlClient::connect(Path::new(flags.require("socket")?))
                .map_err(|e| CliError::Parse(format!("ctl: {e}")))?;
            let sent = stream_trace(&mut client, &trace)
                .map_err(|e| CliError::Parse(format!("ctl: {e}")))?;
            Ok(format!("streamed {sent} packets"))
        }
        "flush" => {
            let flags = Flags::parse(rest, &["socket"], &[])?;
            if flags.wants_help() {
                return Ok(HELP.into());
            }
            render(roundtrip(&flags, &CtlRequest::Flush)?)
        }
        "predictions" => {
            let flags = Flags::parse(rest, &["socket"], &[])?;
            if flags.wants_help() {
                return Ok(HELP.into());
            }
            render(roundtrip(&flags, &CtlRequest::Predictions)?)
        }
        "shutdown" => {
            let flags = Flags::parse(rest, &["socket"], &[])?;
            if flags.wants_help() {
                return Ok(HELP.into());
            }
            render(roundtrip(&flags, &CtlRequest::Shutdown)?)
        }
        other => Err(CliError::Usage(format!(
            "unknown ctl verb {other}\n\n{HELP}"
        ))),
    }
}

fn roundtrip(flags: &Flags, req: &CtlRequest) -> Result<CtlResponse, CliError> {
    let socket = flags.require("socket")?;
    ctl_roundtrip(Path::new(socket), req).map_err(|e| CliError::Parse(format!("ctl: {e}")))
}

/// Renders a daemon reply for the terminal; an `error` reply becomes a
/// runtime error (exit 1).
fn render(resp: CtlResponse) -> Result<String, CliError> {
    match resp {
        CtlResponse::Ok => Ok("ok".into()),
        CtlResponse::Error { message } => Err(CliError::Parse(format!("daemon: {message}"))),
        CtlResponse::Swapped { old, new } => Ok(format!("swapped model {old} -> {new}")),
        CtlResponse::Stats { stats } => {
            let mut out = format!(
                "model {} over {} shard(s)\npackets {}, flows tracked {}, classified {}, \
                 batches {}, evicted {}, queue depth {}\n\
                 predictions pending {}, dropped {}, rejected {}\n\
                 forward p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms\n\
                 max-batch {}, max-wait {:.0} ms, idle-timeout {:.0} s",
                stats.model_fingerprint,
                stats.shards,
                stats.packets,
                stats.flows_tracked,
                stats.flows_classified,
                stats.batches,
                stats.evicted,
                stats.queue_depth,
                stats.predictions_pending,
                stats.predictions_dropped,
                stats.rejected,
                stats.p50_ms,
                stats.p95_ms,
                stats.p99_ms,
                stats.max_batch,
                stats.max_wait_ms,
                stats.idle_timeout_s,
            );
            if let Some(drift) = &stats.drift {
                out.push('\n');
                out.push_str(&render_drift(drift));
            }
            Ok(out)
        }
        CtlResponse::Predictions { predictions } => {
            let mut out = format!("{} prediction(s)\n", predictions.len());
            for p in &predictions {
                match p.label {
                    Some(label) if !p.is_rejected() => out.push_str(&format!(
                        "flow {}: class {label} (confidence {:.4})\n",
                        p.flow_id,
                        p.confidence()
                    )),
                    _ => out.push_str(&format!(
                        "flow {}: rejected (confidence {:.4})\n",
                        p.flow_id,
                        p.confidence()
                    )),
                }
            }
            Ok(out)
        }
        CtlResponse::Drift { drift } => Ok(render_drift(&drift)),
    }
}

/// Renders the drift-status payload (shared by `drift-status` and the
/// drift tail of `stats`).
fn render_drift(drift: &serve::drift::DriftStats) -> String {
    if !drift.enabled {
        return "drift detection disabled (start the daemon with --drift-ref)".into();
    }
    let scores = drift
        .class_scores
        .iter()
        .map(|s| {
            if *s < 0.0 {
                "-".to_string()
            } else {
                format!("{s:.3}")
            }
        })
        .collect::<Vec<_>>()
        .join(" ");
    let mut out = format!(
        "drift: {} check(s), {} verdict(s), threshold {:.3}, interval {:.0} s\n\
         class L1 scores [{scores}]\n\
         retrain {} ({} started, {} accepted)",
        drift.checks,
        drift.verdicts,
        drift.threshold,
        drift.check_interval_s,
        drift.retrain_state,
        drift.retrains_started,
        drift.retrains_accepted,
    );
    if let Some(v) = &drift.last_verdict {
        out.push_str(&format!(
            "\nlast verdict: class {} scored {:.3} at packet {} (t={:.1} s)",
            v.class, v.score, v.packet, v.at_ts
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::common::testutil::{argv, tmp, write_served_model};
    use crate::command::run;
    use flowpic::{FlowpicConfig, Normalization};
    use serve::daemon::{Daemon, DaemonConfig};
    use serve::engine::EngineConfig;
    use serve::registry::ServedModel;
    use serve::tracker::TrackerConfig;
    use tcbench::telemetry as tel;

    fn spawn_daemon(model_path: &str, socket: &str) -> std::thread::JoinHandle<()> {
        let model = ServedModel::load(Path::new(model_path)).unwrap();
        let config = DaemonConfig {
            tracker: TrackerConfig {
                flowpic: FlowpicConfig::with_resolution(model.resolution),
                norm: Normalization::LogMax,
                idle_timeout_s: 30.0,
                max_flows: 1000,
                done_horizon_s: 120.0,
            },
            engine: EngineConfig {
                max_batch: 4,
                max_wait_s: 0.5,
                ..EngineConfig::default()
            },
            workers: 1,
            shards: 2,
            quant: serve::engine::QuantMode::Off,
        };
        let socket = std::path::PathBuf::from(socket);
        std::thread::spawn(move || {
            let mut daemon = Daemon::new(model, config).unwrap();
            daemon.run_on_path(&socket, &mut tel::Noop).unwrap();
        })
    }

    fn wait_for_socket(path: &str) {
        for _ in 0..200 {
            if Path::new(path).exists() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("daemon socket {path} never appeared");
    }

    #[test]
    fn ctl_drives_a_daemon_end_to_end() {
        let data = tmp("ctl.flowrec");
        run(
            "generate",
            &argv(&[
                "--dataset",
                "ucdavis19",
                "--scale",
                "tiny",
                "--seed",
                "11",
                "--out",
                &data,
            ]),
        )
        .unwrap();
        let model_a = write_served_model("ctl-a.ckpt", 16, 5, 1);
        let model_b = write_served_model("ctl-b.ckpt", 16, 5, 2);
        let socket = tmp("ctl.sock");
        let _ = std::fs::remove_file(&socket);
        let handle = spawn_daemon(&model_a, &socket);
        wait_for_socket(&socket);

        let msg = run(
            "ctl",
            &argv(&["send-trace", "--socket", &socket, "--replay", &data]),
        )
        .unwrap();
        assert!(msg.contains("streamed"), "{msg}");

        let msg = run(
            "ctl",
            &argv(&[
                "set-config",
                "--socket",
                &socket,
                "--max-batch",
                "2",
                "--max-flows",
                "500",
                "--pending-cap",
                "2048",
                "--reject-below",
                "0.05",
            ]),
        )
        .unwrap();
        assert_eq!(msg, "ok");

        let msg = run(
            "ctl",
            &argv(&["push-model", "--socket", &socket, "--model", &model_b]),
        )
        .unwrap();
        assert!(msg.contains("swapped model"), "{msg}");

        let msg = run("ctl", &argv(&["flush", "--socket", &socket])).unwrap();
        assert_eq!(msg, "ok");
        let msg = run("ctl", &argv(&["predictions", "--socket", &socket])).unwrap();
        assert!(msg.contains("prediction(s)"), "{msg}");
        let stats = run("ctl", &argv(&["stats", "--socket", &socket])).unwrap();
        assert!(stats.contains("max-batch 2"), "{stats}");
        assert!(stats.contains("2 shard(s)"), "{stats}");
        // `predictions` drained the buffer above.
        assert!(stats.contains("predictions pending 0"), "{stats}");

        let msg = run("ctl", &argv(&["shutdown", "--socket", &socket])).unwrap();
        assert_eq!(msg, "ok");
        handle.join().unwrap();
    }

    #[test]
    fn ctl_usage_errors() {
        // No verb / unknown verb / flags before the verb.
        assert!(run("ctl", &argv(&["bogus", "--socket", "/tmp/x"])).is_err());
        assert!(run("ctl", &argv(&["--socket", "/tmp/x"])).is_err());
        // set-config with nothing to set.
        assert!(run("ctl", &argv(&["set-config", "--socket", "/tmp/x"])).is_err());
        // Out-of-range, non-finite, or NaN thresholds fail client-side
        // as usage errors — the socket is never touched.
        for bad in ["-0.5", "1.5", "NaN", "inf"] {
            let err = run(
                "ctl",
                &argv(&[
                    "set-config",
                    "--socket",
                    "/tmp/tcb-no-such.sock",
                    "--sparsity-threshold",
                    bad,
                ]),
            )
            .unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad}: {err}");
        }
        // Drift knobs mirror the daemon's checks client-side.
        for (flag, bad) in [
            ("--drift-threshold", "0"),
            ("--drift-threshold", "-0.5"),
            ("--drift-threshold", "2.5"),
            ("--drift-threshold", "NaN"),
            ("--drift-interval", "0"),
            ("--drift-interval", "-1"),
            ("--drift-interval", "inf"),
        ] {
            let err = run(
                "ctl",
                &argv(&["set-config", "--socket", "/tmp/tcb-no-such.sock", flag, bad]),
            )
            .unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{flag} {bad}: {err}");
        }
        // The rejection threshold mirrors the daemon's [0, 1] check.
        for bad in ["-0.1", "1.5", "NaN", "inf"] {
            let err = run(
                "ctl",
                &argv(&[
                    "set-config",
                    "--socket",
                    "/tmp/tcb-no-such.sock",
                    "--reject-below",
                    bad,
                ]),
            )
            .unwrap_err();
            assert!(
                matches!(err, CliError::Usage(_)),
                "--reject-below {bad}: {err}"
            );
        }
        // Same for an unknown quant mode.
        let err = run(
            "ctl",
            &argv(&[
                "set-config",
                "--socket",
                "/tmp/tcb-no-such.sock",
                "--quant",
                "fp4",
            ]),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        // A dead socket is a runtime error, not a usage error.
        let err = run(
            "ctl",
            &argv(&["stats", "--socket", "/tmp/tcb-no-such.sock"]),
        )
        .unwrap_err();
        assert!(!matches!(err, CliError::Usage(_)), "{err}");
        // Bare `tcb ctl` prints help.
        assert!(run("ctl", &[]).unwrap().contains("push-model"));
    }
}
