//! Property-based tests of augmentation invariants.

use proptest::prelude::*;

prop_compose! {
    fn arb_pkts(max: usize)(
        gaps in prop::collection::vec(0.0f64..1.0, 1..max),
        sizes in prop::collection::vec(1u16..=1500, max),
    ) -> Vec<Pkt> {
        let mut ts = 0.0;
        gaps.iter()
            .enumerate()
            .map(|(i, &g)| {
                let t = ts;
                ts += g;
                Pkt::data(t, sizes[i], Direction::Downstream)
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn change_rtt_preserves_order_sizes_and_count(
        pkts in arb_pkts(60),
        alpha in 0.01f64..10.0,
    ) {
        let out = timeseries::change_rtt_with(&pkts, alpha);
        prop_assert_eq!(out.len(), pkts.len());
        prop_assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts));
        for (a, b) in pkts.iter().zip(&out) {
            prop_assert_eq!(a.size, b.size);
            prop_assert_eq!(a.dir, b.dir);
            prop_assert!((b.ts - a.ts * alpha).abs() < 1e-9);
        }
    }

    #[test]
    fn time_shift_clamps_and_preserves_order(
        pkts in arb_pkts(60),
        b in -5.0f64..5.0,
    ) {
        let out = timeseries::time_shift_with(&pkts, b);
        prop_assert_eq!(out.len(), pkts.len());
        prop_assert!(out.iter().all(|p| p.ts >= 0.0));
        prop_assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn packet_loss_yields_a_rezeroed_subsequence(
        pkts in arb_pkts(60),
        p in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = timeseries::packet_loss(&pkts, p, &mut rng);
        prop_assert!(!out.is_empty());
        prop_assert!(out.len() <= pkts.len());
        prop_assert_eq!(out[0].ts, 0.0);
        prop_assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts));
        // Sizes form a subsequence of the original sizes.
        let mut it = pkts.iter();
        for o in &out {
            prop_assert!(it.any(|p| p.size == o.size), "not a subsequence");
        }
    }

    #[test]
    fn flip_is_involutive_and_mass_preserving(pkts in arb_pkts(60)) {
        let pic = Flowpic::build(&pkts, &FlowpicConfig::with_resolution(16));
        let flipped = image::horizontal_flip(&pic);
        prop_assert_eq!(flipped.total(), pic.total());
        prop_assert_eq!(image::horizontal_flip(&flipped), pic);
    }

    #[test]
    fn rotation_never_creates_mass(
        pkts in arb_pkts(60),
        theta in -1.0f64..1.0,
    ) {
        let pic = Flowpic::build(&pkts, &FlowpicConfig::with_resolution(16));
        let rotated = image::rotate_with(&pic, theta);
        // Nearest-neighbour rotation can drop border cells but each output
        // cell copies one input cell, so the max can't grow.
        prop_assert!(rotated.max() <= pic.max());
        prop_assert!(rotated.data.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn color_jitter_preserves_support(
        pkts in arb_pkts(60),
        strength in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let pic = Flowpic::build(&pkts, &FlowpicConfig::with_resolution(16));
        let mut rng = StdRng::seed_from_u64(seed);
        let out = image::color_jitter(&pic, strength, &mut rng);
        for (a, b) in pic.data.iter().zip(&out.data) {
            prop_assert_eq!(*a == 0.0, *b == 0.0);
            prop_assert!(*b >= 0.0);
        }
    }

    #[test]
    fn every_policy_is_total_and_valid(
        pkts in arb_pkts(60),
        seed in any::<u64>(),
    ) {
        let cfg = FlowpicConfig::mini();
        let mut rng = StdRng::seed_from_u64(seed);
        for aug in ALL_AUGMENTATIONS {
            let pic = aug.apply(&pkts, &cfg, &mut rng);
            prop_assert_eq!(pic.resolution, 32);
            prop_assert!(pic.data.iter().all(|v| v.is_finite() && *v >= 0.0), "{}", aug.name());
        }
        // NoAug is exactly the plain rasterization.
        let plain = Augmentation::NoAug.apply(&pkts, &cfg, &mut rng);
        prop_assert_eq!(plain, Flowpic::build(&pkts, &cfg));
    }

    #[test]
    fn subflow_sampling_invariants(
        pkts in arb_pkts(80),
        target in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for m in ALL_SAMPLING_METHODS {
            let sub = m.sample(&pkts, target, &mut rng);
            prop_assert_eq!(sub.len(), target.min(pkts.len()), "{}", m.name());
            prop_assert!(sub.is_empty() || sub[0].ts == 0.0);
            prop_assert!(sub.windows(2).all(|w| w[0].ts <= w[1].ts));
        }
        // Incremental subflows preserve consecutive inter-arrival gaps.
        if pkts.len() > target && target >= 2 {
            let sub = SamplingMethod::Incremental.sample(&pkts, target, &mut rng);
            let gaps: Vec<f64> = sub.windows(2).map(|w| w[1].ts - w[0].ts).collect();
            let orig_gaps: Vec<f64> = pkts.windows(2).map(|w| w[1].ts - w[0].ts).collect();
            // Every sampled gap appears in the original gap list.
            for g in gaps {
                prop_assert!(orig_gaps.iter().any(|&og| (og - g).abs() < 1e-9));
            }
        }
    }
}
