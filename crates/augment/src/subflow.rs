//! Subflow sampling augmentation of Rezaei & Liu (paper App. D.3).
//!
//! The study that introduced UCDAVIS19 augments flows by *sampling* them
//! into shorter "subflows" — coarser-grained views of the same flow — and
//! pre-trains a model to regress 24 statistical flow metrics from a
//! subflow. Three sampling methods are compared (the replication's
//! Table 9 / Fig. 9):
//!
//! * **Fixed step** — every `step`-th packet from a random starting
//!   offset;
//! * **Random** — a uniformly random subset of `target_len` packets, in
//!   order;
//! * **Incremental** — a consecutive window of packets from a random
//!   starting point.
//!
//! Each subflow keeps the original packet attributes; timestamps are
//! re-zeroed so a subflow is itself a valid flow prefix view.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use trafficgen::types::Pkt;

/// The three sampling methods of Rezaei & Liu.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SamplingMethod {
    /// Every `step`-th packet from a random offset.
    FixedStep,
    /// Uniformly random subset, order preserved.
    Random,
    /// Consecutive window from a random start.
    Incremental,
}

/// All methods in the replication's Table 9 column order.
pub const ALL_SAMPLING_METHODS: [SamplingMethod; 3] = [
    SamplingMethod::FixedStep,
    SamplingMethod::Random,
    SamplingMethod::Incremental,
];

impl SamplingMethod {
    /// Short name as used in the replication's Table 9.
    pub fn name(self) -> &'static str {
        match self {
            SamplingMethod::FixedStep => "Fixed",
            SamplingMethod::Random => "Rand",
            SamplingMethod::Incremental => "Incre",
        }
    }

    /// Samples one subflow of (up to) `target_len` packets.
    ///
    /// Returns the whole flow re-zeroed when it has at most `target_len`
    /// packets. Never returns an empty subflow for a non-empty input.
    pub fn sample<R: Rng + ?Sized>(self, pkts: &[Pkt], target_len: usize, rng: &mut R) -> Vec<Pkt> {
        assert!(target_len >= 1);
        if pkts.len() <= target_len {
            return rezero(pkts.to_vec());
        }
        let picked: Vec<Pkt> = match self {
            SamplingMethod::FixedStep => {
                let step = (pkts.len() / target_len).max(1);
                let offset = rng.random_range(0..step);
                pkts.iter()
                    .copied()
                    .skip(offset)
                    .step_by(step)
                    .take(target_len)
                    .collect()
            }
            SamplingMethod::Random => {
                // Reservoir-free exact sampling: choose indices by a
                // partial shuffle of the index space.
                let mut indices: Vec<usize> = (0..pkts.len()).collect();
                for i in 0..target_len {
                    let j = rng.random_range(i..indices.len());
                    indices.swap(i, j);
                }
                let mut chosen = indices[..target_len].to_vec();
                chosen.sort_unstable();
                chosen.into_iter().map(|i| pkts[i]).collect()
            }
            SamplingMethod::Incremental => {
                let start = rng.random_range(0..=pkts.len() - target_len);
                pkts[start..start + target_len].to_vec()
            }
        };
        rezero(picked)
    }

    /// Samples `count` independent subflows.
    pub fn sample_many<R: Rng + ?Sized>(
        self,
        pkts: &[Pkt],
        target_len: usize,
        count: usize,
        rng: &mut R,
    ) -> Vec<Vec<Pkt>> {
        (0..count)
            .map(|_| self.sample(pkts, target_len, rng))
            .collect()
    }
}

fn rezero(mut pkts: Vec<Pkt>) -> Vec<Pkt> {
    if let Some(&first) = pkts.first() {
        if first.ts != 0.0 {
            for p in &mut pkts {
                p.ts -= first.ts;
            }
        }
    }
    pkts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trafficgen::types::Direction;

    fn pkts(n: usize) -> Vec<Pkt> {
        (0..n)
            .map(|i| Pkt::data(i as f64 * 0.1, i as u16 % 1500, Direction::Downstream))
            .collect()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(13)
    }

    #[test]
    fn all_methods_produce_target_length() {
        let flow = pkts(100);
        let mut r = rng();
        for m in ALL_SAMPLING_METHODS {
            let sub = m.sample(&flow, 20, &mut r);
            assert_eq!(sub.len(), 20, "{}", m.name());
            assert_eq!(sub[0].ts, 0.0);
            assert!(sub.windows(2).all(|w| w[0].ts <= w[1].ts));
        }
    }

    #[test]
    fn short_flows_pass_through() {
        let flow = pkts(5);
        let mut r = rng();
        for m in ALL_SAMPLING_METHODS {
            assert_eq!(m.sample(&flow, 20, &mut r).len(), 5);
        }
    }

    #[test]
    fn fixed_step_takes_evenly_spaced_packets() {
        let flow = pkts(100);
        let mut r = rng();
        let sub = SamplingMethod::FixedStep.sample(&flow, 10, &mut r);
        // Steps of 10: consecutive sampled sizes differ by 10.
        let diffs: Vec<i32> = sub
            .windows(2)
            .map(|w| w[1].size as i32 - w[0].size as i32)
            .collect();
        assert!(diffs.iter().all(|&d| d == 10), "{diffs:?}");
    }

    #[test]
    fn incremental_is_consecutive() {
        let flow = pkts(100);
        let mut r = rng();
        let sub = SamplingMethod::Incremental.sample(&flow, 10, &mut r);
        let diffs: Vec<i32> = sub
            .windows(2)
            .map(|w| w[1].size as i32 - w[0].size as i32)
            .collect();
        assert!(diffs.iter().all(|&d| d == 1), "{diffs:?}");
    }

    #[test]
    fn random_sampling_preserves_order_without_duplicates() {
        let flow = pkts(100);
        let mut r = rng();
        for _ in 0..20 {
            let sub = SamplingMethod::Random.sample(&flow, 30, &mut r);
            assert_eq!(sub.len(), 30);
            // Strictly increasing sizes == no duplicates, order preserved
            // (sizes are the original indices here).
            assert!(sub.windows(2).all(|w| w[1].size > w[0].size));
        }
    }

    #[test]
    fn sample_many_count() {
        let flow = pkts(50);
        let mut r = rng();
        let subs = SamplingMethod::Random.sample_many(&flow, 10, 7, &mut r);
        assert_eq!(subs.len(), 7);
        // Independent draws should not all be identical.
        assert!(subs.iter().any(|s| s != &subs[0]));
    }

    #[test]
    fn empty_flow_yields_empty_subflow() {
        let mut r = rng();
        for m in ALL_SAMPLING_METHODS {
            assert!(m.sample(&[], 10, &mut r).is_empty());
        }
    }
}
