//! # augment — data augmentations for traffic classification
//!
//! The Ref-Paper benchmarks 6 augmentations (plus "no augmentation") in a
//! supervised setting and uses the two best ones (Change RTT, Time shift)
//! to build SimCLR views. Augmentations come in two families:
//!
//! * **packet time-series transformations** ([`timeseries`]) — applied to
//!   the packet series *before* rasterization: Change RTT, Time shift,
//!   Packet loss. These imitate natural network variation (different path
//!   RTTs, clock offsets, loss), which is why the paper finds them the
//!   most beneficial;
//! * **image transformations** ([`image`]) — applied to the rasterized
//!   flowpic: Rotation, Horizontal flip, Color jitter. These come from the
//!   computer-vision toolbox and do not necessarily correspond to a
//!   realizable traffic phenomenon.
//!
//! [`policy`] ties both families behind the single [`Augmentation`] enum
//! the campaigns sweep over, and provides the [`ViewPair`] used for SimCLR
//! pre-training. [`subflow`] implements the sampling-based augmentation of
//! Rezaei & Liu reproduced in the paper's App. D.3.

pub mod extended;
pub mod image;
pub mod policy;
pub mod subflow;
pub mod timeseries;

pub use policy::{Augmentation, ViewPair, ALL_AUGMENTATIONS, EXTENDED_AUGMENTATIONS};

/// Standard-normal sample shared by the augmentation modules (Box–Muller;
/// kept here so `augment` does not depend on `trafficgen::dist`'s private
/// internals).
pub(crate) fn normal_sample<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    use rand::RngExt;
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}
