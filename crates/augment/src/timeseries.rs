//! Packet time-series transformations (Change RTT, Time shift, Packet
//! loss).
//!
//! Hyper-parameters follow the Ref-Paper where stated: Change RTT scales
//! time by `α ~ U[0.5, 1.5]`, Time shift translates by `b ~ U[-1, 1]`
//! seconds (both quoted verbatim in the replication's Sec. 4.4.1). The
//! packet-loss probability is not specified in either paper; the default
//! of 0.03 is tuned so the transformed flowpic stays recognizably the same
//! flow, and is configurable.
//!
//! All transforms preserve the series invariants (timestamps
//! non-decreasing, first packet at t=0 where applicable) and are pure
//! functions of the input series plus the RNG.

use rand::{Rng, RngExt};
use trafficgen::types::Pkt;

/// Change RTT: rescale all timestamps by `α ~ U[0.5, 1.5]`.
///
/// Mimics observing the same application behaviour behind a path with a
/// different round-trip time — bursts spread out or compress while the
/// size profile is untouched.
pub fn change_rtt<R: Rng + ?Sized>(pkts: &[Pkt], rng: &mut R) -> Vec<Pkt> {
    let alpha = 0.5 + rng.random::<f64>();
    change_rtt_with(pkts, alpha)
}

/// Change RTT with an explicit scale factor (for tests and ablations).
pub fn change_rtt_with(pkts: &[Pkt], alpha: f64) -> Vec<Pkt> {
    pkts.iter()
        .map(|p| Pkt {
            ts: p.ts * alpha,
            ..*p
        })
        .collect()
}

/// Time shift: translate all timestamps by `b ~ U[-1, 1]` seconds.
///
/// Packets shifted before time zero are clamped to zero (the capture
/// cannot contain negative times); packets shifted past the flowpic window
/// simply fall outside during rasterization.
pub fn time_shift<R: Rng + ?Sized>(pkts: &[Pkt], rng: &mut R) -> Vec<Pkt> {
    let b = -1.0 + 2.0 * rng.random::<f64>();
    time_shift_with(pkts, b)
}

/// Time shift with an explicit offset (for tests and ablations).
pub fn time_shift_with(pkts: &[Pkt], b: f64) -> Vec<Pkt> {
    pkts.iter()
        .map(|p| Pkt {
            ts: (p.ts + b).max(0.0),
            ..*p
        })
        .collect()
}

/// Packet loss: drop each packet independently with probability
/// `drop_prob`. Always keeps at least one packet so the flow stays valid.
pub fn packet_loss<R: Rng + ?Sized>(pkts: &[Pkt], drop_prob: f64, rng: &mut R) -> Vec<Pkt> {
    debug_assert!((0.0..=1.0).contains(&drop_prob));
    let mut out: Vec<Pkt> = pkts
        .iter()
        .copied()
        .filter(|_| rng.random::<f64>() >= drop_prob)
        .collect();
    if out.is_empty() {
        if let Some(&first) = pkts.first() {
            out.push(first);
        }
    }
    // Re-zero: dropping the first packet must not leave the series starting
    // at a positive time.
    if let Some(&first) = out.first() {
        if first.ts != 0.0 {
            for p in &mut out {
                p.ts -= first.ts;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trafficgen::types::Direction;

    fn series(n: usize) -> Vec<Pkt> {
        (0..n)
            .map(|i| Pkt::data(i as f64 * 0.5, 100 + i as u16, Direction::Downstream))
            .collect()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn change_rtt_scales_time_only() {
        let s = series(5);
        let out = change_rtt_with(&s, 2.0);
        for (a, b) in s.iter().zip(&out) {
            assert_eq!(b.ts, a.ts * 2.0);
            assert_eq!(b.size, a.size);
            assert_eq!(b.dir, a.dir);
        }
    }

    #[test]
    fn change_rtt_alpha_in_paper_range() {
        let s = series(2);
        for _ in 0..200 {
            let out = change_rtt(&s, &mut rng());
            // Second packet at 0.5s scaled by α∈[0.5,1.5] → [0.25, 0.75].
            assert!((0.25..=0.75).contains(&out[1].ts));
        }
    }

    #[test]
    fn time_shift_clamps_at_zero() {
        let s = series(5);
        let out = time_shift_with(&s, -1.2);
        assert_eq!(out[0].ts, 0.0);
        assert_eq!(out[1].ts, 0.0);
        assert_eq!(out[2].ts, 0.0);
        assert!((out[3].ts - 0.3).abs() < 1e-12);
        // Order preserved.
        assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn time_shift_offset_in_paper_range() {
        let s = series(2);
        let mut r = rng();
        for _ in 0..200 {
            let out = time_shift(&s, &mut r);
            // 0.5 + b, b∈[-1,1] → [0, 1.5] after clamping.
            assert!((0.0..=1.5).contains(&out[1].ts));
        }
    }

    #[test]
    fn packet_loss_drops_roughly_the_right_fraction() {
        let s = series(10_000);
        let mut r = rng();
        let out = packet_loss(&s, 0.2, &mut r);
        let kept = out.len() as f64 / s.len() as f64;
        assert!((kept - 0.8).abs() < 0.02, "kept {kept}");
    }

    #[test]
    fn packet_loss_never_empties_the_flow() {
        let s = series(3);
        let mut r = rng();
        for _ in 0..100 {
            assert!(!packet_loss(&s, 1.0, &mut r).is_empty());
        }
    }

    #[test]
    fn packet_loss_rezeros_timestamps() {
        let s = series(100);
        let mut r = rng();
        for _ in 0..20 {
            let out = packet_loss(&s, 0.5, &mut r);
            assert_eq!(out[0].ts, 0.0);
            assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts));
        }
    }

    #[test]
    fn zero_loss_is_identity() {
        let s = series(50);
        let mut r = rng();
        assert_eq!(packet_loss(&s, 0.0, &mut r), s);
    }

    #[test]
    fn empty_input_stays_empty() {
        let mut r = rng();
        assert!(packet_loss(&[], 0.5, &mut r).is_empty());
        assert!(change_rtt(&[], &mut r).is_empty());
        assert!(time_shift(&[], &mut r).is_empty());
    }
}
