//! Extended time-series augmentations beyond the Ref-Paper's six.
//!
//! The replication closes its Sec. 2.3 noting that "a broader and more
//! systematic comparison of data augmentation techniques in the TC field
//! should be of community-wide interest". These three additions model
//! further network phenomena with the same domain-knowledge flavour as
//! Change RTT / Time shift / Packet loss:
//!
//! * [`iat_jitter`] — multiplicative log-normal noise on every
//!   inter-arrival gap (queueing-delay variation packet by packet, where
//!   Change RTT rescales the whole flow uniformly);
//! * [`packet_duplication`] — random retransmissions: a packet reappears
//!   shortly after itself, as TCP loss recovery or link-layer repeats
//!   produce;
//! * [`pad_sizes`] — random per-packet payload padding (TLS record
//!   padding / MTU-quantization effects), sizes clamped to 1500.
//!
//! All three preserve the series invariants (ordering, t=0 start) and are
//! benchmarked against the paper's six in `ablation_extended_augs`.

use rand::{Rng, RngExt};
use trafficgen::types::Pkt;

/// Multiplies every inter-arrival gap by `exp(N(0, sigma))` — per-hop
/// queueing jitter. `sigma = 0.3` keeps flows recognizable.
pub fn iat_jitter<R: Rng + ?Sized>(pkts: &[Pkt], sigma: f64, rng: &mut R) -> Vec<Pkt> {
    assert!(sigma >= 0.0);
    if pkts.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(pkts.len());
    let mut t = 0.0f64;
    out.push(Pkt { ts: 0.0, ..pkts[0] });
    for w in pkts.windows(2) {
        let gap = w[1].ts - w[0].ts;
        let factor = (sigma * crate::normal_sample(rng)).exp();
        t += gap * factor;
        out.push(Pkt { ts: t, ..w[1] });
    }
    out
}

/// Duplicates each packet with probability `prob`; the copy arrives a
/// fraction of the local gap later, keeping ordering intact.
pub fn packet_duplication<R: Rng + ?Sized>(pkts: &[Pkt], prob: f64, rng: &mut R) -> Vec<Pkt> {
    assert!((0.0..=1.0).contains(&prob));
    let mut out = Vec::with_capacity(pkts.len() + (pkts.len() as f64 * prob) as usize + 1);
    for (i, p) in pkts.iter().enumerate() {
        out.push(*p);
        if rng.random::<f64>() < prob {
            // Place the duplicate before the next packet (or +1 ms at the
            // tail) so sortedness holds by construction.
            let next_ts = pkts.get(i + 1).map(|n| n.ts).unwrap_or(p.ts + 0.002);
            let dup_ts = p.ts + (next_ts - p.ts) * 0.5;
            out.push(Pkt { ts: dup_ts, ..*p });
        }
    }
    out
}

/// Adds `U[0, max_pad]` bytes of padding to every packet, clamped to the
/// MTU.
pub fn pad_sizes<R: Rng + ?Sized>(pkts: &[Pkt], max_pad: u16, rng: &mut R) -> Vec<Pkt> {
    pkts.iter()
        .map(|p| {
            let pad = rng.random_range(0..=max_pad);
            Pkt {
                size: (p.size.saturating_add(pad)).min(1500),
                ..*p
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trafficgen::types::Direction;

    fn series(n: usize) -> Vec<Pkt> {
        (0..n)
            .map(|i| Pkt::data(i as f64 * 0.3, 200 + i as u16, Direction::Downstream))
            .collect()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn iat_jitter_preserves_counts_sizes_and_order() {
        let s = series(40);
        let mut r = rng();
        let out = iat_jitter(&s, 0.3, &mut r);
        assert_eq!(out.len(), s.len());
        assert_eq!(out[0].ts, 0.0);
        assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts));
        for (a, b) in s.iter().zip(&out) {
            assert_eq!(a.size, b.size);
        }
        // Jitter actually changes timing.
        assert!(s.iter().zip(&out).any(|(a, b)| (a.ts - b.ts).abs() > 1e-9));
    }

    #[test]
    fn iat_jitter_zero_sigma_is_identity() {
        let s = series(10);
        let mut r = rng();
        let out = iat_jitter(&s, 0.0, &mut r);
        for (a, b) in s.iter().zip(&out) {
            assert!((a.ts - b.ts).abs() < 1e-9);
        }
    }

    #[test]
    fn duplication_grows_and_stays_sorted() {
        let s = series(200);
        let mut r = rng();
        let out = packet_duplication(&s, 0.3, &mut r);
        assert!(out.len() > s.len());
        assert!(out.len() <= 2 * s.len());
        assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts));
        let added = out.len() - s.len();
        let frac = added as f64 / s.len() as f64;
        assert!((frac - 0.3).abs() < 0.1, "duplication rate {frac}");
    }

    #[test]
    fn duplication_zero_prob_is_identity() {
        let s = series(10);
        let mut r = rng();
        assert_eq!(packet_duplication(&s, 0.0, &mut r), s);
    }

    #[test]
    fn padding_only_grows_and_clamps() {
        let mut s = series(50);
        s.push(Pkt::data(100.0, 1495, Direction::Downstream));
        let mut r = rng();
        let out = pad_sizes(&s, 120, &mut r);
        for (a, b) in s.iter().zip(&out) {
            assert!(b.size >= a.size);
            assert!(b.size <= 1500);
            assert_eq!(a.ts, b.ts);
        }
    }

    #[test]
    fn empty_inputs() {
        let mut r = rng();
        assert!(iat_jitter(&[], 0.3, &mut r).is_empty());
        assert!(packet_duplication(&[], 0.5, &mut r).is_empty());
        assert!(pad_sizes(&[], 100, &mut r).is_empty());
    }
}
