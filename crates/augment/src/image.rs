//! Flowpic image transformations (Rotation, Horizontal flip, Color
//! jitter).
//!
//! These operate on the rasterized picture, exactly as their computer-
//! vision namesakes would on a grayscale image. The Ref-Paper does not
//! publish the hyper-parameters; the defaults here follow the standard
//! torchvision conventions (small-angle rotation, 50 %-strength jitter)
//! and are explicit parameters so ablations can sweep them.

use flowpic::Flowpic;
use rand::{Rng, RngExt};

/// Rotates the picture by `θ ~ U[-max_degrees, max_degrees]` around its
/// center with nearest-neighbour sampling. Cells rotated in from outside
/// the picture are zero.
pub fn rotate<R: Rng + ?Sized>(pic: &Flowpic, max_degrees: f64, rng: &mut R) -> Flowpic {
    let theta = (-max_degrees + 2.0 * max_degrees * rng.random::<f64>()).to_radians();
    rotate_with(pic, theta)
}

/// Rotation by an explicit angle in radians (for tests and ablations).
pub fn rotate_with(pic: &Flowpic, theta: f64) -> Flowpic {
    let r = pic.resolution;
    let c = (r as f64 - 1.0) / 2.0;
    let (sin, cos) = theta.sin_cos();
    let mut out = Flowpic::zeros(r);
    // Inverse mapping: for each output cell, sample the source cell.
    for row in 0..r {
        for col in 0..r {
            let y = row as f64 - c;
            let x = col as f64 - c;
            let src_x = cos * x + sin * y + c;
            let src_y = -sin * x + cos * y + c;
            let sr = src_y.round();
            let sc = src_x.round();
            if sr >= 0.0 && sc >= 0.0 && (sr as usize) < r && (sc as usize) < r {
                *out.get_mut(row, col) = pic.get(sr as usize, sc as usize);
            }
        }
    }
    out
}

/// Horizontal flip: mirrors the time axis (column order reversed).
///
/// On a flowpic this plays the flow backwards in time — a transformation
/// with no physical counterpart, which is part of why the paper finds the
/// image family less reliable than the time-series family.
pub fn horizontal_flip(pic: &Flowpic) -> Flowpic {
    let r = pic.resolution;
    let mut out = Flowpic::zeros(r);
    for row in 0..r {
        for col in 0..r {
            *out.get_mut(row, col) = pic.get(row, r - 1 - col);
        }
    }
    out
}

/// Color jitter: multiplies every cell by a picture-wide brightness factor
/// `U[1-strength, 1+strength]` and each non-zero cell by an additional
/// per-cell contrast factor of the same range, clamping at zero.
pub fn color_jitter<R: Rng + ?Sized>(pic: &Flowpic, strength: f64, rng: &mut R) -> Flowpic {
    debug_assert!((0.0..=1.0).contains(&strength));
    let brightness = 1.0 - strength + 2.0 * strength * rng.random::<f64>();
    let mut out = pic.clone();
    for v in &mut out.data {
        if *v != 0.0 {
            let contrast = 1.0 - strength + 2.0 * strength * rng.random::<f64>();
            *v = (*v as f64 * brightness * contrast).max(0.0) as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowpic::FlowpicConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trafficgen::types::{Direction, Pkt};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn sample_pic() -> Flowpic {
        let pkts = vec![
            Pkt::data(0.0, 100, Direction::Downstream),
            Pkt::data(7.0, 700, Direction::Downstream),
            Pkt::data(14.0, 1400, Direction::Downstream),
        ];
        Flowpic::build(&pkts, &FlowpicConfig::mini())
    }

    #[test]
    fn zero_rotation_is_identity() {
        let pic = sample_pic();
        assert_eq!(rotate_with(&pic, 0.0), pic);
    }

    #[test]
    fn quarter_rotation_moves_mass() {
        let mut pic = Flowpic::zeros(9);
        *pic.get_mut(0, 4) = 1.0; // top middle
        let rotated = rotate_with(&pic, std::f64::consts::FRAC_PI_2);
        // 90° rotation moves top-middle to a side-middle cell.
        assert_eq!(rotated.get(0, 4), 0.0);
        assert_eq!(rotated.total(), 1.0);
        assert!(rotated.get(4, 0) == 1.0 || rotated.get(4, 8) == 1.0);
    }

    #[test]
    fn rotation_preserves_approximate_mass() {
        let pic = sample_pic();
        let mut r = rng();
        for _ in 0..20 {
            let rotated = rotate(&pic, 10.0, &mut r);
            // Small rotations keep interior mass; cells can only be lost at
            // the borders.
            assert!(rotated.total() <= pic.total());
            assert!(rotated.total() >= 1.0);
        }
    }

    #[test]
    fn flip_is_involution() {
        let pic = sample_pic();
        assert_eq!(horizontal_flip(&horizontal_flip(&pic)), pic);
        assert_ne!(horizontal_flip(&pic), pic);
    }

    #[test]
    fn flip_mirrors_columns() {
        let mut pic = Flowpic::zeros(4);
        *pic.get_mut(2, 0) = 3.0;
        let flipped = horizontal_flip(&pic);
        assert_eq!(flipped.get(2, 3), 3.0);
        assert_eq!(flipped.get(2, 0), 0.0);
    }

    #[test]
    fn color_jitter_preserves_support() {
        let pic = sample_pic();
        let mut r = rng();
        let jittered = color_jitter(&pic, 0.5, &mut r);
        for (a, b) in pic.data.iter().zip(&jittered.data) {
            assert_eq!(
                *a == 0.0,
                *b == 0.0,
                "jitter must not create or destroy support"
            );
            assert!(*b >= 0.0);
        }
    }

    #[test]
    fn color_jitter_zero_strength_is_identity() {
        let pic = sample_pic();
        let mut r = rng();
        assert_eq!(color_jitter(&pic, 0.0, &mut r), pic);
    }

    #[test]
    fn color_jitter_changes_values() {
        let pic = sample_pic();
        let mut r = rng();
        let jittered = color_jitter(&pic, 0.5, &mut r);
        assert_ne!(jittered, pic);
    }
}
