//! The augmentation policy enum the campaigns sweep over, and the
//! two-augmentation view pairs used for SimCLR pre-training.

use crate::{image, timeseries};
use flowpic::{Flowpic, FlowpicConfig};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use trafficgen::types::Pkt;

/// The 7 policies benchmarked in the paper's Tables 4 and 8 (6
/// augmentations + "no augmentation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Augmentation {
    /// Baseline: rasterize the original series unchanged.
    NoAug,
    /// Image: rotation by U[-10°, 10°].
    Rotate,
    /// Image: mirror the time axis.
    HorizontalFlip,
    /// Image: brightness/contrast jitter on non-zero cells.
    ColorJitter,
    /// Time series: drop each packet with probability 0.03.
    PacketLoss,
    /// Time series: translate timestamps by U[-1, 1] s.
    TimeShift,
    /// Time series: rescale timestamps by U[0.5, 1.5].
    ChangeRtt,
    /// Extended (beyond the paper): per-gap log-normal queueing jitter.
    IatJitter,
    /// Extended: random retransmission-style packet duplication.
    PacketDuplication,
    /// Extended: random per-packet payload padding.
    PadSizes,
}

/// All policies in the paper's table order (Table 4 rows).
pub const ALL_AUGMENTATIONS: [Augmentation; 7] = [
    Augmentation::NoAug,
    Augmentation::Rotate,
    Augmentation::HorizontalFlip,
    Augmentation::ColorJitter,
    Augmentation::PacketLoss,
    Augmentation::TimeShift,
    Augmentation::ChangeRtt,
];

/// The three extended augmentations of [`crate::extended`], benchmarked
/// against [`ALL_AUGMENTATIONS`] in the `ablation_extended_augs` bench.
pub const EXTENDED_AUGMENTATIONS: [Augmentation; 3] = [
    Augmentation::IatJitter,
    Augmentation::PacketDuplication,
    Augmentation::PadSizes,
];

/// Default packet-loss probability (not specified by the Ref-Paper; see
/// module docs of [`crate::timeseries`]).
pub const PACKET_LOSS_PROB: f64 = 0.03;

/// Default inter-arrival jitter sigma for [`Augmentation::IatJitter`].
pub const IAT_JITTER_SIGMA: f64 = 0.3;
/// Default duplication probability for
/// [`Augmentation::PacketDuplication`].
pub const DUPLICATION_PROB: f64 = 0.05;
/// Default padding bound for [`Augmentation::PadSizes`].
pub const PAD_MAX: u16 = 100;
/// Default rotation range in degrees.
pub const ROTATE_MAX_DEGREES: f64 = 10.0;
/// Default color-jitter strength.
pub const COLOR_JITTER_STRENGTH: f64 = 0.5;

impl Augmentation {
    /// Name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Augmentation::NoAug => "No augmentation",
            Augmentation::Rotate => "Rotate",
            Augmentation::HorizontalFlip => "Horizontal flip",
            Augmentation::ColorJitter => "Color jitter",
            Augmentation::PacketLoss => "Packet loss",
            Augmentation::TimeShift => "Time shift",
            Augmentation::ChangeRtt => "Change RTT",
            Augmentation::IatJitter => "IAT jitter",
            Augmentation::PacketDuplication => "Duplication",
            Augmentation::PadSizes => "Size padding",
        }
    }

    /// Whether this is a packet time-series transformation (as opposed to
    /// an image transformation).
    pub fn is_time_series(self) -> bool {
        matches!(
            self,
            Augmentation::PacketLoss
                | Augmentation::TimeShift
                | Augmentation::ChangeRtt
                | Augmentation::IatJitter
                | Augmentation::PacketDuplication
                | Augmentation::PadSizes
        )
    }

    /// Applies the policy to a packet series and rasterizes the result:
    /// time-series policies transform the series first; image policies
    /// rasterize first and transform the picture.
    pub fn apply<R: Rng + ?Sized>(
        self,
        pkts: &[Pkt],
        config: &FlowpicConfig,
        rng: &mut R,
    ) -> Flowpic {
        match self {
            Augmentation::NoAug => Flowpic::build(pkts, config),
            Augmentation::ChangeRtt => Flowpic::build(&timeseries::change_rtt(pkts, rng), config),
            Augmentation::TimeShift => Flowpic::build(&timeseries::time_shift(pkts, rng), config),
            Augmentation::PacketLoss => Flowpic::build(
                &timeseries::packet_loss(pkts, PACKET_LOSS_PROB, rng),
                config,
            ),
            Augmentation::Rotate => {
                image::rotate(&Flowpic::build(pkts, config), ROTATE_MAX_DEGREES, rng)
            }
            Augmentation::HorizontalFlip => image::horizontal_flip(&Flowpic::build(pkts, config)),
            Augmentation::ColorJitter => {
                image::color_jitter(&Flowpic::build(pkts, config), COLOR_JITTER_STRENGTH, rng)
            }
            Augmentation::IatJitter => Flowpic::build(
                &crate::extended::iat_jitter(pkts, IAT_JITTER_SIGMA, rng),
                config,
            ),
            Augmentation::PacketDuplication => Flowpic::build(
                &crate::extended::packet_duplication(pkts, DUPLICATION_PROB, rng),
                config,
            ),
            Augmentation::PadSizes => {
                Flowpic::build(&crate::extended::pad_sizes(pkts, PAD_MAX, rng), config)
            }
        }
    }
}

/// A pair of augmentations used to produce the two SimCLR views of a
/// sample.
///
/// The Ref-Paper pairs Change RTT with Time shift but leaves the
/// application order ambiguous (replication Sec. 4.4.1); following the
/// replication's interpretation, [`ViewPair::views`] applies the two
/// transformations **in random order** for every view. The replication's
/// Table 6 ablates three alternative pairs, all expressible here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewPair {
    /// First augmentation of the pair.
    pub first: Augmentation,
    /// Second augmentation of the pair.
    pub second: Augmentation,
}

impl ViewPair {
    /// The Ref-Paper's pair: Change RTT + Time shift.
    pub fn paper() -> Self {
        ViewPair {
            first: Augmentation::ChangeRtt,
            second: Augmentation::TimeShift,
        }
    }

    /// The replication's Table 6 ablation pairs, paper pair first.
    pub fn table6_pairs() -> [ViewPair; 6] {
        use Augmentation::*;
        [
            ViewPair {
                first: ChangeRtt,
                second: TimeShift,
            },
            ViewPair {
                first: PacketLoss,
                second: ColorJitter,
            },
            ViewPair {
                first: PacketLoss,
                second: Rotate,
            },
            ViewPair {
                first: ChangeRtt,
                second: ColorJitter,
            },
            ViewPair {
                first: ChangeRtt,
                second: Rotate,
            },
            ViewPair {
                first: ColorJitter,
                second: Rotate,
            },
        ]
    }

    /// Display label, e.g. `"Change RTT + Time shift"`.
    pub fn label(&self) -> String {
        format!("{} + {}", self.first.name(), self.second.name())
    }

    /// Applies one augmentation after the other (random order) to produce
    /// a single view.
    pub fn view<R: Rng + ?Sized>(
        &self,
        pkts: &[Pkt],
        config: &FlowpicConfig,
        rng: &mut R,
    ) -> Flowpic {
        let (a, b) = if rng.random::<bool>() {
            (self.first, self.second)
        } else {
            (self.second, self.first)
        };
        chain_apply(a, b, pkts, config, rng)
    }

    /// Produces the two views of a SimCLR training pair.
    pub fn views<R: Rng + ?Sized>(
        &self,
        pkts: &[Pkt],
        config: &FlowpicConfig,
        rng: &mut R,
    ) -> (Flowpic, Flowpic) {
        (self.view(pkts, config, rng), self.view(pkts, config, rng))
    }
}

/// Chains two augmentations: time-series transforms compose on the packet
/// series; image transforms compose on the picture. Mixed pairs apply the
/// series transform first (rasterization is the natural boundary).
fn chain_apply<R: Rng + ?Sized>(
    a: Augmentation,
    b: Augmentation,
    pkts: &[Pkt],
    config: &FlowpicConfig,
    rng: &mut R,
) -> Flowpic {
    // Order so that series transforms run before image transforms.
    let (first, second) = if !a.is_time_series() && b.is_time_series() {
        (b, a)
    } else {
        (a, b)
    };

    let series = |aug: Augmentation, pkts: &[Pkt], rng: &mut R| -> Vec<Pkt> {
        match aug {
            Augmentation::ChangeRtt => timeseries::change_rtt(pkts, rng),
            Augmentation::TimeShift => timeseries::time_shift(pkts, rng),
            Augmentation::PacketLoss => timeseries::packet_loss(pkts, PACKET_LOSS_PROB, rng),
            Augmentation::IatJitter => crate::extended::iat_jitter(pkts, IAT_JITTER_SIGMA, rng),
            Augmentation::PacketDuplication => {
                crate::extended::packet_duplication(pkts, DUPLICATION_PROB, rng)
            }
            Augmentation::PadSizes => crate::extended::pad_sizes(pkts, PAD_MAX, rng),
            _ => pkts.to_vec(),
        }
    };
    let img = |aug: Augmentation, pic: Flowpic, rng: &mut R| -> Flowpic {
        match aug {
            Augmentation::Rotate => image::rotate(&pic, ROTATE_MAX_DEGREES, rng),
            Augmentation::HorizontalFlip => image::horizontal_flip(&pic),
            Augmentation::ColorJitter => image::color_jitter(&pic, COLOR_JITTER_STRENGTH, rng),
            _ => pic,
        }
    };

    let mut pkts_t = pkts.to_vec();
    if first.is_time_series() {
        pkts_t = series(first, &pkts_t, rng);
    }
    if second.is_time_series() {
        pkts_t = series(second, &pkts_t, rng);
    }
    let mut pic = Flowpic::build(&pkts_t, config);
    if !first.is_time_series() {
        pic = img(first, pic, rng);
    }
    if !second.is_time_series() {
        pic = img(second, pic, rng);
    }
    pic
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trafficgen::types::Direction;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn pkts() -> Vec<Pkt> {
        (0..60)
            .map(|i| {
                Pkt::data(
                    i as f64 * 0.2,
                    50 + (i * 23 % 1400) as u16,
                    Direction::Downstream,
                )
            })
            .collect()
    }

    #[test]
    fn all_augmentations_produce_valid_pictures() {
        let cfg = FlowpicConfig::mini();
        let mut r = rng();
        for aug in ALL_AUGMENTATIONS {
            let pic = aug.apply(&pkts(), &cfg, &mut r);
            assert_eq!(pic.resolution, 32, "{}", aug.name());
            assert!(pic.total() > 0.0, "{}", aug.name());
            assert!(pic.data.iter().all(|&v| v >= 0.0), "{}", aug.name());
        }
    }

    #[test]
    fn noaug_is_plain_rasterization() {
        let cfg = FlowpicConfig::mini();
        let mut r = rng();
        let pic = Augmentation::NoAug.apply(&pkts(), &cfg, &mut r);
        assert_eq!(pic, Flowpic::build(&pkts(), &cfg));
    }

    #[test]
    fn augmentations_differ_from_baseline() {
        let cfg = FlowpicConfig::mini();
        let base = Flowpic::build(&pkts(), &cfg);
        let mut r = rng();
        for aug in &ALL_AUGMENTATIONS[1..] {
            // Some single draws may coincide; across 5 draws at least one
            // must differ.
            let changed = (0..5).any(|_| aug.apply(&pkts(), &cfg, &mut r) != base);
            assert!(changed, "{} never changed the picture", aug.name());
        }
    }

    #[test]
    fn family_classification() {
        assert!(Augmentation::ChangeRtt.is_time_series());
        assert!(Augmentation::TimeShift.is_time_series());
        assert!(Augmentation::PacketLoss.is_time_series());
        assert!(!Augmentation::Rotate.is_time_series());
        assert!(!Augmentation::HorizontalFlip.is_time_series());
        assert!(!Augmentation::ColorJitter.is_time_series());
        assert!(!Augmentation::NoAug.is_time_series());
    }

    #[test]
    fn view_pair_produces_two_distinct_views() {
        let cfg = FlowpicConfig::mini();
        let mut r = rng();
        let (a, b) = ViewPair::paper().views(&pkts(), &cfg, &mut r);
        assert_eq!(a.resolution, 32);
        assert_eq!(b.resolution, 32);
        assert_ne!(a, b, "independent draws should differ");
    }

    #[test]
    fn table6_has_the_paper_pair_first() {
        let pairs = ViewPair::table6_pairs();
        assert_eq!(pairs[0], ViewPair::paper());
        assert_eq!(pairs.len(), 6);
        assert_eq!(pairs[0].label(), "Change RTT + Time shift");
    }

    #[test]
    fn mixed_pair_applies_series_before_image() {
        // A pair mixing families must still produce a valid picture with
        // preserved mass bounds (jitter/rotate can only reduce or scale).
        let cfg = FlowpicConfig::mini();
        let mut r = rng();
        let pair = ViewPair {
            first: Augmentation::Rotate,
            second: Augmentation::ChangeRtt,
        };
        for _ in 0..10 {
            let pic = pair.view(&pkts(), &cfg, &mut r);
            assert!(pic.total() > 0.0);
        }
    }
}
