//! # serve — online inference over streaming packets
//!
//! The path from *packets in* to *predictions out*. The training half of
//! the workspace rasterizes whole flows offline; a deployed classifier
//! instead watches packets arrive one at a time and must decide after the
//! paper's 15 s observation window (or when the flow dies early). This
//! crate provides that serving loop as four composable pieces:
//!
//! * [`tracker::FlowTracker`] — bounded per-flow state. Each tracked flow
//!   owns an [`flowpic::IncrementalFlowpic`] updated per packet; flows
//!   are completed when they cross the 15 s window, evicted when idle too
//!   long or when the hard flow-count cap is hit, and flushed (early
//!   termination) when the stream drains.
//! * [`engine::InferenceEngine`] — micro-batches completed flows by
//!   max-batch-size and max-wait deadline, then classifies a batch in one
//!   forward-only pass behind the [`engine::Classifier`] trait (CNN via
//!   [`nettensor::BatchEngine::predict`], GBDT via
//!   [`gbdt::booster::GbdtClassifier`]).
//! * [`registry::ModelRegistry`] — the active model behind an
//!   `RwLock<Arc<dyn Classifier>>`: loads [`registry::ServedModel`]
//!   checkpoint files, validates the architecture fingerprint
//!   ([`nettensor::checkpoint::CheckpointError::ArchMismatch`] on
//!   mismatch), and hot-swaps atomically mid-stream — in-flight batches
//!   keep their `Arc` and finish on the model they started with.
//! * [`shard`] — the multi-lane dataplane: N independent tracker +
//!   engine lanes keyed by a stable flow-id hash, run serially inside
//!   the daemon (shared registry) or in parallel for replay (per-lane
//!   registries, merged in shard order). For a fixed shard count the
//!   predictions are bit-identical at any worker count.
//! * [`replay`] — turns a `trafficgen` dataset into a timestamped packet
//!   trace and drives the tracker + engine over it at a configurable
//!   rate multiplier, producing a latency/throughput report with
//!   `mlstats::quantiles` percentiles.
//! * [`drift`] — the closed loop: [`drift::DriftMonitor`] compares live
//!   per-class feature windows against training-time reference KDEs
//!   ([`tcbench::refdist`]) with the paper's L1 shift metric every
//!   interval of *stream time*, and [`drift::RetrainOrchestrator`] turns
//!   a sustained divergence into a background fine-tune, validation, and
//!   fingerprint-validated hot-swap — without ever blocking the packet
//!   path.
//! * [`daemon`] — the long-running control plane: hosts registry +
//!   tracker + engine behind a Unix-domain socket speaking
//!   line-delimited JSON ([`daemon::CtlRequest`] /
//!   [`daemon::CtlResponse`]) for packet ingest, hot model pushes, live
//!   stats and reconfiguration, and graceful shutdown. A daemon fed a
//!   trace over the socket predicts bit-identically to [`replay`] on
//!   the same trace.
//!
//! Everything is deterministic: eval-mode math is per-sample, so
//! predictions are bit-identical at any micro-batch size or worker count
//! (pinned by the batch-size-invariance integration test), and the
//! incremental flowpic equals the batch builder cell for cell.
//!
//! Telemetry flows through [`tcbench::telemetry::InferObserver`] — the
//! inference counterpart of the training observer, with the same
//! observability-only contract.

pub mod daemon;
pub mod drift;
pub mod engine;
pub mod registry;
pub mod replay;
pub mod shard;
pub mod tracker;

pub use daemon::{
    ctl_roundtrip, CtlClient, CtlRequest, CtlResponse, Daemon, DaemonConfig, DaemonStats,
    WireOutcome, WirePrediction,
};
pub use drift::{
    DriftConfig, DriftMonitor, DriftStats, DriftVerdict, RetrainConfig, RetrainOrchestrator,
    RetrainOutcome,
};
pub use engine::{
    Classifier, CnnClassifier, EngineConfig, GbdtBackend, InferenceEngine, Outcome, Prediction,
    QuantMode,
};
pub use registry::{ModelRegistry, ServedModel};
pub use replay::{
    trace_from_dataset, ClassScore, PacketRecord, ReplayConfig, ReplayReport, ReplayScore,
};
pub use shard::{replay_sharded, shard_of, Lane, ShardError, ShardedPipeline};
pub use tracker::{CompletedFlow, FlowTracker, TrackerConfig};
