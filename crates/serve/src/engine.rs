//! Batched classification behind a backend-agnostic trait.
//!
//! The [`InferenceEngine`] collects flows completed by the tracker into
//! a queue and flushes a micro-batch when either trigger fires:
//!
//! * **size** — the queue reached `max_batch`;
//! * **deadline** — the oldest queued flow has waited `max_wait_s` of
//!   stream time.
//!
//! A flush clones the registry's active model handle once, so a swap
//! arriving mid-batch never affects that batch. Forward passes are
//! eval-mode only ([`Sequential::predict`] through
//! [`BatchEngine::predict`]'s worker pool), which makes predictions
//! bit-identical at any batch size or worker count — the
//! batch-size-invariance property the integration tests pin down.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use gbdt::booster::GbdtClassifier;
use nettensor::checkpoint::{fnv1a64, CheckpointError};
use nettensor::{BatchEngine, Sequential, Tensor};
use tcbench::telemetry::{throughput_per_sec, InferEvent, InferObserver};

use crate::registry::{ModelRegistry, ServedModel};
use crate::tracker::CompletedFlow;

/// The engine's decision for one classified flow.
///
/// Closed-world serving only ever produced labels; the open-world lane
/// makes "this flow is none of my classes" a first-class, typed result
/// instead of a low-confidence label the caller has to second-guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A confident prediction of this class index.
    Accepted(usize),
    /// Confidence fell below the engine's `reject_below` threshold (or
    /// was non-finite): the flow is flagged as unknown, not labeled.
    Rejected,
}

impl Outcome {
    /// The class index, if the flow was accepted.
    pub fn label(&self) -> Option<usize> {
        match self {
            Outcome::Accepted(label) => Some(*label),
            Outcome::Rejected => None,
        }
    }

    /// Whether the flow was rejected as unknown.
    pub fn is_rejected(&self) -> bool {
        matches!(self, Outcome::Rejected)
    }
}

/// One classified flow.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The flow this prediction belongs to.
    pub flow_id: u64,
    /// Accepted label (argmax; ties resolve to the lowest index) or
    /// open-world rejection.
    pub outcome: Outcome,
    /// The winning class's probability — kept for rejected outcomes
    /// too, so threshold sweeps can be recomputed offline from one run.
    pub confidence: f32,
}

impl Prediction {
    /// The class index, if the flow was accepted.
    pub fn label(&self) -> Option<usize> {
        self.outcome.label()
    }

    /// Whether the flow was rejected as unknown.
    pub fn is_rejected(&self) -> bool {
        self.outcome.is_rejected()
    }
}

/// A batch classifier: flattened flowpic inputs in, `(label,
/// confidence)` out. Implemented by the CNN and GBDT backends; the
/// engine and registry only ever see this trait.
pub trait Classifier: Send + Sync {
    /// Classes the model separates.
    fn n_classes(&self) -> usize;

    /// Class names, index-aligned with labels.
    fn class_names(&self) -> &[String];

    /// Weight fingerprint, for swap telemetry and model identity.
    fn fingerprint(&self) -> u64;

    /// Classifies a batch of flattened flowpic inputs. Must be
    /// per-sample deterministic: the result for one input may not
    /// depend on what else shares the batch.
    fn predict_batch(&self, inputs: &[Vec<f32>]) -> Vec<(usize, f32)>;
}

/// Index of the largest value under [`f32::total_cmp`], ties to the
/// lowest index. Total order makes the choice deterministic even for
/// NaN or infinite entries (NaN ranks above +∞), where a `>` comparison
/// would silently skip candidates and pin the result to index 0.
fn argmax_total(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "argmax of an empty slice");
    let mut best = 0;
    for i in 1..values.len() {
        if values[i].total_cmp(&values[best]) == std::cmp::Ordering::Greater {
            best = i;
        }
    }
    best
}

/// Row-wise softmax → (argmax, probability). Ties resolve to the lowest
/// index so the choice is deterministic. Degenerate rows — every logit
/// `-inf` (a fully-masked row), or any non-finite winner — used to
/// yield a NaN confidence from `exp(-inf - -inf)`; they now fall back
/// to the uniform probability `1/n`, keeping the output a probability
/// for every input.
fn softmax_argmax(logits: &[f32]) -> (usize, f32) {
    let best = argmax_total(logits);
    let max = logits[best];
    if !max.is_finite() {
        return (best, 1.0 / logits.len() as f32);
    }
    // exp(v - max) ≤ 1 with exp(0) = 1 at `best`, so sum ∈ [1, n]: the
    // division is always finite and the result is a probability.
    let sum: f32 = logits.iter().map(|&v| (v - max).exp()).sum();
    (best, 1.0 / sum)
}

/// Numeric mode of a served CNN's eval lane.
///
/// `Off` (the default everywhere) keeps the exact f32 kernels and every
/// bit-identity contract. `Int8` arms the quantized `forward_eval` lane
/// (per-channel weight scales computed once at classifier build,
/// per-sample activation scales at predict time) — faster, approximate
/// by contract, and still batch/worker/shard invariant because no
/// quantization decision ever spans samples. The mode is a *serving*
/// choice, not a model property: it is never persisted in a
/// [`ServedModel`] (the checkpoint envelope's field order is frozen)
/// and is re-applied by the daemon when it rebuilds a classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantMode {
    /// Exact f32 eval lane (bit-identity contract).
    #[default]
    Off,
    /// Int8 dynamic quantization of conv/linear eval forwards.
    Int8,
}

impl QuantMode {
    /// The wire/CLI spelling (`"off"` / `"int8"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            QuantMode::Off => "off",
            QuantMode::Int8 => "int8",
        }
    }
}

impl std::str::FromStr for QuantMode {
    type Err = String;

    fn from_str(s: &str) -> Result<QuantMode, String> {
        match s {
            "off" => Ok(QuantMode::Off),
            "int8" => Ok(QuantMode::Int8),
            other => Err(format!("unknown quant mode {other:?} (expected int8|off)")),
        }
    }
}

impl std::fmt::Display for QuantMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The paper's CNN served forward-only.
pub struct CnnClassifier {
    net: Sequential,
    engine: BatchEngine,
    resolution: usize,
    class_names: Vec<String>,
    fingerprint: u64,
    quant: QuantMode,
}

impl CnnClassifier {
    /// Rebuilds the network from a [`ServedModel`] (validating the
    /// architecture fingerprint) and attaches a forward worker pool of
    /// `workers` threads (`0` = all cores). Exact eval lane
    /// ([`QuantMode::Off`]).
    pub fn from_served(
        model: &ServedModel,
        workers: usize,
    ) -> Result<CnnClassifier, CheckpointError> {
        CnnClassifier::from_served_quant(model, workers, QuantMode::Off)
    }

    /// [`CnnClassifier::from_served`] with an explicit eval-lane mode.
    /// For [`QuantMode::Int8`] the per-channel weight quantization runs
    /// here, once — per-batch work is only activation quantization. The
    /// fingerprint stays the exact weights' fingerprint: quantization is
    /// a serving mode, not a different model.
    pub fn from_served_quant(
        model: &ServedModel,
        workers: usize,
        quant: QuantMode,
    ) -> Result<CnnClassifier, CheckpointError> {
        let mut net = model.build_net()?;
        if quant == QuantMode::Int8 {
            net.prepare_int8_eval();
        }
        Ok(CnnClassifier {
            net,
            engine: BatchEngine::new(workers),
            resolution: model.resolution,
            class_names: model.class_names.clone(),
            fingerprint: model.weights.fingerprint(),
            quant,
        })
    }

    /// The eval-lane mode this classifier was built with.
    pub fn quant(&self) -> QuantMode {
        self.quant
    }

    /// The flowpic resolution the model expects.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Sets the sparsity-dispatch threshold on every layer of the served
    /// network (see `nettensor::sparse`). Flowpic inputs are almost all
    /// zeros, so the default threshold keeps the sparse kernels on for
    /// the first convolution; `0.0` forces the dense loops — results are
    /// bit-identical either way, which the dense-vs-sparse replay test
    /// pins down.
    pub fn set_sparsity_threshold(&mut self, threshold: f32) {
        self.net.set_sparsity_threshold(threshold);
    }
}

impl Classifier for CnnClassifier {
    fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    fn class_names(&self) -> &[String] {
        &self.class_names
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn predict_batch(&self, inputs: &[Vec<f32>]) -> Vec<(usize, f32)> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let r = self.resolution;
        let mut data = Vec::with_capacity(inputs.len() * r * r);
        for input in inputs {
            assert_eq!(
                input.len(),
                r * r,
                "input length {} does not match model resolution {r}×{r}",
                input.len()
            );
            data.extend_from_slice(input);
        }
        let x = Tensor::new(&[inputs.len(), 1, r, r], data);
        let logits = self.engine.predict(&self.net, &x);
        let n_classes = logits.data.len() / inputs.len();
        logits
            .data
            .chunks_exact(n_classes)
            .map(softmax_argmax)
            .collect()
    }
}

/// The classic-ML baseline behind the same trait: a fitted gradient
/// boosting classifier over the flattened flowpic.
pub struct GbdtBackend {
    model: GbdtClassifier,
    class_names: Vec<String>,
    fingerprint: u64,
}

impl GbdtBackend {
    /// Wraps a fitted booster. The fingerprint is derived from the
    /// booster's per-sample scores on a probe input — coarse, but stable
    /// and cheap without a tree serialization format.
    pub fn new(model: GbdtClassifier, class_names: Vec<String>, n_features: usize) -> GbdtBackend {
        let probe = model.raw_scores(&vec![0.0; n_features]);
        let mut bytes = Vec::with_capacity(probe.len() * 4);
        for v in &probe {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        GbdtBackend {
            fingerprint: fnv1a64(&bytes),
            model,
            class_names,
        }
    }
}

impl Classifier for GbdtBackend {
    fn n_classes(&self) -> usize {
        self.model.n_classes()
    }

    fn class_names(&self) -> &[String] {
        &self.class_names
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn predict_batch(&self, inputs: &[Vec<f32>]) -> Vec<(usize, f32)> {
        inputs
            .iter()
            .map(|input| {
                let proba = self.model.predict_proba(input);
                // total_cmp, not `>`: a NaN probability would make every
                // comparison false and silently pin the label to class 0.
                let best = argmax_total(&proba);
                (best, proba[best])
            })
            .collect()
    }
}

/// Micro-batching knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Flush as soon as this many flows are queued.
    pub max_batch: usize,
    /// Flush when the oldest queued flow has waited this long, in
    /// stream-time seconds.
    pub max_wait_s: f64,
    /// Keep every prediction and every per-batch wall-clock for the
    /// lifetime of the engine. Replay turns this on to build its
    /// [`crate::replay::ReplayReport`]; a long-running daemon must leave
    /// it off, or both buffers grow without bound.
    pub retain_full_history: bool,
    /// With full history off: the most undrained predictions kept
    /// before the oldest are dropped (counted in
    /// [`InferenceEngine::predictions_dropped`]). Bounds a daemon whose
    /// client never calls the draining `predictions` verb.
    pub pending_cap: usize,
    /// Per-batch wall-clock samples kept in the bounded ring that feeds
    /// live latency quantiles (`stats`), regardless of retention mode.
    pub latency_window: usize,
    /// Record every classified flow (prediction + tracker feature
    /// summary + input) in a second drained buffer for the drift
    /// monitor. Off by default: with the tap off the engine does zero
    /// extra work per flow, which is what makes "drift disabled" mode
    /// trivially bit-identical to a daemon built before the tap existed.
    pub drift_tap: bool,
    /// Open-world rejection threshold. `0.0` (the default) disables the
    /// lane entirely — every flow is accepted, bit-identical to an
    /// engine built before rejection existed, non-finite confidences
    /// included. With a positive threshold, a flow is **rejected** when
    /// its confidence is non-finite or *strictly below* the threshold;
    /// confidence exactly equal to the threshold is **accepted** (the
    /// comparison is half-open, pinned by test).
    pub reject_below: f32,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            max_batch: 16,
            max_wait_s: 0.5,
            retain_full_history: false,
            pending_cap: 65_536,
            latency_window: 1_024,
            drift_tap: false,
            reject_below: 0.0,
        }
    }
}

/// One classified flow as the drift monitor sees it: the prediction
/// joined with the tracker's per-flow feature summary and the model
/// input (retained so an auto-retrain can fine-tune on recently served
/// traffic without re-rasterizing anything).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifiedFlow {
    /// The flow's identifier.
    pub flow_id: u64,
    /// Predicted class.
    pub label: usize,
    /// Confidence of the predicted class.
    pub confidence: f32,
    /// Mean in-window packet size (bytes), from the tracker.
    pub mean_pkt_size: f64,
    /// Mean in-window inter-arrival gap (seconds), from the tracker.
    pub mean_iat_s: f64,
    /// The flowpic input the prediction was made on.
    pub input: Vec<f32>,
}

struct QueuedFlow {
    flow_id: u64,
    input: Vec<f32>,
    enqueued_at: f64,
    mean_pkt_size: f64,
    mean_iat_s: f64,
}

/// Collects completed flows and classifies them in micro-batches
/// against the registry's currently-active model.
pub struct InferenceEngine {
    registry: Arc<ModelRegistry>,
    config: EngineConfig,
    queue: VecDeque<QueuedFlow>,
    batches_run: usize,
    flows_classified: usize,
    predictions_dropped: usize,
    /// Flows classified but rejected as unknown by `reject_below`.
    /// Disjoint from `predictions_dropped`: a rejection is a *served
    /// outcome*, a drop is a buffer overflow.
    rejected: usize,
    /// Full per-batch wall-clock history — only grown with
    /// `retain_full_history`.
    batch_wall_ms: Vec<f64>,
    /// Bounded ring of the most recent per-batch wall-clocks, feeding
    /// live latency quantiles in every retention mode.
    recent_wall_ms: VecDeque<f64>,
    /// Predictions not yet drained. Unbounded with full history;
    /// otherwise capped at `pending_cap` (oldest dropped).
    predictions: Vec<Prediction>,
    /// Telemetry shard tag stamped on this engine's `infer_batch_end`
    /// events (0 outside the sharded dataplane).
    shard: usize,
    /// Classified flows awaiting the drift monitor. Only grown with
    /// `drift_tap`; bounded by `pending_cap` like the prediction buffer
    /// so an undrained tap can never leak.
    drift_tap: VecDeque<ClassifiedFlow>,
}

impl InferenceEngine {
    /// An engine with an empty queue.
    pub fn new(registry: Arc<ModelRegistry>, config: EngineConfig) -> InferenceEngine {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.pending_cap >= 1, "pending_cap must be at least 1");
        assert!(
            config.latency_window >= 1,
            "latency_window must be at least 1"
        );
        assert!(
            config.reject_below.is_finite() && (0.0..=1.0).contains(&config.reject_below),
            "reject_below must be a finite probability in [0, 1]"
        );
        InferenceEngine {
            registry,
            config,
            queue: VecDeque::new(),
            batches_run: 0,
            flows_classified: 0,
            predictions_dropped: 0,
            rejected: 0,
            batch_wall_ms: Vec::new(),
            recent_wall_ms: VecDeque::new(),
            predictions: Vec::new(),
            shard: 0,
            drift_tap: VecDeque::new(),
        }
    }

    /// Tags this engine's telemetry with a dataplane shard index.
    pub fn set_shard(&mut self, shard: usize) {
        self.shard = shard;
    }

    /// Flows currently waiting for a batch slot.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The current micro-batching configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Live-reconfigures the size trigger. Takes effect at the next
    /// submit/poll; flows already queued are unaffected until then.
    pub fn set_max_batch(&mut self, max_batch: usize) {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        self.config.max_batch = max_batch;
    }

    /// Live-reconfigures the deadline trigger (stream-time seconds).
    pub fn set_max_wait_s(&mut self, max_wait_s: f64) {
        self.config.max_wait_s = max_wait_s;
    }

    /// Live-reconfigures the pending-prediction cap, trimming (and
    /// counting) the oldest undrained predictions immediately if the new
    /// cap is already exceeded. No effect under full history.
    pub fn set_pending_cap(&mut self, pending_cap: usize) {
        assert!(pending_cap >= 1, "pending_cap must be at least 1");
        self.config.pending_cap = pending_cap;
        if !self.config.retain_full_history && self.predictions.len() > pending_cap {
            let excess = self.predictions.len() - pending_cap;
            self.predictions.drain(..excess);
            self.predictions_dropped += excess;
        }
    }

    /// Live-reconfigures the open-world rejection threshold. `0.0`
    /// disables rejection entirely; already-made outcomes are never
    /// rewritten.
    pub fn set_reject_below(&mut self, reject_below: f32) {
        assert!(
            reject_below.is_finite() && (0.0..=1.0).contains(&reject_below),
            "reject_below must be a finite probability in [0, 1]"
        );
        self.config.reject_below = reject_below;
    }

    /// Arms (or disarms) the drift tap. Off is the default and the
    /// bit-identity baseline: a daemon with the tap off does zero extra
    /// work per classified flow.
    pub fn set_drift_tap(&mut self, on: bool) {
        self.config.drift_tap = on;
        if !on {
            self.drift_tap.clear();
        }
    }

    /// Micro-batches classified so far.
    pub fn batches_run(&self) -> usize {
        self.batches_run
    }

    /// Flows classified over the engine's lifetime — counts predictions
    /// that were later drained or dropped, unlike `predictions().len()`.
    pub fn flows_classified(&self) -> usize {
        self.flows_classified
    }

    /// Predictions dropped from the pending buffer because nothing
    /// drained them before `pending_cap` (always 0 with full history).
    pub fn predictions_dropped(&self) -> usize {
        self.predictions_dropped
    }

    /// Flows rejected as unknown over the engine's lifetime. A subset
    /// of [`InferenceEngine::flows_classified`], never counted in
    /// [`InferenceEngine::predictions_dropped`].
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Forward wall-clock per batch, in milliseconds, in batch order.
    /// Complete only with `retain_full_history`; empty otherwise.
    pub fn batch_wall_ms(&self) -> &[f64] {
        &self.batch_wall_ms
    }

    /// The most recent per-batch wall-clocks (up to `latency_window`),
    /// oldest first — the bounded buffer live latency quantiles use.
    pub fn recent_wall_ms(&self) -> Vec<f64> {
        self.recent_wall_ms.iter().copied().collect()
    }

    /// Every undrained prediction, in classification order. With full
    /// history this is every prediction ever made.
    pub fn predictions(&self) -> &[Prediction] {
        &self.predictions
    }

    /// Drains the pending predictions, leaving the buffer empty. How a
    /// long-running daemon reads results without retaining them forever.
    pub fn take_predictions(&mut self) -> Vec<Prediction> {
        std::mem::take(&mut self.predictions)
    }

    /// Drains the drift tap (classified flows with feature summaries),
    /// oldest first. Always empty unless `drift_tap` is configured.
    pub fn take_drift_tap(&mut self) -> Vec<ClassifiedFlow> {
        let mut out = Vec::with_capacity(self.drift_tap.len());
        out.extend(self.drift_tap.drain(..));
        out
    }

    /// Enqueues a completed flow at stream time `now` and flushes while
    /// the size trigger holds.
    pub fn submit(&mut self, flow: CompletedFlow, now: f64, obs: &mut dyn InferObserver) {
        self.queue.push_back(QueuedFlow {
            flow_id: flow.flow_id,
            input: flow.input,
            enqueued_at: now,
            mean_pkt_size: flow.mean_pkt_size,
            mean_iat_s: flow.mean_iat_s,
        });
        while self.queue.len() >= self.config.max_batch {
            self.flush(obs);
        }
        self.poll(now, obs);
    }

    /// Advances stream time: flushes whatever has exceeded the max-wait
    /// deadline.
    pub fn poll(&mut self, now: f64, obs: &mut dyn InferObserver) {
        while let Some(front) = self.queue.front() {
            if now - front.enqueued_at < self.config.max_wait_s {
                break;
            }
            self.flush(obs);
        }
    }

    /// Classifies everything still queued (stream shutdown).
    pub fn drain(&mut self, obs: &mut dyn InferObserver) {
        while !self.queue.is_empty() {
            self.flush(obs);
        }
    }

    fn flush(&mut self, obs: &mut dyn InferObserver) {
        let n = self.queue.len().min(self.config.max_batch);
        if n == 0 {
            return;
        }
        let batch: Vec<QueuedFlow> = self.queue.drain(..n).collect();
        let inputs: Vec<Vec<f32>> = batch.iter().map(|q| q.input.clone()).collect();
        // One handle per batch: a hot-swap between here and the forward
        // pass retires the old model only once this Arc drops.
        let model = self.registry.active();
        let t0 = Instant::now();
        let results = model.predict_batch(&inputs);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let reject = self.config.reject_below;
        let mut batch_rejected = 0usize;
        for (q, (label, confidence)) in batch.into_iter().zip(results) {
            // Half-open comparison, pinned by test: confidence equal to
            // the threshold is accepted. Non-finite confidence always
            // rejects once the lane is armed — but with the threshold
            // at 0.0 the lane is fully off (bit-identical to pre-
            // rejection behavior, NaN handling included).
            let rejected = reject > 0.0 && (!confidence.is_finite() || confidence < reject);
            let outcome = if rejected {
                batch_rejected += 1;
                Outcome::Rejected
            } else {
                Outcome::Accepted(label)
            };
            self.predictions.push(Prediction {
                flow_id: q.flow_id,
                outcome,
                confidence,
            });
            // Rejected flows stay out of the drift tap: the monitor
            // models the distribution of traffic the model *claims to
            // understand*, and an auto-retrain must not learn labels
            // the engine itself did not trust.
            if self.config.drift_tap && !rejected {
                self.drift_tap.push_back(ClassifiedFlow {
                    flow_id: q.flow_id,
                    label,
                    confidence,
                    mean_pkt_size: q.mean_pkt_size,
                    mean_iat_s: q.mean_iat_s,
                    input: q.input,
                });
                while self.drift_tap.len() > self.config.pending_cap {
                    self.drift_tap.pop_front();
                }
            }
        }
        self.rejected += batch_rejected;
        obs.infer_event(&InferEvent::BatchEnd {
            shard: self.shard,
            batch: self.batches_run,
            size: n,
            queue_depth: self.queue.len(),
            rejected: batch_rejected,
            wall_ms,
            samples_per_sec: throughput_per_sec(n, wall_ms / 1e3),
        });
        self.batches_run += 1;
        self.flows_classified += n;
        self.recent_wall_ms.push_back(wall_ms);
        while self.recent_wall_ms.len() > self.config.latency_window {
            self.recent_wall_ms.pop_front();
        }
        if self.config.retain_full_history {
            self.batch_wall_ms.push(wall_ms);
        } else if self.predictions.len() > self.config.pending_cap {
            let excess = self.predictions.len() - self.config.pending_cap;
            self.predictions.drain(..excess);
            self.predictions_dropped += excess;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcbench::arch::supervised_net;
    use tcbench::telemetry::InferRecorder;

    fn tiny_model(seed: u64) -> ServedModel {
        let net = supervised_net(16, 3, true, seed);
        ServedModel {
            arch: "supervised".into(),
            resolution: 16,
            n_classes: 3,
            dropout: true,
            class_names: vec!["a".into(), "b".into(), "c".into()],
            weights: net.export_weights(),
        }
    }

    fn input(seed: u64, len: usize) -> Vec<f32> {
        // SplitMix64-derived values in [0, 1): deterministic inputs
        // without the rand crate.
        (0..len)
            .map(|i| {
                let mut z = seed
                    .wrapping_add(i as u64)
                    .wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z ^ (z >> 31)) % 1000) as f32 / 1000.0
            })
            .collect()
    }

    fn completed(flow_id: u64, input: Vec<f32>) -> CompletedFlow {
        CompletedFlow {
            flow_id,
            input,
            pkts: 1,
            completed_at: 0.0,
            mean_pkt_size: 100.0 + flow_id as f64,
            mean_iat_s: 0.5,
        }
    }

    #[test]
    fn softmax_argmax_is_a_probability() {
        let (label, conf) = softmax_argmax(&[0.1, 2.0, -1.0]);
        assert_eq!(label, 1);
        assert!(conf > 1.0 / 3.0 && conf < 1.0);
        // Ties resolve low.
        assert_eq!(softmax_argmax(&[1.0, 1.0, 1.0]).0, 0);
    }

    #[test]
    fn softmax_argmax_degenerate_rows_stay_probabilities() {
        // Fully-masked row: every logit -inf used to produce NaN
        // confidence from exp(-inf - -inf). Now uniform 1/n.
        let (label, conf) = softmax_argmax(&[f32::NEG_INFINITY; 3]);
        assert_eq!(label, 0);
        assert_eq!(conf, 1.0 / 3.0);
        // A +inf winner also short-circuits to uniform.
        let (label, conf) = softmax_argmax(&[0.0, f32::INFINITY]);
        assert_eq!(label, 1);
        assert_eq!(conf, 0.5);
        // NaN ranks above +inf under total_cmp — deterministic, not
        // silently skipped as `>` would do.
        let (label, conf) = softmax_argmax(&[1.0, f32::NAN, 2.0]);
        assert_eq!(label, 1);
        assert_eq!(conf, 1.0 / 3.0);
    }

    #[test]
    fn argmax_total_never_skips_nan() {
        // `p > best` is false for NaN on both sides, which used to pin
        // GBDT labels to class 0 whenever a probability went NaN.
        assert_eq!(argmax_total(&[f32::NAN, 0.2, 0.9]), 0);
        assert_eq!(argmax_total(&[0.2, f32::NAN, 0.9]), 1);
        assert_eq!(argmax_total(&[0.1, 0.9, 0.2]), 1);
        assert_eq!(argmax_total(&[0.5, 0.5]), 0, "ties resolve low");
    }

    #[test]
    fn size_trigger_flushes_full_batches() {
        let cnn = CnnClassifier::from_served(&tiny_model(1), 1).unwrap();
        let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
        let mut engine = InferenceEngine::new(
            registry,
            EngineConfig {
                max_batch: 4,
                max_wait_s: 1e9,
                retain_full_history: true,
                ..EngineConfig::default()
            },
        );
        let mut rec = InferRecorder::new();
        for id in 0..10u64 {
            engine.submit(completed(id, input(id, 256)), 0.0, &mut rec);
        }
        assert_eq!(engine.batches_run(), 2, "two full batches of 4");
        assert_eq!(engine.queue_depth(), 2);
        engine.drain(&mut rec);
        assert_eq!(engine.predictions().len(), 10);
        assert_eq!(rec.batch_ends().len(), 3);
        // Predictions keep submission order and flow identity.
        let ids: Vec<u64> = engine.predictions().iter().map(|p| p.flow_id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drift_tap_joins_predictions_with_feature_stats() {
        let cnn = CnnClassifier::from_served(&tiny_model(1), 1).unwrap();
        let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
        let mut engine = InferenceEngine::new(
            registry,
            EngineConfig {
                max_batch: 2,
                max_wait_s: 1e9,
                drift_tap: true,
                ..EngineConfig::default()
            },
        );
        let mut rec = InferRecorder::new();
        for id in 0..4u64 {
            engine.submit(completed(id, input(id, 256)), 0.0, &mut rec);
        }
        let tap = engine.take_drift_tap();
        assert_eq!(tap.len(), 4);
        for (i, c) in tap.iter().enumerate() {
            assert_eq!(c.flow_id, i as u64);
            assert_eq!(c.mean_pkt_size, 100.0 + i as f64);
            assert_eq!(c.mean_iat_s, 0.5);
            assert_eq!(c.input, input(i as u64, 256));
        }
        // Tap entries mirror the predictions exactly.
        let preds = engine.take_predictions();
        for (c, p) in tap.iter().zip(&preds) {
            assert_eq!(
                (c.flow_id, Some(c.label), c.confidence),
                (p.flow_id, p.label(), p.confidence)
            );
        }
        assert!(engine.take_drift_tap().is_empty(), "drained");
    }

    #[test]
    fn drift_tap_off_records_nothing() {
        let cnn = CnnClassifier::from_served(&tiny_model(1), 1).unwrap();
        let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
        let mut engine = InferenceEngine::new(
            registry,
            EngineConfig {
                max_batch: 1,
                ..EngineConfig::default()
            },
        );
        let mut rec = InferRecorder::new();
        engine.submit(completed(0, input(0, 256)), 0.0, &mut rec);
        assert_eq!(engine.predictions().len(), 1);
        assert!(engine.take_drift_tap().is_empty());
    }

    #[test]
    fn deadline_trigger_flushes_stale_queues() {
        let cnn = CnnClassifier::from_served(&tiny_model(1), 1).unwrap();
        let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
        let mut engine = InferenceEngine::new(
            registry,
            EngineConfig {
                max_batch: 100,
                max_wait_s: 0.5,
                retain_full_history: true,
                ..EngineConfig::default()
            },
        );
        let mut rec = InferRecorder::new();
        engine.submit(completed(7, input(7, 256)), 1.0, &mut rec);
        engine.poll(1.4, &mut rec);
        assert_eq!(engine.batches_run(), 0, "deadline not reached yet");
        engine.poll(1.5, &mut rec);
        assert_eq!(engine.batches_run(), 1);
        assert_eq!(engine.predictions()[0].flow_id, 7);
    }

    #[test]
    fn quant_off_is_bit_identical_to_the_default_constructor() {
        // `--quant off` is the default and must not perturb a single
        // bit, at any batch size or worker count.
        let model = tiny_model(3);
        let exact = CnnClassifier::from_served(&model, 1).unwrap();
        let off = CnnClassifier::from_served_quant(&model, 3, QuantMode::Off).unwrap();
        assert_eq!(off.quant(), QuantMode::Off);
        for batch in [1usize, 7, 32] {
            let inputs: Vec<Vec<f32>> = (0..batch).map(|i| input(i as u64, 256)).collect();
            let a = exact.predict_batch(&inputs);
            let b = off.predict_batch(&inputs);
            for ((la, ca), (lb, cb)) in a.iter().zip(&b) {
                assert_eq!(la, lb);
                assert_eq!(ca.to_bits(), cb.to_bits(), "batch {batch}");
            }
        }
    }

    #[test]
    fn int8_lane_agrees_with_exact_lane_and_is_batch_invariant() {
        let model = tiny_model(3);
        let exact = CnnClassifier::from_served(&model, 1).unwrap();
        let int8 = CnnClassifier::from_served_quant(&model, 1, QuantMode::Int8).unwrap();
        assert_eq!(int8.quant(), QuantMode::Int8);
        // Same model identity: quantization is a serving mode.
        assert_eq!(int8.fingerprint(), exact.fingerprint());

        let inputs: Vec<Vec<f32>> = (0..64).map(|i| input(i, 256)).collect();
        let pe = exact.predict_batch(&inputs);
        let pq = int8.predict_batch(&inputs);
        let agree = pe.iter().zip(&pq).filter(|(a, b)| a.0 == b.0).count();
        assert!(
            agree * 100 >= pe.len() * 99,
            "{agree}/{} labels agree",
            pe.len()
        );
        for ((_, ce), (_, cq)) in pe.iter().zip(&pq) {
            assert!((ce - cq).abs() <= 0.05, "confidence drift {ce} vs {cq}");
        }

        // Per-sample activation scales: the whole batch at once equals
        // one-at-a-time, bitwise, and a different worker count too.
        let int8_w3 = CnnClassifier::from_served_quant(&model, 3, QuantMode::Int8).unwrap();
        let pq_w3 = int8_w3.predict_batch(&inputs);
        for (i, inp) in inputs.iter().enumerate() {
            let single = int8.predict_batch(std::slice::from_ref(inp));
            assert_eq!(single[0].0, pq[i].0);
            assert_eq!(single[0].1.to_bits(), pq[i].1.to_bits());
            assert_eq!(pq_w3[i].1.to_bits(), pq[i].1.to_bits());
        }
    }

    #[test]
    fn gbdt_backend_classifies_behind_the_same_trait() {
        // A trivially separable 1-D problem: feature < 0.5 → class 0.
        let x: Vec<Vec<f32>> = (0..40)
            .map(|i| vec![if i % 2 == 0 { 0.1 } else { 0.9 }])
            .collect();
        let y: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let booster = GbdtClassifier::fit(&x, &y, 2, &gbdt::booster::GbdtConfig::default());
        let backend = GbdtBackend::new(booster, vec!["lo".into(), "hi".into()], 1);
        assert_eq!(backend.n_classes(), 2);
        let preds = backend.predict_batch(&[vec![0.1], vec![0.9]]);
        assert_eq!(preds[0].0, 0);
        assert_eq!(preds[1].0, 1);
        assert!(preds.iter().all(|&(_, c)| c > 0.5 && c <= 1.0));
    }

    /// A stub backend that returns scripted confidences, for pinning
    /// the rejection comparison without training anything.
    struct ScriptedBackend {
        names: Vec<String>,
        confidences: Vec<f32>,
    }

    impl ScriptedBackend {
        fn new(confidences: Vec<f32>) -> ScriptedBackend {
            ScriptedBackend {
                names: vec!["a".into(), "b".into()],
                confidences,
            }
        }
    }

    impl Classifier for ScriptedBackend {
        fn n_classes(&self) -> usize {
            self.names.len()
        }
        fn class_names(&self) -> &[String] {
            &self.names
        }
        fn fingerprint(&self) -> u64 {
            0xFACADE
        }
        fn predict_batch(&self, inputs: &[Vec<f32>]) -> Vec<(usize, f32)> {
            inputs
                .iter()
                .map(|input| {
                    let i = input[0] as usize;
                    (i % 2, self.confidences[i])
                })
                .collect()
        }
    }

    fn scripted_engine(confidences: Vec<f32>, reject_below: f32) -> InferenceEngine {
        let registry = Arc::new(ModelRegistry::new(Arc::new(ScriptedBackend::new(
            confidences,
        ))));
        InferenceEngine::new(
            registry,
            EngineConfig {
                max_batch: 4,
                max_wait_s: 1e9,
                retain_full_history: true,
                reject_below,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn rejection_comparison_is_half_open_and_nan_always_rejects() {
        // Confidences: below, exactly-at, above threshold, NaN, +inf.
        let confs = vec![0.79, 0.8, 0.81, f32::NAN, f32::INFINITY];
        let mut engine = scripted_engine(confs, 0.8);
        let mut rec = InferRecorder::new();
        for id in 0..5u64 {
            engine.submit(completed(id, vec![id as f32]), 0.0, &mut rec);
        }
        engine.drain(&mut rec);
        let preds = engine.predictions();
        assert!(preds[0].is_rejected(), "strictly below rejects");
        assert_eq!(
            preds[1].outcome,
            Outcome::Accepted(1),
            "equal to threshold is accepted: the comparison is half-open"
        );
        assert_eq!(preds[2].outcome, Outcome::Accepted(0));
        assert!(preds[3].is_rejected(), "NaN confidence always rejects");
        assert!(preds[4].is_rejected(), "non-finite confidence rejects");
        assert_eq!(engine.rejected(), 3);
        assert_eq!(engine.flows_classified(), 5);
        assert_eq!(engine.predictions_dropped(), 0, "rejects are not drops");
        // Confidences survive on rejected outcomes (bitwise, incl. NaN).
        assert_eq!(preds[0].confidence.to_bits(), 0.79f32.to_bits());
        assert!(preds[3].confidence.is_nan());
        // Per-batch rejected counts reach telemetry.
        let rejected: usize = rec
            .batch_ends()
            .iter()
            .map(|e| match e {
                InferEvent::BatchEnd { rejected, .. } => *rejected,
                _ => 0,
            })
            .sum();
        assert_eq!(rejected, 3);
    }

    #[test]
    fn reject_below_zero_disables_the_lane_even_for_nan() {
        let confs = vec![0.0, f32::NAN, 0.5];
        let mut engine = scripted_engine(confs, 0.0);
        let mut rec = InferRecorder::new();
        for id in 0..3u64 {
            engine.submit(completed(id, vec![id as f32]), 0.0, &mut rec);
        }
        engine.drain(&mut rec);
        assert_eq!(engine.rejected(), 0);
        for p in engine.predictions() {
            assert!(!p.is_rejected(), "threshold 0.0 accepts everything");
        }
        assert!(engine.predictions()[1].confidence.is_nan());
    }

    #[test]
    fn reject_below_one_rejects_everything_not_fully_confident() {
        let confs = vec![0.999, 1.0];
        let mut engine = scripted_engine(confs, 1.0);
        let mut rec = InferRecorder::new();
        for id in 0..2u64 {
            engine.submit(completed(id, vec![id as f32]), 0.0, &mut rec);
        }
        engine.drain(&mut rec);
        let preds = engine.predictions();
        assert!(preds[0].is_rejected());
        assert_eq!(
            preds[1].outcome,
            Outcome::Accepted(1),
            "exactly 1.0 is accepted at threshold 1.0 (half-open)"
        );
    }

    #[test]
    fn rejected_flows_stay_out_of_the_drift_tap() {
        let registry = Arc::new(ModelRegistry::new(Arc::new(ScriptedBackend::new(vec![
            0.9, 0.1, 0.9,
        ]))));
        let mut engine = InferenceEngine::new(
            registry,
            EngineConfig {
                max_batch: 1,
                max_wait_s: 1e9,
                drift_tap: true,
                reject_below: 0.5,
                ..EngineConfig::default()
            },
        );
        let mut rec = InferRecorder::new();
        for id in 0..3u64 {
            engine.submit(completed(id, vec![id as f32]), 0.0, &mut rec);
        }
        let tap = engine.take_drift_tap();
        assert_eq!(tap.len(), 2, "the rejected flow is not tapped");
        assert_eq!(tap[0].flow_id, 0);
        assert_eq!(tap[1].flow_id, 2);
        assert_eq!(engine.rejected(), 1);
    }

    #[test]
    #[should_panic(expected = "reject_below must be a finite probability")]
    fn set_reject_below_validates() {
        let mut engine = scripted_engine(vec![0.5], 0.0);
        engine.set_reject_below(f32::NAN);
    }

    #[test]
    fn daemon_retention_stays_bounded_and_drains() {
        let cnn = CnnClassifier::from_served(&tiny_model(1), 1).unwrap();
        let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
        let mut engine = InferenceEngine::new(
            registry,
            EngineConfig {
                max_batch: 2,
                max_wait_s: 1e9,
                retain_full_history: false,
                pending_cap: 6,
                latency_window: 3,
                drift_tap: false,
                reject_below: 0.0,
            },
        );
        let mut rec = InferRecorder::new();
        for id in 0..20u64 {
            engine.submit(completed(id, input(id, 256)), 0.0, &mut rec);
        }
        assert_eq!(engine.batches_run(), 10);
        assert_eq!(engine.flows_classified(), 20);
        // Without a drain, the pending buffer is capped and the overflow
        // is counted; the full-history buffer never grows.
        assert_eq!(engine.predictions().len(), 6);
        assert_eq!(engine.predictions_dropped(), 14);
        assert!(engine.batch_wall_ms().is_empty());
        assert_eq!(engine.recent_wall_ms().len(), 3);
        // The survivors are the newest predictions, in order.
        let ids: Vec<u64> = engine.predictions().iter().map(|p| p.flow_id).collect();
        assert_eq!(ids, (14..20).collect::<Vec<_>>());
        // Draining empties the buffer and hands the caller ownership.
        let drained = engine.take_predictions();
        assert_eq!(drained.len(), 6);
        assert!(engine.predictions().is_empty());
        assert_eq!(engine.flows_classified(), 20, "lifetime counter survives");
    }
}
