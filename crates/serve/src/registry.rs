//! Model persistence and atomic hot-swap.
//!
//! A [`ServedModel`] is the serving-side model file: architecture
//! descriptor + class names + flat weights, persisted through
//! `nettensor::checkpoint`'s checksummed [`Persist`] envelope (the same
//! crash-safe write-then-rename codec training checkpoints use, so a
//! model file is never observed half-written). Loading validates the
//! shape-only architecture fingerprint before any weight touches a
//! parameter tensor: a mismatched file surfaces as
//! [`CheckpointError::ArchMismatch`] with both fingerprints instead of a
//! shape panic deep in `model.rs`.
//!
//! The [`ModelRegistry`] holds the active [`Classifier`] behind an
//! `RwLock<Arc<_>>`. Swapping writes the lock for the duration of one
//! pointer store; a batch already dispatched keeps its own `Arc` clone
//! and finishes on the model it started with — hot-swap never drops an
//! in-flight batch.

use std::path::Path;
use std::sync::{Arc, RwLock};

use nettensor::checkpoint::{load_value, save_value, CheckpointError, Decoder, Persist};
use nettensor::model::Weights;
use nettensor::Sequential;
use serde::{Deserialize, Serialize};
use tcbench::arch::{finetune_net, supervised_net};

use crate::engine::Classifier;

/// A trained model in serving form: everything needed to rebuild the
/// network and label its outputs.
///
/// Two on-disk formats exist: the checksummed checkpoint envelope
/// ([`ServedModel::save`]/[`ServedModel::load`]) and the JSON document
/// `tcb train` writes (the serde derive, with `arch` defaulting to
/// `"supervised"` for pre-`arch` files). [`ServedModel::load_auto`]
/// accepts either.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServedModel {
    /// Architecture family: `"supervised"` (App. C Listings 1-2) or
    /// `"finetune"` (Listing 5).
    #[serde(default = "default_arch")]
    pub arch: String,
    /// Flowpic resolution the model was trained on.
    pub resolution: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Whether the architecture uses dropout layers (inference always
    /// runs them in eval mode; the flag only shapes the layer stack).
    pub dropout: bool,
    /// Class names, index-aligned with the output logits.
    pub class_names: Vec<String>,
    /// Flat weight tensors in `Sequential::export_weights` order.
    pub weights: Weights,
}

impl Persist for ServedModel {
    fn encode(&self, out: &mut String) {
        self.arch.encode(out);
        self.resolution.encode(out);
        self.n_classes.encode(out);
        self.dropout.encode(out);
        self.class_names.encode(out);
        self.weights.encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        Ok(ServedModel {
            arch: String::decode(d)?,
            resolution: usize::decode(d)?,
            n_classes: usize::decode(d)?,
            dropout: bool::decode(d)?,
            class_names: Vec::decode(d)?,
            weights: Weights::decode(d)?,
        })
    }
}

fn default_arch() -> String {
    "supervised".into()
}

impl ServedModel {
    /// Writes the model atomically into the checkpoint envelope.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        save_value(path, self)
    }

    /// Reads a model written by [`ServedModel::save`].
    pub fn load(path: &Path) -> Result<ServedModel, CheckpointError> {
        load_value(path)
    }

    /// Reads a model in either on-disk format: the checkpoint envelope
    /// ([`ServedModel::save`]) or the JSON document written by
    /// `tcb train`. The envelope is tried first (it is checksummed and
    /// self-identifying); anything that is neither format reports both
    /// failures.
    pub fn load_auto(path: &Path) -> Result<ServedModel, CheckpointError> {
        let envelope_err = match ServedModel::load(path) {
            Ok(model) => return Ok(model),
            Err(e) => e,
        };
        let raw = std::fs::read_to_string(path).map_err(CheckpointError::Io)?;
        serde_json::from_str(&raw).map_err(|json_err| {
            CheckpointError::Format(format!(
                "{}: neither a checkpoint-envelope model ({envelope_err}) \
                 nor tcb-train JSON ({json_err})",
                path.display()
            ))
        })
    }

    /// Rebuilds the network and imports the weights, validating the
    /// architecture fingerprint first. A file whose tensor shapes do not
    /// match the declared architecture yields
    /// [`CheckpointError::ArchMismatch`], never a panic.
    pub fn build_net(&self) -> Result<Sequential, CheckpointError> {
        let mut net = match self.arch.as_str() {
            "finetune" => finetune_net(self.resolution, self.n_classes, 0),
            "supervised" => supervised_net(self.resolution, self.n_classes, self.dropout, 0),
            other => {
                return Err(CheckpointError::Format(format!(
                    "unknown model arch {other:?} (expected \"supervised\" or \"finetune\")"
                )))
            }
        };
        net.try_import_weights(&self.weights)?;
        Ok(net)
    }
}

/// The active classifier, swappable atomically while a stream is being
/// served.
pub struct ModelRegistry {
    active: RwLock<Arc<dyn Classifier>>,
}

impl ModelRegistry {
    /// A registry serving `initial`.
    pub fn new(initial: Arc<dyn Classifier>) -> ModelRegistry {
        ModelRegistry {
            active: RwLock::new(initial),
        }
    }

    /// Convenience: load a [`ServedModel`] file and wrap it in a
    /// CNN classifier with `workers` forward workers.
    pub fn load_cnn(path: &Path, workers: usize) -> Result<ModelRegistry, CheckpointError> {
        let model = ServedModel::load(path)?;
        let cnn = crate::engine::CnnClassifier::from_served(&model, workers)?;
        Ok(ModelRegistry::new(Arc::new(cnn)))
    }

    /// A clone of the active model's handle. Callers classify against
    /// the clone, so a concurrent swap never invalidates a batch that
    /// already picked up its model.
    pub fn active(&self) -> Arc<dyn Classifier> {
        self.active.read().expect("registry lock poisoned").clone()
    }

    /// Atomically replaces the active model, returning the
    /// `(old, new)` weight fingerprints for the `model_swapped`
    /// telemetry event. Rejects a replacement with a different class
    /// count — predictions across a swap must stay label-compatible.
    pub fn swap(&self, next: Arc<dyn Classifier>) -> Result<(u64, u64), CheckpointError> {
        let mut guard = self.active.write().expect("registry lock poisoned");
        if guard.n_classes() != next.n_classes() {
            return Err(CheckpointError::Format(format!(
                "hot-swap rejected: active model has {} classes, replacement has {}",
                guard.n_classes(),
                next.n_classes()
            )));
        }
        let old = guard.fingerprint();
        let new = next.fingerprint();
        *guard = next;
        Ok((old, new))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model(seed: u64) -> ServedModel {
        let net = supervised_net(16, 3, true, seed);
        ServedModel {
            arch: "supervised".into(),
            resolution: 16,
            n_classes: 3,
            dropout: true,
            class_names: vec!["a".into(), "b".into(), "c".into()],
            weights: net.export_weights(),
        }
    }

    #[test]
    fn served_model_round_trips_through_envelope() {
        let dir = std::env::temp_dir().join("serve-registry-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let model = tiny_model(4);
        model.save(&path).unwrap();
        let loaded = ServedModel::load(&path).unwrap();
        assert_eq!(model, loaded);
        assert_eq!(
            loaded.weights.fingerprint(),
            model.weights.fingerprint(),
            "weights must round-trip bit-exactly"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_auto_reads_both_formats_and_rejects_neither() {
        let dir = std::env::temp_dir().join("serve-registry-load-auto");
        std::fs::create_dir_all(&dir).unwrap();
        let model = tiny_model(7);

        let envelope = dir.join("model.ckpt");
        model.save(&envelope).unwrap();
        assert_eq!(ServedModel::load_auto(&envelope).unwrap(), model);

        let json = dir.join("model.json");
        std::fs::write(&json, serde_json::to_string(&model).unwrap()).unwrap();
        assert_eq!(ServedModel::load_auto(&json).unwrap(), model);

        // A pre-`arch` JSON document defaults to "supervised".
        let legacy =
            serde_json::to_string(&model)
                .unwrap()
                .replacen("\"arch\":\"supervised\",", "", 1);
        let legacy_path = dir.join("legacy.json");
        std::fs::write(&legacy_path, legacy).unwrap();
        assert_eq!(ServedModel::load_auto(&legacy_path).unwrap(), model);

        let bogus = dir.join("bogus.model");
        std::fs::write(&bogus, "not a model").unwrap();
        match ServedModel::load_auto(&bogus) {
            Err(CheckpointError::Format(msg)) => {
                assert!(msg.contains("neither"), "{msg}");
            }
            other => panic!("expected a Format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_architecture_is_a_typed_error() {
        // Weights exported from a 3-class net declared as 4-class: the
        // tensor shapes no longer match the declared architecture.
        let mut model = tiny_model(1);
        model.n_classes = 4;
        match model.build_net() {
            Err(CheckpointError::ArchMismatch { expected, found }) => {
                assert_ne!(expected, found);
            }
            Err(other) => panic!("expected ArchMismatch, got {other}"),
            Ok(_) => panic!("expected ArchMismatch, got a built net"),
        }
    }

    #[test]
    fn unknown_arch_is_rejected() {
        let mut model = tiny_model(1);
        model.arch = "transformer".into();
        assert!(matches!(model.build_net(), Err(CheckpointError::Format(_))));
    }

    #[test]
    fn swap_validates_class_count_and_reports_fingerprints() {
        let a = crate::engine::CnnClassifier::from_served(&tiny_model(1), 1).unwrap();
        let b = crate::engine::CnnClassifier::from_served(&tiny_model(2), 1).unwrap();
        let fp_a = a.fingerprint();
        let fp_b = b.fingerprint();
        let registry = ModelRegistry::new(Arc::new(a));
        let (old, new) = registry.swap(Arc::new(b)).unwrap();
        assert_eq!((old, new), (fp_a, fp_b));
        assert_eq!(registry.active().fingerprint(), fp_b);

        let mut wrong = tiny_model(3);
        wrong.n_classes = 5;
        wrong.class_names.push("d".into());
        wrong.class_names.push("e".into());
        wrong.weights = supervised_net(16, 5, true, 3).export_weights();
        let wrong = crate::engine::CnnClassifier::from_served(&wrong, 1).unwrap();
        assert!(registry.swap(Arc::new(wrong)).is_err());
        assert_eq!(
            registry.active().fingerprint(),
            fp_b,
            "failed swap must leave the active model untouched"
        );
    }
}
