//! Online drift detection, background auto-retrain, and hot-swap.
//!
//! The paper's headline forensic finding (Fig. 8) is a *silent* data
//! shift: the `human` partition's packet-size distribution moved and
//! cost ~7 accuracy points, discovered only post-hoc with per-class
//! KDEs. This module closes that loop inside the serving daemon:
//!
//! * [`DriftMonitor`] keeps bounded, deterministic per-class reservoirs
//!   ([`mlstats::reservoir::Reservoir`]) of the live stream's per-flow
//!   feature summaries — mean packet size and mean inter-arrival, the
//!   same quantities computed by the tracker, plus per-class confidence
//!   distributions — keyed by *predicted* class (live traffic has no
//!   labels). Every `check_interval_s` of **stream time** it KDE-fits
//!   each class's window and scores it against the reference KDEs
//!   snapshotted at train time ([`tcbench::refdist`]) with the paper's
//!   L1 shift metric; `sustain` consecutive over-threshold checks raise
//!   a typed [`DriftVerdict`].
//! * [`RetrainOrchestrator`] keeps a bounded per-class store of recently
//!   classified flows (input + predicted label) and, on a verdict, runs
//!   a checkpointed [`SupervisedTrainer::train_resumable`] fine-tune in
//!   a **background thread** — the packet path never blocks — validates
//!   the candidate on a held-back slice, and hands an accepted
//!   [`ServedModel`] back for the registry hot-swap.
//!
//! ### Determinism contract
//!
//! Everything on the packet path is driven by packet timestamps and
//! SplitMix64 hashes: reservoir contents, check points, scores, and
//! therefore the verdict's packet index are bit-identical across runs
//! and worker counts for a fixed shard count. The only wall-clock in the
//! subsystem is *when the background fine-tune finishes* — which affects
//! when the swap lands, never whether drift is detected. With the
//! subsystem disabled the daemon does zero extra work per packet
//! (`EngineConfig::drift_tap` stays off) and behaves bit-identically to
//! one without it.
//!
//! ### Known blind spot
//!
//! Per-predicted-class monitoring cannot see a shift that moves one
//! class's distribution exactly onto another class the model already
//! knows: the shifted flows are predicted as the other class and match
//! its reference. The `trafficgen::shift` generator deliberately shifts
//! into mixed territory so tests assert the detectable case; the
//! limitation is inherent to label-free monitoring.

use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Instant;

use mlstats::kde::{l1_distance, Kde};
use mlstats::reservoir::Reservoir;
use serde::{Deserialize, Serialize};
use tcbench::refdist::ReferenceDistributions;
use tcbench::supervised::{CheckpointSpec, SupervisedTrainer, TrainConfig};
use tcbench::telemetry::{InferEvent, InferObserver};

use crate::engine::ClassifiedFlow;
use crate::registry::ServedModel;

/// Monitor knobs. All stream-time / count quantities; no wall-clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// L1 verdict threshold, in the metric's `[0, 2]` range.
    pub threshold: f64,
    /// Stream-time seconds between checks.
    pub check_interval_s: f64,
    /// Consecutive over-threshold checks a class must accumulate before
    /// a verdict is raised (1 = first excursion trips it).
    pub sustain: usize,
    /// Minimum live samples a class needs in a window to be scored;
    /// quieter classes are skipped (no `drift_check` event) that window.
    pub min_samples: usize,
    /// Per-class live reservoir capacity.
    pub reservoir_cap: usize,
    /// Checks suppressed after a verdict before another can be raised —
    /// breathing room for the background retrain to land.
    pub cooldown_checks: usize,
    /// Reservoir sampling seed.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            threshold: 0.6,
            check_interval_s: 60.0,
            sustain: 2,
            min_samples: 8,
            reservoir_cap: 256,
            cooldown_checks: 2,
            seed: 0xD81F,
        }
    }
}

/// A sustained-divergence verdict: class `class` has scored past the
/// threshold for `sustained` consecutive checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftVerdict {
    /// Stream time of the verdict check.
    pub at_ts: f64,
    /// Packet index into the stream at the verdict — deterministic for
    /// a given trace at any worker count.
    pub packet: usize,
    /// The diverged (predicted) class.
    pub class: usize,
    /// The class's L1 score at the verdict check.
    pub score: f64,
    /// The threshold in force.
    pub threshold: f64,
    /// Consecutive over-threshold checks behind the verdict.
    pub sustained: usize,
}

/// Reference KDEs for one class, fitted once per reference snapshot.
struct ClassKdes {
    size: Kde,
    iat: Kde,
    size_range: (f64, f64),
    iat_range: (f64, f64),
}

fn sample_range(samples: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &s in samples {
        lo = lo.min(s);
        hi = hi.max(s);
    }
    (lo, hi)
}

/// Builds a class's reference KDEs via the non-panicking constructors;
/// a class with no/degenerate reference data simply yields `None` and
/// is never scored — a quiet class must not crash the dataplane.
fn fit_class(refs: &ReferenceDistributions, class: usize) -> Option<ClassKdes> {
    let c = refs.classes.get(class)?;
    let size = Kde::try_silverman(&c.mean_pkt_sizes).ok()?;
    let iat = Kde::try_silverman(&c.mean_iats_s).ok()?;
    Some(ClassKdes {
        size_range: sample_range(&c.mean_pkt_sizes),
        iat_range: sample_range(&c.mean_iats_s),
        size,
        iat,
    })
}

/// L1 distance between a reference KDE and a live-window KDE on a grid
/// spanning both supports (padded by three bandwidths so the densities
/// decay to ~0 at the edges). `None` when the live window can't be
/// KDE-fitted — degenerate windows score nothing rather than crash.
fn shift_score(reference: &Kde, ref_range: (f64, f64), live_samples: &[f64]) -> Option<f64> {
    let live = Kde::try_silverman(live_samples).ok()?;
    let (live_lo, live_hi) = sample_range(live_samples);
    let pad = 3.0 * reference.bandwidth.max(live.bandwidth);
    let lo = ref_range.0.min(live_lo) - pad;
    let hi = ref_range.1.max(live_hi) + pad;
    if !lo.is_finite() || !hi.is_finite() || hi <= lo {
        return None;
    }
    Some(l1_distance(reference, &live, lo, hi, GRID_POINTS))
}

const GRID_POINTS: usize = 201;

/// Per-class live-window state.
struct LiveClass {
    sizes: Reservoir,
    iats: Reservoir,
    confidences: Reservoir,
    /// Consecutive over-threshold checks.
    over: usize,
    /// Last computed score (NaN until first scored).
    last_score: f64,
}

/// Compares live per-class feature windows against training-time
/// references every `check_interval_s` of stream time.
pub struct DriftMonitor {
    config: DriftConfig,
    refs: Vec<Option<ClassKdes>>,
    live: Vec<LiveClass>,
    /// Stream time of the next check; set by the first observed packet.
    next_check_ts: Option<f64>,
    checks: usize,
    verdicts: usize,
    /// Verdicts are suppressed until this many checks have run.
    cooldown_until: usize,
    last_verdict: Option<DriftVerdict>,
}

impl DriftMonitor {
    /// A monitor for `refs`. Classes whose reference is missing or
    /// degenerate are registered but never scored.
    pub fn new(refs: &ReferenceDistributions, config: DriftConfig) -> DriftMonitor {
        assert!(
            config.threshold.is_finite() && config.threshold > 0.0,
            "drift threshold must be finite and positive"
        );
        assert!(
            config.check_interval_s.is_finite() && config.check_interval_s > 0.0,
            "drift check interval must be finite and positive"
        );
        assert!(config.sustain >= 1, "sustain must be at least 1");
        assert!(
            config.reservoir_cap >= 1,
            "reservoir_cap must be at least 1"
        );
        let n = refs.n_classes();
        DriftMonitor {
            refs: (0..n).map(|c| fit_class(refs, c)).collect(),
            live: (0..n)
                .map(|c| LiveClass {
                    sizes: Reservoir::new(config.reservoir_cap, config.seed ^ (c as u64)),
                    iats: Reservoir::new(config.reservoir_cap, config.seed ^ (c as u64)),
                    confidences: Reservoir::new(
                        config.reservoir_cap,
                        config.seed ^ (c as u64) ^ 0x5A5A,
                    ),
                    over: 0,
                    last_score: f64::NAN,
                })
                .collect(),
            config,
            next_check_ts: None,
            checks: 0,
            verdicts: 0,
            cooldown_until: 0,
            last_verdict: None,
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> DriftConfig {
        self.config
    }

    /// Live-reconfigures the verdict threshold (validated by the caller
    /// against the L1 metric's `(0, 2]` range).
    pub fn set_threshold(&mut self, threshold: f64) {
        assert!(threshold.is_finite() && threshold > 0.0);
        self.config.threshold = threshold;
    }

    /// Live-reconfigures the check cadence. Applies from the *next*
    /// scheduled check: the pending check point is left untouched so
    /// stream-time bookkeeping stays monotonic.
    pub fn set_check_interval_s(&mut self, interval_s: f64) {
        assert!(interval_s.is_finite() && interval_s > 0.0);
        self.config.check_interval_s = interval_s;
    }

    /// Checks run so far.
    pub fn checks(&self) -> usize {
        self.checks
    }

    /// Verdicts raised so far.
    pub fn verdicts(&self) -> usize {
        self.verdicts
    }

    /// The most recent verdict, if any.
    pub fn last_verdict(&self) -> Option<&DriftVerdict> {
        self.last_verdict.as_ref()
    }

    /// Per-class last L1 scores (NaN until a class is first scored).
    pub fn class_scores(&self) -> Vec<f64> {
        self.live.iter().map(|l| l.last_score).collect()
    }

    /// Per-class mean confidence over the *current* (unscored) window;
    /// NaN for classes with no samples yet.
    pub fn mean_confidences(&self) -> Vec<f64> {
        self.live
            .iter()
            .map(|l| {
                let s = l.confidences.samples();
                if s.is_empty() {
                    f64::NAN
                } else {
                    s.iter().sum::<f64>() / s.len() as f64
                }
            })
            .collect()
    }

    /// Feeds classified flows into their predicted class's live window.
    pub fn observe(&mut self, flows: &[ClassifiedFlow]) {
        for f in flows {
            if let Some(l) = self.live.get_mut(f.label) {
                l.sizes.push(f.mean_pkt_size);
                l.iats.push(f.mean_iat_s);
                l.confidences.push(f.confidence as f64);
            }
        }
    }

    /// Advances stream time to `now_ts` (the current packet's
    /// timestamp, `packet` packets into the stream) and runs a check if
    /// an interval has elapsed. Emits `drift_check` per scored class and
    /// `drift_detected` on a verdict. Stream-time driven: replaying the
    /// same trace reproduces the same checks at the same packet indices.
    pub fn maybe_check(
        &mut self,
        now_ts: f64,
        packet: usize,
        obs: &mut dyn InferObserver,
    ) -> Option<DriftVerdict> {
        let next = match self.next_check_ts {
            None => {
                // First packet pins the cadence to the stream's origin.
                self.next_check_ts = Some(now_ts + self.config.check_interval_s);
                return None;
            }
            Some(t) => t,
        };
        if now_ts < next {
            return None;
        }
        let verdict = self.run_check(next, packet, obs);
        // One check consumes the window; a stream-time jump across
        // several intervals doesn't replay empty checks.
        let mut t = next + self.config.check_interval_s;
        if t <= now_ts {
            let k = ((now_ts - next) / self.config.check_interval_s).floor() + 1.0;
            t = next + k * self.config.check_interval_s;
        }
        self.next_check_ts = Some(t);
        verdict
    }

    /// Scores every class with enough live samples, clears the windows,
    /// and applies the sustain + cooldown rules.
    fn run_check(
        &mut self,
        at_ts: f64,
        packet: usize,
        obs: &mut dyn InferObserver,
    ) -> Option<DriftVerdict> {
        let threshold = self.config.threshold;
        let mut verdict: Option<DriftVerdict> = None;
        for (class, live) in self.live.iter_mut().enumerate() {
            let scored = match &self.refs[class] {
                Some(kdes) if live.sizes.len() >= self.config.min_samples => {
                    let size_score = shift_score(&kdes.size, kdes.size_range, live.sizes.samples());
                    let iat_score = shift_score(&kdes.iat, kdes.iat_range, live.iats.samples());
                    // The monitor watches both features; either one
                    // diverging is drift, so the score is the max.
                    match (size_score, iat_score) {
                        (Some(a), Some(b)) => Some((a.max(b), live.sizes.len())),
                        (Some(a), None) => Some((a, live.sizes.len())),
                        (None, Some(b)) => Some((b, live.sizes.len())),
                        (None, None) => None,
                    }
                }
                _ => None,
            };
            if let Some((score, samples)) = scored {
                live.last_score = score;
                obs.infer_event(&InferEvent::DriftCheck {
                    at_ts,
                    class,
                    score,
                    threshold,
                    samples,
                });
                if score > threshold {
                    live.over += 1;
                } else {
                    live.over = 0;
                }
                let in_cooldown = self.checks < self.cooldown_until;
                if live.over >= self.config.sustain && !in_cooldown && verdict.is_none() {
                    let v = DriftVerdict {
                        at_ts,
                        packet,
                        class,
                        score,
                        threshold,
                        sustained: live.over,
                    };
                    obs.infer_event(&InferEvent::DriftDetected {
                        at_ts,
                        packet,
                        class,
                        score,
                        threshold,
                        sustained: live.over,
                    });
                    live.over = 0;
                    verdict = Some(v);
                }
            }
            live.sizes.clear();
            live.iats.clear();
            live.confidences.clear();
        }
        self.checks += 1;
        if let Some(v) = verdict {
            self.verdicts += 1;
            self.last_verdict = Some(v);
            self.cooldown_until = self.checks + self.config.cooldown_checks;
        }
        verdict
    }

    /// Re-baselines the monitor after a hot-swap: new reference KDEs,
    /// cleared windows and sustain counters. Check cadence and counters
    /// are preserved — the event log keeps one monotonic check index.
    pub fn rebase(&mut self, refs: &ReferenceDistributions) {
        let n = refs.n_classes();
        self.refs = (0..n).map(|c| fit_class(refs, c)).collect();
        if self.live.len() != n {
            let cap = self.config.reservoir_cap;
            let seed = self.config.seed;
            self.live = (0..n)
                .map(|c| LiveClass {
                    sizes: Reservoir::new(cap, seed ^ (c as u64)),
                    iats: Reservoir::new(cap, seed ^ (c as u64)),
                    confidences: Reservoir::new(cap, seed ^ (c as u64) ^ 0x5A5A),
                    over: 0,
                    last_score: f64::NAN,
                })
                .collect();
        } else {
            for l in &mut self.live {
                l.sizes.clear();
                l.iats.clear();
                l.confidences.clear();
                l.over = 0;
                l.last_score = f64::NAN;
            }
        }
        self.cooldown_until = self.checks + self.config.cooldown_checks;
    }
}

/// Retrain knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrainConfig {
    /// Upper bound on fine-tune epochs (early stopping still applies).
    pub max_epochs: usize,
    /// Fine-tune learning rate (paper fine-tuning default 0.01 is too
    /// hot for warm-started full networks; supervised 0.001 is used).
    pub learning_rate: f32,
    /// Most recent classified flows kept per predicted class.
    pub per_class_cap: usize,
    /// Minimum total stored flows before a retrain is attempted.
    pub min_flows: usize,
    /// Fraction of the fine-tune set held back for validation.
    pub val_frac: f64,
    /// Minimum held-back accuracy for the candidate to be accepted.
    pub min_accuracy: f64,
    /// Training/shuffle seed (perturbed per retrain attempt).
    pub seed: u64,
    /// Mini-batch worker threads for the background fit.
    pub batch_workers: usize,
    /// Where the resumable trainer checkpoints; `None` falls back to
    /// non-checkpointed training.
    pub checkpoint_path: Option<PathBuf>,
}

impl Default for RetrainConfig {
    fn default() -> RetrainConfig {
        RetrainConfig {
            max_epochs: 3,
            learning_rate: 0.001,
            per_class_cap: 256,
            min_flows: 24,
            val_frac: 0.2,
            min_accuracy: 0.5,
            seed: 0x52E7,
            batch_workers: 1,
            checkpoint_path: None,
        }
    }
}

/// What a background retrain produced.
#[derive(Debug)]
pub struct RetrainOutcome {
    /// Whether the candidate passed validation (and `model` is `Some`).
    pub accepted: bool,
    /// Held-back accuracy of the candidate.
    pub val_accuracy: f64,
    /// Fine-tune epochs actually run.
    pub epochs: usize,
    /// Background wall-clock, in milliseconds.
    pub wall_ms: f64,
    /// The accepted candidate, ready for the registry hot-swap.
    pub model: Option<ServedModel>,
    /// References rebuilt from the fine-tune set, so the monitor's
    /// baseline moves with the swap.
    pub refs: Option<ReferenceDistributions>,
}

/// Where the orchestrator currently is, for `drift-status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RetrainState {
    Idle,
    Running,
    Accepted,
    Rejected,
}

/// Assembles fine-tune sets from recently classified flows and runs
/// verdict-triggered background retrains.
pub struct RetrainOrchestrator {
    config: RetrainConfig,
    /// Per predicted class: the most recent `(input, mean_pkt_size,
    /// mean_iat_s)` summaries, oldest evicted first.
    store: Vec<std::collections::VecDeque<(Vec<f32>, f64, f64)>>,
    class_names: Vec<String>,
    job: Option<mpsc::Receiver<RetrainOutcome>>,
    state: RetrainState,
    started: usize,
    accepted: usize,
}

impl RetrainOrchestrator {
    /// An orchestrator for a model separating `class_names`.
    pub fn new(class_names: Vec<String>, config: RetrainConfig) -> RetrainOrchestrator {
        assert!(config.per_class_cap >= 1, "per_class_cap must be >= 1");
        assert!(
            (0.0..1.0).contains(&config.val_frac),
            "val_frac must be in [0, 1)"
        );
        let n = class_names.len();
        RetrainOrchestrator {
            config,
            store: (0..n).map(|_| std::collections::VecDeque::new()).collect(),
            class_names,
            job: None,
            state: RetrainState::Idle,
            started: 0,
            accepted: 0,
        }
    }

    /// Retrains started / accepted so far.
    pub fn counts(&self) -> (usize, usize) {
        (self.started, self.accepted)
    }

    /// `"idle"`, `"running"`, `"accepted"` or `"rejected"` — the
    /// `drift-status` state string.
    pub fn state(&self) -> &'static str {
        match self.state {
            RetrainState::Idle => "idle",
            RetrainState::Running => "running",
            RetrainState::Accepted => "accepted",
            RetrainState::Rejected => "rejected",
        }
    }

    /// Whether a background retrain is in flight.
    pub fn is_running(&self) -> bool {
        self.job.is_some()
    }

    /// Flows currently stored across all classes.
    pub fn stored_flows(&self) -> usize {
        self.store.iter().map(|s| s.len()).sum()
    }

    /// Records classified flows as future fine-tune candidates, keeping
    /// the most recent `per_class_cap` per predicted class.
    pub fn observe(&mut self, flows: &[ClassifiedFlow]) {
        for f in flows {
            if let Some(s) = self.store.get_mut(f.label) {
                s.push_back((f.input.clone(), f.mean_pkt_size, f.mean_iat_s));
                while s.len() > self.config.per_class_cap {
                    s.pop_front();
                }
            }
        }
    }

    /// Starts a background retrain for `verdict` if none is running and
    /// enough flows are stored. Emits `retrain_start` and returns `true`
    /// when a job was actually spawned. Never blocks on training.
    pub fn trigger(
        &mut self,
        verdict: &DriftVerdict,
        model: &ServedModel,
        obs: &mut dyn InferObserver,
    ) -> bool {
        if self.job.is_some() {
            return false;
        }
        let total = self.stored_flows();
        if total < self.config.min_flows {
            return false;
        }
        let mut inputs = Vec::with_capacity(total);
        let mut labels = Vec::with_capacity(total);
        let mut stats = Vec::with_capacity(total);
        for (class, s) in self.store.iter().enumerate() {
            for (input, size, iat) in s {
                inputs.push(input.clone());
                labels.push(class);
                stats.push((class, *size, *iat));
            }
        }
        obs.infer_event(&InferEvent::RetrainStart {
            trigger_class: verdict.class,
            flows: total,
        });
        self.started += 1;
        self.state = RetrainState::Running;

        let config = self.config.clone();
        let class_names = self.class_names.clone();
        let model = model.clone();
        // Perturb the seed per attempt so consecutive retrains don't
        // replay identical shuffles — still deterministic per attempt
        // index.
        let seed = config.seed.wrapping_add(self.started as u64);
        let (tx, rx) = mpsc::channel();
        self.job = Some(rx);
        std::thread::spawn(move || {
            let outcome = run_retrain(&config, seed, model, class_names, inputs, labels, stats);
            // The daemon may have shut down; a dead receiver is fine.
            let _ = tx.send(outcome);
        });
        true
    }

    /// Non-blocking completion poll. On completion emits `retrain_end`
    /// and returns the outcome; the caller performs the swap.
    pub fn poll(&mut self, obs: &mut dyn InferObserver) -> Option<RetrainOutcome> {
        let rx = self.job.as_ref()?;
        match rx.try_recv() {
            Ok(outcome) => {
                self.job = None;
                self.state = if outcome.accepted {
                    self.accepted += 1;
                    RetrainState::Accepted
                } else {
                    RetrainState::Rejected
                };
                obs.infer_event(&InferEvent::RetrainEnd {
                    accepted: outcome.accepted,
                    val_accuracy: outcome.val_accuracy,
                    epochs: outcome.epochs,
                    wall_ms: outcome.wall_ms,
                });
                Some(outcome)
            }
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                // The worker died without reporting (panic in training).
                // Treat as a rejected retrain; the daemon keeps serving.
                self.job = None;
                self.state = RetrainState::Rejected;
                obs.infer_event(&InferEvent::RetrainEnd {
                    accepted: false,
                    val_accuracy: f64::NAN,
                    epochs: 0,
                    wall_ms: f64::NAN,
                });
                Some(RetrainOutcome {
                    accepted: false,
                    val_accuracy: f64::NAN,
                    epochs: 0,
                    wall_ms: f64::NAN,
                    model: None,
                    refs: None,
                })
            }
        }
    }
}

/// The background half: warm-start the served architecture, fine-tune
/// on the stored flows, validate on a held-back slice.
fn run_retrain(
    config: &RetrainConfig,
    seed: u64,
    model: ServedModel,
    class_names: Vec<String>,
    inputs: Vec<Vec<f32>>,
    labels: Vec<usize>,
    stats: Vec<(usize, f64, f64)>,
) -> RetrainOutcome {
    let t0 = Instant::now();
    let reject = |wall_ms: f64| RetrainOutcome {
        accepted: false,
        val_accuracy: 0.0,
        epochs: 0,
        wall_ms,
        model: None,
        refs: None,
    };
    let mut net = match model.build_net() {
        Ok(net) => net,
        Err(_) => return reject(t0.elapsed().as_secs_f64() * 1e3),
    };
    let dataset = tcbench::data::FlowpicDataset {
        res: model.resolution,
        channels: 1,
        inputs,
        labels,
        n_classes: model.n_classes,
    };
    let (train, val) = dataset.split_validation(config.val_frac, seed);
    if train.is_empty() {
        return reject(t0.elapsed().as_secs_f64() * 1e3);
    }
    let val_opt = (!val.is_empty()).then_some(&val);
    let trainer = SupervisedTrainer::new(TrainConfig {
        learning_rate: config.learning_rate,
        batch_size: 32,
        max_epochs: config.max_epochs,
        patience: config.max_epochs,
        min_delta: 0.001,
        seed,
        batch_workers: config.batch_workers,
    });
    let summary = match &config.checkpoint_path {
        Some(path) => {
            // Each retrain is a fresh trajectory: stale checkpoints from
            // a previous attempt must not resume into this one.
            let _ = std::fs::remove_file(path);
            let spec = CheckpointSpec::new(path).every(1);
            match trainer.train_resumable(&mut net, &train, val_opt, &spec) {
                Ok(s) => s,
                Err(_) => return reject(t0.elapsed().as_secs_f64() * 1e3),
            }
        }
        None => trainer.train(&mut net, &train, val_opt),
    };
    let eval_on = if val.is_empty() { &train } else { &val };
    let eval = trainer.evaluate(&net, eval_on);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let accepted = eval.accuracy >= config.min_accuracy;
    let refs = ReferenceDistributions::from_flow_stats(
        class_names,
        model.n_classes,
        stats,
        config.per_class_cap,
        seed,
    );
    RetrainOutcome {
        accepted,
        val_accuracy: eval.accuracy,
        epochs: summary.epochs,
        wall_ms,
        model: accepted.then(|| ServedModel {
            arch: model.arch.clone(),
            resolution: model.resolution,
            n_classes: model.n_classes,
            dropout: model.dropout,
            class_names: model.class_names.clone(),
            weights: net.export_weights(),
        }),
        refs: Some(refs),
    }
}

/// The most recent verdict on the `drift-status` wire (scores stay
/// finite: serde_json cannot round-trip NaN).
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct WireVerdict {
    /// The diverged class.
    pub class: usize,
    /// L1 score at the verdict.
    pub score: f64,
    /// Packet index of the verdict.
    pub packet: usize,
    /// Stream time of the verdict.
    pub at_ts: f64,
}

/// Drift fields of `DaemonStats` / the `drift-status` reply. All scores
/// use `-1.0` as the "not scored" sentinel — the L1 metric is
/// non-negative, and JSON has no NaN.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct DriftStats {
    /// Whether drift detection is enabled.
    pub enabled: bool,
    /// Checks run so far.
    pub checks: usize,
    /// Verdicts raised so far.
    pub verdicts: usize,
    /// Per-class last L1 scores (`-1.0` = never scored).
    pub class_scores: Vec<f64>,
    /// Per-class mean confidence of the current window (`-1.0` = no
    /// samples yet).
    pub mean_confidence: Vec<f64>,
    /// The most recent verdict.
    pub last_verdict: Option<WireVerdict>,
    /// `"idle"`, `"running"`, `"accepted"` or `"rejected"`.
    pub retrain_state: String,
    /// Background retrains started.
    pub retrains_started: usize,
    /// Retrains whose candidate was accepted and swapped.
    pub retrains_accepted: usize,
    /// The verdict threshold in force.
    pub threshold: f64,
    /// The check cadence in force (stream-time seconds).
    pub check_interval_s: f64,
}

impl DriftStats {
    /// The `drift-status` reply of a daemon running without drift
    /// detection: everything zeroed, `enabled: false`.
    pub fn disabled() -> DriftStats {
        DriftStats {
            enabled: false,
            checks: 0,
            verdicts: 0,
            class_scores: Vec::new(),
            mean_confidence: Vec::new(),
            last_verdict: None,
            retrain_state: "idle".into(),
            retrains_started: 0,
            retrains_accepted: 0,
            threshold: 0.0,
            check_interval_s: 0.0,
        }
    }
}

/// Replaces non-finite scores with the wire sentinel `-1.0`.
pub fn wire_scores(scores: Vec<f64>) -> Vec<f64> {
    scores
        .into_iter()
        .map(|s| if s.is_finite() { s } else { -1.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcbench::arch::supervised_net;
    use tcbench::telemetry::{InferRecorder, Noop};

    const _: () = assert!(GRID_POINTS >= 2);

    fn refs_two_class() -> ReferenceDistributions {
        // Class 0 sizes around 200, class 1 around 600; IATs 1s / 2s.
        let stats = (0..64).flat_map(|i| {
            let jitter = (i % 8) as f64;
            [
                (0usize, 200.0 + jitter, 1.0 + jitter * 0.01),
                (1usize, 600.0 + jitter, 2.0 + jitter * 0.01),
            ]
        });
        ReferenceDistributions::from_flow_stats(vec!["a".into(), "b".into()], 2, stats, 64, 1)
    }

    fn flow(label: usize, size: f64, iat: f64) -> ClassifiedFlow {
        ClassifiedFlow {
            flow_id: 0,
            label,
            confidence: 0.9,
            mean_pkt_size: size,
            mean_iat_s: iat,
            input: Vec::new(),
        }
    }

    fn cfg() -> DriftConfig {
        DriftConfig {
            threshold: 0.6,
            check_interval_s: 10.0,
            sustain: 2,
            min_samples: 4,
            reservoir_cap: 64,
            cooldown_checks: 2,
            seed: 7,
        }
    }

    /// Feeds `windows` of flows, advancing one interval per window, and
    /// returns the verdicts raised.
    fn drive(
        monitor: &mut DriftMonitor,
        windows: &[Vec<ClassifiedFlow>],
        obs: &mut dyn InferObserver,
    ) -> Vec<DriftVerdict> {
        let mut verdicts = Vec::new();
        let mut packet = 0usize;
        // Pin the cadence with a first packet at t=0.
        monitor.maybe_check(0.0, 0, obs);
        for (w, flows) in windows.iter().enumerate() {
            monitor.observe(flows);
            packet += flows.len();
            // Cross the check boundary for this window.
            let ts = (w as f64 + 1.0) * 10.0;
            if let Some(v) = monitor.maybe_check(ts, packet, obs) {
                verdicts.push(v);
            }
        }
        verdicts
    }

    fn matching_window() -> Vec<ClassifiedFlow> {
        (0..16)
            .flat_map(|i| {
                let jitter = (i % 8) as f64;
                [
                    flow(0, 200.0 + jitter, 1.0 + jitter * 0.01),
                    flow(1, 600.0 + jitter, 2.0 + jitter * 0.01),
                ]
            })
            .collect()
    }

    fn shifted_window() -> Vec<ClassifiedFlow> {
        (0..16)
            .flat_map(|i| {
                let jitter = (i % 8) as f64;
                [
                    flow(0, 200.0 + jitter, 1.0 + jitter * 0.01),
                    // Class 1 drifted: sizes way up, IATs halved.
                    flow(1, 1100.0 + jitter, 1.0 + jitter * 0.01),
                ]
            })
            .collect()
    }

    #[test]
    fn no_drift_stays_silent() {
        let mut monitor = DriftMonitor::new(&refs_two_class(), cfg());
        let mut rec = InferRecorder::new();
        let windows: Vec<_> = (0..5).map(|_| matching_window()).collect();
        let verdicts = drive(&mut monitor, &windows, &mut rec);
        assert!(verdicts.is_empty(), "matching traffic must not drift");
        assert_eq!(monitor.checks(), 5);
        // Every check scored both classes under the threshold.
        let checks: Vec<f64> = rec
            .events
            .iter()
            .filter_map(|e| match e {
                InferEvent::DriftCheck { score, .. } => Some(*score),
                _ => None,
            })
            .collect();
        assert_eq!(checks.len(), 10);
        assert!(checks.iter().all(|s| *s < 0.6), "{checks:?}");
        assert!(!rec
            .events
            .iter()
            .any(|e| matches!(e, InferEvent::DriftDetected { .. })));
    }

    #[test]
    fn sustained_shift_raises_a_verdict() {
        let mut monitor = DriftMonitor::new(&refs_two_class(), cfg());
        let mut rec = InferRecorder::new();
        let windows = vec![
            matching_window(),
            shifted_window(),
            shifted_window(),
            shifted_window(),
        ];
        let verdicts = drive(&mut monitor, &windows, &mut rec);
        // sustain=2: first shifted window arms, second trips.
        assert_eq!(verdicts.len(), 1, "{verdicts:?}");
        let v = verdicts[0];
        assert_eq!(v.class, 1);
        assert!(v.score > 0.6, "score {}", v.score);
        assert_eq!(v.sustained, 2);
        assert_eq!(monitor.verdicts(), 1);
        assert!(rec
            .events
            .iter()
            .any(|e| matches!(e, InferEvent::DriftDetected { class: 1, .. })));
        // Cooldown suppressed the third shifted window.
        assert_eq!(monitor.last_verdict().unwrap().packet, v.packet);
    }

    #[test]
    fn verdict_packet_index_is_deterministic() {
        let run = || {
            let mut monitor = DriftMonitor::new(&refs_two_class(), cfg());
            let windows = vec![matching_window(), shifted_window(), shifted_window()];
            drive(&mut monitor, &windows, &mut Noop)
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].packet, b[0].packet);
        assert_eq!(a[0].score.to_bits(), b[0].score.to_bits());
    }

    #[test]
    fn quiet_and_degenerate_classes_never_crash() {
        // Class 1's reference is empty → never scored; class 0 quiet on
        // the live side → skipped.
        let refs = ReferenceDistributions::from_flow_stats(
            vec!["a".into(), "b".into()],
            2,
            (0..32).map(|i| (0usize, 300.0 + (i % 4) as f64, 1.0)),
            32,
            1,
        );
        let mut monitor = DriftMonitor::new(&refs, cfg());
        let mut rec = InferRecorder::new();
        // Window 1: nothing at all. Window 2: flows only for class 1
        // (whose reference is missing). Window 3: two class-0 flows —
        // under min_samples.
        let windows = vec![
            Vec::new(),
            (0..8).map(|_| flow(1, 999.0, 0.1)).collect(),
            vec![flow(0, 300.0, 1.0), flow(0, 301.0, 1.0)],
        ];
        let verdicts = drive(&mut monitor, &windows, &mut rec);
        assert!(verdicts.is_empty());
        assert_eq!(monitor.checks(), 3);
        assert!(
            !rec.events
                .iter()
                .any(|e| matches!(e, InferEvent::DriftCheck { .. })),
            "no class ever had enough samples + reference to score"
        );
        // Scores stay NaN → wire sentinel -1.
        assert!(wire_scores(monitor.class_scores())
            .iter()
            .all(|s| *s == -1.0));
    }

    #[test]
    fn rebase_clears_windows_and_refits() {
        let mut monitor = DriftMonitor::new(&refs_two_class(), cfg());
        let mut rec = InferRecorder::new();
        let windows = vec![matching_window(), shifted_window(), shifted_window()];
        assert_eq!(drive(&mut monitor, &windows, &mut rec).len(), 1);
        // Rebase onto references matching the *shifted* distribution:
        // the same shifted traffic no longer drifts.
        let new_refs = ReferenceDistributions::from_flow_stats(
            vec!["a".into(), "b".into()],
            2,
            (0..64).flat_map(|i| {
                let jitter = (i % 8) as f64;
                [
                    (0usize, 200.0 + jitter, 1.0 + jitter * 0.01),
                    (1usize, 1100.0 + jitter, 1.0 + jitter * 0.01),
                ]
            }),
            64,
            1,
        );
        monitor.rebase(&new_refs);
        let more = vec![
            shifted_window(),
            shifted_window(),
            shifted_window(),
            shifted_window(),
            shifted_window(),
        ];
        // Cooldown covers the first 2 checks post-rebase; the rest score
        // under threshold against the new baseline.
        let verdicts = drive(&mut monitor, &more, &mut rec);
        assert!(verdicts.is_empty(), "{verdicts:?}");
    }

    #[test]
    fn orchestrator_retrains_and_accepts_in_background() {
        let res = 16;
        let model = ServedModel {
            arch: "supervised".into(),
            resolution: res,
            n_classes: 2,
            dropout: true,
            class_names: vec!["a".into(), "b".into()],
            weights: supervised_net(res, 2, true, 5).export_weights(),
        };
        let mut orch = RetrainOrchestrator::new(
            model.class_names.clone(),
            RetrainConfig {
                max_epochs: 2,
                min_flows: 8,
                min_accuracy: 0.0,
                val_frac: 0.25,
                ..RetrainConfig::default()
            },
        );
        // Linearly separable inputs: class 0 = low pixels, class 1 = high.
        let flows: Vec<ClassifiedFlow> = (0..24)
            .map(|i| {
                let label = i % 2;
                let v = if label == 0 { 0.1 } else { 0.9 };
                ClassifiedFlow {
                    flow_id: i as u64,
                    label,
                    confidence: 0.8,
                    mean_pkt_size: 100.0 + 500.0 * label as f64,
                    mean_iat_s: 1.0,
                    input: vec![v; res * res],
                }
            })
            .collect();
        orch.observe(&flows);
        assert_eq!(orch.stored_flows(), 24);
        let verdict = DriftVerdict {
            at_ts: 10.0,
            packet: 100,
            class: 1,
            score: 1.2,
            threshold: 0.6,
            sustained: 2,
        };
        let mut rec = InferRecorder::new();
        assert!(orch.trigger(&verdict, &model, &mut rec));
        assert!(orch.is_running());
        assert_eq!(orch.state(), "running");
        // A second verdict while running is a no-op.
        assert!(!orch.trigger(&verdict, &model, &mut rec));
        // Background thread: wait for completion via polling.
        let outcome = loop {
            if let Some(o) = orch.poll(&mut rec) {
                break o;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        assert!(outcome.accepted, "acc {}", outcome.val_accuracy);
        assert_eq!(orch.state(), "accepted");
        assert_eq!(orch.counts(), (1, 1));
        let candidate = outcome.model.expect("accepted outcome carries a model");
        assert_eq!(candidate.n_classes, 2);
        assert_ne!(
            candidate.weights.fingerprint(),
            model.weights.fingerprint(),
            "fine-tune must move the weights"
        );
        let refs = outcome.refs.expect("outcome carries rebased references");
        assert_eq!(refs.n_classes(), 2);
        assert!(!refs.classes[0].mean_pkt_sizes.is_empty());
        // Event order: retrain_start then retrain_end(accepted).
        let names: Vec<&str> = rec
            .events
            .iter()
            .map(|e| match e {
                InferEvent::RetrainStart { .. } => "start",
                InferEvent::RetrainEnd { .. } => "end",
                _ => "other",
            })
            .collect();
        assert_eq!(names, vec!["start", "end"]);
    }

    #[test]
    fn orchestrator_needs_enough_flows() {
        let model = ServedModel {
            arch: "supervised".into(),
            resolution: 16,
            n_classes: 2,
            dropout: true,
            class_names: vec!["a".into(), "b".into()],
            weights: supervised_net(16, 2, true, 5).export_weights(),
        };
        let mut orch = RetrainOrchestrator::new(
            model.class_names.clone(),
            RetrainConfig {
                min_flows: 100,
                ..RetrainConfig::default()
            },
        );
        let verdict = DriftVerdict {
            at_ts: 10.0,
            packet: 1,
            class: 0,
            score: 1.0,
            threshold: 0.6,
            sustained: 2,
        };
        assert!(!orch.trigger(&verdict, &model, &mut Noop));
        assert_eq!(orch.state(), "idle");
    }

    #[test]
    fn store_is_bounded_per_class() {
        let mut orch = RetrainOrchestrator::new(
            vec!["a".into()],
            RetrainConfig {
                per_class_cap: 4,
                ..RetrainConfig::default()
            },
        );
        let flows: Vec<ClassifiedFlow> = (0..100)
            .map(|i| ClassifiedFlow {
                flow_id: i,
                label: 0,
                confidence: 0.5,
                mean_pkt_size: i as f64,
                mean_iat_s: 0.0,
                input: vec![0.0; 4],
            })
            .collect();
        orch.observe(&flows);
        assert_eq!(orch.stored_flows(), 4);
    }
}
