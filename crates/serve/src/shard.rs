//! Sharded serving dataplane: N independent tracker + engine lanes.
//!
//! A single [`FlowTracker`] + [`InferenceEngine`] pair serializes every
//! packet through one eviction clock and one micro-batcher. To scale to
//! millions of concurrent flows the dataplane splits into `shards`
//! independent **lanes**, each owning its tracker, its micro-batcher and
//! its classifier handle. A packet is routed by a stable hash of its
//! flow id ([`shard_of`]), so every packet of a flow always lands on the
//! same lane and per-flow state never crosses lanes — the shards/journals
//! split of a production streaming dataplane, applied to flow tracking.
//!
//! Two drivers share the lane type:
//!
//! * [`ShardedPipeline`] — the serial form the daemon hosts: one thread
//!   routes each packet to its lane as it arrives, and all lanes serve
//!   from one shared [`ModelRegistry`] so a hot-swap applies everywhere
//!   at the same request boundary.
//! * [`replay_sharded`] — the parallel form behind `tcb serve --replay
//!   --shards N`: the trace is partitioned per lane up front, lanes run
//!   to completion on a worker pool, and the per-lane results are merged
//!   in shard order into one [`ReplayReport`].
//!
//! **Determinism contract.** For a fixed shard count the predictions are
//! bit-identical at any worker count: lanes are fully independent, so it
//! cannot matter which worker runs a lane or when, and the merge always
//! concatenates in shard order. Changing the shard *count* may change
//! results (each lane has its own eviction clock and batch deadlines —
//! which flows get evicted under a shared cap depends on what else
//! shares the lane), exactly as changing `max_batch` does; `--shards 1`
//! is bit-identical to the unsharded [`crate::replay::replay`] loop.
//! The integration tests pin both properties in raw f32 bits.
//!
//! Model swaps in a parallel replay are applied *per lane* against a
//! lane-local registry: each lane swaps when it first reaches a packet
//! at or past the scheduled global index, which is exactly when a shared
//! serial registry would have swapped as far as that lane's batches can
//! observe. The merged telemetry reports each schedule entry once.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use nettensor::checkpoint::CheckpointError;
use tcbench::telemetry::{InferEvent, InferObserver, InferRecorder};

use crate::engine::{Classifier, EngineConfig, InferenceEngine, Prediction};
use crate::registry::ModelRegistry;
use crate::replay::{PacketRecord, ReplayReport, ScheduledSwap};
use crate::tracker::{FlowTracker, TrackerConfig};

/// Construction-time validation errors for the sharded dataplane.
///
/// The library constructors ([`ShardedPipeline::new`],
/// [`replay_sharded`], `Daemon::new`) return this instead of panicking
/// on an impossible lane count, so embedders (and the daemon boundary)
/// can surface a clean error; the CLI additionally rejects `--shards 0`
/// as a usage error before any of them run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// A dataplane needs at least one lane (`shards == 0` would make
    /// every [`shard_of`] route a modulo-by-zero).
    ZeroShards,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::ZeroShards => write!(f, "shard count must be at least 1"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<ShardError> for CheckpointError {
    /// The serving constructors' shared error channel is
    /// [`CheckpointError`] (they also load models); a shard-count error
    /// maps onto its format variant.
    fn from(e: ShardError) -> CheckpointError {
        CheckpointError::Format(e.to_string())
    }
}

/// The lane owning `flow_id` among `shards` lanes. SplitMix64 over the
/// flow id, reduced modulo the shard count: stable across processes and
/// uncorrelated with sequentially-assigned flow ids (a plain `id %
/// shards` would stripe a synthetic trace perfectly but cluster real
/// 5-tuple hashes).
///
/// `shards >= 1` is a documented precondition (asserted): both
/// constructors that could reach here with zero already failed with
/// [`ShardError::ZeroShards`].
pub fn shard_of(flow_id: u64, shards: usize) -> usize {
    assert!(shards >= 1, "shard count must be at least 1");
    let mut z = flow_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as usize % shards
}

/// One dataplane lane: a tracker and an engine that only ever see the
/// packets of the flows hashed to them.
pub struct Lane {
    /// Per-flow state for this lane's flows.
    pub tracker: FlowTracker,
    /// This lane's micro-batcher and classifier handle.
    pub engine: InferenceEngine,
}

impl Lane {
    /// A fresh lane tagged with its shard index for telemetry.
    pub fn new(
        shard: usize,
        registry: Arc<ModelRegistry>,
        tracker_cfg: TrackerConfig,
        engine_cfg: EngineConfig,
    ) -> Lane {
        let mut tracker = FlowTracker::new(tracker_cfg);
        tracker.set_shard(shard);
        let mut engine = InferenceEngine::new(registry, engine_cfg);
        engine.set_shard(shard);
        Lane { tracker, engine }
    }

    /// The replay loop's per-packet order, scoped to one lane: advance
    /// the batch deadline, ingest, submit any completion.
    pub fn push(&mut self, rec: &PacketRecord, obs: &mut dyn InferObserver) {
        self.engine.poll(rec.ts, obs);
        if let Some(done) = self.tracker.push(rec, obs) {
            self.engine.submit(done, rec.ts, obs);
        }
    }

    /// End-of-stream: early-terminate live flows at `now`, then drain
    /// the micro-batch queue.
    pub fn flush_and_drain(&mut self, now: f64, obs: &mut dyn InferObserver) {
        for done in self.tracker.flush(now) {
            self.engine.submit(done, now, obs);
        }
        self.engine.drain(obs);
    }
}

/// The serial sharded dataplane the daemon hosts: lanes share one
/// registry and one ingest thread routes packets to them in arrival
/// order. Because lanes are independent, this interleaved processing
/// leaves every lane in exactly the state the partitioned parallel
/// replay produces — the daemon-vs-replay equivalence test relies on it.
pub struct ShardedPipeline {
    lanes: Vec<Lane>,
}

impl ShardedPipeline {
    /// `shards` fresh lanes sharing `registry`. Fails with
    /// [`ShardError::ZeroShards`] rather than panicking on a zero lane
    /// count.
    pub fn new(
        registry: &Arc<ModelRegistry>,
        tracker_cfg: TrackerConfig,
        engine_cfg: EngineConfig,
        shards: usize,
    ) -> Result<ShardedPipeline, ShardError> {
        if shards == 0 {
            return Err(ShardError::ZeroShards);
        }
        Ok(ShardedPipeline {
            lanes: (0..shards)
                .map(|s| Lane::new(s, registry.clone(), tracker_cfg, engine_cfg))
                .collect(),
        })
    }

    /// The lane count, fixed at construction. Resharding live would
    /// rehash every tracked flow mid-picture, so `set-config` refuses
    /// it; restart the daemon to change the count.
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// Routes one packet to its flow's lane.
    pub fn push(&mut self, rec: &PacketRecord, obs: &mut dyn InferObserver) {
        let s = shard_of(rec.flow_id, self.lanes.len());
        self.lanes[s].push(rec, obs);
    }

    /// Flushes and drains every lane, in shard order.
    pub fn flush_and_drain(&mut self, now: f64, obs: &mut dyn InferObserver) {
        for lane in &mut self.lanes {
            lane.flush_and_drain(now, obs);
        }
    }

    /// Flows currently holding tracker state, across all lanes.
    pub fn active_flows(&self) -> usize {
        self.lanes.iter().map(|l| l.tracker.active_flows()).sum()
    }

    /// Flows classified over the pipeline's lifetime.
    pub fn flows_classified(&self) -> usize {
        self.lanes.iter().map(|l| l.engine.flows_classified()).sum()
    }

    /// Micro-batches run, across all lanes.
    pub fn batches_run(&self) -> usize {
        self.lanes.iter().map(|l| l.engine.batches_run()).sum()
    }

    /// Flows dropped unclassified, across all lanes.
    pub fn evicted(&self) -> usize {
        self.lanes.iter().map(|l| l.tracker.evicted()).sum()
    }

    /// Completed flows waiting for a batch slot, across all lanes.
    pub fn queue_depth(&self) -> usize {
        self.lanes.iter().map(|l| l.engine.queue_depth()).sum()
    }

    /// Undrained predictions, across all lanes.
    pub fn predictions_pending(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.engine.predictions().len())
            .sum()
    }

    /// Predictions dropped because nothing drained them, across lanes.
    pub fn predictions_dropped(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.engine.predictions_dropped())
            .sum()
    }

    /// Flows rejected as unknown by the open-world threshold, across
    /// all lanes. Disjoint from [`ShardedPipeline::predictions_dropped`].
    pub fn rejected(&self) -> usize {
        self.lanes.iter().map(|l| l.engine.rejected()).sum()
    }

    /// Remembered classified flow ids, across all lanes — a
    /// bounded-memory proxy for the soak tests.
    pub fn done_len(&self) -> usize {
        self.lanes.iter().map(|l| l.tracker.done_len()).sum()
    }

    /// Recent per-batch wall-clocks from every lane, concatenated in
    /// shard order — the bounded sample live latency quantiles use.
    pub fn recent_wall_ms(&self) -> Vec<f64> {
        self.lanes
            .iter()
            .flat_map(|l| l.engine.recent_wall_ms())
            .collect()
    }

    /// Drains every lane's pending predictions, concatenated in shard
    /// order.
    pub fn take_predictions(&mut self) -> Vec<Prediction> {
        self.lanes
            .iter_mut()
            .flat_map(|l| l.engine.take_predictions())
            .collect()
    }

    /// Drains every lane's drift tap, concatenated in shard order —
    /// worker-count-invariant for a fixed shard count, like
    /// [`ShardedPipeline::take_predictions`]. Always empty unless the
    /// engine config enables `drift_tap`.
    pub fn take_drift_tap(&mut self) -> Vec<crate::engine::ClassifiedFlow> {
        self.lanes
            .iter_mut()
            .flat_map(|l| l.engine.take_drift_tap())
            .collect()
    }

    /// Lane 0's engine configuration (lanes are configured uniformly).
    pub fn engine_config(&self) -> EngineConfig {
        self.lanes[0].engine.config()
    }

    /// Lane 0's tracker configuration (lanes are configured uniformly).
    pub fn tracker_config(&self) -> TrackerConfig {
        self.lanes[0].tracker.config()
    }

    /// Live-reconfigures every lane's batch-size trigger.
    pub fn set_max_batch(&mut self, max_batch: usize) {
        for lane in &mut self.lanes {
            lane.engine.set_max_batch(max_batch);
        }
    }

    /// Live-reconfigures every lane's batch deadline.
    pub fn set_max_wait_s(&mut self, max_wait_s: f64) {
        for lane in &mut self.lanes {
            lane.engine.set_max_wait_s(max_wait_s);
        }
    }

    /// Live-reconfigures every lane's idle timeout.
    pub fn set_idle_timeout_s(&mut self, idle_timeout_s: f64) {
        for lane in &mut self.lanes {
            lane.tracker.set_idle_timeout_s(idle_timeout_s);
        }
    }

    /// Live-reconfigures every lane's flow cap (the cap is per lane),
    /// evicting down immediately.
    pub fn set_max_flows(&mut self, max_flows: usize, obs: &mut dyn InferObserver) {
        for lane in &mut self.lanes {
            lane.tracker.set_max_flows(max_flows, obs);
        }
    }

    /// Live-reconfigures every lane's pending-prediction cap (per lane).
    pub fn set_pending_cap(&mut self, pending_cap: usize) {
        for lane in &mut self.lanes {
            lane.engine.set_pending_cap(pending_cap);
        }
    }

    /// Arms (or disarms) every lane's drift tap.
    pub fn set_drift_tap(&mut self, on: bool) {
        for lane in &mut self.lanes {
            lane.engine.set_drift_tap(on);
        }
    }

    /// Live-reconfigures every lane's open-world rejection threshold.
    pub fn set_reject_below(&mut self, reject_below: f32) {
        for lane in &mut self.lanes {
            lane.engine.set_reject_below(reject_below);
        }
    }
}

/// What one lane of a parallel replay produced.
struct LaneOutput {
    predictions: Vec<Prediction>,
    batch_wall_ms: Vec<f64>,
    batches: usize,
    evicted: usize,
    events: Vec<InferEvent>,
}

/// Runs one lane of a parallel replay to completion over its slice of
/// the trace. `sub` carries each record's global trace index so the
/// lane can honor the global swap schedule.
fn run_lane(
    shard: usize,
    sub: &[(usize, PacketRecord)],
    end_ts: f64,
    trace_len: usize,
    initial: &Arc<dyn Classifier>,
    tracker_cfg: TrackerConfig,
    engine_cfg: EngineConfig,
    schedule: &[(usize, Arc<dyn Classifier>)],
) -> Result<LaneOutput, CheckpointError> {
    let registry = Arc::new(ModelRegistry::new(initial.clone()));
    let mut lane = Lane::new(shard, registry.clone(), tracker_cfg, engine_cfg);
    let mut rec = InferRecorder::new();
    let mut next_swap = 0usize;
    for (global_idx, packet) in sub {
        while next_swap < schedule.len() && schedule[next_swap].0 <= *global_idx {
            registry.swap(schedule[next_swap].1.clone())?;
            next_swap += 1;
        }
        lane.push(packet, &mut rec);
    }
    // Swaps scheduled past this lane's last packet but inside the trace
    // still happened (on the serial clock) before end-of-stream — apply
    // them so flush-time batches see the final model.
    while next_swap < schedule.len() && schedule[next_swap].0 < trace_len {
        registry.swap(schedule[next_swap].1.clone())?;
        next_swap += 1;
    }
    lane.flush_and_drain(end_ts, &mut rec);
    Ok(LaneOutput {
        predictions: lane.engine.predictions().to_vec(),
        batch_wall_ms: lane.engine.batch_wall_ms().to_vec(),
        batches: lane.engine.batches_run(),
        evicted: lane.tracker.evicted(),
        events: rec.events,
    })
}

/// Replays a trace through `shards` independent lanes on up to `workers`
/// threads (`0` = one per lane) and merges the results in shard order.
/// The report's prediction order groups by shard — a different order
/// than the unsharded loop's, but a deterministic one: for a fixed
/// shard count it is bit-identical at any worker count.
///
/// Telemetry is merged per lane in shard order (each `infer_batch_end` /
/// `flow_evicted` event carries its `shard` tag), with the swap schedule
/// reported once.
pub fn replay_sharded(
    trace: &[PacketRecord],
    registry: &Arc<ModelRegistry>,
    tracker_cfg: TrackerConfig,
    engine_cfg: EngineConfig,
    swaps: Vec<ScheduledSwap>,
    shards: usize,
    workers: usize,
    obs: &mut dyn InferObserver,
) -> Result<ReplayReport, CheckpointError> {
    if shards == 0 {
        return Err(ShardError::ZeroShards.into());
    }
    let engine_cfg = EngineConfig {
        retain_full_history: true,
        ..engine_cfg
    };
    let initial = registry.active();
    obs.infer_event(&InferEvent::StreamStart {
        model_fingerprint: initial.fingerprint(),
        n_classes: initial.n_classes(),
    });

    let mut schedule: Vec<(usize, Arc<dyn Classifier>)> =
        swaps.into_iter().map(|s| (s.at_packet, s.model)).collect();
    schedule.sort_by_key(|s| s.0);
    // The fingerprint chain for merged telemetry: entry k retires the
    // model entry k−1 installed. Only entries inside the trace apply —
    // the same rule as the serial loop, which swaps on reaching a packet.
    let applied: Vec<(u64, u64)> = {
        let mut prev = initial.fingerprint();
        schedule
            .iter()
            .filter(|(at, _)| *at < trace.len())
            .map(|(_, model)| {
                let pair = (prev, model.fingerprint());
                prev = model.fingerprint();
                pair
            })
            .collect()
    };

    let mut subs: Vec<Vec<(usize, PacketRecord)>> = (0..shards).map(|_| Vec::new()).collect();
    for (i, rec) in trace.iter().enumerate() {
        subs[shard_of(rec.flow_id, shards)].push((i, rec.clone()));
    }
    let end_ts = trace.last().map(|r| r.ts).unwrap_or(0.0);

    let threads = if workers == 0 {
        shards
    } else {
        workers.min(shards)
    }
    .max(1);
    let results: Vec<Mutex<Option<Result<LaneOutput, CheckpointError>>>> =
        (0..shards).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let s = next.fetch_add(1, Ordering::Relaxed);
                if s >= shards {
                    break;
                }
                let out = run_lane(
                    s,
                    &subs[s],
                    end_ts,
                    trace.len(),
                    &initial,
                    tracker_cfg,
                    engine_cfg,
                    &schedule,
                );
                *results[s].lock().expect("lane result lock poisoned") = Some(out);
            });
        }
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut report = ReplayReport {
        packets: trace.len(),
        predictions: Vec::new(),
        batches: 0,
        evicted: 0,
        batch_wall_ms: Vec::new(),
        wall_ms,
        swaps: applied.len(),
        shards,
    };
    for slot in &results {
        let out = slot
            .lock()
            .expect("lane result lock poisoned")
            .take()
            .expect("every lane ran")?;
        for event in &out.events {
            obs.infer_event(event);
        }
        report.predictions.extend(out.predictions);
        report.batch_wall_ms.extend(out.batch_wall_ms);
        report.batches += out.batches;
        report.evicted += out.evicted;
    }
    for (old, new) in &applied {
        obs.infer_event(&InferEvent::ModelSwapped {
            old_fingerprint: *old,
            new_fingerprint: *new,
            reason: "scheduled",
        });
    }
    obs.infer_event(&InferEvent::StreamEnd {
        flows: report.predictions.len(),
        batches: report.batches,
        evicted: report.evicted,
        wall_ms,
    });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 8] {
            for id in 0..500u64 {
                let s = shard_of(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(id, shards), "stable");
            }
        }
        assert!(
            (0..500u64).any(|id| shard_of(id, 4) != shard_of(id + 500, 4)),
            "hash must actually spread ids"
        );
    }

    #[test]
    fn zero_shards_is_a_typed_error_not_a_panic() {
        use crate::engine::CnnClassifier;
        use crate::registry::{ModelRegistry, ServedModel};
        use flowpic::FlowpicConfig;

        let net = tcbench::arch::supervised_net(16, 3, true, 7);
        let model = ServedModel {
            arch: "supervised".into(),
            resolution: 16,
            n_classes: 3,
            dropout: true,
            class_names: vec!["a".into(), "b".into(), "c".into()],
            weights: net.export_weights(),
        };
        let cnn = CnnClassifier::from_served(&model, 1).expect("build classifier");
        let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
        let tracker_cfg = TrackerConfig {
            flowpic: FlowpicConfig::with_resolution(16),
            ..TrackerConfig::default()
        };
        let engine_cfg = EngineConfig::default();

        assert_eq!(
            ShardedPipeline::new(&registry, tracker_cfg, engine_cfg, 0).err(),
            Some(ShardError::ZeroShards)
        );
        let err = replay_sharded(
            &[],
            &registry,
            tracker_cfg,
            engine_cfg,
            Vec::new(),
            0,
            1,
            &mut tcbench::telemetry::Noop,
        )
        .expect_err("zero shards must fail");
        assert!(
            err.to_string().contains("shard count must be at least 1"),
            "{err}"
        );
        // A valid count still constructs.
        assert_eq!(
            ShardedPipeline::new(&registry, tracker_cfg, engine_cfg, 2)
                .expect("2 lanes")
                .shards(),
            2
        );
    }

    #[test]
    fn shard_of_spreads_sequential_ids_roughly_evenly() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for id in 0..4000u64 {
            counts[shard_of(id, shards)] += 1;
        }
        for (s, n) in counts.iter().enumerate() {
            assert!(
                (600..=1400).contains(n),
                "shard {s} got {n} of 4000 sequential ids"
            );
        }
    }
}
