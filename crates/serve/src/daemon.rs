//! Long-running serving daemon behind a line-delimited JSON control
//! socket.
//!
//! `tcb serve --daemon --socket PATH` hosts the [`ModelRegistry`], a
//! [`ShardedPipeline`] of tracker + engine lanes, and a Unix-domain
//! control socket speaking one JSON request per line, one JSON response
//! per line ([`CtlRequest`] / [`CtlResponse`]). The daemon is the
//! process later capabilities (drift monitoring, background retraining)
//! attach to: they talk to a running classifier instead of spawning
//! one-shot replays.
//!
//! Requests cover the full control surface:
//!
//! * `push-model` — load a model file ([`ServedModel::load_auto`]: the
//!   checkpoint envelope or `tcb train` JSON), validate its
//!   architecture fingerprint, and hot-swap it into the registry
//!   without dropping in-flight batches;
//! * `packet` — ingest one [`PacketRecord`]; completions and
//!   micro-batching behave exactly as in [`crate::replay::replay`];
//! * `stats` — flows tracked/classified, batches, evictions, queue
//!   depth and p50/p95/p99 batch latency over the lanes' bounded
//!   recent-latency rings (a long-running daemon never retains the full
//!   per-batch history a [`crate::replay::ReplayReport`] keeps);
//! * `set-config` — live reconfiguration: sparsity-dispatch threshold
//!   (rebuilds the classifier from the current [`ServedModel`] via
//!   [`CnnClassifier::set_sparsity_threshold`] — bit-identical either
//!   way), micro-batch size/deadline, idle timeout, per-lane flow cap
//!   and pending-prediction cap. The shard count is *not* live — a
//!   reshard would rehash tracked flows mid-picture — so it is fixed at
//!   startup;
//! * `flush` — early-terminate live flows and drain the queue (what a
//!   replay does at end of trace), without exiting;
//! * `predictions` — **drains** the pending predictions (confidences as
//!   exact f32 bits so callers can check bit-identity): each prediction
//!   is returned exactly once, and a client that polls keeps the
//!   daemon's memory flat. Undrained predictions beyond the engine's
//!   `pending_cap` are dropped oldest-first and counted in `stats`;
//! * `shutdown` — graceful exit: flush, drain, `stream_end`.
//!
//! **Determinism contract:** requests are processed strictly in arrival
//! order by a single thread, and a `packet` request replicates the
//! replay loop's per-packet order (poll, then push/submit) on the lane
//! that owns the flow. With one shard, a daemon fed a trace over the
//! socket — with a `push-model` between packets *k−1* and *k* —
//! produces bit-identical predictions to [`crate::replay::replay`] over
//! the same trace with a [`crate::replay::ScheduledSwap`] at packet
//! *k*; with N shards it matches the N-shard parallel replay. The
//! `integration_daemon` test pins this end to end.
//!
//! Daemon lifecycle events (`daemon_start`, `control_request`,
//! `config_changed`, `shutdown`) join the inference telemetry JSONL
//! vocabulary, so a full daemon session is replayable from its log.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use mlstats::quantiles::percentile;
use nettensor::checkpoint::CheckpointError;
use serde::{Deserialize, Serialize};
use tcbench::refdist::ReferenceDistributions;
use tcbench::telemetry::{InferEvent, InferObserver};
use trafficgen::types::Pkt;

use crate::drift::{
    wire_scores, DriftConfig, DriftMonitor, DriftStats, RetrainConfig, RetrainOrchestrator,
    WireVerdict,
};
use crate::engine::{CnnClassifier, EngineConfig, QuantMode};
use crate::registry::{ModelRegistry, ServedModel};
use crate::replay::PacketRecord;
use crate::shard::ShardedPipeline;
use crate::tracker::TrackerConfig;

/// One control request, as one line of JSON on the socket. The `cmd`
/// tag is kebab-case: `{"cmd":"push-model","path":"m.ckpt"}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "cmd", rename_all = "kebab-case")]
pub enum CtlRequest {
    /// Load the model file at `path` and hot-swap it in.
    PushModel {
        /// Model file, in either format [`ServedModel::load_auto`] reads.
        path: String,
    },
    /// Report live serving statistics.
    Stats,
    /// Live-reconfigure the daemon; absent fields are left unchanged.
    SetConfig {
        /// Sparsity-dispatch threshold for the served network
        /// (`0.0` forces dense kernels; results are bit-identical).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        sparsity_threshold: Option<f32>,
        /// Micro-batch size trigger (≥ 1).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        max_batch: Option<usize>,
        /// Micro-batch deadline, in stream-time milliseconds.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        max_wait_ms: Option<f64>,
        /// Idle-flow eviction timeout, in stream-time seconds.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        idle_timeout_s: Option<f64>,
        /// Per-lane tracked-flow cap (≥ 1); evicts down immediately.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        max_flows: Option<usize>,
        /// Per-lane cap on undrained predictions (≥ 1).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        pending_cap: Option<usize>,
        /// Numeric mode for the served CNN's eval lane: `"off"` keeps
        /// the exact f32 kernels (every bit-identity contract holds),
        /// `"int8"` arms the quantized lane (approximate by contract,
        /// still batch/worker/shard invariant). Appended after the
        /// original knobs so older clients' lines keep parsing.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        quant: Option<String>,
        /// Drift verdict threshold, in the L1 metric's `(0, 2]` range.
        /// Rejected when the daemon runs without drift detection.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        drift_threshold: Option<f64>,
        /// Drift check cadence, stream-time seconds (> 0). Rejected
        /// when the daemon runs without drift detection.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        drift_interval_s: Option<f64>,
        /// Open-world rejection threshold: predictions whose winning
        /// confidence falls below it (or is non-finite) are rejected
        /// instead of labeled. `0.0` disables the lane entirely
        /// (bit-identical to pre-rejection builds); must be a finite
        /// probability in `[0, 1]`. Appended after the original knobs so
        /// older clients' lines keep parsing.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        reject_below: Option<f32>,
    },
    /// Ingest one packet of the stream.
    Packet {
        /// The flow this packet belongs to.
        flow_id: u64,
        /// Arrival time on the stream clock, in seconds.
        ts: f64,
        /// The packet, timestamped in seconds since its flow's start.
        pkt: Pkt,
    },
    /// Early-terminate live flows and drain the micro-batch queue —
    /// what a replay does at end of trace — without exiting.
    Flush,
    /// Report the drift-detection subsystem's state: checks, scores,
    /// verdicts, retrain progress. Answers `enabled: false` on a daemon
    /// running without drift detection.
    DriftStatus,
    /// Return every prediction made so far, in classification order.
    Predictions,
    /// Graceful exit: flush, drain, emit `stream_end`, stop serving.
    Shutdown,
}

impl CtlRequest {
    /// The request's wire name (the `cmd` tag).
    pub fn name(&self) -> &'static str {
        match self {
            CtlRequest::PushModel { .. } => "push-model",
            CtlRequest::Stats => "stats",
            CtlRequest::SetConfig { .. } => "set-config",
            CtlRequest::Packet { .. } => "packet",
            CtlRequest::Flush => "flush",
            CtlRequest::DriftStatus => "drift-status",
            CtlRequest::Predictions => "predictions",
            CtlRequest::Shutdown => "shutdown",
        }
    }
}

/// What the engine decided about a flow, on the wire. Kebab-case on the
/// socket (`"accepted"` / `"rejected"`); defaults to `Accepted` so
/// pre-rejection wire lines (which omit the field) keep deserializing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum WireOutcome {
    /// The prediction carries a class label.
    #[default]
    Accepted,
    /// Confidence fell below the rejection threshold (or was
    /// non-finite); the flow is unlabeled.
    Rejected,
}

/// One prediction on the wire. The confidence travels as exact f32 bits
/// so bit-identity can be asserted across the socket without float
/// round-tripping doubts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WirePrediction {
    /// The flow this prediction belongs to.
    pub flow_id: u64,
    /// Predicted class index; absent on the wire when the prediction
    /// was rejected.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub label: Option<usize>,
    /// `f32::to_bits` of the winning class's probability.
    pub confidence_bits: u32,
    /// Whether the engine accepted or rejected the prediction. Omitted
    /// by pre-rejection daemons; defaults to accepted.
    #[serde(default)]
    pub outcome: WireOutcome,
}

impl WirePrediction {
    /// The confidence as the original f32.
    pub fn confidence(&self) -> f32 {
        f32::from_bits(self.confidence_bits)
    }

    /// Whether the engine rejected this prediction.
    pub fn is_rejected(&self) -> bool {
        self.outcome == WireOutcome::Rejected
    }
}

/// Live serving statistics, the `stats` response payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonStats {
    /// Dataplane lanes the daemon shards flows over.
    pub shards: usize,
    /// Flows currently holding tracker state, across all lanes.
    pub flows_tracked: usize,
    /// Flows classified over the daemon's lifetime (drained and dropped
    /// predictions included).
    pub flows_classified: usize,
    /// Micro-batches run so far.
    pub batches: usize,
    /// Flows dropped unclassified (idle timeout or cap).
    pub evicted: usize,
    /// Completed flows waiting for a batch slot.
    pub queue_depth: usize,
    /// Predictions made but not yet drained by a `predictions` request.
    pub predictions_pending: usize,
    /// Predictions dropped because they overflowed the pending cap
    /// before any client drained them.
    pub predictions_dropped: usize,
    /// Predictions rejected by the confidence threshold over the
    /// daemon's lifetime (disjoint from `predictions_dropped`: rejected
    /// predictions still reach the pending buffer and the wire).
    /// Defaults for stats lines from pre-rejection daemons.
    #[serde(default)]
    pub rejected: usize,
    /// Packets ingested so far.
    pub packets: usize,
    /// Active model's weight fingerprint, as 16 hex digits.
    pub model_fingerprint: String,
    /// Median forward wall-clock per batch over the lanes' bounded
    /// recent-latency rings, milliseconds (0 if none).
    pub p50_ms: f64,
    /// 95th-percentile batch wall-clock, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile batch wall-clock, milliseconds.
    pub p99_ms: f64,
    /// Current micro-batch size trigger.
    pub max_batch: usize,
    /// Current micro-batch deadline, stream-time milliseconds.
    pub max_wait_ms: f64,
    /// Current idle-flow eviction timeout, stream-time seconds.
    pub idle_timeout_s: f64,
    /// Drift-detection state, when the subsystem is enabled. Absent on
    /// the wire otherwise, so pre-drift clients keep parsing.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub drift: Option<DriftStats>,
}

/// One control response, as one line of JSON on the socket, tagged by
/// `reply`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "reply", rename_all = "kebab-case")]
pub enum CtlResponse {
    /// The request succeeded with nothing to report.
    Ok,
    /// The request failed; the daemon keeps serving.
    Error {
        /// What went wrong.
        message: String,
    },
    /// A `push-model` hot-swap succeeded.
    Swapped {
        /// Retired model's weight fingerprint, 16 hex digits.
        old: String,
        /// Now-active model's weight fingerprint, 16 hex digits.
        new: String,
    },
    /// The `stats` payload.
    Stats {
        /// Live serving statistics.
        stats: DaemonStats,
    },
    /// The `predictions` payload.
    Predictions {
        /// Every prediction so far, in classification order.
        predictions: Vec<WirePrediction>,
    },
    /// The `drift-status` payload.
    Drift {
        /// Drift-detection state (`enabled: false` when the daemon runs
        /// without the subsystem).
        drift: DriftStats,
    },
}

/// Daemon construction knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaemonConfig {
    /// Flow-tracking knobs (the flowpic resolution must match the
    /// initial model's).
    pub tracker: TrackerConfig,
    /// Micro-batching knobs. A daemon should leave
    /// [`EngineConfig::retain_full_history`] off — the bounded pending
    /// buffer and recent-latency ring are what keep a long-running
    /// process flat.
    pub engine: EngineConfig,
    /// Forward workers for built classifiers (0 = all cores;
    /// bit-neutral).
    pub workers: usize,
    /// Dataplane lanes to shard flows over (≥ 1). Fixed for the
    /// daemon's lifetime: resharding live would rehash tracked flows
    /// mid-picture.
    pub shards: usize,
    /// Numeric mode for the served CNN's eval lane. `Off` (the
    /// default) keeps the exact f32 kernels; `Int8` arms the quantized
    /// lane. Switchable live via `set-config`.
    pub quant: QuantMode,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            tracker: TrackerConfig::default(),
            engine: EngineConfig::default(),
            workers: 1,
            shards: 1,
            quant: QuantMode::Off,
        }
    }
}

/// The serving daemon: registry + sharded tracker/engine lanes plus the
/// control protocol over them. [`Daemon::handle`] is the socket-free
/// core (unit tests drive it directly); [`Daemon::run`] wraps it in the
/// accept loop.
pub struct Daemon {
    registry: Arc<ModelRegistry>,
    pipeline: ShardedPipeline,
    /// The active model in serving form, kept for sparsity-threshold
    /// rebuilds (the registry only holds the opaque classifier).
    model: ServedModel,
    sparsity_threshold: Option<f32>,
    quant: QuantMode,
    workers: usize,
    packets: usize,
    /// Stream time of the last ingested packet — the clock `flush`
    /// stamps early-terminated flows with, mirroring a replay's use of
    /// its final trace timestamp.
    now: f64,
    /// The drift-detection subsystem, when enabled. `None` is the
    /// bit-identity baseline: no tap, no reservoirs, zero extra work.
    drift: Option<DriftRuntime>,
    shutdown: bool,
    finished: bool,
}

/// The enabled drift subsystem: monitor + orchestrator.
struct DriftRuntime {
    monitor: DriftMonitor,
    orchestrator: RetrainOrchestrator,
}

impl Daemon {
    /// A daemon serving `model` from the start.
    pub fn new(model: ServedModel, config: DaemonConfig) -> Result<Daemon, CheckpointError> {
        let cnn = CnnClassifier::from_served_quant(&model, config.workers, config.quant)?;
        let registry = Arc::new(ModelRegistry::new(Arc::new(cnn)));
        let pipeline =
            ShardedPipeline::new(&registry, config.tracker, config.engine, config.shards)?;
        Ok(Daemon {
            registry,
            pipeline,
            model,
            sparsity_threshold: None,
            quant: config.quant,
            workers: config.workers,
            packets: 0,
            now: 0.0,
            drift: None,
            shutdown: false,
            finished: false,
        })
    }

    /// Enables the closed loop: arms every lane's drift tap, builds the
    /// [`DriftMonitor`] against `refs` (the training-time reference
    /// distributions) and a [`RetrainOrchestrator`] for the served
    /// class set. Call before the first packet; enabling mid-stream
    /// would silently miss the flows already classified.
    pub fn enable_drift(
        &mut self,
        refs: &ReferenceDistributions,
        monitor: DriftConfig,
        retrain: RetrainConfig,
    ) {
        self.pipeline.set_drift_tap(true);
        self.drift = Some(DriftRuntime {
            monitor: DriftMonitor::new(refs, monitor),
            orchestrator: RetrainOrchestrator::new(self.model.class_names.clone(), retrain),
        });
    }

    /// The registry the daemon serves from (shared with any in-process
    /// observers).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Whether a `shutdown` request has been accepted.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Processes one request. Packet ingest replicates the replay
    /// loop's per-packet order exactly; every other request emits a
    /// `control_request` telemetry event (per-packet events would drown
    /// the log — packets are already visible through `infer_batch_end`).
    pub fn handle(&mut self, req: &CtlRequest, obs: &mut dyn InferObserver) -> CtlResponse {
        if !matches!(req, CtlRequest::Packet { .. }) {
            obs.infer_event(&InferEvent::ControlRequest { cmd: req.name() });
        }
        // A finished background retrain is absorbed at the next request
        // of any kind — the swap lands between requests, never inside
        // one, so each request still sees one consistent model.
        self.absorb_retrain(obs);
        match req {
            CtlRequest::Packet { flow_id, ts, pkt } => {
                let rec = PacketRecord {
                    flow_id: *flow_id,
                    ts: *ts,
                    pkt: *pkt,
                };
                self.packets += 1;
                self.now = rec.ts;
                self.pipeline.push(&rec, obs);
                if self.drift.is_some() {
                    self.drift_step(rec.ts, obs);
                }
                CtlResponse::Ok
            }
            CtlRequest::PushModel { path } => self.push_model(Path::new(path), obs),
            CtlRequest::Stats => CtlResponse::Stats {
                stats: self.stats(),
            },
            CtlRequest::SetConfig {
                sparsity_threshold,
                max_batch,
                max_wait_ms,
                idle_timeout_s,
                max_flows,
                pending_cap,
                quant,
                drift_threshold,
                drift_interval_s,
                reject_below,
            } => self.set_config(
                *sparsity_threshold,
                *max_batch,
                *max_wait_ms,
                *idle_timeout_s,
                *max_flows,
                *pending_cap,
                quant.as_deref(),
                *drift_threshold,
                *drift_interval_s,
                *reject_below,
                obs,
            ),
            CtlRequest::Flush => {
                self.flush_and_drain(obs);
                CtlResponse::Ok
            }
            CtlRequest::DriftStatus => CtlResponse::Drift {
                drift: self.drift_stats().unwrap_or_else(DriftStats::disabled),
            },
            CtlRequest::Predictions => CtlResponse::Predictions {
                // Draining: each prediction crosses the wire exactly
                // once, keeping a long-running daemon's memory flat.
                predictions: self
                    .pipeline
                    .take_predictions()
                    .into_iter()
                    .map(|p| WirePrediction {
                        flow_id: p.flow_id,
                        label: p.label(),
                        confidence_bits: p.confidence.to_bits(),
                        outcome: if p.is_rejected() {
                            WireOutcome::Rejected
                        } else {
                            WireOutcome::Accepted
                        },
                    })
                    .collect(),
            },
            CtlRequest::Shutdown => {
                self.shutdown = true;
                CtlResponse::Ok
            }
        }
    }

    /// Builds a classifier from `model` with the daemon's current
    /// sparsity threshold and quantization mode applied. Quant is
    /// re-applied here so a `push-model` hot-swap keeps the serving
    /// mode the operator chose.
    fn build_classifier(&self, model: &ServedModel) -> Result<CnnClassifier, CheckpointError> {
        let mut cnn = CnnClassifier::from_served_quant(model, self.workers, self.quant)?;
        if let Some(threshold) = self.sparsity_threshold {
            cnn.set_sparsity_threshold(threshold);
        }
        Ok(cnn)
    }

    fn push_model(&mut self, path: &Path, obs: &mut dyn InferObserver) -> CtlResponse {
        let model = match ServedModel::load_auto(path) {
            Ok(m) => m,
            Err(e) => {
                return CtlResponse::Error {
                    message: format!("push-model: {e}"),
                }
            }
        };
        let cnn = match self.build_classifier(&model) {
            Ok(c) => c,
            Err(e) => {
                return CtlResponse::Error {
                    message: format!("push-model: {e}"),
                }
            }
        };
        match self.registry.swap(Arc::new(cnn)) {
            Ok((old, new)) => {
                self.model = model;
                obs.infer_event(&InferEvent::ModelSwapped {
                    old_fingerprint: old,
                    new_fingerprint: new,
                    reason: "push-model",
                });
                CtlResponse::Swapped {
                    old: format!("{old:016x}"),
                    new: format!("{new:016x}"),
                }
            }
            Err(e) => CtlResponse::Error {
                message: format!("push-model: {e}"),
            },
        }
    }

    /// The per-packet drift hook: drains the lanes' taps into the
    /// monitor + orchestrator windows and runs a stream-time check.
    /// Only called when the subsystem is enabled.
    fn drift_step(&mut self, now_ts: f64, obs: &mut dyn InferObserver) {
        let Some(d) = &mut self.drift else { return };
        let tap = self.pipeline.take_drift_tap();
        if !tap.is_empty() {
            d.monitor.observe(&tap);
            d.orchestrator.observe(&tap);
        }
        if let Some(verdict) = d.monitor.maybe_check(now_ts, self.packets, obs) {
            d.orchestrator.trigger(&verdict, &self.model, obs);
        }
    }

    /// Non-blocking: if a background retrain finished, emit
    /// `retrain_end` and — on an accepted candidate — hot-swap it in
    /// (`model_swapped` with `reason: "drift"`) and rebase the monitor
    /// onto the references rebuilt from the fine-tune set.
    fn absorb_retrain(&mut self, obs: &mut dyn InferObserver) {
        let outcome = match &mut self.drift {
            Some(d) if d.orchestrator.is_running() => d.orchestrator.poll(obs),
            _ => None,
        };
        let Some(outcome) = outcome else { return };
        let (Some(model), Some(refs)) = (outcome.model, outcome.refs) else {
            return;
        };
        // The candidate is rebuilt with the daemon's current serving
        // mode (sparsity threshold, quant lane), exactly like a
        // push-model swap.
        let cnn = match self.build_classifier(&model) {
            Ok(c) => c,
            Err(_) => return, // accepted-but-unbuildable: keep serving
        };
        if let Ok((old, new)) = self.registry.swap(Arc::new(cnn)) {
            self.model = model;
            obs.infer_event(&InferEvent::ModelSwapped {
                old_fingerprint: old,
                new_fingerprint: new,
                reason: "drift",
            });
            if let Some(d) = &mut self.drift {
                d.monitor.rebase(&refs);
            }
        }
    }

    /// The `drift-status` payload; `None` when the subsystem is off.
    fn drift_stats(&self) -> Option<DriftStats> {
        let d = self.drift.as_ref()?;
        let (started, accepted) = d.orchestrator.counts();
        Some(DriftStats {
            enabled: true,
            checks: d.monitor.checks(),
            verdicts: d.monitor.verdicts(),
            class_scores: wire_scores(d.monitor.class_scores()),
            mean_confidence: wire_scores(d.monitor.mean_confidences()),
            last_verdict: d.monitor.last_verdict().map(|v| WireVerdict {
                class: v.class,
                score: v.score,
                packet: v.packet,
                at_ts: v.at_ts,
            }),
            retrain_state: d.orchestrator.state().into(),
            retrains_started: started,
            retrains_accepted: accepted,
            threshold: d.monitor.config().threshold,
            check_interval_s: d.monitor.config().check_interval_s,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn set_config(
        &mut self,
        sparsity_threshold: Option<f32>,
        max_batch: Option<usize>,
        max_wait_ms: Option<f64>,
        idle_timeout_s: Option<f64>,
        max_flows: Option<usize>,
        pending_cap: Option<usize>,
        quant: Option<&str>,
        drift_threshold: Option<f64>,
        drift_interval_s: Option<f64>,
        reject_below: Option<f32>,
        obs: &mut dyn InferObserver,
    ) -> CtlResponse {
        if max_batch == Some(0) {
            return CtlResponse::Error {
                message: "set-config: max_batch must be at least 1".into(),
            };
        }
        if max_flows == Some(0) {
            return CtlResponse::Error {
                message: "set-config: max_flows must be at least 1".into(),
            };
        }
        if pending_cap == Some(0) {
            return CtlResponse::Error {
                message: "set-config: pending_cap must be at least 1".into(),
            };
        }
        // Validate before applying anything: a rejected request must
        // leave the daemon exactly as it was (no partial knob writes,
        // no ConfigChanged events). NaN in particular must be stopped
        // here — below the boundary it would silently act as the
        // forced-dense sentinel (`nettensor::sparse::forced_path`).
        if let Some(threshold) = sparsity_threshold {
            if !threshold.is_finite() || !(0.0..=1.1).contains(&threshold) {
                return CtlResponse::Error {
                    message: format!(
                        "set-config: sparsity_threshold must be a finite value \
                         in [0.0, 1.1], got {threshold}"
                    ),
                };
            }
        }
        let quant_mode = match quant {
            None => None,
            Some(s) => match s.parse::<QuantMode>() {
                Ok(m) => Some(m),
                Err(e) => {
                    return CtlResponse::Error {
                        message: format!("set-config: {e}"),
                    }
                }
            },
        };
        if (drift_threshold.is_some() || drift_interval_s.is_some()) && self.drift.is_none() {
            return CtlResponse::Error {
                message: "set-config: drift detection is not enabled on this daemon \
                          (start it with --drift-ref)"
                    .into(),
            };
        }
        if let Some(t) = drift_threshold {
            // The L1 distance between densities is bounded by 2.
            if !t.is_finite() || t <= 0.0 || t > 2.0 {
                return CtlResponse::Error {
                    message: format!(
                        "set-config: drift_threshold must be a finite value in (0.0, 2.0], \
                         got {t}"
                    ),
                };
            }
        }
        if let Some(s) = drift_interval_s {
            if !s.is_finite() || s <= 0.0 {
                return CtlResponse::Error {
                    message: format!(
                        "set-config: drift_interval_s must be finite and positive, got {s}"
                    ),
                };
            }
        }
        if let Some(r) = reject_below {
            if !r.is_finite() || !(0.0..=1.0).contains(&r) {
                return CtlResponse::Error {
                    message: format!(
                        "set-config: reject_below must be a finite probability in [0, 1], got {r}"
                    ),
                };
            }
        }
        if sparsity_threshold.is_some() || quant_mode.is_some() {
            // The registry's classifier is behind an Arc, so neither
            // the threshold nor the quant lane can be poked in place;
            // rebuild from the retained ServedModel and swap. Same
            // weights, same fingerprint — sparse and dense kernels are
            // bit-identical, so a threshold change never changes
            // predictions (quant is approximate by contract).
            if let Some(threshold) = sparsity_threshold {
                self.sparsity_threshold = Some(threshold);
            }
            if let Some(mode) = quant_mode {
                self.quant = mode;
            }
            let cnn = match self.build_classifier(&self.model.clone()) {
                Ok(c) => c,
                Err(e) => {
                    return CtlResponse::Error {
                        message: format!("set-config: {e}"),
                    }
                }
            };
            if let Err(e) = self.registry.swap(Arc::new(cnn)) {
                return CtlResponse::Error {
                    message: format!("set-config: {e}"),
                };
            }
            if let Some(threshold) = sparsity_threshold {
                obs.infer_event(&InferEvent::ConfigChanged {
                    field: "sparsity_threshold",
                    value: f64::from(threshold),
                });
            }
        }
        if let Some(n) = max_batch {
            self.pipeline.set_max_batch(n);
            obs.infer_event(&InferEvent::ConfigChanged {
                field: "max_batch",
                value: n as f64,
            });
        }
        if let Some(ms) = max_wait_ms {
            self.pipeline.set_max_wait_s(ms / 1e3);
            obs.infer_event(&InferEvent::ConfigChanged {
                field: "max_wait_s",
                value: ms / 1e3,
            });
        }
        if let Some(s) = idle_timeout_s {
            self.pipeline.set_idle_timeout_s(s);
            obs.infer_event(&InferEvent::ConfigChanged {
                field: "idle_timeout_s",
                value: s,
            });
        }
        if let Some(n) = max_flows {
            self.pipeline.set_max_flows(n, obs);
            obs.infer_event(&InferEvent::ConfigChanged {
                field: "max_flows",
                value: n as f64,
            });
        }
        if let Some(n) = pending_cap {
            self.pipeline.set_pending_cap(n);
            obs.infer_event(&InferEvent::ConfigChanged {
                field: "pending_cap",
                value: n as f64,
            });
        }
        if let Some(mode) = quant_mode {
            obs.infer_event(&InferEvent::ConfigChanged {
                field: "quant",
                value: match mode {
                    QuantMode::Off => 0.0,
                    QuantMode::Int8 => 1.0,
                },
            });
        }
        if let Some(t) = drift_threshold {
            if let Some(d) = &mut self.drift {
                d.monitor.set_threshold(t);
            }
            obs.infer_event(&InferEvent::ConfigChanged {
                field: "drift_threshold",
                value: t,
            });
        }
        if let Some(s) = drift_interval_s {
            if let Some(d) = &mut self.drift {
                d.monitor.set_check_interval_s(s);
            }
            obs.infer_event(&InferEvent::ConfigChanged {
                field: "drift_interval_s",
                value: s,
            });
        }
        if let Some(r) = reject_below {
            self.pipeline.set_reject_below(r);
            obs.infer_event(&InferEvent::ConfigChanged {
                field: "reject_below",
                value: f64::from(r),
            });
        }
        CtlResponse::Ok
    }

    /// A snapshot of live serving statistics (the `stats` payload).
    /// Latency quantiles come from the lanes' bounded recent-latency
    /// rings, so a daemon up for months still answers in O(window).
    pub fn stats(&self) -> DaemonStats {
        let wall = self.pipeline.recent_wall_ms();
        let (p50, p95, p99) = if wall.is_empty() {
            (0.0, 0.0, 0.0)
        } else {
            (
                percentile(&wall, 0.50),
                percentile(&wall, 0.95),
                percentile(&wall, 0.99),
            )
        };
        DaemonStats {
            shards: self.pipeline.shards(),
            flows_tracked: self.pipeline.active_flows(),
            flows_classified: self.pipeline.flows_classified(),
            batches: self.pipeline.batches_run(),
            evicted: self.pipeline.evicted(),
            queue_depth: self.pipeline.queue_depth(),
            predictions_pending: self.pipeline.predictions_pending(),
            predictions_dropped: self.pipeline.predictions_dropped(),
            rejected: self.pipeline.rejected(),
            packets: self.packets,
            model_fingerprint: format!("{:016x}", self.registry.active().fingerprint()),
            p50_ms: p50,
            p95_ms: p95,
            p99_ms: p99,
            max_batch: self.pipeline.engine_config().max_batch,
            max_wait_ms: self.pipeline.engine_config().max_wait_s * 1e3,
            idle_timeout_s: self.pipeline.tracker_config().idle_timeout_s,
            drift: self.drift_stats(),
        }
    }

    /// Early-terminates live flows at the last seen stream time and
    /// drains the micro-batch queues — the replay's end-of-trace step.
    fn flush_and_drain(&mut self, obs: &mut dyn InferObserver) {
        self.pipeline.flush_and_drain(self.now, obs);
    }

    /// Graceful teardown: flush + drain, then `stream_end` and the
    /// daemon `shutdown` event. Idempotent — `run` calls it on exit, and
    /// socket-free tests may call it directly.
    pub fn finish(&mut self, wall_ms: f64, obs: &mut dyn InferObserver) {
        if self.finished {
            return;
        }
        self.finished = true;
        // Best-effort: a retrain that happens to have finished by now is
        // still recorded in the log; one mid-flight is abandoned (its
        // thread sends into a dropped channel and exits).
        self.absorb_retrain(obs);
        self.flush_and_drain(obs);
        obs.infer_event(&InferEvent::StreamEnd {
            flows: self.pipeline.flows_classified(),
            batches: self.pipeline.batches_run(),
            evicted: self.pipeline.evicted(),
            wall_ms,
        });
        obs.infer_event(&InferEvent::DaemonShutdown);
    }

    /// Serves the control socket until a `shutdown` request arrives.
    ///
    /// Connections are accepted and processed strictly one at a time —
    /// the serial ordering is what makes a daemon session deterministic
    /// and replayable. A client dropping its connection mid-session is
    /// not an error; the daemon returns to accepting.
    pub fn run(
        &mut self,
        listener: UnixListener,
        socket_desc: &str,
        obs: &mut dyn InferObserver,
    ) -> std::io::Result<()> {
        let t0 = Instant::now();
        obs.infer_event(&InferEvent::DaemonStart {
            socket: socket_desc.to_string(),
        });
        let active = self.registry.active();
        obs.infer_event(&InferEvent::StreamStart {
            model_fingerprint: active.fingerprint(),
            n_classes: active.n_classes(),
        });
        drop(active);

        'accept: for stream in listener.incoming() {
            let stream = stream?;
            let mut reader = BufReader::new(stream.try_clone()?);
            let mut writer = stream;
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) => break,  // client closed; accept the next one
                    Err(_) => break, // broken connection is not fatal
                    Ok(_) => {}
                }
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let resp = match serde_json::from_str::<CtlRequest>(trimmed) {
                    Ok(req) => self.handle(&req, obs),
                    Err(e) => CtlResponse::Error {
                        message: format!("bad request: {e}"),
                    },
                };
                let mut out = serde_json::to_string(&resp).expect("response serializes");
                out.push('\n');
                if writer.write_all(out.as_bytes()).is_err() {
                    break; // client went away; its requests already applied
                }
                if self.shutdown {
                    break 'accept;
                }
            }
            if self.shutdown {
                break;
            }
        }
        self.finish(t0.elapsed().as_secs_f64() * 1e3, obs);
        Ok(())
    }

    /// Binds `socket` (removing any stale socket file first) and serves
    /// until shutdown. The socket file is removed again on exit.
    pub fn run_on_path(
        &mut self,
        socket: &Path,
        obs: &mut dyn InferObserver,
    ) -> std::io::Result<()> {
        let _ = std::fs::remove_file(socket);
        let listener = UnixListener::bind(socket)?;
        let result = self.run(listener, &socket.display().to_string(), obs);
        let _ = std::fs::remove_file(socket);
        result
    }
}

/// A client connection to a running daemon: send [`CtlRequest`]s, read
/// [`CtlResponse`]s, one line each way per request.
pub struct CtlClient {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl CtlClient {
    /// Connects to the daemon's control socket.
    pub fn connect(socket: &Path) -> std::io::Result<CtlClient> {
        let stream = UnixStream::connect(socket)?;
        Ok(CtlClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, req: &CtlRequest) -> std::io::Result<CtlResponse> {
        let mut line = serde_json::to_string(req).expect("request serializes");
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before responding",
            ));
        }
        serde_json::from_str(resp.trim()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response {resp:?}: {e}"),
            )
        })
    }
}

/// One-shot convenience: connect, send one request, read the response.
pub fn ctl_roundtrip(socket: &Path, req: &CtlRequest) -> std::io::Result<CtlResponse> {
    CtlClient::connect(socket)?.request(req)
}

/// Streams a trace over one client connection, one `packet` request per
/// record, and returns the number of packets acknowledged. Stops with
/// an error on the first `Error` response.
pub fn stream_trace(client: &mut CtlClient, trace: &[PacketRecord]) -> std::io::Result<usize> {
    let mut sent = 0usize;
    for rec in trace {
        let resp = client.request(&CtlRequest::Packet {
            flow_id: rec.flow_id,
            ts: rec.ts,
            pkt: rec.pkt,
        })?;
        if let CtlResponse::Error { message } = resp {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("daemon rejected packet {sent}: {message}"),
            ));
        }
        sent += 1;
    }
    Ok(sent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcbench::arch::supervised_net;
    use tcbench::telemetry::InferRecorder;
    use trafficgen::types::Direction;

    fn tiny_model(seed: u64) -> ServedModel {
        let net = supervised_net(16, 3, true, seed);
        ServedModel {
            arch: "supervised".into(),
            resolution: 16,
            n_classes: 3,
            dropout: true,
            class_names: vec!["a".into(), "b".into(), "c".into()],
            weights: net.export_weights(),
        }
    }

    fn daemon_config() -> DaemonConfig {
        DaemonConfig {
            tracker: TrackerConfig {
                flowpic: flowpic::FlowpicConfig::with_resolution(16),
                norm: flowpic::Normalization::LogMax,
                idle_timeout_s: 30.0,
                max_flows: 100,
                done_horizon_s: 120.0,
            },
            engine: EngineConfig {
                max_batch: 4,
                max_wait_s: 0.5,
                ..EngineConfig::default()
            },
            workers: 1,
            shards: 1,
            quant: QuantMode::Off,
        }
    }

    /// A `set-config` touching only the threshold and/or quant knobs.
    fn set_lane_config(sparsity_threshold: Option<f32>, quant: Option<&str>) -> CtlRequest {
        CtlRequest::SetConfig {
            sparsity_threshold,
            max_batch: None,
            max_wait_ms: None,
            idle_timeout_s: None,
            max_flows: None,
            pending_cap: None,
            quant: quant.map(String::from),
            drift_threshold: None,
            drift_interval_s: None,
            reject_below: None,
        }
    }

    /// A `set-config` touching only the drift knobs.
    fn set_drift_config(threshold: Option<f64>, interval_s: Option<f64>) -> CtlRequest {
        CtlRequest::SetConfig {
            sparsity_threshold: None,
            max_batch: None,
            max_wait_ms: None,
            idle_timeout_s: None,
            max_flows: None,
            pending_cap: None,
            quant: None,
            drift_threshold: threshold,
            drift_interval_s: interval_s,
            reject_below: None,
        }
    }

    /// A `set-config` touching only the rejection threshold.
    fn set_reject_config(reject_below: Option<f32>) -> CtlRequest {
        CtlRequest::SetConfig {
            sparsity_threshold: None,
            max_batch: None,
            max_wait_ms: None,
            idle_timeout_s: None,
            max_flows: None,
            pending_cap: None,
            quant: None,
            drift_threshold: None,
            drift_interval_s: None,
            reject_below,
        }
    }

    fn packet(flow_id: u64, ts: f64, pkt_ts: f64) -> CtlRequest {
        CtlRequest::Packet {
            flow_id,
            ts,
            pkt: Pkt::data(pkt_ts, 500, Direction::Upstream),
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tcb_daemon_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn requests_round_trip_as_tagged_json_lines() {
        let reqs = [
            CtlRequest::PushModel {
                path: "m.ckpt".into(),
            },
            CtlRequest::Stats,
            CtlRequest::SetConfig {
                sparsity_threshold: Some(0.0),
                max_batch: None,
                max_wait_ms: Some(250.0),
                idle_timeout_s: None,
                max_flows: None,
                pending_cap: Some(1024),
                quant: Some("int8".into()),
                drift_threshold: Some(0.8),
                drift_interval_s: Some(30.0),
                reject_below: Some(0.35),
            },
            packet(3, 1.5, 0.25),
            CtlRequest::Flush,
            CtlRequest::DriftStatus,
            CtlRequest::Predictions,
            CtlRequest::Shutdown,
        ];
        for req in &reqs {
            let line = serde_json::to_string(req).unwrap();
            assert!(
                line.contains(&format!("\"cmd\":\"{}\"", req.name())),
                "{line}"
            );
            let back: CtlRequest = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, req);
        }
    }

    #[test]
    fn packets_complete_flows_and_predictions_report_them() {
        let mut daemon = Daemon::new(tiny_model(1), daemon_config()).unwrap();
        let mut obs = InferRecorder::new();
        assert_eq!(
            daemon.handle(&packet(1, 0.0, 0.0), &mut obs),
            CtlResponse::Ok
        );
        assert_eq!(
            daemon.handle(&packet(1, 0.5, 1.0), &mut obs),
            CtlResponse::Ok
        );
        // Window-crossing packet completes flow 1; flush drains the queue.
        daemon.handle(&packet(1, 1.0, 15.5), &mut obs);
        daemon.handle(&CtlRequest::Flush, &mut obs);
        match daemon.handle(&CtlRequest::Predictions, &mut obs) {
            CtlResponse::Predictions { predictions } => {
                assert_eq!(predictions.len(), 1);
                assert_eq!(predictions[0].flow_id, 1);
                let conf = predictions[0].confidence();
                assert!(conf > 0.0 && conf <= 1.0, "{conf}");
            }
            other => panic!("expected predictions, got {other:?}"),
        }
        match daemon.handle(&CtlRequest::Stats, &mut obs) {
            CtlResponse::Stats { stats } => {
                assert_eq!(stats.flows_classified, 1);
                assert_eq!(stats.packets, 3);
                assert_eq!(stats.flows_tracked, 0);
                assert_eq!(stats.batches, 1);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn push_model_swaps_and_reports_fingerprints() {
        let model_a = tiny_model(1);
        let model_b = tiny_model(2);
        let path_b = tmp("push-b.ckpt");
        model_b.save(&path_b).unwrap();

        let mut daemon = Daemon::new(model_a.clone(), daemon_config()).unwrap();
        let mut obs = InferRecorder::new();
        let resp = daemon.handle(
            &CtlRequest::PushModel {
                path: path_b.to_str().unwrap().into(),
            },
            &mut obs,
        );
        match resp {
            CtlResponse::Swapped { old, new } => {
                assert_eq!(old, format!("{:016x}", model_a.weights.fingerprint()));
                assert_eq!(new, format!("{:016x}", model_b.weights.fingerprint()));
            }
            other => panic!("expected swapped, got {other:?}"),
        }
        assert!(obs
            .events
            .iter()
            .any(|e| matches!(e, InferEvent::ModelSwapped { .. })));
        // Missing file → error response, daemon keeps its model.
        let resp = daemon.handle(
            &CtlRequest::PushModel {
                path: tmp("missing.ckpt").to_str().unwrap().into(),
            },
            &mut obs,
        );
        assert!(matches!(resp, CtlResponse::Error { .. }), "{resp:?}");
        assert_eq!(
            daemon.registry().active().fingerprint(),
            model_b.weights.fingerprint()
        );
    }

    #[test]
    fn push_model_rejects_class_count_mismatch() {
        let mut wrong = tiny_model(3);
        wrong.n_classes = 5;
        wrong.class_names = (0..5).map(|i| format!("c{i}")).collect();
        wrong.weights = supervised_net(16, 5, true, 3).export_weights();
        let path = tmp("push-wrong.ckpt");
        wrong.save(&path).unwrap();

        let mut daemon = Daemon::new(tiny_model(1), daemon_config()).unwrap();
        let mut obs = InferRecorder::new();
        let resp = daemon.handle(
            &CtlRequest::PushModel {
                path: path.to_str().unwrap().into(),
            },
            &mut obs,
        );
        match resp {
            CtlResponse::Error { message } => {
                assert!(message.contains("classes"), "{message}");
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn set_config_applies_live_and_emits_events() {
        let mut daemon = Daemon::new(tiny_model(1), daemon_config()).unwrap();
        let mut obs = InferRecorder::new();
        let resp = daemon.handle(
            &CtlRequest::SetConfig {
                sparsity_threshold: Some(0.0),
                max_batch: Some(2),
                max_wait_ms: Some(250.0),
                idle_timeout_s: Some(5.0),
                max_flows: Some(50),
                pending_cap: Some(4096),
                quant: Some("off".into()),
                drift_threshold: None,
                drift_interval_s: None,
                reject_below: Some(0.5),
            },
            &mut obs,
        );
        assert_eq!(resp, CtlResponse::Ok);
        let changed: Vec<&'static str> = obs
            .events
            .iter()
            .filter_map(|e| match e {
                InferEvent::ConfigChanged { field, .. } => Some(*field),
                _ => None,
            })
            .collect();
        assert_eq!(
            changed,
            vec![
                "sparsity_threshold",
                "max_batch",
                "max_wait_s",
                "idle_timeout_s",
                "max_flows",
                "pending_cap",
                "quant",
                "reject_below"
            ]
        );
        match daemon.handle(&CtlRequest::Stats, &mut obs) {
            CtlResponse::Stats { stats } => {
                assert_eq!(stats.max_batch, 2);
                assert_eq!(stats.max_wait_ms, 250.0);
                assert_eq!(stats.idle_timeout_s, 5.0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // Invalid max_batch is rejected without side effects.
        let resp = daemon.handle(
            &CtlRequest::SetConfig {
                sparsity_threshold: None,
                max_batch: Some(0),
                max_wait_ms: None,
                idle_timeout_s: None,
                max_flows: None,
                pending_cap: None,
                quant: None,
                drift_threshold: None,
                drift_interval_s: None,
                reject_below: None,
            },
            &mut obs,
        );
        assert!(matches!(resp, CtlResponse::Error { .. }), "{resp:?}");
    }

    #[test]
    fn sparsity_threshold_rebuild_never_changes_predictions() {
        let cfg = daemon_config();
        let mk_packets = || {
            let mut reqs = Vec::new();
            for flow in 0..6u64 {
                for j in 0..4 {
                    reqs.push(packet(
                        flow,
                        flow as f64 * 0.1 + j as f64 * 0.01,
                        j as f64 * 0.5,
                    ));
                }
            }
            reqs
        };
        let run = |sparsity: Option<f32>| {
            let mut daemon = Daemon::new(tiny_model(1), cfg).unwrap();
            let mut obs = InferRecorder::new();
            if let Some(t) = sparsity {
                daemon.handle(&set_lane_config(Some(t), None), &mut obs);
            }
            for req in mk_packets() {
                daemon.handle(&req, &mut obs);
            }
            daemon.handle(&CtlRequest::Flush, &mut obs);
            match daemon.handle(&CtlRequest::Predictions, &mut obs) {
                CtlResponse::Predictions { predictions } => predictions,
                other => panic!("expected predictions, got {other:?}"),
            }
        };
        let default = run(None);
        let forced_dense = run(Some(0.0));
        let forced_sparse = run(Some(1.1));
        assert!(!default.is_empty());
        assert_eq!(
            default, forced_dense,
            "dense dispatch must be bit-identical"
        );
        assert_eq!(
            default, forced_sparse,
            "sparse dispatch must be bit-identical"
        );
    }

    #[test]
    fn set_config_rejects_out_of_range_and_non_finite_thresholds() {
        let mut daemon = Daemon::new(tiny_model(1), daemon_config()).unwrap();
        let mut obs = InferRecorder::new();
        for bad in [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -1.0,
            -0.001,
            1.5,
        ] {
            let resp = daemon.handle(&set_lane_config(Some(bad), None), &mut obs);
            match resp {
                CtlResponse::Error { message } => {
                    assert!(message.contains("sparsity_threshold"), "{message}");
                }
                other => panic!("threshold {bad} must be rejected, got {other:?}"),
            }
        }
        // A rejected request leaves no trace: no knob writes, no
        // ConfigChanged events (only the control_request audit lines).
        assert!(
            !obs.events
                .iter()
                .any(|e| matches!(e, InferEvent::ConfigChanged { .. })),
            "rejected set-config must not emit ConfigChanged"
        );
        // Both boundary values are legal: 0.0 forces dense, 1.1 forces
        // sparse (DEFAULT_SPARSITY_THRESHOLD's documented sentinels).
        for ok in [0.0_f32, 1.1] {
            let resp = daemon.handle(&set_lane_config(Some(ok), None), &mut obs);
            assert_eq!(resp, CtlResponse::Ok, "threshold {ok} must be accepted");
        }
    }

    #[test]
    fn reject_below_knob_validates_then_applies_live() {
        let mut daemon = Daemon::new(tiny_model(1), daemon_config()).unwrap();
        let mut obs = InferRecorder::new();
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.1, 1.5] {
            let resp = daemon.handle(&set_reject_config(Some(bad)), &mut obs);
            match resp {
                CtlResponse::Error { message } => {
                    assert!(message.contains("reject_below"), "{message}");
                }
                other => panic!("reject_below {bad} must be rejected, got {other:?}"),
            }
        }
        assert!(
            !obs.events
                .iter()
                .any(|e| matches!(e, InferEvent::ConfigChanged { .. })),
            "rejected reject_below must not emit ConfigChanged"
        );

        // 1.0 rejects everything not fully confident: the tiny model's
        // softmax over 3 classes never answers exactly 1.0.
        let resp = daemon.handle(&set_reject_config(Some(1.0)), &mut obs);
        assert_eq!(resp, CtlResponse::Ok);
        assert!(obs.events.iter().any(|e| matches!(
            e,
            InferEvent::ConfigChanged {
                field: "reject_below",
                value,
            } if *value == 1.0
        )));
        for j in 0..3 {
            daemon.handle(&packet(4, j as f64 * 0.1, j as f64 * 0.5), &mut obs);
        }
        daemon.handle(&CtlRequest::Flush, &mut obs);
        match daemon.handle(&CtlRequest::Predictions, &mut obs) {
            CtlResponse::Predictions { predictions } => {
                assert_eq!(predictions.len(), 1);
                assert!(predictions[0].is_rejected());
                assert_eq!(predictions[0].label, None);
            }
            other => panic!("expected predictions, got {other:?}"),
        }
        match daemon.handle(&CtlRequest::Stats, &mut obs) {
            CtlResponse::Stats { stats } => {
                assert_eq!(stats.rejected, 1);
                assert_eq!(stats.predictions_dropped, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }

        // Back to 0.0: the lane is disabled and predictions flow again.
        let resp = daemon.handle(&set_reject_config(Some(0.0)), &mut obs);
        assert_eq!(resp, CtlResponse::Ok);
        for j in 0..3 {
            daemon.handle(&packet(5, 1.0 + j as f64 * 0.1, j as f64 * 0.5), &mut obs);
        }
        daemon.handle(&CtlRequest::Flush, &mut obs);
        match daemon.handle(&CtlRequest::Predictions, &mut obs) {
            CtlResponse::Predictions { predictions } => {
                assert_eq!(predictions.len(), 1);
                assert!(!predictions[0].is_rejected());
                assert!(predictions[0].label.is_some());
            }
            other => panic!("expected predictions, got {other:?}"),
        }
        match daemon.handle(&CtlRequest::Stats, &mut obs) {
            CtlResponse::Stats { stats } => assert_eq!(stats.rejected, 1),
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn fresh_daemon_stats_answer_zeros_without_panicking() {
        // Regression: a `stats` request before any packet has arrived
        // must not panic on the empty latency ring.
        let mut daemon = Daemon::new(tiny_model(1), daemon_config()).unwrap();
        let mut obs = InferRecorder::new();
        match daemon.handle(&CtlRequest::Stats, &mut obs) {
            CtlResponse::Stats { stats } => {
                assert_eq!(stats.batches, 0);
                assert_eq!(stats.packets, 0);
                assert_eq!(stats.flows_tracked, 0);
                assert_eq!(stats.flows_classified, 0);
                assert_eq!(stats.p50_ms, 0.0);
                assert_eq!(stats.p95_ms, 0.0);
                assert_eq!(stats.p99_ms, 0.0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn zero_shards_daemon_construction_is_a_typed_error() {
        let mut cfg = daemon_config();
        cfg.shards = 0;
        let err = match Daemon::new(tiny_model(1), cfg) {
            Err(e) => e,
            Ok(_) => panic!("shards=0 must not construct"),
        };
        assert!(
            err.to_string().contains("shard count"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn quant_knob_switches_the_eval_lane_live() {
        let mut daemon = Daemon::new(tiny_model(1), daemon_config()).unwrap();
        let mut obs = InferRecorder::new();
        let fp_before = daemon.registry().active().fingerprint();

        // Unknown mode → error, nothing changes.
        let resp = daemon.handle(&set_lane_config(None, Some("fp4")), &mut obs);
        match resp {
            CtlResponse::Error { message } => {
                assert!(message.contains("quant"), "{message}");
            }
            other => panic!("bogus quant mode must be rejected, got {other:?}"),
        }

        // int8 arms the quantized lane; the fingerprint is unchanged
        // (quant is a serving mode, not a model identity) and
        // predictions still flow end to end.
        let resp = daemon.handle(&set_lane_config(None, Some("int8")), &mut obs);
        assert_eq!(resp, CtlResponse::Ok);
        assert_eq!(daemon.registry().active().fingerprint(), fp_before);
        assert!(obs.events.iter().any(|e| matches!(
            e,
            InferEvent::ConfigChanged {
                field: "quant",
                value,
            } if *value == 1.0
        )));
        for j in 0..3 {
            daemon.handle(&packet(7, j as f64 * 0.1, j as f64 * 0.5), &mut obs);
        }
        daemon.handle(&CtlRequest::Flush, &mut obs);
        match daemon.handle(&CtlRequest::Predictions, &mut obs) {
            CtlResponse::Predictions { predictions } => {
                assert_eq!(predictions.len(), 1);
                let conf = predictions[0].confidence();
                assert!(conf > 0.0 && conf <= 1.0, "{conf}");
            }
            other => panic!("expected predictions, got {other:?}"),
        }

        // Back to off: exact lane again, same fingerprint.
        let resp = daemon.handle(&set_lane_config(None, Some("off")), &mut obs);
        assert_eq!(resp, CtlResponse::Ok);
        assert_eq!(daemon.registry().active().fingerprint(), fp_before);
    }

    #[test]
    fn shutdown_finishes_gracefully_with_stream_end() {
        let mut daemon = Daemon::new(tiny_model(1), daemon_config()).unwrap();
        let mut obs = InferRecorder::new();
        daemon.handle(&packet(9, 0.0, 0.0), &mut obs);
        assert_eq!(
            daemon.handle(&CtlRequest::Shutdown, &mut obs),
            CtlResponse::Ok
        );
        assert!(daemon.shutdown_requested());
        daemon.finish(12.5, &mut obs);
        // The live flow was early-terminated and classified on shutdown.
        let stream_end = obs
            .events
            .iter()
            .find(|e| matches!(e, InferEvent::StreamEnd { .. }))
            .expect("stream_end must be emitted");
        match stream_end {
            InferEvent::StreamEnd { flows, .. } => assert_eq!(*flows, 1),
            _ => unreachable!(),
        }
        assert!(matches!(
            obs.events.last(),
            Some(InferEvent::DaemonShutdown)
        ));
        // finish is idempotent.
        let n_events = obs.events.len();
        daemon.finish(12.5, &mut obs);
        assert_eq!(obs.events.len(), n_events);
    }

    /// References far away from the 500-byte packets the `packet`
    /// helper generates, so any live traffic registers as drifted.
    fn mismatched_refs() -> ReferenceDistributions {
        ReferenceDistributions::from_flow_stats(
            vec!["a".into(), "b".into(), "c".into()],
            3,
            (0..48).flat_map(|i| {
                let j = (i % 8) as f64;
                (0..3).map(move |c| (c, 100.0 + 10.0 * c as f64 + j, 0.01 + 0.001 * j))
            }),
            48,
            1,
        )
    }

    #[test]
    fn drift_status_answers_disabled_without_the_subsystem() {
        let mut daemon = Daemon::new(tiny_model(1), daemon_config()).unwrap();
        let mut obs = InferRecorder::new();
        match daemon.handle(&CtlRequest::DriftStatus, &mut obs) {
            CtlResponse::Drift { drift } => {
                assert!(!drift.enabled);
                assert_eq!(drift.checks, 0);
            }
            other => panic!("expected drift status, got {other:?}"),
        }
        match daemon.handle(&CtlRequest::Stats, &mut obs) {
            CtlResponse::Stats { stats } => assert!(stats.drift.is_none()),
            other => panic!("expected stats, got {other:?}"),
        }
        // Drift knobs on a drift-less daemon are a typed error.
        let resp = daemon.handle(&set_drift_config(Some(0.8), None), &mut obs);
        match resp {
            CtlResponse::Error { message } => {
                assert!(message.contains("not enabled"), "{message}");
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn drift_knobs_validate_before_applying_and_emit_events() {
        let mut daemon = Daemon::new(tiny_model(1), daemon_config()).unwrap();
        daemon.enable_drift(
            &mismatched_refs(),
            DriftConfig::default(),
            RetrainConfig::default(),
        );
        let mut obs = InferRecorder::new();
        for bad in [
            set_drift_config(Some(0.0), None),
            set_drift_config(Some(-1.0), None),
            set_drift_config(Some(2.5), None),
            set_drift_config(Some(f64::NAN), None),
            set_drift_config(None, Some(0.0)),
            set_drift_config(None, Some(-3.0)),
            set_drift_config(None, Some(f64::INFINITY)),
            // A bad interval must also veto a good threshold in the
            // same request: validate-before-apply is all-or-nothing.
            set_drift_config(Some(0.9), Some(-1.0)),
        ] {
            let resp = daemon.handle(&bad, &mut obs);
            assert!(matches!(resp, CtlResponse::Error { .. }), "{bad:?}");
        }
        assert!(
            !obs.events
                .iter()
                .any(|e| matches!(e, InferEvent::ConfigChanged { .. })),
            "rejected drift knobs must not emit ConfigChanged"
        );
        match daemon.handle(&CtlRequest::DriftStatus, &mut obs) {
            CtlResponse::Drift { drift } => {
                assert_eq!(drift.threshold, DriftConfig::default().threshold);
            }
            other => panic!("expected drift status, got {other:?}"),
        }

        let resp = daemon.handle(&set_drift_config(Some(0.9), Some(12.0)), &mut obs);
        assert_eq!(resp, CtlResponse::Ok);
        let changed: Vec<&'static str> = obs
            .events
            .iter()
            .filter_map(|e| match e {
                InferEvent::ConfigChanged { field, .. } => Some(*field),
                _ => None,
            })
            .collect();
        assert_eq!(changed, vec!["drift_threshold", "drift_interval_s"]);
        match daemon.handle(&CtlRequest::DriftStatus, &mut obs) {
            CtlResponse::Drift { drift } => {
                assert!(drift.enabled);
                assert_eq!(drift.threshold, 0.9);
                assert_eq!(drift.check_interval_s, 12.0);
            }
            other => panic!("expected drift status, got {other:?}"),
        }
    }

    #[test]
    fn daemon_closes_the_loop_detect_retrain_swap() {
        let mut daemon = Daemon::new(tiny_model(1), daemon_config()).unwrap();
        daemon.enable_drift(
            &mismatched_refs(),
            DriftConfig {
                threshold: 0.5,
                check_interval_s: 5.0,
                sustain: 1,
                min_samples: 2,
                reservoir_cap: 32,
                cooldown_checks: 100,
                seed: 7,
            },
            RetrainConfig {
                max_epochs: 1,
                min_flows: 4,
                min_accuracy: 0.0,
                val_frac: 0.25,
                ..RetrainConfig::default()
            },
        );
        let fp_before = daemon.registry().active().fingerprint();
        let mut obs = InferRecorder::new();
        // Six flows of 500-byte packets — far from the references — each
        // completed by a window-crossing packet. The stream clock passes
        // the 5 s check point at flow 5's crossing packet.
        for flow in 0..6u64 {
            let t0 = flow as f64;
            daemon.handle(&packet(flow, t0, 0.0), &mut obs);
            daemon.handle(&packet(flow, t0 + 0.1, 0.5), &mut obs);
            daemon.handle(&packet(flow, t0 + 0.2, 15.5), &mut obs);
        }
        let detected = obs
            .events
            .iter()
            .find(|e| matches!(e, InferEvent::DriftDetected { .. }))
            .expect("mismatched traffic must raise a verdict");
        match detected {
            InferEvent::DriftDetected {
                score, threshold, ..
            } => {
                assert!(score > threshold, "score {score} threshold {threshold}");
            }
            _ => unreachable!(),
        }
        assert!(obs
            .events
            .iter()
            .any(|e| matches!(e, InferEvent::RetrainStart { .. })));
        // The fine-tune runs in the background; absorb it via polling.
        let deadline = Instant::now() + std::time::Duration::from_secs(60);
        loop {
            match daemon.handle(&CtlRequest::DriftStatus, &mut obs) {
                CtlResponse::Drift { drift } => {
                    if drift.retrain_state == "accepted" {
                        assert_eq!(drift.retrains_started, 1);
                        assert_eq!(drift.retrains_accepted, 1);
                        break;
                    }
                    assert_ne!(drift.retrain_state, "rejected");
                }
                other => panic!("expected drift status, got {other:?}"),
            }
            assert!(Instant::now() < deadline, "retrain never completed");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(obs
            .events
            .iter()
            .any(|e| matches!(e, InferEvent::RetrainEnd { accepted: true, .. })));
        assert!(obs.events.iter().any(|e| matches!(
            e,
            InferEvent::ModelSwapped {
                reason: "drift",
                ..
            }
        )));
        assert_ne!(
            daemon.registry().active().fingerprint(),
            fp_before,
            "the drift swap must activate the fine-tuned candidate"
        );
        // The event log alone reconstructs the cycle in order.
        let cycle: Vec<&str> = obs
            .events
            .iter()
            .filter_map(|e| match e {
                InferEvent::DriftDetected { .. } => Some("drift_detected"),
                InferEvent::RetrainStart { .. } => Some("retrain_start"),
                InferEvent::RetrainEnd { .. } => Some("retrain_end"),
                InferEvent::ModelSwapped {
                    reason: "drift", ..
                } => Some("model_swapped"),
                _ => None,
            })
            .collect();
        assert_eq!(
            cycle,
            vec![
                "drift_detected",
                "retrain_start",
                "retrain_end",
                "model_swapped"
            ]
        );
    }

    #[test]
    fn socket_round_trip_serves_requests_and_shuts_down() {
        let socket = tmp("round-trip.sock");
        let _ = std::fs::remove_file(&socket);
        let listener = UnixListener::bind(&socket).unwrap();
        let mut daemon = Daemon::new(tiny_model(1), daemon_config()).unwrap();
        let handle = std::thread::spawn(move || {
            let mut obs = InferRecorder::new();
            daemon.run(listener, "test", &mut obs).unwrap();
            obs
        });

        let mut client = CtlClient::connect(&socket).unwrap();
        for j in 0..3 {
            let resp = client
                .request(&packet(1, j as f64 * 0.1, j as f64 * 0.5))
                .unwrap();
            assert_eq!(resp, CtlResponse::Ok);
        }
        match client.request(&CtlRequest::Stats).unwrap() {
            CtlResponse::Stats { stats } => {
                assert_eq!(stats.packets, 3);
                assert_eq!(stats.flows_tracked, 1);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        assert_eq!(
            client.request(&CtlRequest::Shutdown).unwrap(),
            CtlResponse::Ok
        );
        let obs = handle.join().unwrap();
        assert!(matches!(
            obs.events.first(),
            Some(InferEvent::DaemonStart { .. })
        ));
        assert!(matches!(
            obs.events.last(),
            Some(InferEvent::DaemonShutdown)
        ));
        let _ = std::fs::remove_file(&socket);
    }

    #[test]
    fn malformed_request_lines_get_error_responses() {
        let socket = tmp("malformed.sock");
        let _ = std::fs::remove_file(&socket);
        let listener = UnixListener::bind(&socket).unwrap();
        let mut daemon = Daemon::new(tiny_model(1), daemon_config()).unwrap();
        let handle = std::thread::spawn(move || {
            let mut obs = InferRecorder::new();
            daemon.run(listener, "test", &mut obs).unwrap();
        });

        let stream = UnixStream::connect(&socket).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"this is not json\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp: CtlResponse = serde_json::from_str(line.trim()).unwrap();
        assert!(matches!(resp, CtlResponse::Error { .. }), "{resp:?}");
        // The daemon is still serving.
        let mut line2 = serde_json::to_string(&CtlRequest::Shutdown).unwrap();
        line2.push('\n');
        writer.write_all(line2.as_bytes()).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(
            serde_json::from_str::<CtlResponse>(line.trim()).unwrap(),
            CtlResponse::Ok
        );
        handle.join().unwrap();
        let _ = std::fs::remove_file(&socket);
    }
}
