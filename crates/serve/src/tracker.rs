//! Bounded per-flow state over a packet stream.
//!
//! The tracker owns one [`IncrementalFlowpic`] per live flow and decides
//! when each flow's picture is ready to classify:
//!
//! * **window completion** — the first packet whose flow-relative
//!   timestamp reaches the paper's observation window (15 s by default)
//!   proves the window has fully elapsed, so the picture is final (the
//!   batch builder would skip that packet and everything after it).
//! * **early termination** — flows still live when the stream drains are
//!   flushed and classified on whatever they accumulated, mirroring the
//!   paper's treatment of flows shorter than the window.
//!
//! Memory stays bounded by two eviction rules, both observable as
//! `flow_evicted` telemetry: flows idle longer than `idle_timeout_s` are
//! dropped (the flow is presumed dead; if it resumes it restarts from an
//! empty picture), and when a new flow would exceed `max_flows` the
//! least-recently-active flow is dropped to make room. Evicted flows are
//! *not* classified — eviction is memory reclamation, not completion.
//! All eviction choices order by `(last_seen, flow_id)`, so the tracker
//! is deterministic for a given trace.

use std::collections::HashMap;

use flowpic::{FlowpicConfig, IncrementalFlowpic, Normalization};
use tcbench::telemetry::{InferEvent, InferObserver};

use crate::replay::PacketRecord;

/// Flow-tracking knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerConfig {
    /// Flowpic geometry (resolution, window, ACK handling).
    pub flowpic: FlowpicConfig,
    /// Normalization applied when a picture becomes a model input.
    pub norm: Normalization,
    /// Seconds of stream-time silence after which a flow is evicted.
    pub idle_timeout_s: f64,
    /// Hard cap on simultaneously tracked flows.
    pub max_flows: usize,
}

impl Default for TrackerConfig {
    fn default() -> TrackerConfig {
        TrackerConfig {
            flowpic: FlowpicConfig::mini(),
            norm: Normalization::LogMax,
            idle_timeout_s: 30.0,
            max_flows: 10_000,
        }
    }
}

/// A flow whose picture is final and ready for classification.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedFlow {
    /// The flow's identifier.
    pub flow_id: u64,
    /// The normalized, flattened flowpic — the model input.
    pub input: Vec<f32>,
    /// Packets the flow contributed to the picture.
    pub pkts: usize,
    /// Stream time at which the flow completed.
    pub completed_at: f64,
}

struct TrackedFlow {
    pic: IncrementalFlowpic,
    last_seen: f64,
}

/// Ingests timestamped packet records and emits completed flows.
pub struct FlowTracker {
    config: TrackerConfig,
    flows: HashMap<u64, TrackedFlow>,
    /// Flows already classified; their late packets are ignored.
    done: std::collections::HashSet<u64>,
    evicted: usize,
}

impl FlowTracker {
    /// An empty tracker.
    pub fn new(config: TrackerConfig) -> FlowTracker {
        assert!(config.max_flows >= 1, "max_flows must be at least 1");
        FlowTracker {
            config,
            flows: HashMap::new(),
            done: std::collections::HashSet::new(),
            evicted: 0,
        }
    }

    /// Flows currently holding per-flow state.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// The current tracking configuration.
    pub fn config(&self) -> TrackerConfig {
        self.config
    }

    /// Live-reconfigures the idle timeout (stream-time seconds). Applies
    /// from the next packet on: flows already idle longer than the new
    /// timeout are evicted when stream time next advances.
    pub fn set_idle_timeout_s(&mut self, idle_timeout_s: f64) {
        self.config.idle_timeout_s = idle_timeout_s;
    }

    /// Flows dropped unclassified (idle timeout or cap) so far.
    pub fn evicted(&self) -> usize {
        self.evicted
    }

    /// Ingests one packet. May return a completed flow (the packet
    /// proved its window elapsed) and may evict idle flows as a side
    /// effect of stream time advancing to `rec.ts`.
    pub fn push(
        &mut self,
        rec: &PacketRecord,
        obs: &mut dyn InferObserver,
    ) -> Option<CompletedFlow> {
        self.evict_idle(rec.ts, obs);
        if self.done.contains(&rec.flow_id) {
            return None;
        }
        if rec.pkt.ts >= self.config.flowpic.window_s {
            // The observation window has fully elapsed: the picture is
            // final (this packet and all later ones fall outside the
            // window, so the batch builder would skip them too).
            let tracked = self.flows.remove(&rec.flow_id);
            self.done.insert(rec.flow_id);
            let (input, pkts) = match tracked {
                Some(t) => (t.pic.picture().to_input(self.config.norm), t.pic.counted()),
                // First observed packet is already past the window: the
                // in-window picture is provably empty.
                None => (
                    IncrementalFlowpic::new(self.config.flowpic)
                        .picture()
                        .to_input(self.config.norm),
                    0,
                ),
            };
            return Some(CompletedFlow {
                flow_id: rec.flow_id,
                input,
                pkts,
                completed_at: rec.ts,
            });
        }
        if !self.flows.contains_key(&rec.flow_id) && self.flows.len() >= self.config.max_flows {
            self.evict_for_cap(obs);
        }
        let entry = self
            .flows
            .entry(rec.flow_id)
            .or_insert_with(|| TrackedFlow {
                pic: IncrementalFlowpic::new(self.config.flowpic),
                last_seen: rec.ts,
            });
        entry.pic.push(&rec.pkt);
        entry.last_seen = rec.ts;
        None
    }

    /// Completes every remaining live flow (early termination at stream
    /// end), in flow-id order for determinism.
    pub fn flush(&mut self, now: f64) -> Vec<CompletedFlow> {
        let mut ids: Vec<u64> = self.flows.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| {
                let t = self.flows.remove(&id).expect("flow listed but missing");
                self.done.insert(id);
                CompletedFlow {
                    flow_id: id,
                    input: t.pic.picture().to_input(self.config.norm),
                    pkts: t.pic.counted(),
                    completed_at: now,
                }
            })
            .collect()
    }

    fn evict_idle(&mut self, now: f64, obs: &mut dyn InferObserver) {
        let mut stale: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, t)| now - t.last_seen > self.config.idle_timeout_s)
            .map(|(&id, _)| id)
            .collect();
        stale.sort_unstable();
        for id in stale {
            let t = self.flows.remove(&id).expect("stale flow missing");
            self.evicted += 1;
            obs.infer_event(&InferEvent::FlowEvicted {
                flow_id: id,
                pkts: t.pic.counted(),
                reason: "idle",
            });
        }
    }

    fn evict_for_cap(&mut self, obs: &mut dyn InferObserver) {
        let victim = self
            .flows
            .iter()
            .min_by(|(ida, a), (idb, b)| a.last_seen.total_cmp(&b.last_seen).then(ida.cmp(idb)))
            .map(|(&id, _)| id)
            .expect("cap eviction on an empty tracker");
        let t = self.flows.remove(&victim).expect("victim missing");
        self.evicted += 1;
        obs.infer_event(&InferEvent::FlowEvicted {
            flow_id: victim,
            pkts: t.pic.counted(),
            reason: "cap",
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcbench::telemetry::InferRecorder;
    use trafficgen::types::{Direction, Pkt};

    fn rec(flow_id: u64, ts: f64, pkt_ts: f64) -> PacketRecord {
        PacketRecord {
            flow_id,
            ts,
            pkt: Pkt::data(pkt_ts, 500, Direction::Upstream),
        }
    }

    fn cfg() -> TrackerConfig {
        TrackerConfig {
            flowpic: FlowpicConfig::mini(),
            norm: Normalization::Raw,
            idle_timeout_s: 5.0,
            max_flows: 100,
        }
    }

    #[test]
    fn window_crossing_completes_a_flow_once() {
        let mut tracker = FlowTracker::new(cfg());
        let mut obs = InferRecorder::new();
        assert!(tracker.push(&rec(1, 0.0, 0.0), &mut obs).is_none());
        assert!(tracker.push(&rec(1, 1.0, 1.0), &mut obs).is_none());
        // Stream time 2.0 (rate-compressed), flow-relative time past the
        // 15 s window: the window elapsed without tripping idle eviction.
        let done = tracker.push(&rec(1, 2.0, 15.2), &mut obs).unwrap();
        assert_eq!(done.flow_id, 1);
        assert_eq!(done.pkts, 2);
        assert_eq!(done.input.iter().sum::<f32>(), 2.0);
        assert_eq!(tracker.active_flows(), 0);
        // Late packets of a classified flow are ignored.
        assert!(tracker.push(&rec(1, 2.5, 16.0), &mut obs).is_none());
        assert_eq!(tracker.active_flows(), 0);
    }

    #[test]
    fn flush_terminates_live_flows_early() {
        let mut tracker = FlowTracker::new(cfg());
        let mut obs = InferRecorder::new();
        tracker.push(&rec(3, 0.0, 0.0), &mut obs);
        tracker.push(&rec(1, 0.1, 0.0), &mut obs);
        let done = tracker.flush(0.2);
        assert_eq!(
            done.iter().map(|d| d.flow_id).collect::<Vec<_>>(),
            vec![1, 3],
            "flush is flow-id ordered"
        );
        assert!(done.iter().all(|d| d.pkts == 1));
        assert_eq!(tracker.active_flows(), 0);
    }

    #[test]
    fn idle_flows_are_evicted_not_classified() {
        let mut tracker = FlowTracker::new(cfg());
        let mut obs = InferRecorder::new();
        tracker.push(&rec(1, 0.0, 0.0), &mut obs);
        tracker.push(&rec(2, 4.0, 0.0), &mut obs);
        // Stream time jumps past flow 1's idle deadline.
        tracker.push(&rec(2, 6.0, 2.0), &mut obs);
        assert_eq!(tracker.active_flows(), 1);
        assert_eq!(tracker.evicted(), 1);
        assert_eq!(
            obs.events,
            vec![InferEvent::FlowEvicted {
                flow_id: 1,
                pkts: 1,
                reason: "idle"
            }]
        );
        // An evicted flow that resumes restarts from an empty picture.
        tracker.push(&rec(1, 6.5, 6.5), &mut obs);
        let done = tracker.flush(7.0);
        let f1 = done.iter().find(|d| d.flow_id == 1).unwrap();
        assert_eq!(f1.pkts, 1);
    }

    #[test]
    fn cap_evicts_least_recently_active() {
        let mut tracker = FlowTracker::new(TrackerConfig {
            max_flows: 2,
            ..cfg()
        });
        let mut obs = InferRecorder::new();
        tracker.push(&rec(10, 0.0, 0.0), &mut obs);
        tracker.push(&rec(11, 0.1, 0.0), &mut obs);
        tracker.push(&rec(12, 0.2, 0.0), &mut obs);
        assert_eq!(tracker.active_flows(), 2, "cap holds");
        assert_eq!(
            obs.events,
            vec![InferEvent::FlowEvicted {
                flow_id: 10,
                pkts: 1,
                reason: "cap"
            }]
        );
    }
}
